// ppuf_tool — command-line front end for the max-flow PPUF library.
//
//   ppuf_tool fabricate <nodes> <grid> <seed> <model-file>
//       Fabricate an instance and publish its model to <model-file>.
//   ppuf_tool info <model-file>
//       Print the model's geometry and capacity statistics.
//   ppuf_tool challenge <model-file> [seed]
//       Sample a random challenge; prints "source sink bitstring".
//   ppuf_tool predict <model-file> <source> <sink> <bits> [deadline-ms]
//       Predict the response from the public model (two max-flow solves).
//       With a deadline, an over-budget solve exits with a typed status
//       instead of running to completion — the ESG made tangible.
//   ppuf_tool evaluate <nodes> <grid> <seed> <source> <sink> <bits>
//       Re-fabricate from <seed> and execute the challenge on "silicon".
//   ppuf_tool predict-batch <model-file> <count> [seed] [repeats]
//       Predict `count` random challenges, `repeats` passes over the
//       batch, on the worker pool; reports items/sec and cache counters.
//   ppuf_tool export-spice <input-bit> <deck-file>
//       Emit the building block (Fig. 2d) as a SPICE deck for external
//       cross-checking against a real SPICE engine.
//   ppuf_tool enroll <registry-dir> <nodes> <grid> <seed> [--label <text>]
//       Fabricate an instance and enroll its public model into the
//       persistent device registry; prints the assigned device id.
//   ppuf_tool registry <registry-dir> list
//   ppuf_tool registry <registry-dir> revoke <device-id>
//   ppuf_tool registry <registry-dir> compact
//       Inspect and administer a device registry.
//   ppuf_tool serve <model-file> --seed <s> [--port <p>] ...
//   ppuf_tool serve --registry <dir> [--port <p>] ...
//       Run the authentication service (DESIGN.md §12) on 127.0.0.1:
//       PREDICT / VERIFY / VERIFY_BATCH / CHALLENGE / CHAINED_AUTH over
//       the framed wire protocol.  SIGTERM/SIGINT drain gracefully.
//       Single-device mode serves <model-file> as device id 0 and
//       REQUIRES an explicit --seed (a silently-defaulted challenge seed
//       means guessable challenges); registry mode serves every enrolled
//       device by id and self-seeds from the OS entropy pool unless
//       --seed overrides it (for reproducible tests).
//   ppuf_tool auth <host:port> <nodes> <grid> <seed> [--device <id>]
//                  [--report-file <f>]
//       Authenticate against a running server as the device holder:
//       fetch a chain grant, execute the chain on the re-fabricated
//       "silicon", submit the chained report.  --device targets an
//       enrolled device id on a registry-backed server.
//   ppuf_tool chaos [--seed <s>] [--seeds <n>] [--seconds <sec>]
//                   [--torture <iters>] [--json <file>]
//       Run the chaos campaign (DESIGN.md §14): kill-9 crash-recovery
//       torture, then seeded fault-schedule campaigns against a live
//       registry-mode server while concurrent clients hammer it.  Exits
//       0 only when every invariant held; --seed replays one schedule
//       (e.g. to reproduce a CI failure), --seeds widens the default
//       fixed set, --json names the aggregate report (BENCH_chaos.json).
//   ppuf_tool gateway --shard <name>=<host:port> ... [--port <p>] ...
//       Run the fleet gateway (DESIGN.md §17): consistent-hash device ids
//       across the named shards, forward frames with remaining-budget
//       deadlines, pin chained-auth sessions, health-check shards.
//       SIGTERM/SIGINT drain gracefully.
//   ppuf_tool fleet <gateway-host:port> status|add|drain|undrain|remove|
//                   enroll ...
//       Administer a running gateway (shard lifecycle) or enroll a device
//       through it (explicit --device id, consistent-hash routed).
//   ppuf_tool standby <registry-dir> <primary-host:port> [--poll-ms <n>]
//       Run a WAL-shipping standby replica of a shard's registry.
//       SIGUSR1 promotes: replication stops, the loss window is printed,
//       and the replica starts serving as an AuthServer; SIGTERM exits.
//
// Global options (before the command):
//   --threads <n>        worker threads for batch commands and serve
//   --cache-mb <m>       response-cache budget in MiB (default 0 = no cache)
//   --metrics-json <f>   enable the metrics registry and write its JSON
//                        snapshot to <f> when the command finishes
//
// Exit codes (stable contract, exercised by tests/CI):
//   0      success (for `auth`: authentication ACCEPTED)
//   1      runtime error (I/O failure, transport failure, bad file, ...)
//   2      no/unknown command, or bad global options
//   3      predict aborted by its deadline (typed status)
//   4      auth completed but the server REJECTED the proof
//   5      auth refused: the server does not know the addressed device
//          (unknown or revoked id -> typed UNKNOWN_DEVICE reply)
//   10-24  bad arguments for a specific subcommand (usage printed to
//          stderr): fabricate=10 info=11 challenge=12 predict=13
//          predict-batch=14 evaluate=15 export-spice=16 serve=17 auth=18
//          enroll=19 registry=20 chaos=21 gateway=22 fleet=23 standby=24.
//          Note serve without --registry exits 17 when --seed is missing:
//          refusing a guessable default seed is part of the usage
//          contract.  `auth` through a gateway keeps the same codes: the
//          gateway forwards typed error replies verbatim, so an unknown
//          device still exits 5.
//
// The fabricate/evaluate pair demonstrates the PPUF lifecycle: the device
// owner needs only the seed (the physical chip); everyone else works from
// the published model file — and pays simulation time for every response.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "attack/heuristic.hpp"
#include "backend/backend.hpp"
#include "backend/pdl_backend.hpp"
#include "circuit/spice_export.hpp"
#include "fleet/gateway.hpp"
#include "fleet/standby.hpp"
#include "net/client.hpp"
#include "obs/metrics.hpp"
#include "ppuf/block.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/response_cache.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/authentication.hpp"
#include "protocol/codec.hpp"
#include "registry/device_registry.hpp"
#include "server/auth_server.hpp"
#include "testing/chaos/chaos.hpp"
#include "util/statistics.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ppuf;

/// Modelled chip execution delay reported by the honest prover; the chip
/// settles in ~nanoseconds, our host merely simulates it (DESIGN.md on the
/// elapsed-time substitution).  Matches the convention of the test suite.
constexpr double kChipDelaySeconds = 1e-6;

/// Global options parsed ahead of the command.
struct ToolOptions {
  unsigned threads = 1;
  std::size_t cache_mb = 0;   ///< 0 disables the response cache
  std::string metrics_json;   ///< empty = metrics disabled
};

/// Thrown on a bad *argument* (unparsable number, wrong shape) so main()
/// can print the offending command's usage and return its distinct code —
/// as opposed to runtime errors, which exit 1.
struct UsageError {
  std::string command;  ///< empty = global usage
};

struct CommandSpec {
  const char* name;
  int bad_args_code;  ///< exit code for bad arguments (usage audit)
  const char* usage;
};

constexpr CommandSpec kCommands[] = {
    {"fabricate", 10, "fabricate <nodes> <grid> <seed> <model-file>"},
    {"info", 11, "info <model-file>"},
    {"challenge", 12, "challenge <model-file> [seed]"},
    {"predict", 13, "predict <model-file> <source> <sink> <bits> [deadline-ms]"},
    {"predict-batch", 14, "predict-batch <model-file> <count> [seed] [repeats]"},
    {"evaluate", 15, "evaluate <nodes> <grid> <seed> <source> <sink> <bits>"},
    {"export-spice", 16, "export-spice <input-bit> <deck-file>"},
    {"serve", 17,
     "serve <model-file> --seed <s> | serve --registry <dir> [--seed <s>]\n"
     "                 [--port <p>] [--port-file <f>]\n"
     "                 [--max-inflight <n>] [--deadline-s <sec>]\n"
     "                 [--chain-k <k>] [--spot-checks <s>]\n"
     "                 [--cache-entries <n>]\n"
     "                 [--coalesce-batch <n>] [--coalesce-wait-us <us>]\n"
     "       (single-device mode refuses to run without an explicit\n"
     "        --seed: a guessable challenge seed breaks the protocol;\n"
     "        the global --cache-mb sizes the serve response cache)"},
    {"auth", 18,
     "auth <host:port> <nodes> <grid> <seed> [--device <id>]\n"
     "                 [--backend maxflow|pdl] [--report-file <f>]\n"
     "                 [--pipeline-depth <n>]"},
    {"enroll", 19,
     "enroll <registry-dir> <nodes> <grid> <seed> [--label <text>]\n"
     "                 [--backend maxflow|pdl]\n"
     "       (pdl geometry: <nodes> = chain stages, <grid> = XORed\n"
     "        instances)"},
    {"registry", 20, "registry <registry-dir> list|compact|revoke <id>"},
    {"chaos", 21,
     "chaos [--seed <s>] [--seeds <n>] [--seconds <sec>]\n"
     "                 [--torture <iters>] [--json <file>]"},
    {"gateway", 22,
     "gateway --shard <name>=<host:port> [--shard ...]\n"
     "                 [--port <p>] [--port-file <f>] [--vnodes <n>]\n"
     "                 [--max-inflight <n>] [--health-interval-ms <ms>]"},
    {"fleet", 23,
     "fleet <gateway-host:port> status\n"
     "       ppuf_tool fleet <gw> add <name> <host:port>\n"
     "       ppuf_tool fleet <gw> drain <name> [<successor-host:port>]\n"
     "       ppuf_tool fleet <gw> undrain <name>\n"
     "       ppuf_tool fleet <gw> remove <name>\n"
     "       ppuf_tool fleet <gw> enroll <nodes> <grid> <seed>\n"
     "                 --device <id> [--label <text>]\n"
     "                 [--backend maxflow|pdl]"},
    {"standby", 24,
     "standby <registry-dir> <primary-host:port> [--poll-ms <n>]\n"
     "                 [--port <p>] [--port-file <f>] [--seed <s>]\n"
     "       (SIGUSR1 = promote and serve; SIGTERM = exit)"},
};

int usage() {
  std::cerr <<
      "usage: ppuf_tool [--threads <n>] [--cache-mb <m>]\n"
      "                 [--metrics-json <file>] <command> ...\n";
  for (const CommandSpec& spec : kCommands)
    std::cerr << "  ppuf_tool " << spec.usage << "\n";
  std::cerr <<
      "--threads sizes the worker pool of batch commands and the serve\n"
      "command; --cache-mb bounds the CRP response cache (repeated\n"
      "challenges skip the solve); --metrics-json enables solver/batch/\n"
      "cache/server metrics on any command and writes the registry\n"
      "snapshot to <file> on exit.\n";
  return 2;
}

/// Print one command's usage line to stderr and return its distinct
/// bad-arguments exit code.
int usage_for(const std::string& command) {
  for (const CommandSpec& spec : kCommands) {
    if (command == spec.name) {
      std::cerr << "usage: ppuf_tool " << spec.usage << "\n";
      return spec.bad_args_code;
    }
  }
  return usage();
}

/// Strict unsigned parse: the whole token must be a number, else the
/// command's usage error.
std::uint64_t parse_number(const std::string& command,
                           const std::string& text) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(text, &pos);
    if (pos != text.size()) throw UsageError{command};
    return v;
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    throw UsageError{command};
  }
}

double parse_double(const std::string& command, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size() || !(v >= 0.0)) throw UsageError{command};
    return v;
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    throw UsageError{command};
  }
}

std::uint16_t parse_port(const std::string& command,
                         const std::string& text) {
  const std::uint64_t v = parse_number(command, text);
  if (v > 65535) throw UsageError{command};
  return static_cast<std::uint16_t>(v);
}

SimulationModel load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  return SimulationModel::load(in);
}

Challenge parse_challenge(const std::string& command,
                          const CrossbarLayout& layout,
                          const std::string& source, const std::string& sink,
                          const std::string& bits) {
  Challenge c;
  c.source = static_cast<graph::VertexId>(parse_number(command, source));
  c.sink = static_cast<graph::VertexId>(parse_number(command, sink));
  if (c.source >= layout.node_count() || c.sink >= layout.node_count() ||
      c.source == c.sink)
    throw std::runtime_error("bad source/sink pair");
  if (bits.size() != layout.cell_count())
    throw std::runtime_error("expected " +
                             std::to_string(layout.cell_count()) + " bits");
  for (const char ch : bits) {
    if (ch != '0' && ch != '1') throw std::runtime_error("bits must be 0/1");
    c.bits.push_back(ch == '1' ? 1 : 0);
  }
  return c;
}

std::string bits_to_string(const Challenge& c) {
  std::string s;
  for (const auto b : c.bits) s.push_back(b ? '1' : '0');
  return s;
}

int cmd_fabricate(const std::vector<std::string>& args) {
  if (args.size() != 4) return usage_for("fabricate");
  PpufParams params;
  params.node_count = static_cast<std::size_t>(
      parse_number("fabricate", args[0]));
  params.grid_size = static_cast<std::size_t>(
      parse_number("fabricate", args[1]));
  MaxFlowPpuf puf(params, parse_number("fabricate", args[2]));
  SimulationModel model(puf);
  std::ofstream out(args[3]);
  if (!out) throw std::runtime_error("cannot write " + args[3]);
  model.save(out);
  std::cout << "fabricated " << params.node_count << "-node PPUF (seed "
            << args[2] << "); public model written to " << args[3] << "\n";
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage_for("info");
  const SimulationModel model = load_model(args[0]);
  util::RunningStats caps;
  for (graph::EdgeId e = 0; e < model.layout().edge_count(); ++e) {
    for (int net = 0; net < 2; ++net) {
      caps.add(model.capacity(net, e, 0));
      caps.add(model.capacity(net, e, 1));
    }
  }
  std::cout << "nodes " << model.layout().node_count() << ", grid "
            << model.layout().grid_size() << " ("
            << model.layout().cell_count() << " control bits), edges "
            << model.layout().edge_count() << " per network\n";
  std::cout << "capacities: mean " << caps.mean() * 1e9 << " nA, sigma "
            << caps.stddev() * 1e9 << " nA, range ["
            << caps.min() * 1e9 << ", " << caps.max() * 1e9 << "] nA\n";
  std::cout << "comparator offset " << model.comparator_offset() * 1e9
            << " nA\n";
  return 0;
}

int cmd_challenge(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage_for("challenge");
  const SimulationModel model = load_model(args[0]);
  util::Rng rng(args.size() == 2 ? parse_number("challenge", args[1]) : 1);
  const Challenge c = random_challenge(model.layout(), rng);
  std::cout << c.source << ' ' << c.sink << ' ' << bits_to_string(c) << "\n";
  return 0;
}

int cmd_predict(const std::vector<std::string>& args) {
  if (args.size() != 4 && args.size() != 5) return usage_for("predict");
  const SimulationModel model = load_model(args[0]);
  const Challenge c =
      parse_challenge("predict", model.layout(), args[1], args[2], args[3]);
  util::SolveControl control;
  if (args.size() == 5)
    control.deadline = util::Deadline::after_seconds(
        static_cast<double>(parse_number("predict", args[4])) * 1e-3);
  const auto p =
      model.predict(c, maxflow::Algorithm::kPushRelabel, control);
  if (!p.ok()) {
    std::cout << "prediction aborted: " << p.status.to_string() << "\n";
    return 3;
  }
  std::cout << "max-flow A " << p.flow_a * 1e9 << " nA, B "
            << p.flow_b * 1e9 << " nA -> predicted bit " << p.bit << "\n";
  std::cout << "(O(n) two-hop heuristic would guess "
            << attack::predict_bit_two_hop(model, c) << ")\n";
  return 0;
}

int cmd_predict_batch(const std::vector<std::string>& args,
                      const ToolOptions& opts) {
  if (args.size() < 2 || args.size() > 4) return usage_for("predict-batch");
  const SimulationModel model = load_model(args[0]);
  const auto count = static_cast<std::size_t>(
      parse_number("predict-batch", args[1]));
  util::Rng rng(args.size() >= 3 ? parse_number("predict-batch", args[2])
                                 : 1);
  const std::size_t repeats =
      args.size() == 4
          ? static_cast<std::size_t>(parse_number("predict-batch", args[3]))
          : 1;
  if (count == 0 || repeats == 0)
    throw std::runtime_error("count and repeats must be positive");

  std::vector<Challenge> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(random_challenge(model.layout(), rng));

  util::ThreadPool pool(opts.threads);
  ResponseCache cache(opts.cache_mb * 1024 * 1024);
  SimulationModel::PredictBatchOptions options;
  options.pool = &pool;
  if (opts.cache_mb > 0) options.cache = &cache;

  std::size_t ok = 0, failed = 0;
  int ones = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t pass = 0; pass < repeats; ++pass) {
    const auto predictions = model.predict_batch(batch, options);
    for (const auto& p : predictions) {
      if (p.ok()) {
        ++ok;
        ones += p.bit;
      } else {
        ++failed;
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::size_t items = count * repeats;
  std::cout << items << " predictions (" << count << " challenges x "
            << repeats << " passes) on " << opts.threads << " threads in "
            << seconds << " s -> "
            << static_cast<double>(items) / seconds << " items/s\n";
  std::cout << "ok " << ok << ", failed " << failed << ", response ones "
            << ones << "\n";
  if (opts.cache_mb > 0) {
    const ResponseCacheStats s = cache.stats();
    std::cout << "cache: " << s.hits << " hits, " << s.misses
              << " misses (hit rate " << s.hit_rate() * 100.0 << "%), "
              << s.evictions << " evictions, " << s.entries
              << " entries, ~" << s.charged_bytes / 1024 << " KiB\n";
  }
  // Shard occupancy is cache state, not an event stream, so it is mirrored
  // into the registry here — once, after the batch — rather than on every
  // lookup.
  cache.publish_metrics(obs::MetricsRegistry::global());
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& args) {
  if (args.size() != 6) return usage_for("evaluate");
  PpufParams params;
  params.node_count = static_cast<std::size_t>(
      parse_number("evaluate", args[0]));
  params.grid_size = static_cast<std::size_t>(
      parse_number("evaluate", args[1]));
  MaxFlowPpuf puf(params, parse_number("evaluate", args[2]));
  const Challenge c =
      parse_challenge("evaluate", puf.layout(), args[3], args[4], args[5]);
  const auto e = puf.evaluate(c);
  std::cout << "I_A " << e.current_a * 1e9 << " nA, I_B "
            << e.current_b * 1e9 << " nA -> response bit " << e.bit << "\n";
  return 0;
}

int cmd_export_spice(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage_for("export-spice");
  const auto bit = static_cast<int>(parse_number("export-spice", args[0]));
  if (bit != 0 && bit != 1) throw std::runtime_error("input bit must be 0/1");
  PpufParams params;
  SweepCircuit sc = build_block(params, circuit::BlockVariation{}, bit,
                                circuit::Environment::nominal());
  std::ofstream out(args[1]);
  if (!out) throw std::runtime_error("cannot write " + args[1]);
  circuit::SpiceExportOptions opts;
  opts.title = "maxflow-ppuf building block, nominal devices, input bit " +
               args[0];
  circuit::export_spice(sc.netlist, out, opts);
  std::cout << "SPICE deck written to " << args[1]
            << " (sweep source is V" << sc.sweep_source << ")\n";
  return 0;
}

// --- enroll / registry -----------------------------------------------------

int cmd_enroll(const std::vector<std::string>& args) {
  if (args.size() < 4) return usage_for("enroll");
  registry::EnrollRequest req;
  req.node_count = static_cast<std::size_t>(parse_number("enroll", args[1]));
  req.grid_size = static_cast<std::size_t>(parse_number("enroll", args[2]));
  req.seed = parse_number("enroll", args[3]);
  for (std::size_t i = 4; i < args.size(); i += 2) {
    if (args[i] == "--label" && i + 1 < args.size()) {
      req.label = args[i + 1];
    } else if (args[i] == "--backend" && i + 1 < args.size()) {
      if (!backend::parse_backend(args[i + 1], &req.backend))
        return usage_for("enroll");
    } else {
      return usage_for("enroll");
    }
  }
  registry::DeviceRegistry registry;
  if (util::Status s = registry.open(args[0]); !s.is_ok())
    throw std::runtime_error("cannot open registry: " + s.to_string());
  std::uint64_t id = 0;
  if (util::Status s = registry.enroll(req, &id); !s.is_ok())
    throw std::runtime_error("enroll failed: " + s.to_string());
  std::cout << "enrolled device " << id << " ["
            << backend::backend_name(req.backend) << "] (" << req.node_count
            << " nodes, grid " << req.grid_size << ", seed " << req.seed
            << (req.label.empty() ? "" : ", label \"" + req.label + "\"")
            << ") into " << args[0] << "\n";
  return 0;
}

int cmd_registry(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage_for("registry");
  const std::string& verb = args[1];
  registry::DeviceRegistry registry;
  if (util::Status s = registry.open(args[0]); !s.is_ok())
    throw std::runtime_error("cannot open registry: " + s.to_string());
  if (verb == "list" && args.size() == 2) {
    const registry::DeviceRegistry::RecoveryStats rs =
        registry.recovery_stats();
    std::cout << "registry " << args[0] << ": " << registry.device_count()
              << " devices (" << rs.snapshot_entries << " from snapshot, "
              << rs.wal_records << " WAL records";
    if (rs.truncated_tail_bytes > 0)
      std::cout << ", torn tail of " << rs.truncated_tail_bytes
                << " bytes dropped";
    std::cout << ")\n";
    for (const registry::DeviceInfo& d : registry.list()) {
      std::cout << "  device " << d.id << " ["
                << backend::backend_name(d.backend) << "]: " << d.nodes
                << " nodes, grid " << d.grid
                << (d.revoked ? ", REVOKED" : "");
      if (!d.label.empty()) std::cout << ", label \"" << d.label << "\"";
      std::cout << "\n";
    }
    return 0;
  }
  if (verb == "revoke" && args.size() == 3) {
    const std::uint64_t id = parse_number("registry", args[2]);
    if (util::Status s = registry.revoke(id); !s.is_ok())
      throw std::runtime_error("revoke failed: " + s.to_string());
    std::cout << "revoked device " << id << "\n";
    return 0;
  }
  if (verb == "compact" && args.size() == 2) {
    if (util::Status s = registry.compact(); !s.is_ok())
      throw std::runtime_error("compact failed: " + s.to_string());
    std::cout << "compacted " << args[0] << " ("
              << registry.device_count() << " devices in snapshot)\n";
    return 0;
  }
  return usage_for("registry");
}

// --- chaos -----------------------------------------------------------------

/// Run the chaos campaign from the command line.  Mirrors bench_chaos so a
/// CI failure (which prints the failing seed) can be replayed on a
/// workstation with `ppuf_tool chaos --seed <s>`.
int cmd_chaos(const std::vector<std::string>& args) {
  std::vector<std::uint64_t> seeds;
  std::size_t fixed_seed_count = 5;
  bool single_seed = false;
  double seconds = 1.5;
  int torture_iterations = 20;
  std::string json_path = "BENCH_chaos.json";
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (i + 1 >= args.size()) return usage_for("chaos");
    const std::string& value = args[++i];
    if (arg == "--seed") {
      seeds.assign(1, parse_number("chaos", value));
      single_seed = true;
    } else if (arg == "--seeds") {
      fixed_seed_count = static_cast<std::size_t>(
          parse_number("chaos", value));
      if (fixed_seed_count == 0) return usage_for("chaos");
    } else if (arg == "--seconds") {
      seconds = parse_double("chaos", value);
      if (seconds <= 0.0) return usage_for("chaos");
    } else if (arg == "--torture") {
      torture_iterations = static_cast<int>(parse_number("chaos", value));
    } else if (arg == "--json") {
      json_path = value;
    } else {
      return usage_for("chaos");
    }
  }
  if (!single_seed)
    for (std::uint64_t s = 1; s <= fixed_seed_count; ++s) seeds.push_back(s);

  testing::chaos::Aggregate aggregate;

  // Torture first: fork() wants a single-threaded process, and every
  // campaign spawns (and joins) server/client/scheduler threads.
  if (torture_iterations > 0) {
    testing::chaos::TortureOptions topts;
    topts.iterations = torture_iterations;
    topts.seed = 11;
    std::cout << "[chaos] kill-9 torture: " << topts.iterations
              << " iterations\n";
    const testing::chaos::TortureResult torture =
        testing::chaos::run_kill9_torture(topts);
    aggregate.add(torture);
    std::cout << "[chaos]   committed enrolls=" << torture.committed_enrolls
              << " revokes=" << torture.committed_revokes
              << " violations=" << torture.violations.size() << "\n";
  }

  for (const std::uint64_t seed : seeds) {
    testing::chaos::CampaignOptions copts;
    copts.seed = seed;
    copts.duration_s = seconds;
    copts.restarts = 2;
    std::cout << "[chaos] campaign seed=" << seed << " (" << seconds
              << " s)\n";
    const testing::chaos::CampaignResult result =
        testing::chaos::run_campaign(copts);
    aggregate.add(result);
    std::cout << "[chaos]   faults=" << result.faults_injected
              << " requests=" << result.requests << " ok=" << result.ok
              << " transient=" << result.typed_transient
              << " violations=" << result.violations.size() << "\n";
    for (const std::string& v : result.violations)
      std::cout << "[chaos]   VIOLATION: " << v << "\n";
  }

  {
    std::ofstream out(json_path);
    out << aggregate.to_json();
    if (!out) throw std::runtime_error("cannot write " + json_path);
  }
  std::cout << "[chaos] wrote " << json_path << "\n";

  if (!aggregate.passed()) {
    std::cout << "[chaos] FAILED: " << aggregate.violation_count
              << " violation(s), first failing seed "
              << aggregate.failing_seed << "\n"
              << "[chaos] reproduce: ppuf_tool chaos --seed "
              << aggregate.failing_seed << " --torture 0\n";
    return 1;
  }
  if (!seeds.empty() && aggregate.faults_injected == 0) {
    std::cout << "[chaos] FAILED: no faults injected — the campaign "
                 "tested nothing\n";
    return 1;
  }
  std::cout << "[chaos] PASS: " << aggregate.faults_injected
            << " faults injected, 0 violations";
  if (!aggregate.recovery_ms.empty())
    std::cout << ", recovery p99 "
              << testing::chaos::percentile(aggregate.recovery_ms, 99.0)
              << " ms";
  std::cout << "\n";
  return 0;
}

// --- serve -----------------------------------------------------------------

/// Set by SIGTERM/SIGINT; polled by cmd_serve.  A signal handler may only
/// touch sig_atomic_t, so the actual drain call happens on the main thread.
volatile std::sig_atomic_t g_drain_requested = 0;

void on_drain_signal(int) { g_drain_requested = 1; }

int cmd_serve(const std::vector<std::string>& args, const ToolOptions& opts) {
  // Registered before any setup work: registry recovery / model hydration
  // can take a while on big stores, and an operator's Ctrl-C (or a CI
  // supervisor's SIGTERM/SIGINT) during that window must still drain
  // gracefully instead of killing the process mid-recovery.
  std::signal(SIGTERM, on_drain_signal);
  std::signal(SIGINT, on_drain_signal);
  server::AuthServerOptions so;
  so.threads = opts.threads;
  std::string port_file;
  std::string model_file;
  std::string registry_dir;
  bool seed_given = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      if (!model_file.empty()) return usage_for("serve");
      model_file = arg;
      continue;
    }
    if (i + 1 >= args.size()) return usage_for("serve");
    const std::string& value = args[++i];
    if (arg == "--port") {
      so.port = parse_port("serve", value);
    } else if (arg == "--port-file") {
      port_file = value;
    } else if (arg == "--registry") {
      registry_dir = value;
    } else if (arg == "--max-inflight") {
      so.max_inflight = static_cast<std::size_t>(
          parse_number("serve", value));
      if (so.max_inflight == 0) return usage_for("serve");
    } else if (arg == "--deadline-s") {
      so.verifier_deadline_seconds = parse_double("serve", value);
    } else if (arg == "--chain-k") {
      so.chain_length = static_cast<std::uint32_t>(
          parse_number("serve", value));
      if (so.chain_length == 0) return usage_for("serve");
    } else if (arg == "--spot-checks") {
      so.spot_checks = static_cast<std::size_t>(parse_number("serve", value));
    } else if (arg == "--cache-entries") {
      so.hydration_cache_entries = static_cast<std::size_t>(
          parse_number("serve", value));
      if (so.hydration_cache_entries == 0) return usage_for("serve");
    } else if (arg == "--seed") {
      so.challenge_seed = parse_number("serve", value);
      seed_given = true;
    } else if (arg == "--coalesce-batch") {
      so.coalesce_max_batch = static_cast<std::size_t>(
          parse_number("serve", value));
      if (so.coalesce_max_batch == 0) return usage_for("serve");
    } else if (arg == "--coalesce-wait-us") {
      so.coalesce_wait_us = static_cast<std::uint32_t>(
          parse_number("serve", value));
    } else {
      return usage_for("serve");
    }
  }
  // The global --cache-mb sizes the serving response cache here, the same
  // way it sizes predict-batch's cache.
  so.response_cache_bytes = opts.cache_mb * 1024 * 1024;
  const bool registry_mode = !registry_dir.empty();
  if (registry_mode == !model_file.empty())
    return usage_for("serve");  // exactly one of <model-file> / --registry
  if (!registry_mode && !seed_given) {
    // A defaulted challenge seed would make every grant predictable; the
    // single-device operator must choose one deliberately.
    std::cerr << "serve: single-device mode requires an explicit --seed "
                 "(guessable challenge seeds break the protocol)\n";
    return usage_for("serve");
  }
  if (registry_mode && !seed_given) {
    // Registry deployments get an unpredictable seed by default; --seed
    // remains available so tests can pin the challenge stream.
    std::random_device entropy;
    so.challenge_seed = (static_cast<std::uint64_t>(entropy()) << 32) ^
                        entropy();
  }

  // Whichever mode, the serving substrate must outlive the server.
  SimulationModel model;
  registry::DeviceRegistry registry;
  if (registry_mode) {
    if (util::Status s = registry.open(registry_dir); !s.is_ok())
      throw std::runtime_error("cannot open registry: " + s.to_string());
    const registry::DeviceRegistry::RecoveryStats rs =
        registry.recovery_stats();
    if (rs.truncated_tail_bytes > 0)
      std::cout << "registry recovery: dropped a torn WAL tail of "
                << rs.truncated_tail_bytes << " bytes\n";
  } else {
    model = load_model(model_file);
  }
  server::AuthServer srv =
      registry_mode ? server::AuthServer(registry, so)
                    : server::AuthServer(model, so);
  const util::Status started = srv.start();
  if (!started.is_ok())
    throw std::runtime_error("cannot start server: " + started.to_string());
  if (!port_file.empty()) {
    // Written after bind so scripts can wait for the file, then connect to
    // the ephemeral port it names.
    std::ofstream pf(port_file);
    pf << srv.port() << "\n";
    if (!pf) throw std::runtime_error("cannot write " + port_file);
  }
  if (registry_mode)
    std::cout << "serving registry " << registry_dir << " ("
              << registry.device_count() << " devices) on 127.0.0.1:"
              << srv.port();
  else
    std::cout << "serving " << model_file << " on 127.0.0.1:" << srv.port();
  std::cout << " (" << so.threads << " worker threads, max-inflight "
            << so.max_inflight << ", chain k=" << so.chain_length << ")\n"
            << std::flush;

  while (srv.running() && g_drain_requested == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::cout << "drain requested; finishing in-flight requests\n"
            << std::flush;
  srv.stop();

  const server::AuthServer::Stats s = srv.stats();
  std::cout << "served " << s.requests << " requests on "
            << s.connections_accepted << " connections ("
            << s.overloaded_rejections << " overloaded, "
            << s.shutdown_rejections << " rejected while draining, "
            << s.malformed_frames << " malformed, "
            << s.unknown_device_rejections << " unknown-device)\n";
  if (so.coalesce_max_batch > 1)
    std::cout << "coalescing: " << s.coalesced_items << " items in "
              << s.coalesced_batches << " batches, " << s.solo_dispatches
              << " solo (budget-tight), " << s.slow_peer_disconnects
              << " slow peers disconnected\n";
  return 0;
}

// --- fleet: gateway / admin / standby --------------------------------------

/// Split "host:port" or throw the command's usage error.
std::pair<std::string, std::uint16_t> parse_hostport(
    const std::string& command, const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size())
    throw UsageError{command};
  return {text.substr(0, colon), parse_port(command, text.substr(colon + 1))};
}

int cmd_gateway(const std::vector<std::string>& args,
                const ToolOptions& opts) {
  std::signal(SIGTERM, on_drain_signal);
  std::signal(SIGINT, on_drain_signal);
  fleet::GatewayOptions go;
  go.threads = opts.threads > 1 ? opts.threads : 4;
  std::string port_file;
  struct ShardArg {
    std::string name, host;
    std::uint16_t port;
  };
  std::vector<ShardArg> shard_args;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (i + 1 >= args.size()) return usage_for("gateway");
    const std::string& value = args[++i];
    if (arg == "--shard") {
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0) return usage_for("gateway");
      const auto [host, port] =
          parse_hostport("gateway", value.substr(eq + 1));
      shard_args.push_back({value.substr(0, eq), host, port});
    } else if (arg == "--port") {
      go.port = parse_port("gateway", value);
    } else if (arg == "--port-file") {
      port_file = value;
    } else if (arg == "--vnodes") {
      go.vnodes = static_cast<std::size_t>(parse_number("gateway", value));
      if (go.vnodes == 0) return usage_for("gateway");
    } else if (arg == "--max-inflight") {
      go.max_inflight = static_cast<std::size_t>(
          parse_number("gateway", value));
      if (go.max_inflight == 0) return usage_for("gateway");
    } else if (arg == "--health-interval-ms") {
      go.health_interval_ms = static_cast<int>(
          parse_number("gateway", value));
      if (go.health_interval_ms <= 0) return usage_for("gateway");
    } else {
      return usage_for("gateway");
    }
  }
  if (shard_args.empty()) return usage_for("gateway");

  fleet::Gateway gateway(go);
  for (const ShardArg& s : shard_args)
    if (util::Status st = gateway.add_shard(s.name, s.host, s.port);
        !st.is_ok())
      throw std::runtime_error("bad shard: " + st.to_string());
  if (util::Status st = gateway.start(); !st.is_ok())
    throw std::runtime_error("cannot start gateway: " + st.to_string());
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << gateway.port() << "\n";
    if (!pf) throw std::runtime_error("cannot write " + port_file);
  }
  std::cout << "gateway on 127.0.0.1:" << gateway.port() << " fronting "
            << shard_args.size() << " shard(s)";
  for (const ShardArg& s : shard_args)
    std::cout << " " << s.name << "=" << s.host << ":" << s.port;
  std::cout << "\n" << std::flush;

  while (gateway.running() && g_drain_requested == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::cout << "drain requested; finishing in-flight forwards\n"
            << std::flush;
  gateway.stop();

  const fleet::Gateway::Stats s = gateway.stats();
  std::cout << "forwarded " << s.forwarded << " of " << s.requests
            << " requests on " << s.connections_accepted << " connections ("
            << s.redirects_sent << " redirects, "
            << s.unavailable_rejections << " shard-unavailable, "
            << s.pins_created << " sessions pinned, "
            << s.dropped_inflight << " dropped in-flight)\n";
  return 0;
}

int cmd_fleet(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage_for("fleet");
  const auto [host, port] = parse_hostport("fleet", args[0]);
  const std::string& verb = args[1];
  net::ClientOptions copts;
  net::AuthClient client(host, port, copts);

  if (verb == "enroll") {
    if (args.size() < 5) return usage_for("fleet");
    net::EnrollRequestBody spec;
    spec.node_count = static_cast<std::uint32_t>(
        parse_number("fleet", args[2]));
    spec.grid_size = static_cast<std::uint32_t>(
        parse_number("fleet", args[3]));
    spec.fabrication_seed = parse_number("fleet", args[4]);
    std::uint64_t device_id = 0;
    for (std::size_t i = 5; i < args.size(); i += 2) {
      if (args[i] == "--device" && i + 1 < args.size())
        device_id = parse_number("fleet", args[i + 1]);
      else if (args[i] == "--label" && i + 1 < args.size())
        spec.label = args[i + 1];
      else if (args[i] == "--backend" && i + 1 < args.size()) {
        auto kind = backend::BackendKind::kMaxFlow;
        if (!backend::parse_backend(args[i + 1], &kind))
          return usage_for("fleet");
        spec.backend = static_cast<std::uint8_t>(kind);
      } else
        return usage_for("fleet");
    }
    if (device_id == 0) {
      // The gateway routes by hashing the id, so "assign me one" cannot
      // be forwarded — the operator picks the id (their id space).
      std::cerr << "fleet enroll: --device <id> is required through a "
                   "gateway (0 = shard-assigned is unroutable)\n";
      return usage_for("fleet");
    }
    std::uint64_t assigned = 0;
    if (util::Status s = client.enroll_device(spec, device_id, &assigned);
        !s.is_ok())
      throw std::runtime_error("enroll failed: " + s.to_string());
    std::cout << "enrolled device " << assigned << " via gateway " << args[0]
              << "\n";
    return 0;
  }

  net::AdminRequestBody req;
  if (verb == "status" && args.size() == 2) {
    req.op = net::AdminOp::kStatus;
  } else if (verb == "add" && args.size() == 4) {
    req.op = net::AdminOp::kAddShard;
    req.shard = args[2];
    std::tie(req.host, req.port) = parse_hostport("fleet", args[3]);
  } else if (verb == "drain" && (args.size() == 3 || args.size() == 4)) {
    req.op = net::AdminOp::kDrainShard;
    req.shard = args[2];
    if (args.size() == 4)
      std::tie(req.host, req.port) = parse_hostport("fleet", args[3]);
  } else if (verb == "undrain" && args.size() == 3) {
    req.op = net::AdminOp::kUndrainShard;
    req.shard = args[2];
  } else if (verb == "remove" && args.size() == 3) {
    req.op = net::AdminOp::kRemoveShard;
    req.shard = args[2];
  } else {
    return usage_for("fleet");
  }

  net::AdminReplyBody reply;
  if (util::Status s = client.admin(req, &reply); !s.is_ok())
    throw std::runtime_error("admin request failed: " + s.to_string());
  if (reply.ok == 0) {
    std::cerr << "admin refused: " << reply.message << "\n";
    return 1;
  }
  if (req.op == net::AdminOp::kStatus) {
    std::cout << reply.shards.size() << " shard(s):\n";
    for (const net::ShardStatus& st : reply.shards) {
      const char* state = st.state == 1   ? "up"
                          : st.state == 2 ? "draining"
                          : st.state == 3 ? "down"
                                          : "?";
      std::cout << "  " << st.name << " " << st.host << ":" << st.port
                << " state=" << state
                << " backend_draining=" << static_cast<int>(st.draining)
                << " inflight=" << st.inflight
                << " pinned=" << st.pinned_sessions
                << " forwarded=" << st.forwarded
                << " devices=" << st.device_count << " wal=" << st.wal_epoch
                << ":" << st.wal_offset << "\n";
    }
  } else {
    std::cout << verb << " " << req.shard << ": " << reply.message << "\n";
  }
  return 0;
}

/// Set by SIGUSR1: the operator (or failover script) wants this standby
/// promoted to a serving primary.
volatile std::sig_atomic_t g_promote_requested = 0;

void on_promote_signal(int) { g_promote_requested = 1; }

int cmd_standby(const std::vector<std::string>& args,
                const ToolOptions& opts) {
  if (args.size() < 2) return usage_for("standby");
  std::signal(SIGTERM, on_drain_signal);
  std::signal(SIGINT, on_drain_signal);
  std::signal(SIGUSR1, on_promote_signal);

  fleet::StandbyOptions sopts;
  sopts.directory = args[0];
  std::tie(sopts.primary_host, sopts.primary_port) =
      parse_hostport("standby", args[1]);
  server::AuthServerOptions so;  // used only after promotion
  so.threads = opts.threads;
  std::string port_file;
  bool seed_given = false;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (i + 1 >= args.size()) return usage_for("standby");
    const std::string& value = args[++i];
    if (arg == "--poll-ms") {
      sopts.poll_interval_ms = static_cast<int>(
          parse_number("standby", value));
      if (sopts.poll_interval_ms <= 0) return usage_for("standby");
    } else if (arg == "--port") {
      so.port = parse_port("standby", value);
    } else if (arg == "--port-file") {
      port_file = value;
    } else if (arg == "--seed") {
      so.challenge_seed = parse_number("standby", value);
      seed_given = true;
    } else {
      return usage_for("standby");
    }
  }
  if (!seed_given) {
    std::random_device entropy;
    so.challenge_seed = (static_cast<std::uint64_t>(entropy()) << 32) ^
                        entropy();
  }

  fleet::WalStandby standby(sopts);
  if (util::Status s = standby.start(); !s.is_ok())
    throw std::runtime_error("cannot start standby: " + s.to_string());
  std::cout << "standby replicating " << sopts.primary_host << ":"
            << sopts.primary_port << " into " << sopts.directory
            << " every " << sopts.poll_interval_ms << " ms\n"
            << std::flush;

  while (g_drain_requested == 0 && g_promote_requested == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  if (g_drain_requested != 0) {
    standby.stop();
    const fleet::WalStandby::Stats st = standby.stats();
    std::cout << "standby exiting: " << st.fetches << " fetches, "
              << st.bootstraps << " bootstraps, " << st.bytes_applied
              << " bytes applied (position " << st.wal_epoch << ":"
              << st.wal_offset << ")\n";
    return 0;
  }

  const fleet::PromotionReport report = standby.promote();
  std::cout << "PROMOTED: " << report.device_count << " devices at WAL "
            << report.wal_epoch << ":" << report.wal_offset << " ("
            << report.fetches << " fetches, " << report.bootstraps
            << " bootstraps, "
            << (report.caught_up ? "caught up at last contact"
                                 : "NOT caught up: enrollments inside the "
                                   "last poll window may be lost")
            << ")\n"
            << std::flush;

  server::AuthServer srv(standby.registry(), so);
  if (util::Status s = srv.start(); !s.is_ok())
    throw std::runtime_error("cannot serve promoted registry: " +
                             s.to_string());
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << srv.port() << "\n";
    if (!pf) throw std::runtime_error("cannot write " + port_file);
  }
  std::cout << "serving promoted registry on 127.0.0.1:" << srv.port()
            << "\n"
            << std::flush;
  while (srv.running() && g_drain_requested == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  srv.stop();
  const server::AuthServer::Stats s = srv.stats();
  std::cout << "served " << s.requests << " requests after promotion\n";
  return 0;
}

// --- auth ------------------------------------------------------------------

int cmd_auth(const std::vector<std::string>& args) {
  if (args.size() < 4) return usage_for("auth");
  const std::string& hostport = args[0];
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == hostport.size())
    return usage_for("auth");
  const std::string host = hostport.substr(0, colon);
  const std::uint16_t port = parse_port("auth", hostport.substr(colon + 1));

  PpufParams params;
  params.node_count = static_cast<std::size_t>(parse_number("auth", args[1]));
  params.grid_size = static_cast<std::size_t>(parse_number("auth", args[2]));
  const std::uint64_t seed = parse_number("auth", args[3]);

  std::string report_file;
  net::ClientOptions copts;
  auto holder_backend = backend::BackendKind::kMaxFlow;
  for (std::size_t i = 4; i < args.size(); i += 2) {
    if (args[i] == "--report-file" && i + 1 < args.size())
      report_file = args[i + 1];
    else if (args[i] == "--device" && i + 1 < args.size())
      copts.device_id = parse_number("auth", args[i + 1]);
    else if (args[i] == "--backend" && i + 1 < args.size()) {
      if (!backend::parse_backend(args[i + 1], &holder_backend))
        return usage_for("auth");
    } else if (args[i] == "--pipeline-depth" && i + 1 < args.size()) {
      copts.pipeline_depth = static_cast<int>(
          parse_number("auth", args[i + 1]));
      if (copts.pipeline_depth < 1) return usage_for("auth");
    } else
      return usage_for("auth");
  }

  net::AuthClient client(host, port, copts);
  net::ChallengeGrant grant;
  util::Status st = client.get_challenge(&grant);
  if (st.code() == util::StatusCode::kNotFound) {
    // Typed UNKNOWN_DEVICE from the server: the id is not enrolled or has
    // been revoked.  Distinct exit code so scripts can tell "wrong
    // device" from transport failures.
    std::cerr << "auth refused: " << st.message() << "\n";
    return 5;
  }
  if (!st.is_ok())
    throw std::runtime_error("challenge request failed: " + st.to_string());
  std::cout << "grant: chain k=" << grant.chain_length << ", nonce "
            << grant.nonce << ", response deadline "
            << grant.deadline_seconds << " s\n";

  // The "chip": only the holder of <seed> can fabricate it.  For a PDL
  // device <nodes>/<grid> are the (stages, instances) used at enrollment.
  protocol::ChainedReport report;
  if (holder_backend == backend::BackendKind::kPdlDelay) {
    if (grant.challenge.bits.size() != params.node_count)
      throw std::runtime_error(
          "server challenge does not fit this device geometry "
          "(wrong <stages> for that server's device?)");
    const std::vector<puf::ArbiterPuf> instances =
        backend::fabricate_pdl_instances(params.node_count,
                                         params.grid_size, seed);
    report = backend::prove_chain_with_pdl(instances, grant.challenge,
                                           grant.chain_length, grant.nonce,
                                           kChipDelaySeconds);
  } else {
    MaxFlowPpuf puf(params, seed);
    if (grant.challenge.bits.size() != puf.layout().cell_count() ||
        grant.challenge.source >= puf.layout().node_count() ||
        grant.challenge.sink >= puf.layout().node_count())
      throw std::runtime_error(
          "server challenge does not fit this device geometry "
          "(wrong <nodes>/<grid> for that server's model?)");
    report = protocol::prove_chain_with_ppuf(puf, grant.challenge,
                                             grant.chain_length, grant.nonce,
                                             kChipDelaySeconds);
  }
  if (!report_file.empty()) {
    std::ofstream out(report_file, std::ios::binary);
    if (!out) throw std::runtime_error("cannot write " + report_file);
    protocol::codec::write_chained_report(out, report);
    std::cout << "chained report saved to " << report_file << "\n";
  }

  protocol::ChainedVerifyResult result;
  st = client.chained_auth(grant, report, &result);
  if (st.code() == util::StatusCode::kNotFound) {
    // The device can vanish between grant and proof (revoked mid-auth).
    std::cerr << "auth refused: " << st.message() << "\n";
    return 5;
  }
  if (!st.is_ok())
    throw std::runtime_error("chained auth failed: " + st.to_string());
  std::cout << (result.accepted ? "ACCEPTED" : "REJECTED")
            << ": chain_consistent=" << result.chain_consistent
            << " rounds_valid=" << result.rounds_valid
            << " in_time=" << result.in_time;
  if (!result.detail.empty()) std::cout << " (" << result.detail << ")";
  std::cout << "\n";
  return result.accepted ? 0 : 4;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> argv_rest(argv + 1, argv + argc);
  ToolOptions opts;
  std::string cmd;
  try {
    std::size_t consumed = 0;
    while (consumed + 1 < argv_rest.size()) {
      const std::string& flag = argv_rest[consumed];
      if (flag == "--threads") {
        opts.threads = static_cast<unsigned>(
            std::stoul(argv_rest[consumed + 1]));
        if (opts.threads == 0)
          throw std::runtime_error("--threads must be positive");
        consumed += 2;
      } else if (flag == "--cache-mb") {
        opts.cache_mb = std::stoul(argv_rest[consumed + 1]);
        consumed += 2;
      } else if (flag == "--metrics-json") {
        opts.metrics_json = argv_rest[consumed + 1];
        if (opts.metrics_json.empty())
          throw std::runtime_error("--metrics-json needs a file path");
        consumed += 2;
      } else {
        break;
      }
    }
    argv_rest.erase(argv_rest.begin(),
                    argv_rest.begin() + static_cast<std::ptrdiff_t>(consumed));
    if (argv_rest.empty()) return usage();
    if (!opts.metrics_json.empty()) {
      // Enable before dispatch and pre-register the canonical schema, so
      // the snapshot always carries the full set of solver/Newton/batch/
      // server metric names (as zeros) even for commands that exercise
      // only a subset of the stack.
      ppuf::obs::MetricsRegistry::global().set_enabled(true);
      ppuf::obs::register_standard_metrics(
          ppuf::obs::MetricsRegistry::global());
    }
    cmd = argv_rest[0];
    const std::vector<std::string> args(argv_rest.begin() + 1,
                                        argv_rest.end());
    int rc = -1;
    if (cmd == "fabricate") rc = cmd_fabricate(args);
    else if (cmd == "info") rc = cmd_info(args);
    else if (cmd == "challenge") rc = cmd_challenge(args);
    else if (cmd == "predict") rc = cmd_predict(args);
    else if (cmd == "predict-batch") rc = cmd_predict_batch(args, opts);
    else if (cmd == "evaluate") rc = cmd_evaluate(args);
    else if (cmd == "export-spice") rc = cmd_export_spice(args);
    else if (cmd == "serve") rc = cmd_serve(args, opts);
    else if (cmd == "auth") rc = cmd_auth(args);
    else if (cmd == "enroll") rc = cmd_enroll(args);
    else if (cmd == "registry") rc = cmd_registry(args);
    else if (cmd == "chaos") rc = cmd_chaos(args);
    else if (cmd == "gateway") rc = cmd_gateway(args, opts);
    else if (cmd == "fleet") rc = cmd_fleet(args);
    else if (cmd == "standby") rc = cmd_standby(args, opts);
    if (rc >= 0) {
      if (!opts.metrics_json.empty())
        ppuf::obs::MetricsRegistry::global().write_json(opts.metrics_json);
      return rc;
    }
  } catch (const UsageError& e) {
    return e.command.empty() ? usage() : usage_for(e.command);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
