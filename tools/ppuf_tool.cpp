// ppuf_tool — command-line front end for the max-flow PPUF library.
//
//   ppuf_tool fabricate <nodes> <grid> <seed> <model-file>
//       Fabricate an instance and publish its model to <model-file>.
//   ppuf_tool info <model-file>
//       Print the model's geometry and capacity statistics.
//   ppuf_tool challenge <model-file> [seed]
//       Sample a random challenge; prints "source sink bitstring".
//   ppuf_tool predict <model-file> <source> <sink> <bits> [deadline-ms]
//       Predict the response from the public model (two max-flow solves).
//       With a deadline, an over-budget solve exits with a typed status
//       instead of running to completion — the ESG made tangible.
//   ppuf_tool evaluate <nodes> <grid> <seed> <source> <sink> <bits>
//       Re-fabricate from <seed> and execute the challenge on "silicon".
//   ppuf_tool predict-batch <model-file> <count> [seed] [repeats]
//       Predict `count` random challenges, `repeats` passes over the
//       batch, on the worker pool; reports items/sec and cache counters.
//   ppuf_tool export-spice <input-bit> <deck-file>
//       Emit the building block (Fig. 2d) as a SPICE deck for external
//       cross-checking against a real SPICE engine.
//
// Global options (before the command):
//   --threads <n>        worker threads for batch commands (default 1)
//   --cache-mb <m>       response-cache budget in MiB (default 0 = no cache)
//   --metrics-json <f>   enable the metrics registry and write its JSON
//                        snapshot to <f> when the command finishes
//
// The fabricate/evaluate pair demonstrates the PPUF lifecycle: the device
// owner needs only the seed (the physical chip); everyone else works from
// the published model file — and pays simulation time for every response.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "attack/heuristic.hpp"
#include "circuit/spice_export.hpp"
#include "obs/metrics.hpp"
#include "ppuf/block.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/response_cache.hpp"
#include "ppuf/sim_model.hpp"
#include "util/statistics.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ppuf;

/// Global options parsed ahead of the command.
struct ToolOptions {
  unsigned threads = 1;
  std::size_t cache_mb = 0;   ///< 0 disables the response cache
  std::string metrics_json;   ///< empty = metrics disabled
};

int usage() {
  std::cerr <<
      "usage: ppuf_tool [--threads <n>] [--cache-mb <m>]\n"
      "                 [--metrics-json <file>] <command> ...\n"
      "  ppuf_tool fabricate <nodes> <grid> <seed> <model-file>\n"
      "  ppuf_tool info <model-file>\n"
      "  ppuf_tool challenge <model-file> [seed]\n"
      "  ppuf_tool predict <model-file> <source> <sink> <bits> [deadline-ms]\n"
      "  ppuf_tool predict-batch <model-file> <count> [seed] [repeats]\n"
      "  ppuf_tool evaluate <nodes> <grid> <seed> <source> <sink> <bits>\n"
      "  ppuf_tool export-spice <input-bit> <deck-file>\n"
      "--threads sizes the worker pool of batch commands; --cache-mb bounds\n"
      "the CRP response cache (repeated challenges skip the solve);\n"
      "--metrics-json enables solver/batch/cache metrics on any command and\n"
      "writes the registry snapshot to <file> on exit.\n";
  return 2;
}

SimulationModel load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  return SimulationModel::load(in);
}

Challenge parse_challenge(const CrossbarLayout& layout,
                          const std::string& source, const std::string& sink,
                          const std::string& bits) {
  Challenge c;
  c.source = static_cast<graph::VertexId>(std::stoul(source));
  c.sink = static_cast<graph::VertexId>(std::stoul(sink));
  if (c.source >= layout.node_count() || c.sink >= layout.node_count() ||
      c.source == c.sink)
    throw std::runtime_error("bad source/sink pair");
  if (bits.size() != layout.cell_count())
    throw std::runtime_error("expected " +
                             std::to_string(layout.cell_count()) + " bits");
  for (const char ch : bits) {
    if (ch != '0' && ch != '1') throw std::runtime_error("bits must be 0/1");
    c.bits.push_back(ch == '1' ? 1 : 0);
  }
  return c;
}

std::string bits_to_string(const Challenge& c) {
  std::string s;
  for (const auto b : c.bits) s.push_back(b ? '1' : '0');
  return s;
}

int cmd_fabricate(const std::vector<std::string>& args) {
  if (args.size() != 4) return usage();
  PpufParams params;
  params.node_count = std::stoul(args[0]);
  params.grid_size = std::stoul(args[1]);
  MaxFlowPpuf puf(params, std::stoull(args[2]));
  SimulationModel model(puf);
  std::ofstream out(args[3]);
  if (!out) throw std::runtime_error("cannot write " + args[3]);
  model.save(out);
  std::cout << "fabricated " << params.node_count << "-node PPUF (seed "
            << args[2] << "); public model written to " << args[3] << "\n";
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const SimulationModel model = load_model(args[0]);
  util::RunningStats caps;
  for (graph::EdgeId e = 0; e < model.layout().edge_count(); ++e) {
    for (int net = 0; net < 2; ++net) {
      caps.add(model.capacity(net, e, 0));
      caps.add(model.capacity(net, e, 1));
    }
  }
  std::cout << "nodes " << model.layout().node_count() << ", grid "
            << model.layout().grid_size() << " ("
            << model.layout().cell_count() << " control bits), edges "
            << model.layout().edge_count() << " per network\n";
  std::cout << "capacities: mean " << caps.mean() * 1e9 << " nA, sigma "
            << caps.stddev() * 1e9 << " nA, range ["
            << caps.min() * 1e9 << ", " << caps.max() * 1e9 << "] nA\n";
  std::cout << "comparator offset " << model.comparator_offset() * 1e9
            << " nA\n";
  return 0;
}

int cmd_challenge(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage();
  const SimulationModel model = load_model(args[0]);
  util::Rng rng(args.size() == 2 ? std::stoull(args[1]) : 1);
  const Challenge c = random_challenge(model.layout(), rng);
  std::cout << c.source << ' ' << c.sink << ' ' << bits_to_string(c) << "\n";
  return 0;
}

int cmd_predict(const std::vector<std::string>& args) {
  if (args.size() != 4 && args.size() != 5) return usage();
  const SimulationModel model = load_model(args[0]);
  const Challenge c =
      parse_challenge(model.layout(), args[1], args[2], args[3]);
  util::SolveControl control;
  if (args.size() == 5)
    control.deadline = util::Deadline::after_seconds(std::stol(args[4]) * 1e-3);
  const auto p =
      model.predict(c, maxflow::Algorithm::kPushRelabel, control);
  if (!p.ok()) {
    std::cout << "prediction aborted: " << p.status.to_string() << "\n";
    return 3;
  }
  std::cout << "max-flow A " << p.flow_a * 1e9 << " nA, B "
            << p.flow_b * 1e9 << " nA -> predicted bit " << p.bit << "\n";
  std::cout << "(O(n) two-hop heuristic would guess "
            << attack::predict_bit_two_hop(model, c) << ")\n";
  return 0;
}

int cmd_predict_batch(const std::vector<std::string>& args,
                      const ToolOptions& opts) {
  if (args.size() < 2 || args.size() > 4) return usage();
  const SimulationModel model = load_model(args[0]);
  const std::size_t count = std::stoul(args[1]);
  util::Rng rng(args.size() >= 3 ? std::stoull(args[2]) : 1);
  const std::size_t repeats = args.size() == 4 ? std::stoul(args[3]) : 1;
  if (count == 0 || repeats == 0)
    throw std::runtime_error("count and repeats must be positive");

  std::vector<Challenge> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(random_challenge(model.layout(), rng));

  util::ThreadPool pool(opts.threads);
  ResponseCache cache(opts.cache_mb * 1024 * 1024);
  SimulationModel::PredictBatchOptions options;
  options.pool = &pool;
  if (opts.cache_mb > 0) options.cache = &cache;

  std::size_t ok = 0, failed = 0;
  int ones = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t pass = 0; pass < repeats; ++pass) {
    const auto predictions = model.predict_batch(batch, options);
    for (const auto& p : predictions) {
      if (p.ok()) {
        ++ok;
        ones += p.bit;
      } else {
        ++failed;
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::size_t items = count * repeats;
  std::cout << items << " predictions (" << count << " challenges x "
            << repeats << " passes) on " << opts.threads << " threads in "
            << seconds << " s -> "
            << static_cast<double>(items) / seconds << " items/s\n";
  std::cout << "ok " << ok << ", failed " << failed << ", response ones "
            << ones << "\n";
  if (opts.cache_mb > 0) {
    const ResponseCacheStats s = cache.stats();
    std::cout << "cache: " << s.hits << " hits, " << s.misses
              << " misses (hit rate " << s.hit_rate() * 100.0 << "%), "
              << s.evictions << " evictions, " << s.entries
              << " entries, ~" << s.charged_bytes / 1024 << " KiB\n";
  }
  // Shard occupancy is cache state, not an event stream, so it is mirrored
  // into the registry here — once, after the batch — rather than on every
  // lookup.
  cache.publish_metrics(obs::MetricsRegistry::global());
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& args) {
  if (args.size() != 6) return usage();
  PpufParams params;
  params.node_count = std::stoul(args[0]);
  params.grid_size = std::stoul(args[1]);
  MaxFlowPpuf puf(params, std::stoull(args[2]));
  const Challenge c =
      parse_challenge(puf.layout(), args[3], args[4], args[5]);
  const auto e = puf.evaluate(c);
  std::cout << "I_A " << e.current_a * 1e9 << " nA, I_B "
            << e.current_b * 1e9 << " nA -> response bit " << e.bit << "\n";
  return 0;
}

int cmd_export_spice(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const int bit = std::stoi(args[0]);
  if (bit != 0 && bit != 1) throw std::runtime_error("input bit must be 0/1");
  PpufParams params;
  SweepCircuit sc = build_block(params, circuit::BlockVariation{}, bit,
                                circuit::Environment::nominal());
  std::ofstream out(args[1]);
  if (!out) throw std::runtime_error("cannot write " + args[1]);
  circuit::SpiceExportOptions opts;
  opts.title = "maxflow-ppuf building block, nominal devices, input bit " +
               args[0];
  circuit::export_spice(sc.netlist, out, opts);
  std::cout << "SPICE deck written to " << args[1]
            << " (sweep source is V" << sc.sweep_source << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> argv_rest(argv + 1, argv + argc);
  ToolOptions opts;
  try {
    std::size_t consumed = 0;
    while (consumed + 1 < argv_rest.size()) {
      const std::string& flag = argv_rest[consumed];
      if (flag == "--threads") {
        opts.threads = static_cast<unsigned>(
            std::stoul(argv_rest[consumed + 1]));
        if (opts.threads == 0)
          throw std::runtime_error("--threads must be positive");
        consumed += 2;
      } else if (flag == "--cache-mb") {
        opts.cache_mb = std::stoul(argv_rest[consumed + 1]);
        consumed += 2;
      } else if (flag == "--metrics-json") {
        opts.metrics_json = argv_rest[consumed + 1];
        if (opts.metrics_json.empty())
          throw std::runtime_error("--metrics-json needs a file path");
        consumed += 2;
      } else {
        break;
      }
    }
    argv_rest.erase(argv_rest.begin(),
                    argv_rest.begin() + static_cast<std::ptrdiff_t>(consumed));
    if (argv_rest.empty()) return usage();
    if (!opts.metrics_json.empty()) {
      // Enable before dispatch and pre-register the canonical schema, so
      // the snapshot always carries the full set of solver/Newton/batch
      // metric names (as zeros) even for commands that exercise only a
      // subset of the stack.
      ppuf::obs::MetricsRegistry::global().set_enabled(true);
      ppuf::obs::register_standard_metrics(
          ppuf::obs::MetricsRegistry::global());
    }
    const std::string cmd = argv_rest[0];
    const std::vector<std::string> args(argv_rest.begin() + 1,
                                        argv_rest.end());
    int rc = -1;
    if (cmd == "fabricate") rc = cmd_fabricate(args);
    else if (cmd == "info") rc = cmd_info(args);
    else if (cmd == "challenge") rc = cmd_challenge(args);
    else if (cmd == "predict") rc = cmd_predict(args);
    else if (cmd == "predict-batch") rc = cmd_predict_batch(args, opts);
    else if (cmd == "evaluate") rc = cmd_evaluate(args);
    else if (cmd == "export-spice") rc = cmd_export_spice(args);
    if (rc >= 0) {
      if (!opts.metrics_json.empty())
        ppuf::obs::MetricsRegistry::global().write_json(opts.metrics_json);
      return rc;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
