// Lightweight metrics/tracing for the hot paths.
//
// The paper's security argument is quantitative — O(n) execution versus
// O(n^2+) simulation, cheap residual-BFS verification versus expensive
// solving — so every performance claim in this repo should be backed by a
// measurement, not an anecdote.  This subsystem provides the three
// primitives such measurements need:
//
//   - Counter:   monotonic, relaxed-atomic event count (augmentations,
//                Newton iterations, retries, cache hits).
//   - Gauge:     last-written value, for occupancy snapshots (cache shard
//                entries, charged bytes).
//   - Histogram: log2-bucketed value distribution with p50/p95/p99
//                (per-item batch latencies, per-solve wall time).
//
// All three live in a MetricsRegistry keyed by dotted metric names
// (`subsystem.component.metric`, timers suffixed `_us`; see DESIGN.md §11).
// The registry is thread-safe: name resolution takes a mutex (done once per
// solve or hoisted out of batch loops), recording is lock-free atomics.
//
// Cost when disabled is near zero BY CONSTRUCTION: a disabled registry
// resolves every name to a shared static dummy metric without touching the
// map (no allocation, no lock), and ScopedTimer skips its clock reads
// entirely.  Instrumented code therefore never needs #ifdefs — it asks the
// registry and gets either a real metric or the black hole.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace ppuf::obs {

/// Monotonic event counter.  All operations are relaxed atomics; exactness
/// under concurrency is guaranteed (fetch_add), ordering is not implied.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value; for snapshot-style measurements (occupancy) where
/// the current level, not the cumulative count, is the signal.
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time view of a histogram.  Percentiles are estimated from the
/// log2 buckets by linear interpolation within the bucket, so their error
/// is bounded by the bucket width (a factor of two), and they are clamped
/// to the exact observed [min, max].
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Value distribution over log2 buckets: bucket 0 holds [0, 1), bucket b
/// holds [2^(b-1), 2^b).  Negative and NaN inputs are clamped to 0 rather
/// than dropped, so `count` always equals the number of record() calls.
class Histogram {
 public:
  void record(double value);
  HistogramSnapshot snapshot() const;
  void reset();

  static constexpr int kBucketCount = 64;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

/// Thread-safe registry of named metrics.  Metrics are created on first
/// use and live as long as the registry; returned references stay valid
/// (values are stored behind unique_ptr, reset() zeroes but never drops).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the instrumented hot paths.
  /// DISABLED by default; services, tools and benches opt in with
  /// set_enabled(true).
  static MetricsRegistry& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Find-or-create.  When the registry is disabled these return a shared
  /// static dummy (same object for every name): no allocation, no lock,
  /// and anything recorded into it is never reported.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Read-side accessors for tests and reporting; absent names read as
  /// zero / empty.
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;
  HistogramSnapshot histogram_snapshot(std::string_view name) const;
  bool has_metric(std::string_view name) const;
  std::size_t metric_count() const;

  /// Zero every registered metric; registration (names, addresses) is
  /// preserved so hoisted pointers stay valid across epochs.
  void reset();

  /// Full snapshot as a JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {"name": {"count": ..., "sum": ..., "min": ...,
  ///                            "max": ..., "p50": ..., "p95": ...,
  ///                            "p99": ...}}}
  /// Names are emitted in sorted order so snapshots diff cleanly.
  std::string to_json() const;

  /// Write to_json() to `path` (throws std::runtime_error on I/O failure).
  void write_json(const std::string& path) const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII wall-clock timer recording MICROSECONDS into a histogram on
/// destruction.  With a null histogram (or a disabled registry) it does
/// nothing — not even read the clock.
class ScopedTimer {
 public:
  /// Records into `histogram` (may be null = disabled).  Use this form in
  /// batch loops where the name lookup is hoisted out.
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  /// Convenience form for once-per-solve call sites.
  ScopedTimer(MetricsRegistry& registry, std::string_view name)
      : ScopedTimer(registry.enabled() ? &registry.histogram(name)
                                       : nullptr) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

/// Pre-register the canonical metric names of every instrumented subsystem
/// (all zero until first use).  Tools and benches call this right after
/// enabling the registry so exported snapshots always carry the full,
/// stable schema — a solver that happened not to run still shows up, as a
/// zero, instead of silently vanishing from the JSON.
void register_standard_metrics(MetricsRegistry& registry);

}  // namespace ppuf::obs
