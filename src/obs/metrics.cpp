#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ppuf::obs {

namespace {

/// fetch_add for atomic<double> via CAS: std::atomic<double>::fetch_add is
/// C++20 but not yet lock-free everywhere; the CAS loop is portable and
/// contends only under simultaneous records on one histogram.
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Bucket index of a (clamped, non-negative) value: 0 for [0, 1), else
/// 1 + floor(log2 v), capped at the last bucket.
int bucket_index(double value) {
  if (value < 1.0) return 0;
  const int b = std::ilogb(value) + 1;
  return std::min(b, Histogram::kBucketCount - 1);
}

double bucket_lower(int b) {
  return b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
}

double bucket_upper(int b) { return std::ldexp(1.0, b); }

/// JSON number formatting: integers print exactly, doubles with enough
/// digits to round-trip.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

void Histogram::record(double value) {
  // Clamp rather than drop: count always matches the record() call count,
  // and a negative/NaN input (clock skew, bad subtraction) is loud in the
  // min column instead of silently missing.
  if (!(value >= 0.0)) value = 0.0;
  buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  std::array<std::uint64_t, kBucketCount> counts{};
  for (int b = 0; b < kBucketCount; ++b)
    counts[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  // Derive count from the buckets (not count_) so a snapshot taken during
  // concurrent records is internally consistent with its percentiles.
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  s.count = total;
  if (total == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);

  auto percentile = [&](double q) {
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    const std::uint64_t target = std::max<std::uint64_t>(1, rank);
    std::uint64_t cumulative = 0;
    for (int b = 0; b < kBucketCount; ++b) {
      const std::uint64_t c = counts[static_cast<std::size_t>(b)];
      if (cumulative + c >= target) {
        const double frac =
            static_cast<double>(target - cumulative) / static_cast<double>(c);
        const double lo = bucket_lower(b);
        const double hi = bucket_upper(b);
        return std::clamp(lo + frac * (hi - lo), s.min, s.max);
      }
      cumulative += c;
    }
    return s.max;
  };
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry(/*enabled=*/false);
  return registry;
}

namespace {

/// Shared black holes for disabled registries.  Static storage, so the
/// disabled path performs no allocation and no registry locking.
Counter& dummy_counter() {
  static Counter c;
  return c;
}
Gauge& dummy_gauge() {
  static Gauge g;
  return g;
}
Histogram& dummy_histogram() {
  static Histogram h;
  return h;
}

template <typename Map>
auto& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map
             .emplace(std::string(name),
                      std::make_unique<
                          typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  if (!enabled()) return dummy_counter();
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (!enabled()) return dummy_gauge();
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  if (!enabled()) return dummy_histogram();
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(histograms_, name);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

HistogramSnapshot MetricsRegistry::histogram_snapshot(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{}
                                 : it->second->snapshot();
}

bool MetricsRegistry::has_metric(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.find(name) != counters_.end() ||
         gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end();
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << g->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    os << (first ? "" : ",") << "\n    \"" << name << "\": {"
       << "\"count\": " << s.count << ", \"sum\": " << json_number(s.sum)
       << ", \"min\": " << json_number(s.min)
       << ", \"max\": " << json_number(s.max)
       << ", \"p50\": " << json_number(s.p50)
       << ", \"p95\": " << json_number(s.p95)
       << ", \"p99\": " << json_number(s.p99) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MetricsRegistry::write_json: cannot open " +
                             path);
  }
  out << to_json();
  if (!out) {
    throw std::runtime_error("MetricsRegistry::write_json: write failed: " +
                             path);
  }
}

void register_standard_metrics(MetricsRegistry& registry) {
  if (!registry.enabled()) return;

  // Max-flow solvers: one solve counter, one work counter and one
  // wall-time histogram each, plus the algorithm's own phase counters.
  static constexpr const char* kSolvers[] = {
      "maxflow.edmonds_karp", "maxflow.dinic", "maxflow.push_relabel",
      "maxflow.parallel_push_relabel", "maxflow.approximate"};
  for (const char* s : kSolvers) {
    const std::string prefix(s);
    registry.counter(prefix + ".solves");
    registry.counter(prefix + ".work");
    registry.histogram(prefix + ".solve_time_us");
  }
  registry.counter("maxflow.edmonds_karp.augmentations");
  registry.counter("maxflow.dinic.phases");
  registry.counter("maxflow.dinic.augmentations");
  registry.counter("maxflow.push_relabel.discharges");
  registry.counter("maxflow.push_relabel.relabels");
  registry.counter("maxflow.push_relabel.global_relabels");
  registry.counter("maxflow.parallel_push_relabel.rounds");
  registry.counter("maxflow.approximate.phases");
  registry.counter("maxflow.approximate.augmentations");

  // Newton solvers (device-level DC and network-level DC) share the
  // recovery-ladder shape.
  for (const char* prefix : {"circuit.dc", "ppuf.network_solver"}) {
    const std::string p(prefix);
    registry.counter(p + ".solves");
    registry.counter(p + ".newton_iterations");
    registry.counter(p + ".recoveries");
    registry.counter(p + ".failures");
    registry.histogram(p + ".iterations_per_solve");
    registry.histogram(p + ".solve_time_us");
    for (const char* rung :
         {"direct", "gmin-stepping", "source-stepping", "tightened-damping"}) {
      registry.counter(p + ".rung." + rung);
    }
  }

  // Batch fronts: per-item latency plus outcome counters.
  registry.counter("maxflow.batch.items");
  registry.counter("maxflow.batch.item_failures");
  registry.counter("maxflow.batch.retries");
  registry.histogram("maxflow.batch.item_time_us");
  registry.counter("ppuf.predict_batch.items");
  registry.counter("ppuf.predict_batch.cache_hits");
  registry.counter("ppuf.predict_batch.item_failures");
  registry.histogram("ppuf.predict_batch.item_time_us");
  registry.counter("protocol.verify_batch.items");
  registry.counter("protocol.verify_batch.accepted");
  registry.counter("protocol.verify_batch.rejected");
  registry.histogram("protocol.verify_batch.item_time_us");

  // Response cache aggregate gauges (per-shard gauges appear once a cache
  // publishes; the aggregates are part of the stable schema).
  for (const char* g : {"hits", "misses", "evictions", "entries",
                        "charged_bytes", "shard_count"}) {
    registry.gauge(std::string("ppuf.response_cache.") + g);
  }

  // Authentication server (src/server): request outcomes, connection
  // lifecycle, byte I/O, and a per-type wall-time histogram measured from
  // dispatch to completion enqueue.
  for (const char* c :
       {"requests", "connections_accepted", "connections_closed",
        "overloaded_rejections", "shutdown_rejections", "malformed_frames",
        "bytes_read", "bytes_written"}) {
    registry.counter(std::string("server.") + c);
  }
  registry.gauge("server.inflight");
  registry.gauge("server.connections");
  for (const char* t : {"ping", "predict", "verify", "verify_batch",
                        "challenge", "chained_auth"}) {
    registry.histogram(std::string("server.") + t + ".request_us");
  }

  // Cross-connection coalescing (DESIGN.md §16): batch shape, the wait
  // each flushed batch actually absorbed, frames too budget-tight to
  // coalesce, and slow peers cut at the backlog bound.
  for (const char* c : {"coalesced_batches", "coalesced_items",
                        "solo_dispatches", "slow_peer_disconnects"}) {
    registry.counter(std::string("server.") + c);
  }
  registry.histogram("server.batch_size");
  registry.histogram("server.coalesce_wait_us");
  registry.histogram("server.batch.request_us");
}

}  // namespace ppuf::obs
