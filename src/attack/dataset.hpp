// Labelled CRP datasets for the model-building attacks (Fig. 10).
// Challenge bits are encoded as {-1, +1} features; responses as {-1, +1}
// labels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ppuf::attack {

struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;  ///< -1 or +1

  std::size_t size() const { return features.size(); }
  std::size_t dimension() const {
    return features.empty() ? 0 : features.front().size();
  }

  /// Contiguous slice [begin, begin+count).
  Dataset slice(std::size_t begin, std::size_t count) const;
};

/// Encode bit-vector challenges (0/1) and bit responses (0/1) into a
/// dataset with {-1,+1} features/labels.
Dataset encode_bits(const std::vector<std::vector<std::uint8_t>>& challenges,
                    const std::vector<int>& responses);

/// Append real-valued feature rows directly (e.g. arbiter parity features).
Dataset from_features(std::vector<std::vector<double>> features,
                      std::vector<int> responses_01);

/// Fraction of test labels a predictor gets wrong.
double prediction_error(const Dataset& test,
                        const std::vector<int>& predictions);

}  // namespace ppuf::attack
