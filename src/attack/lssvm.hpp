// Least-squares SVM classifier (Suykens & Vandewalle — the paper's SVM
// reference [28]).  Training reduces to one SPD linear system
//     (K + I/gamma_reg) solved for two right-hand sides,
// which our Cholesky handles directly; no QP needed.
#pragma once

#include <vector>

#include "attack/dataset.hpp"
#include "attack/kernel.hpp"

namespace ppuf::attack {

class LsSvm {
 public:
  struct Options {
    double regularization = 10.0;  ///< gamma_reg; larger = harder fit
  };

  /// Train on the dataset (O(N^2) kernel matrix + O(N^3) factorisation).
  LsSvm(const Dataset& train, Kernel kernel, Options options);
  LsSvm(const Dataset& train, Kernel kernel)
      : LsSvm(train, std::move(kernel), Options{}) {}

  /// Decision value (sign is the class).
  double decision(std::span<const double> x) const;

  int predict(std::span<const double> x) const {
    return decision(x) > 0.0 ? 1 : -1;
  }

  std::vector<int> predict_all(const Dataset& test) const;

 private:
  std::vector<std::vector<double>> support_;  // training features (all)
  std::vector<double> alpha_;
  double bias_ = 0.0;
  Kernel kernel_;
};

}  // namespace ppuf::attack
