// Soft-margin kernel SVM trained with simplified SMO (Platt).  The second
// "parametric" attacker next to the LS-SVM; it produces sparse support
// vectors and scales to larger training sets because it never forms the
// full kernel matrix.
#pragma once

#include <vector>

#include "attack/dataset.hpp"
#include "attack/kernel.hpp"
#include "util/rng.hpp"

namespace ppuf::attack {

class SmoSvm {
 public:
  struct Options {
    double c = 10.0;           ///< box constraint
    double tolerance = 1e-3;   ///< KKT violation tolerance
    int max_passes = 5;        ///< passes with no alpha change before stop
    int max_iterations = 20000;
    std::uint64_t shuffle_seed = 1;
  };

  SmoSvm(const Dataset& train, Kernel kernel, Options options);
  SmoSvm(const Dataset& train, Kernel kernel)
      : SmoSvm(train, std::move(kernel), Options{}) {}

  double decision(std::span<const double> x) const;
  int predict(std::span<const double> x) const {
    return decision(x) > 0.0 ? 1 : -1;
  }
  std::vector<int> predict_all(const Dataset& test) const;

  std::size_t support_vector_count() const { return support_.size(); }

 private:
  std::vector<std::vector<double>> support_;
  std::vector<double> alpha_y_;  ///< alpha_i * y_i for kept vectors
  double bias_ = 0.0;
  Kernel kernel_;
};

}  // namespace ppuf::attack
