#include "attack/lssvm.hpp"

#include <stdexcept>

#include "numeric/cholesky.hpp"

namespace ppuf::attack {

LsSvm::LsSvm(const Dataset& train, Kernel kernel, Options options)
    : support_(train.features), kernel_(std::move(kernel)) {
  const std::size_t n = train.size();
  if (n == 0) throw std::invalid_argument("LsSvm: empty training set");
  if (options.regularization <= 0.0)
    throw std::invalid_argument("LsSvm: regularization <= 0");

  // A = K + I/gamma_reg (SPD).  The LS-SVM dual with bias is
  //   [ 0   1^T ] [ b     ]   [ 0 ]
  //   [ 1   A   ] [ alpha ] = [ y ]
  // solved by block elimination: A eta = 1, A nu = y,
  // b = (1^T nu)/(1^T eta), alpha = nu - b eta.
  numeric::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = kernel_(train.features[i], train.features[j]);
      a(i, j) = k;
      a(j, i) = k;
    }
    a(i, i) += 1.0 / options.regularization;
  }
  const numeric::CholeskyDecomposition chol(std::move(a));

  numeric::Vector ones(n, 1.0);
  numeric::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = train.labels[i];

  const numeric::Vector eta = chol.solve(ones);
  const numeric::Vector nu = chol.solve(y);
  double s_eta = 0.0, s_nu = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s_eta += eta[i];
    s_nu += nu[i];
  }
  if (s_eta == 0.0) throw std::runtime_error("LsSvm: degenerate bias system");
  bias_ = s_nu / s_eta;
  alpha_.resize(n);
  for (std::size_t i = 0; i < n; ++i) alpha_[i] = nu[i] - bias_ * eta[i];
}

double LsSvm::decision(std::span<const double> x) const {
  double s = bias_;
  for (std::size_t i = 0; i < support_.size(); ++i)
    s += alpha_[i] * kernel_(support_[i], x);
  return s;
}

std::vector<int> LsSvm::predict_all(const Dataset& test) const {
  std::vector<int> out;
  out.reserve(test.size());
  for (const auto& x : test.features) out.push_back(predict(x));
  return out;
}

}  // namespace ppuf::attack
