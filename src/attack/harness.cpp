#include "attack/harness.hpp"

#include <algorithm>

#include "attack/knn.hpp"
#include "attack/lssvm.hpp"
#include "attack/svm_smo.hpp"

namespace ppuf::attack {

double AttackErrors::best() const {
  return std::min({lssvm_rbf, smo_rbf, knn});
}

std::vector<AttackErrors> attack_learning_curve(
    const Dataset& train, const Dataset& test,
    const std::vector<std::size_t>& train_sizes,
    const HarnessOptions& options) {
  std::vector<AttackErrors> out;
  const double gamma = options.rbf_gamma > 0.0
                           ? options.rbf_gamma
                           : default_rbf_gamma(train.dimension());
  for (const std::size_t n : train_sizes) {
    if (n == 0 || n > train.size()) continue;
    const Dataset sub = train.slice(0, n);
    AttackErrors e;
    e.train_size = n;

    {
      const Dataset lssvm_train =
          n > options.lssvm_cap ? sub.slice(0, options.lssvm_cap) : sub;
      LsSvm::Options lopt;
      lopt.regularization = options.lssvm_regularization;
      const LsSvm model(lssvm_train, make_rbf_kernel(gamma), lopt);
      e.lssvm_rbf = prediction_error(test, model.predict_all(test));
    }
    {
      SmoSvm::Options sopt;
      sopt.c = options.smo_c;
      const SmoSvm model(sub, make_rbf_kernel(gamma), sopt);
      e.smo_rbf = prediction_error(test, model.predict_all(test));
    }
    e.knn = best_knn_error(sub, test, options.max_knn_k);
    out.push_back(e);
  }
  return out;
}

}  // namespace ppuf::attack
