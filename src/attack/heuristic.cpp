#include "attack/heuristic.hpp"

#include <algorithm>

namespace ppuf::attack {

namespace {
double capacity_of(const SimulationModel& model, int network,
                   const Challenge& challenge, graph::VertexId from,
                   graph::VertexId to) {
  const CrossbarLayout& layout = model.layout();
  const int bit = challenge.bits[layout.cell_of_edge(from, to)] ? 1 : 0;
  return model.capacity(network, layout.edge_id(from, to), bit);
}
}  // namespace

double cut_bound_value(const SimulationModel& model, int network,
                       const Challenge& challenge) {
  const std::size_t n = model.node_count();
  double out_s = 0.0, in_t = 0.0;
  for (graph::VertexId v = 0; v < n; ++v) {
    if (v != challenge.source)
      out_s += capacity_of(model, network, challenge, challenge.source, v);
    if (v != challenge.sink)
      in_t += capacity_of(model, network, challenge, v, challenge.sink);
  }
  return std::min(out_s, in_t);
}

double two_hop_value(const SimulationModel& model, int network,
                     const Challenge& challenge) {
  const std::size_t n = model.node_count();
  double total = capacity_of(model, network, challenge, challenge.source,
                             challenge.sink);
  for (graph::VertexId j = 0; j < n; ++j) {
    if (j == challenge.source || j == challenge.sink) continue;
    total += std::min(
        capacity_of(model, network, challenge, challenge.source, j),
        capacity_of(model, network, challenge, j, challenge.sink));
  }
  return total;
}

int predict_bit_cut_bound(const SimulationModel& model,
                          const Challenge& challenge) {
  const double a = cut_bound_value(model, 0, challenge);
  const double b = cut_bound_value(model, 1, challenge);
  return (a - b + model.comparator_offset()) > 0.0 ? 1 : 0;
}

int predict_bit_two_hop(const SimulationModel& model,
                        const Challenge& challenge) {
  const double a = two_hop_value(model, 0, challenge);
  const double b = two_hop_value(model, 1, challenge);
  return (a - b + model.comparator_offset()) > 0.0 ? 1 : 0;
}

}  // namespace ppuf::attack
