#include "attack/svm_smo.hpp"

#include <cmath>
#include <stdexcept>

namespace ppuf::attack {

namespace {

/// Training-time state: caches the diagonal and computes decision values
/// over the full training set.
class Trainer {
 public:
  Trainer(const Dataset& train, const Kernel& kernel,
          const SmoSvm::Options& opts)
      : x_(train.features),
        y_(train.labels),
        kernel_(kernel),
        opts_(opts),
        n_(train.size()),
        alpha_(train.size(), 0.0),
        errors_(train.size(), 0.0) {
    for (std::size_t i = 0; i < n_; ++i) errors_[i] = -y_[i];
  }

  void run() {
    util::Rng rng(opts_.shuffle_seed);
    int passes = 0;
    int iterations = 0;
    while (passes < opts_.max_passes && iterations < opts_.max_iterations) {
      int changed = 0;
      for (std::size_t i = 0; i < n_; ++i) {
        ++iterations;
        if (violates_kkt(i) && try_step_with_random_partner(i, rng))
          ++changed;
      }
      passes = changed == 0 ? passes + 1 : 0;
    }
  }

  double bias() const { return bias_; }
  const std::vector<double>& alpha() const { return alpha_; }

 private:
  double k(std::size_t i, std::size_t j) const { return kernel_(x_[i], x_[j]); }

  /// f(x_i) - y_i, maintained incrementally.
  double error(std::size_t i) const { return errors_[i]; }

  bool violates_kkt(std::size_t i) const {
    const double r = error(i) * y_[i];
    return (r < -opts_.tolerance && alpha_[i] < opts_.c) ||
           (r > opts_.tolerance && alpha_[i] > 0.0);
  }

  bool try_step_with_random_partner(std::size_t i, util::Rng& rng) {
    // Simplified SMO: a random distinct partner.
    std::size_t j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_) - 2));
    if (j >= i) ++j;
    return take_step(i, j);
  }

  bool take_step(std::size_t i, std::size_t j) {
    if (i == j) return false;
    const double ai_old = alpha_[i];
    const double aj_old = alpha_[j];
    double lo, hi;
    if (y_[i] != y_[j]) {
      lo = std::max(0.0, aj_old - ai_old);
      hi = std::min(opts_.c, opts_.c + aj_old - ai_old);
    } else {
      lo = std::max(0.0, ai_old + aj_old - opts_.c);
      hi = std::min(opts_.c, ai_old + aj_old);
    }
    if (lo >= hi) return false;
    const double eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
    if (eta >= 0.0) return false;  // non-positive curvature: skip
    double aj = aj_old - y_[j] * (error(i) - error(j)) / eta;
    aj = std::clamp(aj, lo, hi);
    if (std::abs(aj - aj_old) < 1e-7 * (aj + aj_old + 1e-7)) return false;
    const double ai = ai_old + y_[i] * y_[j] * (aj_old - aj);

    // Bias update (Platt's rules).
    const double b1 = bias_ - error(i) - y_[i] * (ai - ai_old) * k(i, i) -
                      y_[j] * (aj - aj_old) * k(i, j);
    const double b2 = bias_ - error(j) - y_[i] * (ai - ai_old) * k(i, j) -
                      y_[j] * (aj - aj_old) * k(j, j);
    double new_bias;
    if (ai > 0.0 && ai < opts_.c) {
      new_bias = b1;
    } else if (aj > 0.0 && aj < opts_.c) {
      new_bias = b2;
    } else {
      new_bias = 0.5 * (b1 + b2);
    }

    // Incremental error update for all points.
    const double di = y_[i] * (ai - ai_old);
    const double dj = y_[j] * (aj - aj_old);
    const double db = new_bias - bias_;
    for (std::size_t p = 0; p < n_; ++p)
      errors_[p] += di * k(i, p) + dj * k(j, p) + db;

    alpha_[i] = ai;
    alpha_[j] = aj;
    bias_ = new_bias;
    return true;
  }

  const std::vector<std::vector<double>>& x_;
  const std::vector<int>& y_;
  const Kernel& kernel_;
  SmoSvm::Options opts_;
  std::size_t n_;
  std::vector<double> alpha_;
  std::vector<double> errors_;
  double bias_ = 0.0;
};

}  // namespace

SmoSvm::SmoSvm(const Dataset& train, Kernel kernel, Options options)
    : kernel_(std::move(kernel)) {
  if (train.size() == 0) throw std::invalid_argument("SmoSvm: empty train");
  Trainer trainer(train, kernel_, options);
  trainer.run();
  bias_ = trainer.bias();
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (trainer.alpha()[i] > 0.0) {
      support_.push_back(train.features[i]);
      alpha_y_.push_back(trainer.alpha()[i] * train.labels[i]);
    }
  }
}

double SmoSvm::decision(std::span<const double> x) const {
  double s = bias_;
  for (std::size_t i = 0; i < support_.size(); ++i)
    s += alpha_y_[i] * kernel_(support_[i], x);
  return s;
}

std::vector<int> SmoSvm::predict_all(const Dataset& test) const {
  std::vector<int> out;
  out.reserve(test.size());
  for (const auto& x : test.features) out.push_back(predict(x));
  return out;
}

}  // namespace ppuf::attack
