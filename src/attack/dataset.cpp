#include "attack/dataset.hpp"

#include <stdexcept>

namespace ppuf::attack {

Dataset Dataset::slice(std::size_t begin, std::size_t count) const {
  if (begin + count > size())
    throw std::out_of_range("Dataset::slice: out of range");
  Dataset d;
  d.features.assign(features.begin() + static_cast<std::ptrdiff_t>(begin),
                    features.begin() + static_cast<std::ptrdiff_t>(begin + count));
  d.labels.assign(labels.begin() + static_cast<std::ptrdiff_t>(begin),
                  labels.begin() + static_cast<std::ptrdiff_t>(begin + count));
  return d;
}

namespace {
int to_pm1(int response_01) {
  if (response_01 != 0 && response_01 != 1)
    throw std::invalid_argument("dataset: response must be 0/1");
  return response_01 == 1 ? 1 : -1;
}
}  // namespace

Dataset encode_bits(const std::vector<std::vector<std::uint8_t>>& challenges,
                    const std::vector<int>& responses) {
  if (challenges.size() != responses.size())
    throw std::invalid_argument("encode_bits: size mismatch");
  Dataset d;
  d.features.reserve(challenges.size());
  d.labels.reserve(challenges.size());
  for (std::size_t i = 0; i < challenges.size(); ++i) {
    std::vector<double> row(challenges[i].size());
    for (std::size_t j = 0; j < row.size(); ++j)
      row[j] = challenges[i][j] ? 1.0 : -1.0;
    d.features.push_back(std::move(row));
    d.labels.push_back(to_pm1(responses[i]));
  }
  return d;
}

Dataset from_features(std::vector<std::vector<double>> features,
                      std::vector<int> responses_01) {
  if (features.size() != responses_01.size())
    throw std::invalid_argument("from_features: size mismatch");
  Dataset d;
  d.features = std::move(features);
  d.labels.reserve(responses_01.size());
  for (int r : responses_01) d.labels.push_back(to_pm1(r));
  return d;
}

double prediction_error(const Dataset& test,
                        const std::vector<int>& predictions) {
  if (predictions.size() != test.size())
    throw std::invalid_argument("prediction_error: size mismatch");
  if (test.size() == 0) return 0.0;
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    wrong += predictions[i] != test.labels[i] ? 1 : 0;
  return static_cast<double>(wrong) / static_cast<double>(test.size());
}

}  // namespace ppuf::attack
