// Model-building attack harness (Fig. 10): train every attacker on N
// observed CRPs, measure test error, and report the minimum — the paper's
// "final prediction inaccuracy is the minimum of SVM and KNN tests".
#pragma once

#include <vector>

#include "attack/dataset.hpp"

namespace ppuf::attack {

struct AttackErrors {
  std::size_t train_size = 0;
  double lssvm_rbf = 1.0;
  double smo_rbf = 1.0;
  double knn = 1.0;
  double best() const;
};

struct HarnessOptions {
  double rbf_gamma = 0.0;        ///< 0 = default 1/dimension
  double lssvm_regularization = 10.0;
  double smo_c = 10.0;
  std::size_t max_knn_k = 21;
  /// LS-SVM training is O(N^3); above this size it is trained on a random
  /// prefix of the data instead (the error reported is still on the full
  /// test set).
  std::size_t lssvm_cap = 2000;
};

/// Train on train.slice(0, n) for each n in `train_sizes` and evaluate on
/// `test`.  Sizes beyond train.size() are skipped.
std::vector<AttackErrors> attack_learning_curve(
    const Dataset& train, const Dataset& test,
    const std::vector<std::size_t>& train_sizes,
    const HarnessOptions& options = {});

}  // namespace ppuf::attack
