// Cheap structural attacks on the max-flow PPUF.
//
// The ESG lower bound only covers attackers who compute the flow (exactly
// or eps-approximately).  A cleverer adversary might predict the response
// *bit* from O(n) structure without solving anything:
//   - CutBound: compare min(out-capacity(source), in-capacity(sink)) of
//     the two networks — the trivial min-cut upper bound.
//   - TwoHop: compare sum_j min(c(s,j), c(j,t)) + c(s,t) — the value of
//     the best flow restricted to paths of length <= 2, which is a lower
//     bound and, on complete graphs, usually a tight one.
// The bench measures how often these shortcuts recover the true bit; this
// probes a gap the paper's analysis leaves open.
#pragma once

#include "ppuf/sim_model.hpp"

namespace ppuf::attack {

/// The trivial cut upper bound min(out_cap(s), in_cap(t)) for one network.
double cut_bound_value(const SimulationModel& model, int network,
                       const Challenge& challenge);

/// Flow restricted to length-<=2 paths: c(s,t) + sum_j min(c(s,j), c(j,t)).
/// A feasible flow, hence a lower bound on the max flow.  O(n) time.
double two_hop_value(const SimulationModel& model, int network,
                     const Challenge& challenge);

/// Predicted response bits from the two heuristics (comparing networks
/// through the published comparator offset, like the real comparator).
int predict_bit_cut_bound(const SimulationModel& model,
                          const Challenge& challenge);
int predict_bit_two_hop(const SimulationModel& model,
                        const Challenge& challenge);

}  // namespace ppuf::attack
