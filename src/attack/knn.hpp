// k-nearest-neighbour classifier — the paper's non-parametric attacker
// (empirical KNN tests with K = 1, 3, ..., 21).
#pragma once

#include <vector>

#include "attack/dataset.hpp"

namespace ppuf::attack {

class Knn {
 public:
  Knn(const Dataset& train, std::size_t k);

  int predict(std::span<const double> x) const;
  std::vector<int> predict_all(const Dataset& test) const;

 private:
  const Dataset train_;  // owned copy; KNN is a lazy learner
  std::size_t k_;
};

/// Runs KNN for each odd k in [1, max_k] and returns the smallest test
/// error (the paper reports the best of the sweep).
double best_knn_error(const Dataset& train, const Dataset& test,
                      std::size_t max_k = 21);

}  // namespace ppuf::attack
