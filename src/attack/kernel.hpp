// Kernels for the SVM attacks.  The paper uses a nonlinear radial basis
// function (RBF) kernel.
#pragma once

#include <functional>
#include <span>

namespace ppuf::attack {

using Kernel =
    std::function<double(std::span<const double>, std::span<const double>)>;

/// Gaussian RBF k(a,b) = exp(-gamma ||a-b||^2).
Kernel make_rbf_kernel(double gamma);

/// Plain inner product (for sanity baselines and the arbiter attack on
/// parity features).
Kernel make_linear_kernel();

/// The usual default bandwidth: gamma = 1 / dimension.
double default_rbf_gamma(std::size_t dimension);

}  // namespace ppuf::attack
