#include "attack/kernel.hpp"

#include <cmath>
#include <stdexcept>

namespace ppuf::attack {

Kernel make_rbf_kernel(double gamma) {
  if (gamma <= 0.0) throw std::invalid_argument("rbf kernel: gamma <= 0");
  return [gamma](std::span<const double> a, std::span<const double> b) {
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      d2 += d * d;
    }
    return std::exp(-gamma * d2);
  };
}

Kernel make_linear_kernel() {
  return [](std::span<const double> a, std::span<const double> b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  };
}

double default_rbf_gamma(std::size_t dimension) {
  return dimension > 0 ? 1.0 / static_cast<double>(dimension) : 1.0;
}

}  // namespace ppuf::attack
