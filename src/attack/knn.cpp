#include "attack/knn.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppuf::attack {

Knn::Knn(const Dataset& train, std::size_t k) : train_(train), k_(k) {
  if (train_.size() == 0) throw std::invalid_argument("Knn: empty train");
  if (k == 0 || k > train_.size())
    throw std::invalid_argument("Knn: bad k");
}

int Knn::predict(std::span<const double> x) const {
  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<double, int>> dist;
  dist.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    const auto& t = train_.features[i];
    double d2 = 0.0;
    for (std::size_t j = 0; j < t.size(); ++j) {
      const double d = t[j] - x[j];
      d2 += d * d;
    }
    dist.emplace_back(d2, train_.labels[i]);
  }
  std::nth_element(dist.begin(),
                   dist.begin() + static_cast<std::ptrdiff_t>(k_ - 1),
                   dist.end());
  int vote = 0;
  for (std::size_t i = 0; i < k_; ++i) vote += dist[i].second;
  return vote >= 0 ? 1 : -1;
}

std::vector<int> Knn::predict_all(const Dataset& test) const {
  std::vector<int> out;
  out.reserve(test.size());
  for (const auto& x : test.features) out.push_back(predict(x));
  return out;
}

double best_knn_error(const Dataset& train, const Dataset& test,
                      std::size_t max_k) {
  double best = 1.0;
  for (std::size_t k = 1; k <= std::min(max_k, train.size()); k += 2) {
    const Knn knn(train, k);
    best = std::min(best, prediction_error(test, knn.predict_all(test)));
  }
  return best;
}

}  // namespace ppuf::attack
