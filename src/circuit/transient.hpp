// Transient analysis (backward Euler) over a netlist with capacitors.
// Used to measure the PPUF execution delay: the time for the source current
// to settle after the challenge step (Section 3.3 bounds this by the node
// charging delays).
#pragma once

#include <functional>

#include "circuit/dc.hpp"

namespace ppuf::circuit {

struct TransientOptions {
  double dt = 1e-9;     ///< fixed step [s]
  double t_end = 1e-6;  ///< end of the analysis window [s]
  DcOptions dc;         ///< Newton options used within each step
};

/// Observer invoked after every accepted step (and once at t = 0 with the
/// initial condition).
using TransientObserver =
    std::function<void(double time, const OperatingPoint& op)>;

class TransientSolver {
 public:
  TransientSolver(const Netlist& netlist, TransientOptions options);

  /// Integrate from t = 0 with the given initial node voltages (all zero if
  /// nullptr — the discharged state before the challenge is applied).
  void run(const TransientObserver& observer,
           const numeric::Vector* initial_node_voltages = nullptr) const;

 private:
  const Netlist& netlist_;
  TransientOptions options_;
};

}  // namespace ppuf::circuit
