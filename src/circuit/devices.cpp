#include "circuit/devices.hpp"

#include <cmath>

namespace ppuf::circuit {

double thermal_voltage(double temperature_c) {
  constexpr double kBoltzmannOverCharge = 8.617333262e-5;  // V/K
  return kBoltzmannOverCharge * (temperature_c + 273.15);
}

DiodeEval eval_diode(const DiodeParams& p, double vd, double temperature_c) {
  const double nvt = p.ideality * thermal_voltage(temperature_c);
  DiodeEval out;
  if (vd <= p.linearize_above) {
    const double e = std::exp(vd / nvt);
    out.current = p.saturation_current * (e - 1.0);
    out.conductance = p.saturation_current * e / nvt;
  } else {
    // C1 linear continuation above the limiting voltage so Newton never
    // sees an overflowing exponential.
    const double e = std::exp(p.linearize_above / nvt);
    const double i0 = p.saturation_current * (e - 1.0);
    const double g0 = p.saturation_current * e / nvt;
    out.current = i0 + g0 * (vd - p.linearize_above);
    out.conductance = g0;
  }
  return out;
}

namespace {

/// Forward-mode evaluation with vds >= 0.
MosfetEval eval_forward(const MosfetParams& p, double vgs, double vds) {
  MosfetEval out;
  const double vov = vgs - p.vth;
  if (vov <= 0.0) return out;  // cutoff: Id = gm = gds = 0 (C1 at vov = 0)
  const double clm = 1.0 + p.lambda * vds;
  if (vds < vov) {
    // Triode.  Applying the (1 + lambda vds) factor in both regions keeps
    // the characteristic C1 at the vds = vov boundary.
    const double base = p.transconductance * (vov * vds - 0.5 * vds * vds);
    out.id = base * clm;
    out.gm = p.transconductance * vds * clm;
    out.gds = p.transconductance * (vov - vds) * clm + base * p.lambda;
  } else {
    // Saturation.
    const double base = 0.5 * p.transconductance * vov * vov;
    out.id = base * clm;
    out.gm = p.transconductance * vov * clm;
    out.gds = base * p.lambda;
  }
  return out;
}

}  // namespace

MosfetEval eval_mosfet(const MosfetParams& p, double vgs, double vds) {
  if (vds >= 0.0) return eval_forward(p, vgs, vds);
  // Reverse operation: source and drain exchange roles.  The gate-source
  // voltage of the effective device is vgd = vgs - vds; current direction
  // flips.  Derivatives follow from the chain rule:
  //   id(vgs, vds) = -id_f(vgs - vds, -vds)
  const MosfetEval f = eval_forward(p, vgs - vds, -vds);
  MosfetEval out;
  out.id = -f.id;
  out.gm = -f.gm;
  out.gds = f.gm + f.gds;
  return out;
}

}  // namespace ppuf::circuit
