#include "circuit/env.hpp"

#include <cmath>

namespace ppuf::circuit {

namespace {
constexpr double kReferenceC = 27.0;
constexpr double kReferenceK = kReferenceC + 273.15;
}  // namespace

MosfetParams adjust_for_environment(const MosfetParams& params,
                                    const Environment& env) {
  MosfetParams p = params;
  const double dt = env.temperature_c - kReferenceC;
  p.vth = params.vth - 1e-3 * dt;  // -1 mV/K
  const double t_ratio = (env.temperature_c + 273.15) / kReferenceK;
  p.transconductance = params.transconductance * std::pow(t_ratio, -1.5);
  return p;
}

DiodeParams adjust_for_environment(const DiodeParams& params,
                                   const Environment& env) {
  DiodeParams p = params;
  const double dt = env.temperature_c - kReferenceC;
  p.saturation_current = params.saturation_current * std::pow(2.0, dt / 10.0);
  return p;
}

}  // namespace ppuf::circuit
