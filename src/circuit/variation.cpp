#include "circuit/variation.hpp"

namespace ppuf::circuit {

SystematicSurface::SystematicSurface(const VariationModel& model,
                                     util::Rng& rng) {
  const double a = model.systematic_vth_amplitude;
  gx_ = rng.gaussian(0.0, a);
  gy_ = rng.gaussian(0.0, a);
  bowl_ = rng.gaussian(0.0, a * 0.5);
}

double SystematicSurface::vth_shift(double x, double y) const {
  const double cx = x - 0.5;
  const double cy = y - 0.5;
  return gx_ * cx + gy_ * cy + bowl_ * (cx * cx + cy * cy);
}

BlockVariation draw_block_variation(const VariationModel& model,
                                    util::Rng& rng) {
  BlockVariation v;
  for (double& d : v.dvth) d = rng.gaussian(0.0, model.vth_sigma);
  for (double& d : v.dr_rel) d = rng.gaussian(0.0, model.resistor_sigma_rel);
  for (double& d : v.dis_rel) d = rng.gaussian(0.0, model.diode_is_sigma_rel);
  return v;
}

void apply_systematic(BlockVariation& v, const SystematicSurface& surface,
                      double x, double y) {
  const double shift = surface.vth_shift(x, y);
  for (double& d : v.dvth) d += shift;
}

}  // namespace ppuf::circuit
