// Diagnostics of a nonlinear DC solve and its convergence-recovery ladder.
//
// Both Newton solvers in the project (circuit::DcSolver at device level,
// ppuf::NetworkSolver at network level) escalate through the same ladder
// when the plain solve stalls:
//
//   direct -> gmin stepping -> source stepping -> tightened damping
//
// Instead of a bare `converged` bool, every solve now returns a
// SolveDiagnostics record: which rung produced the answer, how many
// iterations each attempted rung burned, and the final residual.  Failures
// that must abort carry the record inside a ConvergenceError so the caller
// (and ultimately the service operator) sees *how* the solve died, not just
// that it did.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace ppuf::circuit {

/// One rung of the convergence-recovery ladder.
enum class RecoveryStage {
  kDirect,            ///< plain damped Newton from the initial guess
  kGminStepping,      ///< continuation in the node-to-ground conductance
  kSourceStepping,    ///< homotopy in the source excitation (0 -> 100%)
  kTightenedDamping,  ///< small step limit, generous iteration budget
};

const char* recovery_stage_name(RecoveryStage stage);

/// Outcome of one attempted rung.
struct StageAttempt {
  RecoveryStage stage = RecoveryStage::kDirect;
  int iterations = 0;       ///< Newton iterations this rung consumed
  double residual = 0.0;    ///< max KCL error when the rung ended [A]
  bool converged = false;
};

/// Full record of a DC solve: every rung attempted, in order, plus the
/// rung that produced the returned operating point.
struct SolveDiagnostics {
  std::vector<StageAttempt> stages;
  /// Rung whose result was returned (the first converged one; the last
  /// attempted one when nothing converged).
  RecoveryStage strategy = RecoveryStage::kDirect;
  int total_iterations = 0;
  double final_residual = 0.0;
  bool converged = false;

  /// True when recovery went beyond the direct solve.
  bool recovered() const {
    return converged && strategy != RecoveryStage::kDirect;
  }

  /// e.g. "converged via source-stepping (direct: 200 it, resid 3.1e-09;
  /// gmin-stepping: 412 it, resid 8.2e-10; source-stepping: 95 it,
  /// resid 4.0e-12)".
  std::string summary() const;
};

/// Publish one solve's ladder outcome into `registry` under `prefix`
/// (e.g. "circuit.dc"): bumps `<prefix>.solves`, adds the total Newton
/// iterations to `<prefix>.newton_iterations`, records them into
/// `<prefix>.iterations_per_solve`, counts `<prefix>.recoveries` /
/// `<prefix>.failures`, and bumps the per-rung counter
/// `<prefix>.rung.<stage-name>` for the rung that produced the answer.
/// Both Newton solvers (circuit::DcSolver, ppuf::NetworkSolver) use this,
/// so their metric schemas stay identical.  No-op when the registry is
/// disabled.
void publish_solve_metrics(obs::MetricsRegistry& registry,
                           std::string_view prefix,
                           const SolveDiagnostics& diagnostics);

/// Non-convergence that must abort, carrying the full ladder record.
class ConvergenceError : public std::runtime_error {
 public:
  ConvergenceError(const std::string& context, SolveDiagnostics diagnostics);

  const SolveDiagnostics& diagnostics() const { return diagnostics_; }

 private:
  SolveDiagnostics diagnostics_;
};

}  // namespace ppuf::circuit
