#include "circuit/spice_export.hpp"

#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

namespace ppuf::circuit {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(9) << std::scientific << v;
  return os.str();
}

/// Deduplicated .model card registry keyed by the parameter tuple.
template <typename Key>
class ModelRegistry {
 public:
  explicit ModelRegistry(std::string prefix) : prefix_(std::move(prefix)) {}

  const std::string& name_for(const Key& key) {
    auto [it, inserted] =
        names_.try_emplace(key, prefix_ + std::to_string(names_.size()));
    (void)inserted;
    return it->second;
  }

  const std::map<Key, std::string>& all() const { return names_; }

 private:
  std::string prefix_;
  std::map<Key, std::string> names_;
};

}  // namespace

void export_spice(const Netlist& nl, std::ostream& os,
                  const SpiceExportOptions& options) {
  os << "* " << options.title << "\n";
  os << "* exported by maxflow-ppuf (level-1 cards; see DESIGN.md)\n";

  using MosKey = std::tuple<double, double, double>;
  using DioKey = std::tuple<double, double>;
  ModelRegistry<MosKey> mos_models("NM");
  ModelRegistry<DioKey> dio_models("DM");

  std::size_t idx = 0;
  for (const auto& r : nl.resistors()) {
    os << "R" << idx++ << ' ' << r.a << ' ' << r.b << ' '
       << fmt(r.resistance) << "\n";
  }
  idx = 0;
  for (const auto& c : nl.capacitors()) {
    os << "C" << idx++ << ' ' << c.a << ' ' << c.b << ' '
       << fmt(c.capacitance) << "\n";
  }
  idx = 0;
  for (const auto& d : nl.diodes()) {
    const std::string& model = dio_models.name_for(
        {d.params.saturation_current, d.params.ideality});
    os << "D" << idx++ << ' ' << d.anode << ' ' << d.cathode << ' ' << model
       << "\n";
  }
  idx = 0;
  for (const auto& m : nl.mosfets()) {
    const std::string& model = mos_models.name_for(
        {m.params.vth, m.params.transconductance, m.params.lambda});
    // Source doubles as bulk (no body effect in the level-1 substitution).
    os << "M" << idx++ << ' ' << m.drain << ' ' << m.gate << ' ' << m.source
       << ' ' << m.source << ' ' << model << "\n";
  }
  idx = 0;
  for (const auto& v : nl.vsources()) {
    os << "V" << idx++ << ' ' << v.pos << ' ' << v.neg << " DC "
       << fmt(v.volts) << "\n";
  }
  idx = 0;
  for (const auto& i : nl.isources()) {
    // SPICE convention: current flows from node+ through the source to
    // node-; our ISource pushes from `from` into `to`.
    os << "I" << idx++ << ' ' << i.from << ' ' << i.to << " DC "
       << fmt(i.amps) << "\n";
  }
  if (!nl.nonlinears().empty()) {
    os << "* note: " << nl.nonlinears().size()
       << " behavioural element(s) omitted (no closed-form SPICE card)\n";
  }

  for (const auto& [key, name] : dio_models.all()) {
    os << ".model " << name << " D (IS=" << fmt(std::get<0>(key))
       << " N=" << fmt(std::get<1>(key)) << ")\n";
  }
  for (const auto& [key, name] : mos_models.all()) {
    // Level 1: KP is mu*Cox; with W=L=1 the card's KP equals our k.
    os << ".model " << name << " NMOS (LEVEL=1 VTO=" << fmt(std::get<0>(key))
       << " KP=" << fmt(std::get<1>(key))
       << " LAMBDA=" << fmt(std::get<2>(key)) << ")\n";
  }

  if (options.operating_point) os << ".op\n";
  os << ".end\n";
}

}  // namespace ppuf::circuit
