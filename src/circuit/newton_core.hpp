// Internal: shared Newton/MNA machinery for the DC and transient solvers.
// Not part of the public API.
#pragma once

#include <memory>

#include "circuit/dc.hpp"
#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "numeric/matrix.hpp"

namespace ppuf::circuit::detail {

/// Runs damped Newton on the MNA system of `netlist`.
/// Unknown layout: x[0 .. N-2] node voltages for nodes 1..N-1 (ground
/// excluded), followed by one branch current per voltage source.
///
/// `structure` (optional) is the cached topology structure for this
/// netlist + extra-stamp combination; when null (and the sparse path is
/// active) it is built locally for the call.  Sharing it across calls is
/// what amortises the pattern build and the LU symbolic analysis.
OperatingPoint solve_newton(
    const Netlist& netlist, const DcOptions& options, const ExtraStamp& extra,
    const OperatingPoint* warm_start,
    std::shared_ptr<const MnaStructure> structure = nullptr);

}  // namespace ppuf::circuit::detail
