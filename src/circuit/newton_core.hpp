// Internal: shared Newton/MNA machinery for the DC and transient solvers.
// Not part of the public API.
#pragma once

#include <functional>

#include "circuit/dc.hpp"
#include "circuit/netlist.hpp"
#include "numeric/matrix.hpp"

namespace ppuf::circuit::detail {

/// Extra stamp hook invoked on every Newton iteration after the static
/// devices; the transient solver uses it for capacitor companion models.
/// Arguments: current unknown vector, residual to accumulate into, Jacobian
/// to accumulate into (null during residual-only line-search evaluations).
using ExtraStamp = std::function<void(
    const numeric::Vector& x, numeric::Vector& f, numeric::Matrix* j)>;

/// Runs damped Newton on the MNA system of `netlist`.
/// Unknown layout: x[0 .. N-2] node voltages for nodes 1..N-1 (ground
/// excluded), followed by one branch current per voltage source.
OperatingPoint solve_newton(const Netlist& netlist, const DcOptions& options,
                            const ExtraStamp& extra,
                            const OperatingPoint* warm_start);

}  // namespace ppuf::circuit::detail
