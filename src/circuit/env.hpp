// Environmental conditions for intra-class (reliability) evaluation.
// Table 1 of the paper accounts for 10% supply-voltage variation and
// temperature from -20C to 80C; these helpers derate the device parameters
// accordingly.
#pragma once

#include "circuit/devices.hpp"

namespace ppuf::circuit {

struct Environment {
  double vdd_scale = 1.0;        ///< multiplies every supply rail
  double temperature_c = 27.0;   ///< junction temperature

  static Environment nominal() { return {}; }
};

/// Temperature-derated MOSFET: Vth drifts at about -1 mV/K and mobility
/// (hence k) scales as (T/T0)^-1.5, the standard first-order model.
MosfetParams adjust_for_environment(const MosfetParams& params,
                                    const Environment& env);

/// Temperature-derated diode: saturation current roughly doubles every
/// 10 K around the reference temperature.
DiodeParams adjust_for_environment(const DiodeParams& params,
                                   const Environment& env);

}  // namespace ppuf::circuit
