// SPICE netlist export.
//
// The paper's reference results come from HSPICE on the 32 nm PTM; this
// exporter emits any of our netlists (a building block, a Fig. 3 test
// stage, ...) as a standard .cir deck with level-1 device cards, so the
// substitution documented in DESIGN.md can be cross-checked against a real
// SPICE engine (ngspice et al.) outside this repository.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace ppuf::circuit {

struct SpiceExportOptions {
  std::string title = "ppuf netlist";
  /// Emit a .op card (DC operating point).
  bool operating_point = true;
};

/// Writes a SPICE deck for the netlist.  Every distinct MOSFET/diode
/// parameter set becomes its own .model card.  Node 0 is SPICE ground.
void export_spice(const Netlist& netlist, std::ostream& os,
                  const SpiceExportOptions& options = {});

}  // namespace ppuf::circuit
