#include "circuit/dc.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "circuit/mna.hpp"
#include "circuit/newton_core.hpp"
#include "numeric/lu.hpp"
#include "numeric/sparse_lu.hpp"
#include "obs/metrics.hpp"
#include "util/fault_hooks.hpp"

namespace ppuf::circuit {

namespace {
std::atomic<bool> g_default_dense_solver{false};
}  // namespace

bool default_dense_solver() {
  return g_default_dense_solver.load(std::memory_order_relaxed);
}

void set_default_dense_solver(bool dense) {
  g_default_dense_solver.store(dense, std::memory_order_relaxed);
}

namespace detail {

namespace {

/// Index of a node's unknown, or SIZE_MAX for ground.
constexpr std::size_t kGroundIdx = static_cast<std::size_t>(-1);

std::size_t node_index(NodeId n) {
  return n == kGround ? kGroundIdx : static_cast<std::size_t>(n) - 1;
}

/// SPICE-style junction limiting (Nagel's pnjlim, adapted): any upward move
/// of a conducting junction beyond 2 kT/q is tapered logarithmically.  The
/// classic formulation gates on a critical voltage derived from Is, but our
/// junctions operate at nanoamperes — far below vcrit — where the
/// exponential is already stiff relative to the signal scale, so the taper
/// applies whenever the junction is forward biased.
double pnjlim(double vnew, double vold, double vt) {
  if (vold > 0.0 && std::abs(vnew - vold) > 2.0 * vt) {
    // Symmetric taper: limiting only the upward direction leaves a tiny
    // limit cycle around the operating point.
    const double mag = vt * std::log(1.0 + std::abs(vnew - vold) / vt);
    return vold + (vnew > vold ? mag : -mag);
  }
  if (vold <= 0.0 && vnew > 2.0 * vt) {
    return 2.0 * vt;  // entering conduction from reverse bias
  }
  return vnew;
}

/// Applies pnjlim to every diode in the netlist by nudging the trial node
/// voltages; returns true if any junction was limited.  The per-device
/// decoupling lets the rest of the circuit take full Newton steps while
/// each exponential junction inches up.
bool limit_junctions(const Netlist& nl, const DcOptions& opts,
                     const numeric::Vector& x, numeric::Vector& x_trial) {
  auto value_of = [](const numeric::Vector& v, NodeId n) {
    return n == kGround ? 0.0 : v[node_index(n)];
  };
  bool limited = false;
  for (const auto& d : nl.diodes()) {
    const double nvt =
        d.params.ideality * thermal_voltage(opts.temperature_c);
    const double vd_old = value_of(x, d.anode) - value_of(x, d.cathode);
    const double vd_new =
        value_of(x_trial, d.anode) - value_of(x_trial, d.cathode);
    const double vd_lim = pnjlim(vd_new, vd_old, nvt);
    if (vd_lim == vd_new) continue;
    limited = true;
    const double delta = vd_new - vd_lim;
    const bool anode_free = d.anode != kGround;
    const bool cathode_free = d.cathode != kGround;
    if (anode_free && cathode_free) {
      x_trial[node_index(d.anode)] -= 0.5 * delta;
      x_trial[node_index(d.cathode)] += 0.5 * delta;
    } else if (anode_free) {
      x_trial[node_index(d.anode)] -= delta;
    } else if (cathode_free) {
      x_trial[node_index(d.cathode)] += delta;
    }
  }
  return limited;
}

/// Linear-solve workspaces reused across every iteration of every
/// recovery-ladder rung in one solve_newton call.  Exactly one of the two
/// halves is active, per DcOptions::use_dense_solver.
struct NewtonWorkspace {
  bool dense = false;

  // Dense oracle path.
  numeric::Matrix j;
  numeric::Matrix j_scratch;

  // Sparse default path.  `structure` is the shared topology (pattern +
  // replay slots + published symbolic analysis); `a` is this call's private
  // value workspace over that pattern.
  std::shared_ptr<const MnaStructure> structure;
  numeric::SparseMatrix a;
  numeric::SparseLu lu;
};

/// Factorise/refactorise the sparse workspace and solve for dx (already
/// holding -f).  Prefers the cheap numeric replay against the held or
/// shared symbolic analysis; falls back to a full factorisation (fresh
/// pivot order) on kUnavailable pivot degradation, publishing the new
/// analysis for later solves.  A typed failure here means the iteration
/// matrix is genuinely singular.
util::Status sparse_solve_step(NewtonWorkspace& ws, numeric::Vector& dx) {
  util::Status st;
  if (ws.lu.ok()) {
    st = ws.lu.refactorize(ws.a);
  } else if (auto sym = ws.structure->symbolic()) {
    st = ws.lu.refactorize(ws.a, std::move(sym));
  } else {
    st = util::Status::unavailable("no symbolic analysis yet");
  }
  if (!st.is_ok()) {
    st = ws.lu.factorize(ws.a);
    if (st.is_ok()) ws.structure->set_symbolic(ws.lu.symbolic());
  }
  if (!st.is_ok()) return st;
  return ws.lu.solve_in_place({dx.data(), dx.size()});
}

/// One Newton run at fixed options; `x` is used as the initial guess and
/// holds the final iterate on return.
OperatingPoint run_newton(const Netlist& netlist, const DcOptions& options,
                          const ExtraStamp& extra, numeric::Vector& x,
                          NewtonWorkspace& ws) {
  const std::size_t nv = netlist.node_count() - 1;
  const std::size_t ns = netlist.voltage_source_count();
  const std::size_t dim = nv + ns;
  // Node voltages far outside the supply range are unphysical; clamping
  // keeps cut-off floating nodes from drifting (their only conductance to
  // anywhere is gmin).
  constexpr double kVoltageClamp = 10.0;

  numeric::Vector f(dim, 0.0);

  OperatingPoint op;
  op.node_voltage.assign(netlist.node_count(), 0.0);
  op.vsource_current.assign(ns, 0.0);

  numeric::Vector x_trial(dim);
  numeric::Vector dx(dim);

  // Anti-oscillation damping: full Newton steps can enter a period-2 cycle
  // across a device region boundary.  When the residual stops improving,
  // damp the step (any asymmetric scaling breaks a 2-cycle); reset the
  // damping as soon as progress resumes.
  double damping = 1.0;
  double best_residual = std::numeric_limits<double>::infinity();
  int stagnant = 0;

  double node_residual = 0.0;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    if (ws.dense) {
      ws.j.fill(0.0);
      DenseJacobianSink sink(&ws.j);
      assemble(netlist, options, x, f, &sink, extra);
    } else {
      ws.a.zero_values();
      SlotReplaySink sink(&ws.a, ws.structure->slots);
      assemble(netlist, options, x, f, &sink, extra);
      assert(sink.cursor() == ws.structure->slots.size());
    }

    node_residual = 0.0;
    for (std::size_t i = 0; i < nv; ++i)
      node_residual = std::max(node_residual, std::abs(f[i]));
    double branch_residual = 0.0;
    for (std::size_t i = nv; i < dim; ++i)
      branch_residual = std::max(branch_residual, std::abs(f[i]));

    op.iterations = iter;
    // Converged: KCL satisfied at every node and every source branch
    // equation met.  The raw Newton correction is deliberately NOT part of
    // the test: on a saturated plateau the Jacobian is near-singular along
    // float directions, so a physically-converged point can still produce
    // a large (irrelevant) dx.
    if (node_residual < options.residual_tol &&
        branch_residual < options.voltage_tol) {
      op.converged = true;
      break;
    }

    for (std::size_t i = 0; i < dim; ++i) dx[i] = -f[i];
    util::Status solve_status;
    if (ws.dense) {
      ws.j_scratch = ws.j;  // reuses its buffer after the first iteration
      solve_status = numeric::solve_in_place(ws.j_scratch, dx);
    } else {
      solve_status = sparse_solve_step(ws, dx);
    }
    if (!solve_status.is_ok()) {
      // Singular iteration matrix (degenerate netlist): report an infinite
      // residual instead of crashing so the recovery ladder can escalate —
      // and, at the last rung, so the caller gets a typed non-converged
      // OperatingPoint.
      node_residual = std::numeric_limits<double>::infinity();
      break;
    }

    // Limit the voltage step while preserving the Newton direction.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < nv; ++i)
      max_dv = std::max(max_dv, std::abs(dx[i]));

    if (node_residual < best_residual * (1.0 - 5e-3) ||
        node_residual < options.residual_tol) {
      best_residual = std::min(best_residual, node_residual);
      stagnant = 0;
      damping = 1.0;
    } else if (++stagnant >= 8) {
      damping = std::max(damping * 0.5, 1.0 / 256.0);
      stagnant = 0;
    }

    // SPICE-style globalization: a global voltage-step clamp plus
    // per-junction limiting, no line search.  A merit-decrease rule was
    // tried here and crawls: crossing a stiff exponential needs transient
    // residual growth that any monotone acceptance test rejects.
    const double scale =
        damping *
        (max_dv > options.step_limit ? options.step_limit / max_dv : 1.0);
    for (std::size_t i = 0; i < dim; ++i)
      x_trial[i] = x[i] + scale * dx[i];
    limit_junctions(netlist, options, x, x_trial);
    for (std::size_t i = 0; i < nv; ++i)
      x_trial[i] = std::clamp(x_trial[i], -kVoltageClamp, kVoltageClamp);
    x = x_trial;

    if (std::getenv("PPUF_NEWTON_TRACE") != nullptr) {
      std::fprintf(stderr, "iter %d resid=%.3e max_dv=%.3e scale=%.3e\n",
                   iter, node_residual, max_dv, scale);
    }

    if (!std::isfinite(x[0])) {
      // Diverged.  Report an infinite residual instead of throwing so the
      // recovery ladder can escalate to the next rung.
      node_residual = std::numeric_limits<double>::infinity();
      break;
    }
  }

  for (std::size_t i = 0; i < nv; ++i) op.node_voltage[i + 1] = x[i];
  for (std::size_t k = 0; k < ns; ++k) op.vsource_current[k] = x[nv + k];
  op.residual = node_residual;
  return op;
}

}  // namespace

OperatingPoint solve_newton(const Netlist& netlist, const DcOptions& options,
                            const ExtraStamp& extra,
                            const OperatingPoint* warm_start,
                            std::shared_ptr<const MnaStructure> structure) {
  const std::size_t nv = netlist.node_count() - 1;
  const std::size_t ns = netlist.voltage_source_count();
  const std::size_t dim = nv + ns;
  if (dim == 0) throw std::invalid_argument("solve_newton: empty netlist");
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "circuit.dc.solve_time_us");

  NewtonWorkspace ws;
  ws.dense = options.use_dense_solver;
  if (ws.dense) {
    ws.j = numeric::Matrix(dim, dim);
  } else {
    if (structure == nullptr || structure->dim != dim)
      structure = build_mna_structure(netlist, options, extra);
    ws.structure = std::move(structure);
    ws.a = ws.structure->pattern;  // private value workspace, shared pattern
  }

  auto warm_init = [&](numeric::Vector& x) {
    x.assign(dim, 0.0);
    if (warm_start != nullptr &&
        warm_start->node_voltage.size() == netlist.node_count() &&
        warm_start->vsource_current.size() == ns) {
      for (std::size_t i = 0; i < nv; ++i)
        x[i] = warm_start->node_voltage[i + 1];
      for (std::size_t k = 0; k < ns; ++k)
        x[nv + k] = warm_start->vsource_current[k];
    }
  };

  SolveDiagnostics diag;
  auto record = [&](RecoveryStage stage, const OperatingPoint& op,
                    int iterations) {
    diag.stages.push_back(
        StageAttempt{stage, iterations, op.residual, op.converged});
    diag.total_iterations += iterations;
    diag.strategy = stage;
  };
  auto finish = [&](OperatingPoint op) {
    diag.converged = op.converged;
    diag.final_residual = op.residual;
    op.iterations = diag.total_iterations;
    publish_solve_metrics(obs::MetricsRegistry::global(), "circuit.dc", diag);
    op.diagnostics = std::move(diag);
    return op;
  };

  numeric::Vector x(dim, 0.0);
  warm_init(x);

  // Rung 0 — direct damped Newton.  The test-only fault hook can starve
  // this rung (and only this rung) to force the ladder to fire.
  const util::FaultHooks& hooks = util::FaultHooks::instance();
  DcOptions direct = options;
  const int cap =
      hooks.newton_direct_iteration_cap.load(std::memory_order_relaxed);
  if (cap > 0) direct.max_iterations = std::min(direct.max_iterations, cap);
  OperatingPoint op = run_newton(netlist, direct, extra, x, ws);
  record(RecoveryStage::kDirect, op, op.iterations);
  if (op.converged || !options.enable_recovery) return finish(op);

  // Rung 1 — gmin stepping: solve a heavily damped version first (every
  // node leaks to ground), then walk gmin back down, warm-starting each
  // stage — the classic SPICE continuation for circuits whose devices are
  // all cut off.
  if (!hooks.newton_skip_gmin_stage.load(std::memory_order_relaxed)) {
    x.assign(dim, 0.0);
    int stage_iterations = 0;
    for (double gmin = 1e-4; gmin >= options.gmin * 0.99; gmin *= 1e-2) {
      DcOptions stage = options;
      stage.gmin = gmin;
      // Intermediate stages only need to hand over a good starting point.
      stage.residual_tol = std::max(options.residual_tol, gmin * 1e-3);
      op = run_newton(netlist, stage, extra, x, ws);
      stage_iterations += op.iterations;
    }
    op = run_newton(netlist, options, extra, x, ws);
    stage_iterations += op.iterations;
    record(RecoveryStage::kGminStepping, op, stage_iterations);
    if (op.converged) return finish(op);
  }

  // Rung 2 — source stepping: homotopy in the excitation.  Ramp every
  // independent source from a small fraction to 100%, warm-starting each
  // step; at low drive all devices are near cutoff and Newton is tame.
  {
    Netlist scaled = netlist;
    x.assign(dim, 0.0);
    int stage_iterations = 0;
    constexpr int kRampSteps = 8;
    for (int k = 1; k <= kRampSteps; ++k) {
      const double frac = static_cast<double>(k) / kRampSteps;
      for (std::size_t s = 0; s < scaled.vsources().size(); ++s)
        scaled.vsources()[s].volts = netlist.vsources()[s].volts * frac;
      for (std::size_t s = 0; s < scaled.isources().size(); ++s)
        scaled.isources()[s].amps = netlist.isources()[s].amps * frac;
      DcOptions stage = options;
      if (k < kRampSteps) {
        // Intermediate points only seed the next step.
        stage.residual_tol = std::max(options.residual_tol, 1e-13) * 1e2;
      }
      // `scaled` shares the topology (only source values change), so the
      // workspace pattern and symbolic analysis stay valid.
      op = run_newton(scaled, stage, extra, x, ws);
      stage_iterations += op.iterations;
    }
    // Polish on the original netlist (bit-identical sources).
    op = run_newton(netlist, options, extra, x, ws);
    stage_iterations += op.iterations;
    record(RecoveryStage::kSourceStepping, op, stage_iterations);
    if (op.converged) return finish(op);
  }

  // Rung 3 — tightened damping: a tiny step limit with a generous
  // iteration budget.  Slow but essentially monotone for incrementally
  // passive device stacks; the rung of last resort.
  {
    DcOptions tight = options;
    tight.step_limit = std::max(options.step_limit / 16.0, 0.01);
    tight.max_iterations = std::max(options.max_iterations * 10, 2000);
    warm_init(x);
    op = run_newton(netlist, tight, extra, x, ws);
    record(RecoveryStage::kTightenedDamping, op, op.iterations);
  }
  return finish(op);
}

}  // namespace detail

DcSolver::DcSolver(const Netlist& netlist, DcOptions options)
    : netlist_(netlist), options_(std::move(options)) {}

OperatingPoint DcSolver::solve(const OperatingPoint* warm_start) const {
  std::shared_ptr<const MnaStructure> structure;
  if (!options_.use_dense_solver) {
    std::lock_guard<std::mutex> lock(structure_mu_);
    if (structure_ == nullptr) {
      if (options_.symbolic_cache != nullptr) {
        const std::uint64_t key = netlist_topology_key(netlist_);
        structure_ = options_.symbolic_cache->find(key);
        if (structure_ == nullptr) {
          structure_ = options_.symbolic_cache->insert(
              key, build_mna_structure(netlist_, options_, nullptr));
        }
      } else {
        structure_ = build_mna_structure(netlist_, options_, nullptr);
      }
    }
    structure = structure_;
  }
  return detail::solve_newton(netlist_, options_, nullptr, warm_start,
                              std::move(structure));
}

}  // namespace ppuf::circuit
