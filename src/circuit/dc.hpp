// DC operating-point solver: modified nodal analysis with damped Newton.
// This is the "SPICE" of the project — Section 5 of the paper acquires all
// circuit outputs from SPICE; we acquire them from here.
//
// The linear core inside Newton is sparse by default (slot-replayed
// assembly + Gilbert–Peierls LU with a shared symbolic analysis; see
// mna.hpp and numeric/sparse_lu.hpp).  The original dense path is kept
// behind DcOptions::use_dense_solver as the differential-testing oracle;
// set_default_dense_solver() forces it process-wide for code paths that
// build their own DcOptions.
//
// Debugging: set the environment variable PPUF_NEWTON_TRACE=1 to stream a
// per-iteration residual/step trace to stderr.
#pragma once

#include <memory>
#include <mutex>

#include "circuit/netlist.hpp"
#include "circuit/solve_diagnostics.hpp"
#include "numeric/matrix.hpp"

namespace ppuf::circuit {

class SymbolicCache;     // circuit/mna.hpp
struct MnaStructure;     // circuit/mna.hpp

/// Process-wide default for DcOptions::use_dense_solver (false unless
/// overridden).  Tests and benches flip it to run entire subsystems —
/// including code that constructs its own DcOptions internally — through
/// the dense oracle.  Not synchronised: set it before spawning solver
/// threads.
bool default_dense_solver();
void set_default_dense_solver(bool dense);

struct DcOptions {
  int max_iterations = 200;
  double voltage_tol = 1e-8;       ///< convergence: max |dV| [V]
  /// Convergence: max node KCL error [A].  10 pA is ~0.03% of the ~30 nA
  /// block currents — far below the process-variation signal.
  double residual_tol = 1e-11;
  double step_limit = 0.3;         ///< max |dV| applied per iteration [V]
  double gmin = 1e-12;             ///< conductance from every node to ground
  double temperature_c = 27.0;     ///< device temperature
  /// Escalate through the convergence-recovery ladder (gmin stepping ->
  /// source stepping -> tightened damping) when the direct Newton solve
  /// stalls.  Disable only to observe the bare solver (tests do).
  bool enable_recovery = true;
  /// Solve the Newton linear systems with the dense LU oracle instead of
  /// the sparse default.  Differential tests diff the two paths bit-level.
  bool use_dense_solver = default_dense_solver();
  /// Optional shared cache of topology structures (pattern + symbolic
  /// analysis), so same-topology netlists — e.g. every block of a device —
  /// analyse once.  Null means per-solver caching only.
  std::shared_ptr<SymbolicCache> symbolic_cache;
};

/// Solution of a DC analysis.
struct OperatingPoint {
  numeric::Vector node_voltage;     ///< indexed by NodeId (ground included, 0)
  numeric::Vector vsource_current;  ///< current out of each source's + pin
  int iterations = 0;
  bool converged = false;
  double residual = 0.0;            ///< final max KCL error [A]
  /// Which recovery-ladder rung produced this point and what every
  /// attempted rung cost; `diagnostics.converged` mirrors `converged`.
  SolveDiagnostics diagnostics;

  double voltage(NodeId n) const { return node_voltage.at(n); }
  /// Current delivered by voltage source `handle` (flowing out of its
  /// positive terminal into the circuit).
  double source_current(std::size_t handle) const {
    return vsource_current.at(handle);
  }
};

class DcSolver {
 public:
  explicit DcSolver(const Netlist& netlist, DcOptions options = {});

  /// Solve for the operating point.  `warm_start` (a previous solution for
  /// the same netlist) accelerates sweeps; pass nullptr for a cold start.
  OperatingPoint solve(const OperatingPoint* warm_start = nullptr) const;

  const DcOptions& options() const { return options_; }

 private:
  const Netlist& netlist_;
  DcOptions options_;
  // Topology structure, built lazily on the first sparse solve and reused
  // for the solver's lifetime (shared through options_.symbolic_cache when
  // one is present).  Guarded: DcSolver::solve is const and may be called
  // from several threads.
  mutable std::mutex structure_mu_;
  mutable std::shared_ptr<const MnaStructure> structure_;
};

}  // namespace ppuf::circuit
