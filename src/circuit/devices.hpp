// Compact device models for the DC/transient solver: Shockley diode and a
// level-1 (square-law) MOSFET with channel-length modulation.  The paper
// simulates with the 32 nm predictive technology model in SPICE; channel-
// length modulation here plays the role of the "short channel effects" whose
// saturation-current error the source-degeneration technique suppresses
// (Requirements 1-2, Fig. 3a).
//
// All evaluations return both the current and its partial derivatives so the
// Newton solver can stamp the Jacobian directly.  Every characteristic is C1
// across region boundaries, which Newton needs for reliable convergence.
#pragma once

namespace ppuf::circuit {

/// Thermal voltage kT/q at the given temperature in Celsius.
double thermal_voltage(double temperature_c);

/// Shockley diode parameters.
struct DiodeParams {
  double saturation_current = 1e-11;  ///< Is [A] at the reference temperature
  double ideality = 1.0;              ///< emission coefficient n
  /// Exponent overflow guard: the exponential is linearised above this
  /// forward bias (C1 continuation), like SPICE's junction limiting.
  double linearize_above = 0.9;       ///< [V]
};

struct DiodeEval {
  double current = 0.0;      ///< Id [A]
  double conductance = 0.0;  ///< dId/dVd [S]
};

/// Diode current/conductance at forward bias vd (negative = reverse).
DiodeEval eval_diode(const DiodeParams& p, double vd,
                     double temperature_c = 27.0);

/// Level-1 NMOS parameters.  `transconductance` is k = mu Cox W/L.
struct MosfetParams {
  double vth = 0.4;               ///< threshold voltage [V]
  double transconductance = 8e-6; ///< k [A/V^2]
  double lambda = 0.3;            ///< channel-length modulation [1/V]
};

struct MosfetEval {
  double id = 0.0;   ///< drain current, positive into the drain [A]
  double gm = 0.0;   ///< dId/dVgs [S]
  double gds = 0.0;  ///< dId/dVds [S]
};

/// Square-law NMOS evaluation.  Handles cutoff / triode / saturation and
/// reverse operation (vds < 0) by symmetric source/drain exchange, so the
/// Newton solver can walk through any intermediate state.
MosfetEval eval_mosfet(const MosfetParams& p, double vgs, double vds);

}  // namespace ppuf::circuit
