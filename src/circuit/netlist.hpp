// Circuit netlist: nodes plus device instances, the input to the DC and
// transient solvers.  Node 0 is ground.  Floating voltage sources (used for
// the gate-bias batteries of the source-degenerated building block) are
// fully supported through MNA branch currents.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuit/devices.hpp"

namespace ppuf::circuit {

using NodeId = std::uint32_t;
constexpr NodeId kGround = 0;

/// Two-terminal element defined by an arbitrary C1 current law
/// i(v), di/dv — lets characterised compact models (e.g. a whole PPUF
/// building block) be placed in a netlist like any primitive device.
struct NonlinearLaw {
  /// Returns current for branch voltage v and writes dI/dv to *conductance.
  std::function<double(double v, double* conductance)> law;
};

class Netlist {
 public:
  Netlist();

  /// Creates a new node; name is for diagnostics only.
  NodeId add_node(std::string name = "");

  std::size_t node_count() const { return node_names_.size(); }
  const std::string& node_name(NodeId n) const { return node_names_[n]; }

  void add_resistor(NodeId a, NodeId b, double resistance);
  void add_capacitor(NodeId a, NodeId b, double capacitance);
  void add_diode(NodeId anode, NodeId cathode, const DiodeParams& params);
  /// NMOS with terminals drain/gate/source (no bulk; body effect ignored).
  void add_mosfet(NodeId drain, NodeId gate, NodeId source,
                  const MosfetParams& params);
  /// Independent voltage source (pos - neg = volts); may float.  Returns a
  /// handle usable with set_voltage (for sweeps).
  std::size_t add_voltage_source(NodeId pos, NodeId neg, double volts);
  /// Independent current source pushing `amps` from `from` into `to`.
  void add_current_source(NodeId from, NodeId to, double amps);
  /// Generic two-terminal nonlinear element, current flows a -> b.
  void add_nonlinear(NodeId a, NodeId b, NonlinearLaw law);

  void set_voltage(std::size_t source_handle, double volts);
  double voltage(std::size_t source_handle) const;
  std::size_t voltage_source_count() const { return vsources_.size(); }

  // --- element storage, read by the solvers ---
  struct Resistor { NodeId a, b; double resistance; };
  struct Capacitor { NodeId a, b; double capacitance; };
  struct Diode { NodeId anode, cathode; DiodeParams params; };
  struct Mosfet { NodeId drain, gate, source; MosfetParams params; };
  struct VSource { NodeId pos, neg; double volts; };
  struct ISource { NodeId from, to; double amps; };
  struct Nonlinear { NodeId a, b; NonlinearLaw law; };

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Diode>& diodes() const { return diodes_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<ISource>& isources() const { return isources_; }
  const std::vector<Nonlinear>& nonlinears() const { return nonlinears_; }

  /// Mutable device access so variation / environment models can adjust
  /// parameters after construction.
  std::vector<Diode>& diodes() { return diodes_; }
  std::vector<Mosfet>& mosfets() { return mosfets_; }
  std::vector<Resistor>& resistors() { return resistors_; }
  /// Mutable source access for homotopy continuation (source stepping
  /// scales every excitation on a netlist copy) and fault injection.
  std::vector<VSource>& vsources() { return vsources_; }
  std::vector<ISource>& isources() { return isources_; }

 private:
  void check_node(NodeId n) const;

  std::vector<std::string> node_names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Diode> diodes_;
  std::vector<Mosfet> mosfets_;
  std::vector<VSource> vsources_;
  std::vector<ISource> isources_;
  std::vector<Nonlinear> nonlinears_;
};

}  // namespace ppuf::circuit
