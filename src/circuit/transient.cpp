#include "circuit/transient.hpp"

#include <stdexcept>

#include "circuit/newton_core.hpp"

namespace ppuf::circuit {

TransientSolver::TransientSolver(const Netlist& netlist,
                                 TransientOptions options)
    : netlist_(netlist), options_(options) {
  if (options_.dt <= 0.0 || options_.t_end <= 0.0)
    throw std::invalid_argument("TransientSolver: dt and t_end must be > 0");
}

void TransientSolver::run(const TransientObserver& observer,
                          const numeric::Vector* initial) const {
  const std::size_t node_count = netlist_.node_count();
  numeric::Vector v_prev(node_count, 0.0);
  if (initial != nullptr) {
    if (initial->size() != node_count)
      throw std::invalid_argument("TransientSolver: bad initial size");
    v_prev = *initial;
  }

  OperatingPoint prev_op;
  prev_op.node_voltage = v_prev;
  prev_op.vsource_current.assign(netlist_.voltage_source_count(), 0.0);
  if (observer) observer(0.0, prev_op);

  const double g_dt = 1.0 / options_.dt;
  // Backward-Euler companion: each capacitor becomes a conductance C/dt
  // in parallel with a history current source -C/dt * v_prev.  The
  // emission sequence is topology-fixed (only v_prev changes per step), so
  // one structure serves every time step.
  auto stamp_caps = [&](const numeric::Vector& x, numeric::Vector& f,
                        JacobianSink* j) {
    for (const auto& c : netlist_.capacitors()) {
      const double g = c.capacitance * g_dt;
      const double va = c.a == kGround ? 0.0 : x[c.a - 1];
      const double vb = c.b == kGround ? 0.0 : x[c.b - 1];
      const double va_prev = v_prev[c.a];
      const double vb_prev = v_prev[c.b];
      const double i = g * ((va - vb) - (va_prev - vb_prev));
      if (c.a != kGround) {
        f[c.a - 1] += i;
        if (j != nullptr) {
          j->add(c.a - 1, c.a - 1, g);
          if (c.b != kGround) j->add(c.a - 1, c.b - 1, -g);
        }
      }
      if (c.b != kGround) {
        f[c.b - 1] -= i;
        if (j != nullptr) {
          j->add(c.b - 1, c.b - 1, g);
          if (c.a != kGround) j->add(c.b - 1, c.a - 1, -g);
        }
      }
    }
  };

  // Pattern + symbolic analysis built once, reused by every time step.
  std::shared_ptr<const MnaStructure> structure;
  if (!options_.dc.use_dense_solver)
    structure = build_mna_structure(netlist_, options_.dc, stamp_caps);

  for (double t = options_.dt; t <= options_.t_end + 0.5 * options_.dt;
       t += options_.dt) {
    OperatingPoint op = detail::solve_newton(netlist_, options_.dc,
                                             stamp_caps, &prev_op, structure);
    if (!op.converged)
      throw std::runtime_error("TransientSolver: Newton failed at t=" +
                               std::to_string(t));
    v_prev = op.node_voltage;
    prev_op = op;
    if (observer) observer(t, op);
  }
}

}  // namespace ppuf::circuit
