// Process-variation model.  The paper assumes threshold-voltage variation
// that is normal with sigma = 35 mV (ITRS-consistent) on the 32 nm node,
// plus a systematic across-die component that the crossbar mitigates by
// placing paired transistors from the two networks side by side
// (Section 4.1).  We model both: a random per-transistor part and a smooth
// positional part shared between paired devices.
#pragma once

#include <array>

#include "util/rng.hpp"

namespace ppuf::circuit {

struct VariationModel {
  double vth_sigma = 0.035;        ///< random Vth spread [V] (paper/ITRS)
  double resistor_sigma_rel = 0.02;///< relative spread of poly resistors
  double diode_is_sigma_rel = 0.05;///< relative spread of diode Is
  /// Peak-to-centre amplitude of the systematic across-die Vth surface [V].
  double systematic_vth_amplitude = 0.010;
};

/// Smooth across-die Vth surface: a random linear gradient plus a random
/// bowl term, the classic first-order systematic model.  Evaluated at
/// normalised die coordinates in [0,1]^2.
class SystematicSurface {
 public:
  SystematicSurface() = default;  ///< flat surface (no systematic variation)
  SystematicSurface(const VariationModel& model, util::Rng& rng);

  double vth_shift(double x, double y) const;

 private:
  double gx_ = 0.0;
  double gy_ = 0.0;
  double bowl_ = 0.0;
};

/// Random draws for one building block: four transistors (M1, M2 and M3, M4
/// of the two series stages), two degeneration resistors, two diodes.
struct BlockVariation {
  std::array<double, 4> dvth{};    ///< additive Vth shifts [V]
  std::array<double, 2> dr_rel{};  ///< relative resistor deviations
  std::array<double, 2> dis_rel{}; ///< relative diode Is deviations
};

/// Draw the random (mismatch) part of a block's variation.
BlockVariation draw_block_variation(const VariationModel& model,
                                    util::Rng& rng);

/// Add the systematic surface contribution for a block placed at normalised
/// die position (x, y).  Both networks' blocks at the same crossbar position
/// receive the same shift (side-by-side placement), so the differential
/// structure cancels it.
void apply_systematic(BlockVariation& v, const SystematicSurface& surface,
                      double x, double y);

}  // namespace ppuf::circuit
