#include "circuit/mna.hpp"

#include "circuit/dc.hpp"

namespace ppuf::circuit {

namespace detail {

namespace {

/// Index of a node's unknown, or SIZE_MAX for ground.
constexpr std::size_t kGroundIdx = static_cast<std::size_t>(-1);

std::size_t node_index(NodeId n) {
  return n == kGround ? kGroundIdx : static_cast<std::size_t>(n) - 1;
}

double voltage_of(const numeric::Vector& x, NodeId n) {
  return n == kGround ? 0.0 : x[node_index(n)];
}

/// Accumulate a current I flowing out of node `n` plus its derivatives.
/// `j` may be null for residual-only evaluations.  Every emission guard
/// below is a topology check, never a value check — the invariant that
/// makes the recorded emission sequence replayable.
struct Stamper {
  numeric::Vector& f;
  JacobianSink* j;

  void current(NodeId n, double i) {
    const std::size_t idx = node_index(n);
    if (idx != kGroundIdx) f[idx] += i;
  }
  void jacobian(NodeId row, NodeId col, double didv) {
    if (j == nullptr) return;
    const std::size_t r = node_index(row);
    const std::size_t c = node_index(col);
    if (r != kGroundIdx && c != kGroundIdx) j->add(r, c, didv);
  }
  void jacobian_branch(NodeId row, std::size_t branch_idx, double d) {
    if (j == nullptr) return;
    const std::size_t r = node_index(row);
    if (r != kGroundIdx) j->add(r, branch_idx, d);
  }
};

}  // namespace

void assemble(const Netlist& nl, const DcOptions& opts,
              const numeric::Vector& x, numeric::Vector& f, JacobianSink* j,
              const ExtraStamp& extra) {
  const std::size_t nv = nl.node_count() - 1;
  f.assign(f.size(), 0.0);
  Stamper st{f, j};

  // gmin from every node to ground keeps the matrix nonsingular when
  // devices are cut off (floating internal nodes).
  for (NodeId n = 1; n < nl.node_count(); ++n) {
    st.current(n, opts.gmin * voltage_of(x, n));
    st.jacobian(n, n, opts.gmin);
  }

  for (const auto& r : nl.resistors()) {
    const double g = 1.0 / r.resistance;
    const double i = g * (voltage_of(x, r.a) - voltage_of(x, r.b));
    st.current(r.a, i);
    st.current(r.b, -i);
    st.jacobian(r.a, r.a, g);
    st.jacobian(r.a, r.b, -g);
    st.jacobian(r.b, r.a, -g);
    st.jacobian(r.b, r.b, g);
  }

  for (const auto& d : nl.diodes()) {
    const double vd = voltage_of(x, d.anode) - voltage_of(x, d.cathode);
    const DiodeEval e = eval_diode(d.params, vd, opts.temperature_c);
    st.current(d.anode, e.current);
    st.current(d.cathode, -e.current);
    st.jacobian(d.anode, d.anode, e.conductance);
    st.jacobian(d.anode, d.cathode, -e.conductance);
    st.jacobian(d.cathode, d.anode, -e.conductance);
    st.jacobian(d.cathode, d.cathode, e.conductance);
  }

  for (const auto& m : nl.mosfets()) {
    const double vgs = voltage_of(x, m.gate) - voltage_of(x, m.source);
    const double vds = voltage_of(x, m.drain) - voltage_of(x, m.source);
    const MosfetEval e = eval_mosfet(m.params, vgs, vds);
    // Drain current enters the drain and exits the source; the gate draws
    // no current.
    st.current(m.drain, e.id);
    st.current(m.source, -e.id);
    // dId/dVg = gm, dId/dVd = gds, dId/dVs = -(gm + gds).
    st.jacobian(m.drain, m.gate, e.gm);
    st.jacobian(m.drain, m.drain, e.gds);
    st.jacobian(m.drain, m.source, -(e.gm + e.gds));
    st.jacobian(m.source, m.gate, -e.gm);
    st.jacobian(m.source, m.drain, -e.gds);
    st.jacobian(m.source, m.source, e.gm + e.gds);
  }

  for (const auto& nlel : nl.nonlinears()) {
    const double v = voltage_of(x, nlel.a) - voltage_of(x, nlel.b);
    double g = 0.0;
    const double i = nlel.law.law(v, &g);
    st.current(nlel.a, i);
    st.current(nlel.b, -i);
    st.jacobian(nlel.a, nlel.a, g);
    st.jacobian(nlel.a, nlel.b, -g);
    st.jacobian(nlel.b, nlel.a, -g);
    st.jacobian(nlel.b, nlel.b, g);
  }

  for (const auto& s : nl.isources()) {
    st.current(s.from, s.amps);
    st.current(s.to, -s.amps);
  }

  // Voltage sources: branch current i_k flows out of the + pin.
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& s = nl.vsources()[k];
    const std::size_t branch = nv + k;
    const double ik = x[branch];
    // KCL contribution: i_k leaves the source into node pos.
    st.current(s.pos, -ik);
    st.current(s.neg, ik);
    st.jacobian_branch(s.pos, branch, -1.0);
    st.jacobian_branch(s.neg, branch, 1.0);
    // Branch equation: v_pos - v_neg = volts.
    f[branch] = voltage_of(x, s.pos) - voltage_of(x, s.neg) - s.volts;
    if (j != nullptr) {
      if (s.pos != kGround) j->add(branch, node_index(s.pos), 1.0);
      if (s.neg != kGround) j->add(branch, node_index(s.neg), -1.0);
    }
  }

  if (extra) extra(x, f, j);
}

}  // namespace detail

std::shared_ptr<const MnaStructure> build_mna_structure(
    const Netlist& nl, const DcOptions& opts,
    const detail::ExtraStamp& extra) {
  const std::size_t nv = nl.node_count() - 1;
  const std::size_t dim = nv + nl.voltage_source_count();

  auto structure = std::make_shared<MnaStructure>();
  structure->dim = dim;

  // One recording pass at x = 0 captures the value-independent emission
  // sequence; the recorded values are discarded (pattern only).
  numeric::Vector x(dim, 0.0);
  numeric::Vector f(dim, 0.0);
  PatternRecordingSink recorder;
  detail::assemble(nl, opts, x, f, &recorder, extra);

  structure->pattern = numeric::SparseMatrix::from_triplets(
      dim, dim, recorder.triplets(), &structure->slots);
  structure->pattern.zero_values();
  structure->pattern_hash = structure->pattern.pattern_hash();
  return structure;
}

std::uint64_t netlist_topology_key(const Netlist& nl) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(nl.node_count());
  mix(0xA1);
  for (const auto& r : nl.resistors()) {
    mix(r.a);
    mix(r.b);
  }
  mix(0xA2);
  for (const auto& c : nl.capacitors()) {
    mix(c.a);
    mix(c.b);
  }
  mix(0xA3);
  for (const auto& d : nl.diodes()) {
    mix(d.anode);
    mix(d.cathode);
  }
  mix(0xA4);
  for (const auto& m : nl.mosfets()) {
    mix(m.drain);
    mix(m.gate);
    mix(m.source);
  }
  mix(0xA5);
  for (const auto& s : nl.vsources()) {
    mix(s.pos);
    mix(s.neg);
  }
  mix(0xA6);
  for (const auto& s : nl.isources()) {
    mix(s.from);
    mix(s.to);
  }
  mix(0xA7);
  for (const auto& e : nl.nonlinears()) {
    mix(e.a);
    mix(e.b);
  }
  return h;
}

}  // namespace ppuf::circuit
