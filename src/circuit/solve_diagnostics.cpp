#include "circuit/solve_diagnostics.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace ppuf::circuit {

const char* recovery_stage_name(RecoveryStage stage) {
  switch (stage) {
    case RecoveryStage::kDirect:
      return "direct";
    case RecoveryStage::kGminStepping:
      return "gmin-stepping";
    case RecoveryStage::kSourceStepping:
      return "source-stepping";
    case RecoveryStage::kTightenedDamping:
      return "tightened-damping";
  }
  return "unknown";
}

std::string SolveDiagnostics::summary() const {
  std::string s = converged ? "converged via " : "FAILED after ";
  s += recovery_stage_name(strategy);
  s += " (";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageAttempt& a = stages[i];
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s%s: %d it, resid %.2e",
                  i == 0 ? "" : "; ", recovery_stage_name(a.stage),
                  a.iterations, a.residual);
    s += buf;
  }
  s += ")";
  return s;
}

void publish_solve_metrics(obs::MetricsRegistry& registry,
                           std::string_view prefix,
                           const SolveDiagnostics& diagnostics) {
  if (!registry.enabled()) return;
  const std::string base(prefix);
  registry.counter(base + ".solves").add();
  registry.counter(base + ".newton_iterations")
      .add(static_cast<std::uint64_t>(
          std::max(0, diagnostics.total_iterations)));
  registry.histogram(base + ".iterations_per_solve")
      .record(static_cast<double>(diagnostics.total_iterations));
  if (diagnostics.recovered()) registry.counter(base + ".recoveries").add();
  if (!diagnostics.converged) registry.counter(base + ".failures").add();
  registry
      .counter(base + ".rung." + recovery_stage_name(diagnostics.strategy))
      .add();
}

ConvergenceError::ConvergenceError(const std::string& context,
                                   SolveDiagnostics diagnostics)
    : std::runtime_error(context + ": " + diagnostics.summary()),
      diagnostics_(std::move(diagnostics)) {}

}  // namespace ppuf::circuit
