// MNA assembly machinery shared by the DC and transient solvers, factored
// around a sink abstraction so the same device-stamping code fills either a
// dense Matrix (the oracle path) or a slot-mapped SparseMatrix (the default
// path).
//
// The sparse path exploits a property of the stamp loop: for a fixed
// netlist topology the *sequence* of (row, col) Jacobian emissions is
// identical on every iteration — all guards are topology checks (ground
// exclusions), never value checks.  So one recording pass at x = 0 captures
// the emission order as triplets, SparseMatrix::from_triplets turns that
// into a slot list, and every subsequent assembly replays the sequence as
// O(1) indexed adds with no searching (the classic SPICE "matrix pointer"
// technique).
//
// MnaStructure bundles everything derivable from topology alone — the
// pattern, the replay slots, and (once the first factorisation has run) the
// sparse LU symbolic analysis.  It is immutable apart from the
// mutex-guarded symbolic slot and safe to share across threads and across
// same-topology netlists; SymbolicCache keys such structures by pattern
// hash so a whole device's identical-topology blocks analyse once.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "circuit/netlist.hpp"
#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"
#include "numeric/sparse_lu.hpp"

namespace ppuf::circuit {

struct DcOptions;  // circuit/dc.hpp

/// Destination for Jacobian entries emitted during assembly.  Row/col are
/// unknown-vector indices (ground already excluded by the stamper).
class JacobianSink {
 public:
  virtual ~JacobianSink() = default;
  virtual void add(std::size_t row, std::size_t col, double value) = 0;
};

/// Accumulates into a dense matrix — the oracle path and the pattern-free
/// fallback.
class DenseJacobianSink final : public JacobianSink {
 public:
  explicit DenseJacobianSink(numeric::Matrix* m) : m_(m) {}
  void add(std::size_t row, std::size_t col, double value) override {
    (*m_)(row, col) += value;
  }

 private:
  numeric::Matrix* m_;
};

/// Records the emission sequence as triplets (pattern-building pass).
class PatternRecordingSink final : public JacobianSink {
 public:
  void add(std::size_t row, std::size_t col, double value) override {
    triplets_.push_back({row, col, value});
  }
  const std::vector<numeric::Triplet>& triplets() const { return triplets_; }

 private:
  std::vector<numeric::Triplet> triplets_;
};

/// Replays a recorded emission sequence as direct writes into a
/// SparseMatrix's value array.  The caller must emit entries in exactly the
/// recorded order (guaranteed by the deterministic stamp loop).
class SlotReplaySink final : public JacobianSink {
 public:
  SlotReplaySink(numeric::SparseMatrix* m, std::span<const std::size_t> slots)
      : values_(m->values()), slots_(slots) {}

  void add(std::size_t row, std::size_t col, double value) override {
    (void)row;
    (void)col;
    assert(cursor_ < slots_.size());
    values_[slots_[cursor_++]] += value;
  }

  /// Emissions consumed so far; after a full assembly this must equal the
  /// recorded sequence length.
  std::size_t cursor() const { return cursor_; }

 private:
  std::span<double> values_;
  std::span<const std::size_t> slots_;
  std::size_t cursor_ = 0;
};

namespace detail {

/// Extra stamp hook invoked on every Newton iteration after the static
/// devices; the transient solver uses it for capacitor companion models.
/// Arguments: current unknown vector, residual to accumulate into, Jacobian
/// sink to accumulate into (null during residual-only evaluations).  The
/// hook's emission sequence must be value-independent (topology-fixed
/// guards only) so the sparse replay stays aligned.
using ExtraStamp = std::function<void(const numeric::Vector& x,
                                      numeric::Vector& f, JacobianSink* j)>;

/// Stamps every device of `nl` at the iterate `x` into residual `f` and
/// Jacobian sink `j` (null for residual-only).  Unknown layout: node
/// voltages 1..N-1 then one branch current per voltage source.
void assemble(const Netlist& nl, const DcOptions& opts,
              const numeric::Vector& x, numeric::Vector& f, JacobianSink* j,
              const ExtraStamp& extra);

}  // namespace detail

/// Everything derivable from a netlist's topology alone, shareable across
/// threads and across solves of same-topology netlists.
struct MnaStructure {
  std::size_t dim = 0;
  /// Zero-valued CSR matrix holding the Jacobian pattern (copy into a
  /// workspace, then replay-assemble into the copy's values).
  numeric::SparseMatrix pattern;
  /// Emission-order -> value-slot map for SlotReplaySink.
  std::vector<std::size_t> slots;
  std::uint64_t pattern_hash = 0;

  /// Sparse LU symbolic analysis, published by whichever solve first
  /// factorises this pattern.  Guarded: structures are shared across
  /// concurrently solving threads.
  std::shared_ptr<const numeric::SparseLu::Symbolic> symbolic() const {
    std::lock_guard<std::mutex> lock(mu_);
    return symbolic_;
  }
  void set_symbolic(
      std::shared_ptr<const numeric::SparseLu::Symbolic> sym) const {
    std::lock_guard<std::mutex> lock(mu_);
    symbolic_ = std::move(sym);
  }

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<const numeric::SparseLu::Symbolic> symbolic_;
};

/// Builds the structure with one recording assembly at x = 0.  `extra` must
/// be the same hook later passed to the solver (its entries are part of the
/// pattern).
std::shared_ptr<const MnaStructure> build_mna_structure(
    const Netlist& nl, const DcOptions& opts,
    const detail::ExtraStamp& extra);

/// Thread-safe cache of MnaStructures keyed by topology, so a device's
/// identical-topology block netlists (and repeat solves of the same
/// netlist) share one pattern + symbolic analysis.  The key must uniquely
/// identify the stamp topology; callers derive it from netlist shape (see
/// netlist_topology_key).
class SymbolicCache {
 public:
  std::shared_ptr<const MnaStructure> find(std::uint64_t key) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : it->second;
  }

  /// First insert wins (so concurrent builders converge on one structure);
  /// returns the cached entry.
  std::shared_ptr<const MnaStructure> insert(
      std::uint64_t key, std::shared_ptr<const MnaStructure> structure) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto [it, inserted] = map_.emplace(key, std::move(structure));
    return it->second;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const MnaStructure>> map_;
};

/// FNV-1a hash over the netlist's stamp topology (device kinds, terminal
/// wiring, counts — not parameter values).  Two netlists with equal keys
/// produce identical Jacobian patterns and emission sequences.
std::uint64_t netlist_topology_key(const Netlist& nl);

}  // namespace ppuf::circuit
