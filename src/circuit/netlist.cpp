#include "circuit/netlist.hpp"

#include <stdexcept>

namespace ppuf::circuit {

Netlist::Netlist() { node_names_.push_back("gnd"); }

NodeId Netlist::add_node(std::string name) {
  const auto id = static_cast<NodeId>(node_names_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  node_names_.push_back(std::move(name));
  return id;
}

void Netlist::check_node(NodeId n) const {
  if (n >= node_names_.size())
    throw std::out_of_range("Netlist: node out of range");
}

void Netlist::add_resistor(NodeId a, NodeId b, double resistance) {
  check_node(a);
  check_node(b);
  if (resistance <= 0.0)
    throw std::invalid_argument("Netlist: resistance must be positive");
  resistors_.push_back({a, b, resistance});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double capacitance) {
  check_node(a);
  check_node(b);
  if (capacitance <= 0.0)
    throw std::invalid_argument("Netlist: capacitance must be positive");
  capacitors_.push_back({a, b, capacitance});
}

void Netlist::add_diode(NodeId anode, NodeId cathode,
                        const DiodeParams& params) {
  check_node(anode);
  check_node(cathode);
  diodes_.push_back({anode, cathode, params});
}

void Netlist::add_mosfet(NodeId drain, NodeId gate, NodeId source,
                         const MosfetParams& params) {
  check_node(drain);
  check_node(gate);
  check_node(source);
  mosfets_.push_back({drain, gate, source, params});
}

std::size_t Netlist::add_voltage_source(NodeId pos, NodeId neg, double volts) {
  check_node(pos);
  check_node(neg);
  vsources_.push_back({pos, neg, volts});
  return vsources_.size() - 1;
}

void Netlist::add_current_source(NodeId from, NodeId to, double amps) {
  check_node(from);
  check_node(to);
  isources_.push_back({from, to, amps});
}

void Netlist::add_nonlinear(NodeId a, NodeId b, NonlinearLaw law) {
  check_node(a);
  check_node(b);
  if (!law.law) throw std::invalid_argument("Netlist: empty nonlinear law");
  nonlinears_.push_back({a, b, std::move(law)});
}

void Netlist::set_voltage(std::size_t source_handle, double volts) {
  if (source_handle >= vsources_.size())
    throw std::out_of_range("Netlist::set_voltage: bad handle");
  vsources_[source_handle].volts = volts;
}

double Netlist::voltage(std::size_t source_handle) const {
  if (source_handle >= vsources_.size())
    throw std::out_of_range("Netlist::voltage: bad handle");
  return vsources_[source_handle].volts;
}

}  // namespace ppuf::circuit
