// WAL-shipping standby: a warm replica of one shard's device registry.
//
// The standby PULLS: it polls its primary with kWalFetchRequest{epoch,
// offset} and the primary answers with either a byte-exact WAL segment
// (appended durably to the standby's own log, then applied in memory) or
// a full bootstrap snapshot when the standby's position no longer exists
// (first contact, primary restart, or compaction — the registry's WAL
// epoch is a random token regenerated at both, so a stale position can
// never alias).  Partial trailing records are buffered across segments;
// only whole CRC-verified records are ever applied.
//
// Consistency window: replication is asynchronous, so enrollments the
// primary acked in the last poll interval may be lost on failover.  The
// window is measured, not assumed — promote() reports the replicated
// position and the primary's last observed position, and the fleet test
// pins the acked-loss count to what those bounds imply (zero once the
// standby has caught up past an ack).
//
// Promotion: promote() stops replication and hands the registry to the
// caller, who serves it behind a fresh AuthServer and re-points the
// gateway's shard name at it (ring placement is name-keyed, so no device
// moves).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "registry/device_registry.hpp"
#include "util/status.hpp"

namespace ppuf::fleet {

struct StandbyOptions {
  std::string primary_host = "127.0.0.1";
  std::uint16_t primary_port = 0;
  std::string directory;        ///< local registry dir (durable replica)
  int poll_interval_ms = 100;   ///< replication cadence (the loss window)
  int request_timeout_ms = 5000;
  std::uint32_t fetch_max_bytes = 0;  ///< 0 = primary's default cap
};

/// What promote() reports: where replication stood when it stopped.
struct PromotionReport {
  std::uint64_t wal_epoch = 0;
  std::uint64_t wal_offset = 0;       ///< bytes replicated in that epoch
  std::uint64_t device_count = 0;     ///< devices now served locally
  std::uint64_t fetches = 0;          ///< segment pulls performed
  std::uint64_t bootstraps = 0;       ///< full-snapshot installs
  /// True when the last successful pull drained the primary (empty
  /// segment): every byte the primary had committed then is replicated.
  bool caught_up = false;
};

class WalStandby {
 public:
  explicit WalStandby(StandbyOptions options);
  ~WalStandby();

  WalStandby(const WalStandby&) = delete;
  WalStandby& operator=(const WalStandby&) = delete;

  /// Open the local registry replica and spawn the poll thread.
  util::Status start();

  /// One synchronous replication pass: pull until the primary reports no
  /// more bytes (or an error).  Runs the same path as the poll thread —
  /// tests use it to make "caught up" deterministic.
  util::Status sync_once();

  /// Stop replicating and take over: the registry is now this process's
  /// to serve.  Idempotent (later calls return the same report).
  PromotionReport promote();

  /// Stop the poll thread without promoting.
  void stop();

  /// The local replica.  Non-const so a promoted standby can be handed
  /// straight to AuthServer (which also serves ENROLL / WAL_FETCH).
  registry::DeviceRegistry& registry() { return registry_; }

  struct Stats {
    std::uint64_t fetches = 0;
    std::uint64_t bootstraps = 0;
    std::uint64_t bytes_applied = 0;
    std::uint64_t fetch_errors = 0;
    std::uint64_t wal_epoch = 0;
    std::uint64_t wal_offset = 0;
  };
  Stats stats() const;

 private:
  /// Pull-and-apply until caught up; expects state_mutex_ held.
  util::Status fetch_pass_locked();
  void poll_loop();

  StandbyOptions options_;
  registry::DeviceRegistry registry_;
  std::thread poll_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool promoted_ = false;
  PromotionReport promotion_report_;

  /// Guards the replication cursor + buffer (poll thread vs sync_once /
  /// promote); the registry itself has its own mutex.
  mutable std::mutex state_mutex_;
  std::uint64_t epoch_ = 0;   ///< 0 = unknown: next fetch bootstraps
  std::uint64_t offset_ = 0;
  std::vector<std::uint8_t> buffer_;  ///< partial trailing record bytes
  bool caught_up_ = false;
  std::uint64_t fetches_ = 0;
  std::uint64_t bootstraps_ = 0;
  std::uint64_t bytes_applied_ = 0;
  std::uint64_t fetch_errors_ = 0;
};

}  // namespace ppuf::fleet
