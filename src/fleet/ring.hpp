// Consistent-hash ring over shard NAMES.
//
// The ring answers one question — which shard owns device id X — and is
// deliberately keyed by shard *name*, not endpoint: promoting a standby
// (or re-pointing a shard at a new host) swaps the endpoint behind the
// name without moving a single ring point, so every device keeps its
// placement across failover.  Each shard contributes `vnodes` points
// (splitmix64 of the name hash and the vnode index) so removal of one
// shard spreads its keyspace across the survivors instead of dumping it
// all on one neighbour.
//
// Not thread-safe: the gateway mutates and routes under its own lock.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ppuf::fleet {

class HashRing {
 public:
  /// Default points per shard.  128 keeps the per-shard share of a
  /// 2..8-shard ring within a few percent of even.
  static constexpr std::size_t kDefaultVnodes = 128;

  /// Add `name` with `vnodes` ring points.  Adding an existing name is a
  /// no-op (the points are a pure function of the name, so they are
  /// already there).
  void add(const std::string& name, std::size_t vnodes = kDefaultVnodes);

  /// Remove every point of `name`; unknown names are a no-op.
  void remove(const std::string& name);

  bool contains(const std::string& name) const {
    return vnodes_.count(name) != 0;
  }
  std::size_t shard_count() const { return vnodes_.size(); }
  bool empty() const { return vnodes_.empty(); }

  /// The shard owning `device_id`: the first ring point at or clockwise
  /// of the id's hash.  Empty string when the ring is empty.
  std::string route(std::uint64_t device_id) const;

 private:
  std::map<std::uint64_t, std::string> points_;   ///< ring position -> name
  std::map<std::string, std::size_t> vnodes_;     ///< name -> point count
};

}  // namespace ppuf::fleet
