#include "fleet/standby.hpp"

#include <chrono>

#include "net/client.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace ppuf::fleet {

using util::Status;

WalStandby::WalStandby(StandbyOptions options)
    : options_(std::move(options)) {}

WalStandby::~WalStandby() { stop(); }

util::Status WalStandby::start() {
  if (started_) return Status::invalid_argument("standby already started");
  if (Status s = registry_.open(options_.directory); !s.is_ok()) return s;
  // The local replica may hold state from a previous run of this standby,
  // but its epoch/offset describe the LOCAL log, not the primary's — the
  // cursor starts unknown and the first fetch bootstraps.  (Wasteful
  // after a clean restart, but always correct: the primary's epoch is a
  // random token this process has never seen.)
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  poll_thread_ = std::thread([this] { poll_loop(); });
  return Status::ok();
}

util::Status WalStandby::sync_once() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return fetch_pass_locked();
}

util::Status WalStandby::fetch_pass_locked() {
  net::ClientOptions copts;
  copts.connect_timeout_ms = options_.request_timeout_ms;
  copts.request_timeout_ms = options_.request_timeout_ms;
  copts.max_attempts = 1;
  // Replication must not couple into the serving path's shared endpoint
  // breakers (a standby hammering a dead primary is expected and local).
  copts.breaker_failure_threshold = 0;
  net::AuthClient client(options_.primary_host, options_.primary_port,
                         copts);
  const util::Deadline per_fetch = util::Deadline::unlimited();
  for (;;) {
    net::WalFetchRequestBody req;
    req.epoch = epoch_;
    req.offset = offset_;
    req.max_bytes = options_.fetch_max_bytes;
    net::WalSegmentBody seg;
    if (Status s = client.wal_fetch(req, &seg, per_fetch); !s.is_ok()) {
      ++fetch_errors_;
      caught_up_ = false;
      return s;
    }
    ++fetches_;
    if (seg.bootstrap != 0) {
      if (Status s = registry_.install_bootstrap(seg.bytes); !s.is_ok()) {
        ++fetch_errors_;
        caught_up_ = false;
        return s;
      }
      ++bootstraps_;
      epoch_ = seg.epoch;
      offset_ = seg.next_offset;
      buffer_.clear();
      obs::MetricsRegistry::global().counter("standby.bootstraps").add();
      continue;  // tail the WAL from the snapshot's fold point
    }
    if (seg.bytes.empty()) {
      caught_up_ = true;
      return Status::ok();  // drained the primary
    }
    buffer_.insert(buffer_.end(), seg.bytes.begin(), seg.bytes.end());
    std::size_t consumed = 0;
    if (Status s = registry_.apply_wal_bytes(buffer_.data(), buffer_.size(),
                                             &consumed);
        !s.is_ok()) {
      // Corrupt shipped record: distrust the whole cursor and
      // re-bootstrap on the next pass (self-healing beats limping).
      epoch_ = 0;
      offset_ = 0;
      buffer_.clear();
      ++fetch_errors_;
      caught_up_ = false;
      return s;
    }
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
    // The cursor advances by RAW bytes shipped (buffered partial record
    // bytes included): the primary's offsets address its byte stream,
    // not record boundaries.
    offset_ += seg.bytes.size();
    bytes_applied_ += consumed;
    obs::MetricsRegistry::global()
        .counter("standby.bytes_applied")
        .add(consumed);
  }
}

void WalStandby::poll_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      // Errors are expected while the primary is down/restarting; the
      // loop just keeps polling (counted in fetch_errors_).
      (void)fetch_pass_locked();
    }
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.poll_interval_ms);
    while (std::chrono::steady_clock::now() < until &&
           !stopping_.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void WalStandby::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (poll_thread_.joinable()) poll_thread_.join();
}

PromotionReport WalStandby::promote() {
  stop();
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (promoted_) return promotion_report_;
  promoted_ = true;
  promotion_report_.wal_epoch = epoch_;
  promotion_report_.wal_offset = offset_;
  promotion_report_.device_count = registry_.device_count();
  promotion_report_.fetches = fetches_;
  promotion_report_.bootstraps = bootstraps_;
  promotion_report_.caught_up = caught_up_;
  return promotion_report_;
}

WalStandby::Stats WalStandby::stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Stats s;
  s.fetches = fetches_;
  s.bootstraps = bootstraps_;
  s.bytes_applied = bytes_applied_;
  s.fetch_errors = fetch_errors_;
  s.wal_epoch = epoch_;
  s.wal_offset = offset_;
  return s;
}

}  // namespace ppuf::fleet
