#include "fleet/gateway.hpp"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "fleet/ring.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ppuf::fleet {

namespace {

using net::DecodeResult;
using net::Frame;
using net::MessageType;
using net::WireCode;
using util::Status;

constexpr std::size_t kReadChunk = 64 * 1024;
/// Idle backend sockets kept per shard; beyond this, checkin closes.
constexpr std::size_t kMaxIdlePerShard = 8;

std::vector<std::uint8_t> error_frame(std::uint64_t request_id,
                                      std::uint64_t device_id, WireCode code,
                                      std::string message) {
  net::ErrorReply err;
  err.code = code;
  err.message = std::move(message);
  return net::encode_frame(MessageType::kErrorReply, request_id, device_id,
                           0, net::encode_error_reply(err));
}

/// Remaining budget as a wire header field (same rounding contract as the
/// client: sub-millisecond remainders round up to 1 so "expired" can never
/// be confused with "unlimited").
std::uint32_t budget_ms_for(const util::Deadline& deadline) {
  if (deadline.is_unlimited()) return 0;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline.remaining());
  const auto ms = std::max<std::chrono::milliseconds::rep>(1, left.count());
  return static_cast<std::uint32_t>(
      std::min<std::chrono::milliseconds::rep>(ms, 0xffffffffu));
}

}  // namespace

/// RAII fds for epoll/eventfd (see server/auth_server.cpp for ordering
/// notes — they must outlive the worker pool).
struct OwnedFd {
  int fd = -1;
  ~OwnedFd() {
    if (fd >= 0) ::close(fd);
  }
};

/// One backend shard.  The endpoint is immutable: re-pointing a name at a
/// new host (failover promotion) REPLACES the Shard object in the table,
/// so workers mid-round-trip keep the old object (and its sockets) alive
/// via shared_ptr and finish cleanly, while new work goes to the new
/// endpoint.  Ring placement never moves because the ring only knows the
/// name.
struct GatewayShard {
  GatewayShard(std::string name, std::string host, std::uint16_t port)
      : name(std::move(name)), host(std::move(host)), port(port) {}
  ~GatewayShard() {
    for (const int fd : idle_fds) ::close(fd);
  }

  const std::string name;
  const std::string host;
  const std::uint16_t port;

  // Health (written by the prober thread, read anywhere).
  std::atomic<bool> up{true};
  std::atomic<std::uint8_t> backend_draining{0};
  std::atomic<std::uint64_t> device_count{0};
  std::atomic<std::uint64_t> wal_epoch{0};
  std::atomic<std::uint64_t> wal_offset{0};
  int consecutive_failures = 0;   ///< prober thread only
  int consecutive_successes = 0;  ///< prober thread only

  // Lifecycle (guarded by the gateway's shard_mutex).
  bool draining = false;
  std::string successor_host;
  std::uint16_t successor_port = 0;

  // Counters.
  std::atomic<std::uint64_t> inflight{0};
  std::atomic<std::uint64_t> forwarded{0};
  std::atomic<std::uint64_t> pinned_sessions{0};

  // Pooled idle connections (guarded by pool_mutex; a worker owns a
  // checked-out fd exclusively for one whole round trip).
  std::mutex pool_mutex;
  std::vector<int> idle_fds;

  /// -1 when the pool is empty (caller connects fresh).
  int checkout() {
    std::lock_guard<std::mutex> lock(pool_mutex);
    if (idle_fds.empty()) return -1;
    const int fd = idle_fds.back();
    idle_fds.pop_back();
    return fd;
  }
  void checkin(int fd) {
    std::lock_guard<std::mutex> lock(pool_mutex);
    if (idle_fds.size() >= kMaxIdlePerShard) {
      ::close(fd);
      return;
    }
    idle_fds.push_back(fd);
  }
};

struct Gateway::Impl {
  Impl(const GatewayOptions& options, std::atomic<bool>& draining)
      : options(options), draining(draining), pool(options.threads) {}

  GatewayOptions options;
  std::atomic<bool>& draining;

  net::Socket listener;
  OwnedFd epoll_handle;
  OwnedFd wake_handle;
  int epoll_fd = -1;
  int wake_fd = -1;

  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    std::vector<std::uint8_t> inbuf;
    std::deque<std::vector<std::uint8_t>> outq;
    std::size_t out_offset = 0;
    std::size_t outq_bytes = 0;
    bool close_after_flush = false;
    bool want_write = false;
  };

  std::unordered_map<int, Connection> connections;
  std::unordered_map<std::uint64_t, int> connection_fd;
  std::uint64_t next_connection_id = 1;
  std::unordered_set<int> closed_in_batch;

  struct Completion {
    std::uint64_t connection_id;
    std::vector<std::uint8_t> bytes;
  };
  std::mutex completion_mutex;
  std::vector<Completion> completions;

  // --- fleet state --------------------------------------------------------
  //
  // shard_mutex guards the table, the ring, every Shard's lifecycle
  // fields, and the pin map.  Routing (event loop) and the health prober
  // both take it briefly; forwards run outside it against a shared_ptr.
  std::mutex shard_mutex;
  std::map<std::string, std::shared_ptr<GatewayShard>> shards;
  HashRing ring;
  /// (client connection id, device id) -> shard name.  Created at
  /// CHALLENGE, consumed by the matching CHAINED_AUTH, swept on
  /// connection close.  Ordered so a connection's pins are a range.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> pins;

  std::atomic<std::size_t> inflight{0};

  // Stats.
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> forwarded{0};
  std::atomic<std::uint64_t> redirects_sent{0};
  std::atomic<std::uint64_t> unavailable_rejections{0};
  std::atomic<std::uint64_t> overloaded_rejections{0};
  std::atomic<std::uint64_t> shutdown_rejections{0};
  std::atomic<std::uint64_t> malformed_frames{0};
  std::atomic<std::uint64_t> admin_requests{0};
  std::atomic<std::uint64_t> pins_created{0};
  std::atomic<std::uint64_t> health_probes{0};
  std::atomic<std::uint64_t> dropped_inflight{0};

  /// Declared last: destroyed first, joining workers that may still write
  /// wake_fd.
  util::ThreadPool pool;

  // --- event loop ---------------------------------------------------------
  void run();
  void accept_ready();
  void read_ready(int fd);
  void consume_frames(int fd);
  void dispatch(Connection& conn, Frame frame);
  void enqueue_reply(Connection& conn, std::vector<std::uint8_t> bytes);
  void flush(Connection& conn);
  void update_epoll(Connection& conn);
  void close_connection(int fd);
  void drain_completions();
  bool drained();

  std::vector<std::uint8_t> handle_admin(const Frame& frame);
  net::HealthInfo health_info() const {
    net::HealthInfo h;
    h.inflight = static_cast<std::uint32_t>(
        inflight.load(std::memory_order_relaxed));
    h.max_inflight = static_cast<std::uint32_t>(options.max_inflight);
    h.draining = draining.load(std::memory_order_relaxed) ? 1 : 0;
    h.requests_served = requests.load(std::memory_order_relaxed);
    h.connections_accepted =
        connections_accepted.load(std::memory_order_relaxed);
    return h;
  }

  // --- worker side --------------------------------------------------------
  void submit_forward(std::uint64_t connection_id,
                      std::shared_ptr<GatewayShard> shard, Frame frame,
                      const util::Deadline& deadline);
  std::vector<std::uint8_t> forward(GatewayShard& shard, const Frame& frame,
                                    const util::Deadline& deadline);

  // --- health prober ------------------------------------------------------
  void health_loop();
};

// --- lifecycle --------------------------------------------------------------

Gateway::Gateway(GatewayOptions options) : options_(options) {
  impl_ = std::make_unique<Impl>(options_, draining_);
}

Gateway::~Gateway() { stop(); }

util::Status Gateway::add_shard(const std::string& name,
                                const std::string& host,
                                std::uint16_t port) {
  if (name.empty() || host.empty() || port == 0)
    return Status::invalid_argument("add_shard: name/host/port required");
  std::lock_guard<std::mutex> lock(impl_->shard_mutex);
  impl_->shards[name] = std::make_shared<GatewayShard>(name, host, port);
  impl_->ring.add(name, options_.vnodes);
  return Status::ok();
}

util::Status Gateway::start() {
  if (running_.load(std::memory_order_acquire))
    return Status::invalid_argument("gateway already started");

  if (Status s = net::listen_tcp(options_.port, options_.listen_backlog,
                                 &impl_->listener, &port_);
      !s.is_ok())
    return s;

  impl_->epoll_handle.fd = epoll_create1(EPOLL_CLOEXEC);
  impl_->epoll_fd = impl_->epoll_handle.fd;
  if (impl_->epoll_fd < 0)
    return Status::unavailable(std::string("epoll_create1: ") +
                               strerror(errno));
  impl_->wake_handle.fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  impl_->wake_fd = impl_->wake_handle.fd;
  if (impl_->wake_fd < 0)
    return Status::unavailable(std::string("eventfd: ") + strerror(errno));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = impl_->listener.fd();
  epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->listener.fd(), &ev);
  ev.data.fd = impl_->wake_fd;
  epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->wake_fd, &ev);

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { impl_->run(); });
  health_thread_ = std::thread([this] { impl_->health_loop(); });
  return Status::ok();
}

void Gateway::request_drain() {
  if (impl_ == nullptr) return;
  draining_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t rc = ::write(impl_->wake_fd, &one, sizeof(one));
}

void Gateway::wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  running_.store(false, std::memory_order_release);
}

void Gateway::stop() {
  request_drain();
  wait();
}

Gateway::Stats Gateway::stats() const {
  Stats s;
  if (impl_ == nullptr) return s;
  s.connections_accepted =
      impl_->connections_accepted.load(std::memory_order_relaxed);
  s.requests = impl_->requests.load(std::memory_order_relaxed);
  s.forwarded = impl_->forwarded.load(std::memory_order_relaxed);
  s.redirects_sent = impl_->redirects_sent.load(std::memory_order_relaxed);
  s.unavailable_rejections =
      impl_->unavailable_rejections.load(std::memory_order_relaxed);
  s.overloaded_rejections =
      impl_->overloaded_rejections.load(std::memory_order_relaxed);
  s.shutdown_rejections =
      impl_->shutdown_rejections.load(std::memory_order_relaxed);
  s.malformed_frames =
      impl_->malformed_frames.load(std::memory_order_relaxed);
  s.admin_requests = impl_->admin_requests.load(std::memory_order_relaxed);
  s.pins_created = impl_->pins_created.load(std::memory_order_relaxed);
  s.health_probes = impl_->health_probes.load(std::memory_order_relaxed);
  s.dropped_inflight =
      impl_->dropped_inflight.load(std::memory_order_relaxed);
  return s;
}

// --- event loop -------------------------------------------------------------

void Gateway::Impl::run() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  bool listener_open = true;
  std::vector<epoll_event> events(64);
  for (;;) {
    const bool drain_now = draining.load(std::memory_order_relaxed);
    if (drain_now && listener_open) {
      epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listener.fd(), nullptr);
      listener.close();
      listener_open = false;
    }
    if (drain_now && drained()) break;

    const int n = epoll_wait(epoll_fd, events.data(),
                             static_cast<int>(events.size()),
                             drain_now ? 50 : 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    closed_in_batch.clear();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd) {
        std::uint64_t drainv = 0;
        while (::read(wake_fd, &drainv, sizeof(drainv)) > 0) {
        }
        continue;
      }
      if (listener_open && fd == listener.fd()) {
        accept_ready();
        continue;
      }
      if (closed_in_batch.count(fd) != 0) continue;
      auto it = connections.find(fd);
      if (it == connections.end()) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_connection(fd);
        continue;
      }
      if (events[i].events & EPOLLIN) read_ready(fd);
      auto wit = connections.find(fd);
      if (wit != connections.end() && (events[i].events & EPOLLOUT))
        flush(wit->second);
    }
    drain_completions();
    reg.gauge("gateway.inflight")
        .set(static_cast<std::int64_t>(
            inflight.load(std::memory_order_relaxed)));
    reg.gauge("gateway.connections")
        .set(static_cast<std::int64_t>(connections.size()));
  }
  std::vector<int> fds;
  fds.reserve(connections.size());
  for (const auto& [fd, conn] : connections) fds.push_back(fd);
  for (const int fd : fds) close_connection(fd);
}

bool Gateway::Impl::drained() {
  if (inflight.load(std::memory_order_relaxed) != 0) return false;
  {
    std::lock_guard<std::mutex> lock(completion_mutex);
    if (!completions.empty()) return false;
  }
  for (const auto& [fd, conn] : connections)
    if (!conn.outq.empty()) return false;
  return true;
}

void Gateway::Impl::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listener.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    Connection conn;
    conn.fd = fd;
    conn.id = next_connection_id++;
    connection_fd[conn.id] = fd;
    connections.emplace(fd, std::move(conn));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    connections_accepted.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::global()
        .counter("gateway.connections_accepted")
        .add();
  }
}

void Gateway::Impl::read_ready(int fd) {
  auto it = connections.find(fd);
  if (it == connections.end()) return;
  Connection& conn = it->second;
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.inbuf.insert(conn.inbuf.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      close_connection(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(fd);
    return;
  }
  consume_frames(fd);
}

void Gateway::Impl::consume_frames(int fd) {
  auto it = connections.find(fd);
  if (it == connections.end()) return;
  const std::uint64_t conn_id = it->second.id;
  std::size_t offset = 0;
  while (!it->second.close_after_flush) {
    Connection& conn = it->second;
    Frame frame;
    std::size_t consumed = 0;
    const DecodeResult r = net::decode_frame(
        conn.inbuf.data() + offset, conn.inbuf.size() - offset, &frame,
        &consumed);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kMalformed) {
      malformed_frames.fetch_add(1, std::memory_order_relaxed);
      conn.close_after_flush = true;
      enqueue_reply(conn, error_frame(0, net::kDefaultDeviceId,
                                      WireCode::kMalformed,
                                      "unparseable frame"));
      return;
    }
    offset += consumed;
    dispatch(conn, std::move(frame));
    it = connections.find(fd);
    if (it == connections.end() || it->second.id != conn_id) return;
  }
  if (offset > 0)
    it->second.inbuf.erase(
        it->second.inbuf.begin(),
        it->second.inbuf.begin() + static_cast<std::ptrdiff_t>(offset));
}

void Gateway::Impl::dispatch(Connection& conn, Frame frame) {
  if (!net::is_request(frame.type)) {
    enqueue_reply(conn,
                  error_frame(frame.request_id, frame.device_id,
                              WireCode::kUnsupportedType,
                              std::string("not a request type: ") +
                                  net::message_type_name(frame.type)));
    return;
  }
  if (draining.load(std::memory_order_relaxed)) {
    if (frame.type == MessageType::kPingRequest) {
      enqueue_reply(conn,
                    net::encode_frame(MessageType::kPingReply,
                                      frame.request_id, frame.device_id, 0,
                                      net::encode_ping_reply(health_info())));
      return;
    }
    shutdown_rejections.fetch_add(1, std::memory_order_relaxed);
    enqueue_reply(conn, error_frame(frame.request_id, frame.device_id,
                                    WireCode::kShuttingDown,
                                    "gateway is draining"));
    return;
  }
  // PING answers for the gateway itself (its health is what a load
  // balancer in front of the fleet needs); the prober sees shard health.
  if (frame.type == MessageType::kPingRequest) {
    enqueue_reply(conn,
                  net::encode_frame(MessageType::kPingReply,
                                    frame.request_id, frame.device_id, 0,
                                    net::encode_ping_reply(health_info())));
    return;
  }
  // Admin is gateway-local state, answered inline — it must keep working
  // when every shard is down (that is exactly when the operator needs it).
  if (frame.type == MessageType::kAdminRequest) {
    enqueue_reply(conn, handle_admin(frame));
    return;
  }
  // WAL shipping is a shard-to-standby channel: the standby must track
  // ONE primary's byte stream, which a routing gateway cannot provide.
  if (frame.type == MessageType::kWalFetchRequest) {
    enqueue_reply(conn,
                  error_frame(frame.request_id, frame.device_id,
                              WireCode::kInvalidArgument,
                              "WAL fetch is shard-direct, not routable"));
    return;
  }
  // ENROLL with id 0 means "shard assigns the id" — unroutable here, the
  // hash that picks the shard needs the id first.
  if (frame.type == MessageType::kEnrollRequest &&
      frame.device_id == net::kDefaultDeviceId) {
    enqueue_reply(conn,
                  error_frame(frame.request_id, frame.device_id,
                              WireCode::kInvalidArgument,
                              "gateway enrollment requires an explicit "
                              "device id (0 = shard-assigned)"));
    return;
  }
  if (inflight.load(std::memory_order_relaxed) >= options.max_inflight) {
    overloaded_rejections.fetch_add(1, std::memory_order_relaxed);
    enqueue_reply(conn, error_frame(frame.request_id, frame.device_id,
                                    WireCode::kOverloaded,
                                    "gateway in-flight limit reached"));
    return;
  }

  // --- routing (shard_mutex) ---
  std::shared_ptr<GatewayShard> shard;
  bool pinned = false;
  {
    std::lock_guard<std::mutex> lock(shard_mutex);
    std::string name;
    if (frame.type == MessageType::kChainedAuthRequest) {
      const auto pit = pins.find({conn.id, frame.device_id});
      if (pit != pins.end()) {
        name = pit->second;
        pinned = true;
        pins.erase(pit);
        const auto sit = shards.find(name);
        if (sit != shards.end())
          sit->second->pinned_sessions.fetch_sub(1,
                                                 std::memory_order_relaxed);
      }
    }
    if (name.empty()) name = ring.route(frame.device_id);
    if (name.empty()) {
      enqueue_reply(conn, error_frame(frame.request_id, frame.device_id,
                                      WireCode::kShardUnavailable,
                                      "no shards in the ring"));
      unavailable_rejections.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const auto sit = shards.find(name);
    if (sit == shards.end()) {
      enqueue_reply(conn, error_frame(frame.request_id, frame.device_id,
                                      WireCode::kShardUnavailable,
                                      "shard removed: " + name));
      unavailable_rejections.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    shard = sit->second;
    // Draining refuses NEW sessions; a pinned CHAINED_AUTH is in-flight
    // work the drain contract promises to complete, so it passes.
    if (!pinned && shard->draining) {
      if (!shard->successor_host.empty() && shard->successor_port != 0) {
        net::RedirectReplyBody rd;
        rd.host = shard->successor_host;
        rd.port = shard->successor_port;
        rd.shard = name;
        rd.message = "shard draining; use successor";
        enqueue_reply(conn, net::encode_frame(MessageType::kRedirectReply,
                                              frame.request_id,
                                              frame.device_id, 0,
                                              net::encode_redirect_reply(rd)));
        redirects_sent.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      enqueue_reply(conn, error_frame(frame.request_id, frame.device_id,
                                      WireCode::kShardUnavailable,
                                      "shard draining: " + name));
      unavailable_rejections.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!shard->up.load(std::memory_order_relaxed)) {
      enqueue_reply(conn, error_frame(frame.request_id, frame.device_id,
                                      WireCode::kShardUnavailable,
                                      "shard down: " + name));
      unavailable_rejections.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (frame.type == MessageType::kChallengeRequest) {
      pins[{conn.id, frame.device_id}] = name;
      shard->pinned_sessions.fetch_add(1, std::memory_order_relaxed);
      pins_created.fetch_add(1, std::memory_order_relaxed);
    }
  }

  inflight.fetch_add(1, std::memory_order_relaxed);
  requests.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::global().counter("gateway.requests").add();
  const util::Deadline deadline = frame.deadline();
  submit_forward(conn.id, std::move(shard), std::move(frame), deadline);
}

void Gateway::Impl::submit_forward(std::uint64_t connection_id,
                                   std::shared_ptr<GatewayShard> shard,
                                   Frame frame,
                                   const util::Deadline& deadline) {
  auto shared_frame = std::make_shared<Frame>(std::move(frame));
  pool.submit([this, connection_id, shard, shared_frame, deadline] {
    std::vector<std::uint8_t> reply;
    try {
      reply = forward(*shard, *shared_frame, deadline);
    } catch (const std::exception& e) {
      reply = error_frame(shared_frame->request_id, shared_frame->device_id,
                          WireCode::kInternal, e.what());
    } catch (...) {
      reply = error_frame(shared_frame->request_id, shared_frame->device_id,
                          WireCode::kInternal, "unknown forward failure");
    }
    {
      std::lock_guard<std::mutex> lock(completion_mutex);
      completions.push_back({connection_id, std::move(reply)});
    }
    inflight.fetch_sub(1, std::memory_order_relaxed);
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t rc = ::write(wake_fd, &one, sizeof(one));
  });
}

std::vector<std::uint8_t> Gateway::Impl::forward(
    GatewayShard& shard, const Frame& frame,
    const util::Deadline& deadline) {
  if (deadline.expired())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kDeadlineExceeded,
                       "budget expired before forwarding");
  util::Deadline effective = deadline;
  if (effective.is_unlimited() && options.default_forward_timeout_ms > 0)
    effective = util::Deadline::after_seconds(
        options.default_forward_timeout_ms * 1e-3);

  // The frame goes through VERBATIM — same request id, same device id,
  // same payload — with the budget re-encoded as what REMAINS, so queue
  // wait inside the gateway burns the client's budget, not the shard's.
  const std::vector<std::uint8_t> wire =
      net::encode_frame(frame.type, frame.request_id, frame.device_id,
                        deadline.is_unlimited() ? 0 : budget_ms_for(deadline),
                        frame.payload);

  shard.inflight.fetch_add(1, std::memory_order_relaxed);
  Status last = Status::ok();
  // Two tries: a pooled socket may be half-dead (shard restarted since
  // checkin) — retry once on a FRESH connection, then give up.  A frame
  // is forwarded at most once per live socket, and the shard protocol is
  // request/reply on an exclusively-owned fd, so the retry can never
  // duplicate a reply.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool pooled = true;
    int fd = shard.checkout();
    if (fd < 0) {
      pooled = false;
      net::Socket sock;
      const auto left_ms = std::min<long long>(
          options.shard_connect_timeout_ms,
          effective.is_unlimited()
              ? options.shard_connect_timeout_ms
              : std::chrono::duration_cast<std::chrono::milliseconds>(
                    effective.remaining())
                    .count());
      if (Status s = net::connect_tcp(shard.host, shard.port,
                                      static_cast<int>(std::max<long long>(
                                          1, left_ms)),
                                      &sock);
          !s.is_ok()) {
        last = s;
        break;  // connect failed: the shard is gone, retry won't help
      }
      fd = sock.release();
    }
    Status s = net::send_all(fd, wire.data(), wire.size(), effective);
    Frame reply;
    if (s.is_ok()) s = net::read_frame(fd, &reply, effective);
    if (s.is_ok()) {
      shard.checkin(fd);
      shard.inflight.fetch_sub(1, std::memory_order_relaxed);
      shard.forwarded.fetch_add(1, std::memory_order_relaxed);
      forwarded.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::global().counter("gateway.forwarded").add();
      return net::encode_frame(reply.type, reply.request_id,
                               reply.device_id, 0, reply.payload);
    }
    ::close(fd);
    last = s;
    if (!pooled) break;  // fresh socket failed: don't hammer a dead shard
  }
  shard.inflight.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard_mutex);
    if (shard.draining)
      dropped_inflight.fetch_add(1, std::memory_order_relaxed);
  }
  if (last.code() == util::StatusCode::kDeadlineExceeded)
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kDeadlineExceeded,
                       "budget expired forwarding to " + shard.name);
  unavailable_rejections.fetch_add(1, std::memory_order_relaxed);
  return error_frame(frame.request_id, frame.device_id,
                     WireCode::kShardUnavailable,
                     "shard " + shard.name + " unreachable: " +
                         last.message());
}

// --- admin ------------------------------------------------------------------

std::vector<std::uint8_t> Gateway::Impl::handle_admin(const Frame& frame) {
  admin_requests.fetch_add(1, std::memory_order_relaxed);
  net::AdminRequestBody req;
  if (Status s = net::decode_admin_request(frame.payload, &req); !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kMalformed, s.message());
  net::AdminReplyBody reply;
  std::lock_guard<std::mutex> lock(shard_mutex);
  switch (req.op) {
    case net::AdminOp::kStatus: {
      reply.ok = 1;
      reply.message = "ok";
      for (const auto& [name, shard] : shards) {
        net::ShardStatus st;
        st.name = name;
        st.host = shard->host;
        st.port = shard->port;
        const bool up = shard->up.load(std::memory_order_relaxed);
        st.state = static_cast<std::uint8_t>(
            !up ? ShardState::kDown
                : shard->draining ? ShardState::kDraining : ShardState::kUp);
        st.draining = shard->backend_draining.load(std::memory_order_relaxed);
        st.inflight = shard->inflight.load(std::memory_order_relaxed);
        st.pinned_sessions =
            shard->pinned_sessions.load(std::memory_order_relaxed);
        st.forwarded = shard->forwarded.load(std::memory_order_relaxed);
        st.device_count = shard->device_count.load(std::memory_order_relaxed);
        st.wal_epoch = shard->wal_epoch.load(std::memory_order_relaxed);
        st.wal_offset = shard->wal_offset.load(std::memory_order_relaxed);
        reply.shards.push_back(std::move(st));
      }
      break;
    }
    case net::AdminOp::kAddShard: {
      if (req.shard.empty() || req.host.empty() || req.port == 0) {
        reply.ok = 0;
        reply.message = "add requires shard name, host, and port";
        break;
      }
      const bool existed = shards.count(req.shard) != 0;
      // Re-pointing REPLACES the shard object: in-flight forwards finish
      // against the old endpoint via their shared_ptr, new work goes to
      // the new one, and ring placement is untouched (name-keyed).
      shards[req.shard] =
          std::make_shared<GatewayShard>(req.shard, req.host, req.port);
      ring.add(req.shard, options.vnodes);
      reply.ok = 1;
      reply.message = existed ? "re-pointed" : "added";
      break;
    }
    case net::AdminOp::kDrainShard: {
      const auto it = shards.find(req.shard);
      if (it == shards.end()) {
        reply.ok = 0;
        reply.message = "unknown shard: " + req.shard;
        break;
      }
      it->second->draining = true;
      it->second->successor_host = req.host;  // may be empty: no redirect
      it->second->successor_port = req.port;
      reply.ok = 1;
      reply.message = req.host.empty() ? "draining"
                                       : "draining with successor";
      break;
    }
    case net::AdminOp::kUndrainShard: {
      const auto it = shards.find(req.shard);
      if (it == shards.end()) {
        reply.ok = 0;
        reply.message = "unknown shard: " + req.shard;
        break;
      }
      it->second->draining = false;
      it->second->successor_host.clear();
      it->second->successor_port = 0;
      reply.ok = 1;
      reply.message = "undrained";
      break;
    }
    case net::AdminOp::kRemoveShard: {
      const auto it = shards.find(req.shard);
      if (it == shards.end()) {
        reply.ok = 0;
        reply.message = "unknown shard: " + req.shard;
        break;
      }
      ring.remove(req.shard);
      shards.erase(it);
      // Pins into the removed shard can never be served; sweep them so a
      // later CHAINED_AUTH re-routes (and gets the ring's answer) instead
      // of chasing a name that no longer resolves.
      for (auto pit = pins.begin(); pit != pins.end();) {
        if (pit->second == req.shard)
          pit = pins.erase(pit);
        else
          ++pit;
      }
      reply.ok = 1;
      reply.message = "removed";
      break;
    }
  }
  return net::encode_frame(MessageType::kAdminReply, frame.request_id,
                           frame.device_id, 0,
                           net::encode_admin_reply(reply));
}

// --- reply plumbing (event loop) --------------------------------------------

void Gateway::Impl::drain_completions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completion_mutex);
    done.swap(completions);
  }
  for (Completion& c : done) {
    const auto it = connection_fd.find(c.connection_id);
    if (it == connection_fd.end()) continue;
    const auto cit = connections.find(it->second);
    if (cit == connections.end()) continue;
    enqueue_reply(cit->second, std::move(c.bytes));
  }
}

void Gateway::Impl::enqueue_reply(Connection& conn,
                                  std::vector<std::uint8_t> bytes) {
  conn.outq_bytes += bytes.size();
  conn.outq.push_back(std::move(bytes));
  flush(conn);
}

void Gateway::Impl::flush(Connection& conn) {
  while (!conn.outq.empty()) {
    const std::vector<std::uint8_t>& front = conn.outq.front();
    const std::size_t left = front.size() - conn.out_offset;
    const ssize_t n = ::send(conn.fd, front.data() + conn.out_offset, left,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(conn.fd);
      return;
    }
    conn.out_offset += static_cast<std::size_t>(n);
    if (conn.out_offset == front.size()) {
      conn.outq_bytes -= front.size();
      conn.outq.pop_front();
      conn.out_offset = 0;
    }
  }
  if (conn.outq.empty() && conn.close_after_flush) {
    close_connection(conn.fd);
    return;
  }
  if (options.max_connection_backlog_bytes != 0 &&
      conn.outq_bytes > options.max_connection_backlog_bytes) {
    close_connection(conn.fd);
    return;
  }
  update_epoll(conn);
}

void Gateway::Impl::update_epoll(Connection& conn) {
  const bool want_write = !conn.outq.empty();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Gateway::Impl::close_connection(int fd) {
  const auto it = connections.find(fd);
  if (it == connections.end()) return;
  closed_in_batch.insert(fd);
  const std::uint64_t conn_id = it->second.id;
  connection_fd.erase(conn_id);
  epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections.erase(it);
  // Sweep the connection's pins: the chained-auth sessions died with it.
  std::lock_guard<std::mutex> lock(shard_mutex);
  const auto begin = pins.lower_bound({conn_id, 0});
  auto end = begin;
  while (end != pins.end() && end->first.first == conn_id) {
    const auto sit = shards.find(end->second);
    if (sit != shards.end())
      sit->second->pinned_sessions.fetch_sub(1, std::memory_order_relaxed);
    ++end;
  }
  pins.erase(begin, end);
}

// --- health prober ----------------------------------------------------------

void Gateway::Impl::health_loop() {
  while (!draining.load(std::memory_order_relaxed)) {
    std::vector<std::shared_ptr<GatewayShard>> snapshot;
    {
      std::lock_guard<std::mutex> lock(shard_mutex);
      snapshot.reserve(shards.size());
      for (const auto& [name, shard] : shards) snapshot.push_back(shard);
    }
    for (const auto& shard : snapshot) {
      if (draining.load(std::memory_order_relaxed)) break;
      net::ClientOptions copts;
      copts.connect_timeout_ms = options.health_timeout_ms;
      copts.request_timeout_ms = options.health_timeout_ms;
      copts.max_attempts = 1;
      // The prober must not feed the process-wide endpoint breakers: a
      // down shard fast-failing the FORWARD path through a shared breaker
      // would couple health probing into serving.
      copts.breaker_failure_threshold = 0;
      net::AuthClient probe(shard->host, shard->port, copts);
      net::HealthInfo health;
      const Status s =
          probe.ping(0,
                     util::Deadline::after_seconds(
                         options.health_timeout_ms * 1e-3),
                     &health);
      health_probes.fetch_add(1, std::memory_order_relaxed);
      if (s.is_ok()) {
        shard->consecutive_failures = 0;
        if (++shard->consecutive_successes >=
            options.health_successes_to_up)
          shard->up.store(true, std::memory_order_relaxed);
        shard->backend_draining.store(health.draining,
                                      std::memory_order_relaxed);
        shard->device_count.store(health.device_count,
                                  std::memory_order_relaxed);
        shard->wal_epoch.store(health.wal_epoch, std::memory_order_relaxed);
        shard->wal_offset.store(health.wal_offset,
                                std::memory_order_relaxed);
      } else {
        shard->consecutive_successes = 0;
        if (++shard->consecutive_failures >=
            options.health_failures_to_down)
          shard->up.store(false, std::memory_order_relaxed);
      }
    }
    // Sleep in slices so request_drain() is honoured promptly.
    const auto until =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options.health_interval_ms);
    while (std::chrono::steady_clock::now() < until &&
           !draining.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace ppuf::fleet
