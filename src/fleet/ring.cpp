#include "fleet/ring.hpp"

namespace ppuf::fleet {

namespace {

/// splitmix64: the standard 64-bit finaliser — cheap, well-mixed, and
/// stable across platforms (placement must not depend on std::hash).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a over the name, then finalised; the vnode index is folded in by
/// the caller so every point of one shard is decorrelated.
std::uint64_t name_hash(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return mix64(h);
}

}  // namespace

void HashRing::add(const std::string& name, std::size_t vnodes) {
  if (vnodes == 0) vnodes = 1;
  if (vnodes_.count(name) != 0) return;
  const std::uint64_t base = name_hash(name);
  for (std::size_t i = 0; i < vnodes; ++i) {
    // Collisions across shards are possible in principle; first writer
    // keeps the point.  With 64-bit positions this is vanishingly rare
    // and costs at most one vnode's share of keyspace.
    points_.emplace(mix64(base + i), name);
  }
  vnodes_[name] = vnodes;
}

void HashRing::remove(const std::string& name) {
  const auto it = vnodes_.find(name);
  if (it == vnodes_.end()) return;
  const std::uint64_t base = name_hash(name);
  for (std::size_t i = 0; i < it->second; ++i) {
    const auto pit = points_.find(mix64(base + i));
    // Only erase points we own (a colliding point may belong to another
    // shard that added first).
    if (pit != points_.end() && pit->second == name) points_.erase(pit);
  }
  vnodes_.erase(it);
}

std::string HashRing::route(std::uint64_t device_id) const {
  if (points_.empty()) return {};
  const std::uint64_t h = mix64(device_id);
  auto it = points_.lower_bound(h);
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->second;
}

}  // namespace ppuf::fleet
