// Fleet gateway: one front door for a sharded AuthServer fleet.
//
// The gateway consistent-hashes the frame header's 64-bit device id across
// N backend shards (fleet/ring.hpp) and forwards frames VERBATIM — same
// request id, same payload, budget re-encoded as the *remaining* budget —
// over pooled per-shard connections.  One worker owns a backend socket for
// a whole round trip, so replies can never interleave and no request-id
// rewriting is needed.
//
// Threading mirrors server/auth_server.cpp (DESIGN.md §12): one epoll
// event loop owns every client socket; a worker pool does the blocking
// shard round trips and posts reply bytes back through a completion queue
// + eventfd.  A separate health thread PINGs every shard on an interval
// with up/down thresholds, and reads the shard's registry telemetry
// (device count, WAL position) out of the health reply.
//
// Session pinning: a CHALLENGE reply starts a chained-auth session whose
// nonce lives on the shard that issued it, so the gateway pins (client
// connection, device id) -> shard at CHALLENGE and routes the matching
// CHAINED_AUTH to the pin even if the shard is draining — drain stops NEW
// sessions, in-flight ones complete.  The pin dies with the chained auth
// or the client connection.
//
// Shard lifecycle (kAdminRequest, handled inline on the event loop):
//   add     — insert a shard (or re-point an existing name at a new
//             endpoint: failover keeps ring placement, see ring.hpp)
//   drain   — stop routing new sessions; optional successor endpoint
//             turns refusals into typed kRedirectReply
//   undrain — cancel a drain
//   remove  — take the shard out of the ring (in-flight forwards finish:
//             workers hold the shard alive by shared_ptr)
//   status  — every shard's state + counters + replication telemetry
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/status.hpp"

namespace ppuf::fleet {

struct GatewayOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  int listen_backlog = 64;
  unsigned threads = 4;           ///< forwarding worker pool size
  std::size_t max_inflight = 256; ///< admission bound on forwards
  /// Ring points per shard (see HashRing::kDefaultVnodes).
  std::size_t vnodes = 128;
  /// Forward budget when the client frame carries none (0 = unlimited).
  int default_forward_timeout_ms = 30000;
  int shard_connect_timeout_ms = 2000;
  /// Health prober cadence and hysteresis thresholds.
  int health_interval_ms = 200;
  int health_timeout_ms = 1000;
  int health_failures_to_down = 3;
  int health_successes_to_up = 1;
  /// Per-connection reply backlog bound (same contract as the server's).
  std::size_t max_connection_backlog_bytes = 4 * 1024 * 1024;
};

/// Numeric shard state carried in ShardStatus::state on the wire.
enum class ShardState : std::uint8_t {
  kUp = 1,
  kDraining = 2,  ///< refusing new sessions (admin drain in effect)
  kDown = 3,      ///< health prober declared it dead
};

class Gateway {
 public:
  explicit Gateway(GatewayOptions options = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Add a shard before or after start(); same semantics as the admin op.
  util::Status add_shard(const std::string& name, const std::string& host,
                         std::uint16_t port);

  /// Bind, listen, spawn the event loop + workers + health prober.
  util::Status start();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful shutdown: stop accepting, reject new requests with
  /// SHUTTING_DOWN, let in-flight forwards finish, flush, close.
  /// Idempotent; safe from any thread.
  void request_drain();
  void wait();
  void stop();  ///< request_drain() + wait(); also run by the destructor

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests = 0;            ///< admitted for forwarding
    std::uint64_t forwarded = 0;           ///< shard round trips completed
    std::uint64_t redirects_sent = 0;      ///< kRedirectReply answers
    std::uint64_t unavailable_rejections = 0;  ///< SHARD_UNAVAILABLE answers
    std::uint64_t overloaded_rejections = 0;
    std::uint64_t shutdown_rejections = 0;
    std::uint64_t malformed_frames = 0;
    std::uint64_t admin_requests = 0;
    std::uint64_t pins_created = 0;
    std::uint64_t health_probes = 0;
    /// Forwards that were in flight to a shard when it failed mid-drain.
    /// The drain contract is that this stays 0: draining refuses NEW work
    /// but never abandons accepted work.
    std::uint64_t dropped_inflight = 0;
  };
  Stats stats() const;

 private:
  struct Impl;
  GatewayOptions options_;
  std::unique_ptr<Impl> impl_;
  std::thread loop_thread_;
  std::thread health_thread_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
};

}  // namespace ppuf::fleet
