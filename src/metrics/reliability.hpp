// Reliability analysis beyond Table 1: response bit-error rate as a
// function of comparator noise and environment, and the standard
// majority-vote stabilisation used when a PUF bit feeds key material.
#pragma once

#include <cstddef>
#include <vector>

#include "ppuf/ppuf.hpp"

namespace ppuf::metrics {

struct ReliabilityPoint {
  double noise_sigma = 0.0;  ///< comparator input noise [A]
  double bit_error_rate = 0.0;
  std::size_t samples = 0;
};

/// Bit-error rate vs comparator noise: for each sigma, evaluates
/// `challenges` random challenges `repeats` times against the noiseless
/// reference and counts flips.
std::vector<ReliabilityPoint> ber_vs_noise(
    MaxFlowPpuf& instance, const std::vector<double>& noise_sigmas,
    std::size_t challenges, std::size_t repeats, util::Rng& rng,
    const circuit::Environment& env = circuit::Environment::nominal());

/// Majority vote of `votes` noisy evaluations (votes must be odd).
int majority_vote_response(MaxFlowPpuf& instance, const Challenge& challenge,
                           std::size_t votes, util::Rng& noise_rng,
                           const circuit::Environment& env =
                               circuit::Environment::nominal());

/// BER of the majority-vote response under the instance's configured
/// noise, against the noiseless reference.
double majority_vote_ber(MaxFlowPpuf& instance, std::size_t votes,
                         std::size_t challenges, util::Rng& rng,
                         const circuit::Environment& env =
                             circuit::Environment::nominal());

}  // namespace ppuf::metrics
