// Bit-vector Hamming utilities shared by the PUF metrics and the attacks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ppuf::metrics {

using BitVector = std::vector<std::uint8_t>;

/// Number of differing positions; sizes must match.
std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

/// Hamming distance divided by length (0 for empty vectors).
double fractional_hamming_distance(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b);

/// Fraction of ones (0 for empty).
double fraction_of_ones(std::span<const std::uint8_t> bits);

}  // namespace ppuf::metrics
