#include "metrics/flip.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppuf::metrics {

namespace {

std::size_t select_bits(std::size_t n) {
  std::size_t bits = 0;
  while ((1ull << bits) < n) ++bits;
  return std::max<std::size_t>(bits, 1);
}

}  // namespace

Challenge decode_full_input(const CrossbarLayout& layout,
                            const std::vector<std::uint8_t>& bits) {
  if (bits.size() != full_input_bits(layout))
    throw std::invalid_argument("decode_full_input: wrong width");
  const std::size_t n = layout.node_count();
  const std::size_t sb = select_bits(n);
  auto field = [&](std::size_t offset) {
    std::size_t v = 0;
    for (std::size_t i = 0; i < sb; ++i)
      v = (v << 1) | (bits[offset + i] ? 1 : 0);
    return v % n;
  };
  Challenge c;
  c.source = static_cast<graph::VertexId>(field(0));
  c.sink = static_cast<graph::VertexId>(field(sb));
  if (c.sink == c.source)
    c.sink = static_cast<graph::VertexId>((c.sink + 1) % n);
  c.bits.assign(bits.begin() + static_cast<std::ptrdiff_t>(2 * sb),
                bits.end());
  return c;
}

std::size_t full_input_bits(const CrossbarLayout& layout) {
  return 2 * select_bits(layout.node_count()) + layout.cell_count();
}

std::vector<FlipPoint> flip_probability_vs_distance(
    MaxFlowPpuf& instance, const std::vector<std::size_t>& distances,
    std::size_t pairs_per_distance, util::Rng& rng) {
  std::vector<FlipPoint> out;
  out.reserve(distances.size());
  const circuit::Environment env = circuit::Environment::nominal();
  for (const std::size_t d : distances) {
    FlipPoint point;
    point.distance = d;
    std::size_t flips = 0;
    for (std::size_t s = 0; s < pairs_per_distance; ++s) {
      const Challenge base = random_challenge(instance.layout(), rng);
      const Challenge moved = flip_bits(base, d, rng);
      const int r0 = instance.evaluate(base, env).bit;
      const int r1 = instance.evaluate(moved, env).bit;
      flips += r0 != r1 ? 1 : 0;
    }
    point.samples = pairs_per_distance;
    point.flip_probability = pairs_per_distance > 0
                                 ? static_cast<double>(flips) /
                                       static_cast<double>(pairs_per_distance)
                                 : 0.0;
    out.push_back(point);
  }
  return out;
}

std::vector<FlipPoint> flip_probability_vs_distance_full_input(
    MaxFlowPpuf& instance, const std::vector<std::size_t>& distances,
    std::size_t pairs_per_distance, util::Rng& rng) {
  const CrossbarLayout& layout = instance.layout();
  const std::size_t width = full_input_bits(layout);
  const circuit::Environment env = circuit::Environment::nominal();

  std::vector<FlipPoint> out;
  out.reserve(distances.size());
  for (const std::size_t d : distances) {
    FlipPoint point;
    point.distance = d;
    std::size_t flips = 0;
    for (std::size_t s = 0; s < pairs_per_distance; ++s) {
      std::vector<std::uint8_t> base(width);
      for (auto& b : base) b = rng.coin() ? 1 : 0;
      std::vector<std::uint8_t> moved = base;
      // Partial Fisher-Yates for d distinct flip positions.
      std::vector<std::size_t> idx(width);
      for (std::size_t i = 0; i < width; ++i) idx[i] = i;
      for (std::size_t i = 0; i < d; ++i) {
        const auto j = static_cast<std::size_t>(rng.uniform_int(
            static_cast<std::int64_t>(i),
            static_cast<std::int64_t>(width) - 1));
        std::swap(idx[i], idx[j]);
        moved[idx[i]] ^= 1;
      }
      const int r0 =
          instance.evaluate(decode_full_input(layout, base), env).bit;
      const int r1 =
          instance.evaluate(decode_full_input(layout, moved), env).bit;
      flips += r0 != r1 ? 1 : 0;
    }
    point.samples = pairs_per_distance;
    point.flip_probability =
        pairs_per_distance > 0
            ? static_cast<double>(flips) /
                  static_cast<double>(pairs_per_distance)
            : 0.0;
    out.push_back(point);
  }
  return out;
}

}  // namespace ppuf::metrics
