#include "metrics/hamming.hpp"

#include <stdexcept>

namespace ppuf::metrics {

std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("hamming_distance: size mismatch");
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] != 0) != (b[i] != 0);
  return d;
}

double fractional_hamming_distance(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) {
  if (a.empty()) return 0.0;
  return static_cast<double>(hamming_distance(a, b)) /
         static_cast<double>(a.size());
}

double fraction_of_ones(std::span<const std::uint8_t> bits) {
  if (bits.empty()) return 0.0;
  std::size_t ones = 0;
  for (std::uint8_t b : bits) ones += b != 0 ? 1 : 0;
  return static_cast<double>(ones) / static_cast<double>(bits.size());
}

}  // namespace ppuf::metrics
