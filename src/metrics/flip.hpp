// Output-flip probability vs challenge minimum Hamming distance (Fig. 9):
// flipping d type-B bits of a challenge should flip the response with
// probability approaching 0.5 as d grows — the paper's justification for
// restricting challenges to a minimum-distance-d code.
#pragma once

#include <cstddef>
#include <vector>

#include "ppuf/ppuf.hpp"

namespace ppuf::metrics {

struct FlipPoint {
  std::size_t distance = 0;       ///< number of flipped type-B bits d
  double flip_probability = 0.0;  ///< P(response flips)
  std::size_t samples = 0;
};

/// For each d in `distances`, samples `pairs_per_distance` base challenges
/// on the given instance, flips exactly d bits, and measures how often the
/// response flips.  Noise-free evaluations (the effect under study is the
/// challenge sensitivity, not comparator noise).
std::vector<FlipPoint> flip_probability_vs_distance(
    MaxFlowPpuf& instance, const std::vector<std::size_t>& distances,
    std::size_t pairs_per_distance, util::Rng& rng);

/// Full-input-vector variant: the physical challenge lines include the
/// type-A source/sink selection, so "flipping d input bits" can retarget
/// the flow.  The input vector here is
///   [ceil(log2 n) source bits | ceil(log2 n) sink bits | l^2 type-B bits]
/// with indices decoded mod n (degenerate source == sink re-rolls the
/// sink's low bit).  Flipping a selection bit usually re-randomises the
/// response completely, which is what pushes the paper's Fig. 9 curve to
/// ~0.5 by d = 16.
std::vector<FlipPoint> flip_probability_vs_distance_full_input(
    MaxFlowPpuf& instance, const std::vector<std::size_t>& distances,
    std::size_t pairs_per_distance, util::Rng& rng);

/// Number of bits in the full input vector of a layout.
std::size_t full_input_bits(const CrossbarLayout& layout);

/// Decode a full input vector (as described above) into a challenge.
/// `bits` must have exactly full_input_bits(layout) entries.
Challenge decode_full_input(const CrossbarLayout& layout,
                            const std::vector<std::uint8_t>& bits);

}  // namespace ppuf::metrics
