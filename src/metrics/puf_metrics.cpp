#include "metrics/puf_metrics.hpp"

#include <stdexcept>

#include "util/statistics.hpp"

namespace ppuf::metrics {

namespace {
Statistic from_samples(const std::vector<double>& xs) {
  Statistic s;
  s.mean = util::mean(xs);
  s.stddev = util::stddev(xs);
  return s;
}

void check_matrix(const ResponseMatrix& m, const char* who) {
  if (m.empty() || m.front().empty())
    throw std::invalid_argument(std::string(who) + ": empty matrix");
  for (const auto& row : m) {
    if (row.size() != m.front().size())
      throw std::invalid_argument(std::string(who) + ": ragged matrix");
  }
}
}  // namespace

Statistic inter_class_hd(const ResponseMatrix& responses) {
  check_matrix(responses, "inter_class_hd");
  if (responses.size() < 2)
    throw std::invalid_argument("inter_class_hd: need >= 2 instances");
  std::vector<double> samples;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    for (std::size_t j = i + 1; j < responses.size(); ++j) {
      samples.push_back(
          fractional_hamming_distance(responses[i], responses[j]));
    }
  }
  return from_samples(samples);
}

Statistic intra_class_hd(const ResponseMatrix& reference,
                         const std::vector<ResponseMatrix>& reevaluations) {
  check_matrix(reference, "intra_class_hd");
  if (reevaluations.size() != reference.size())
    throw std::invalid_argument("intra_class_hd: instance count mismatch");
  std::vector<double> samples;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    for (const BitVector& redo : reevaluations[i]) {
      samples.push_back(fractional_hamming_distance(reference[i], redo));
    }
  }
  if (samples.empty())
    throw std::invalid_argument("intra_class_hd: no re-evaluations");
  return from_samples(samples);
}

Statistic uniformity(const ResponseMatrix& responses) {
  check_matrix(responses, "uniformity");
  std::vector<double> samples;
  samples.reserve(responses.size());
  for (const BitVector& row : responses)
    samples.push_back(fraction_of_ones(row));
  return from_samples(samples);
}

Statistic randomness(const ResponseMatrix& responses) {
  check_matrix(responses, "randomness");
  const std::size_t challenges = responses.front().size();
  std::vector<double> samples(challenges, 0.0);
  for (std::size_t c = 0; c < challenges; ++c) {
    std::size_t ones = 0;
    for (const BitVector& row : responses) ones += row[c] != 0 ? 1 : 0;
    samples[c] =
        static_cast<double>(ones) / static_cast<double>(responses.size());
  }
  return from_samples(samples);
}

}  // namespace ppuf::metrics
