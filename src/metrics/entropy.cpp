#include "metrics/entropy.hpp"

#include <cmath>
#include <stdexcept>

namespace ppuf::metrics {

namespace {

double log2_safe(double x) { return x > 0.0 ? std::log2(x) : 0.0; }

void check(const ResponseMatrix& m, const char* who) {
  if (m.empty() || m.front().empty())
    throw std::invalid_argument(std::string(who) + ": empty matrix");
  for (const auto& row : m) {
    if (row.size() != m.front().size())
      throw std::invalid_argument(std::string(who) + ": ragged matrix");
  }
}

std::vector<double> per_challenge_p(const ResponseMatrix& m) {
  const std::size_t challenges = m.front().size();
  std::vector<double> p(challenges, 0.0);
  for (std::size_t c = 0; c < challenges; ++c) {
    std::size_t ones = 0;
    for (const auto& row : m) ones += row[c] != 0 ? 1 : 0;
    p[c] = static_cast<double>(ones) / static_cast<double>(m.size());
  }
  return p;
}

}  // namespace

double binary_entropy(double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("binary_entropy: p outside [0,1]");
  return -(p * log2_safe(p) + (1.0 - p) * log2_safe(1.0 - p));
}

double shannon_entropy_per_bit(const ResponseMatrix& responses) {
  check(responses, "shannon_entropy_per_bit");
  double total = 0.0;
  const auto p = per_challenge_p(responses);
  for (const double pc : p) total += binary_entropy(pc);
  return total / static_cast<double>(p.size());
}

double min_entropy_per_bit(const ResponseMatrix& responses) {
  check(responses, "min_entropy_per_bit");
  double total = 0.0;
  const auto p = per_challenge_p(responses);
  for (const double pc : p) total += -log2_safe(std::max(pc, 1.0 - pc));
  return total / static_cast<double>(p.size());
}

double mean_pairwise_mutual_information(const ResponseMatrix& responses,
                                        std::size_t max_pairs) {
  check(responses, "mean_pairwise_mutual_information");
  const std::size_t instances = responses.size();
  const std::size_t challenges = responses.front().size();
  if (challenges < 2)
    throw std::invalid_argument(
        "mean_pairwise_mutual_information: need >= 2 challenges");

  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < challenges && pairs < max_pairs; ++a) {
    for (std::size_t b = a + 1; b < challenges && pairs < max_pairs; ++b) {
      // Joint distribution of (bit_a, bit_b) over the population.
      double joint[2][2] = {{0, 0}, {0, 0}};
      for (const auto& row : responses)
        joint[row[a] != 0 ? 1 : 0][row[b] != 0 ? 1 : 0] += 1.0;
      for (auto& r : joint)
        for (double& v : r) v /= static_cast<double>(instances);
      const double pa = joint[1][0] + joint[1][1];
      const double pb = joint[0][1] + joint[1][1];
      const double marg[2] = {1.0 - pa, pa};
      const double margb[2] = {1.0 - pb, pb};
      double mi = 0.0;
      for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
          if (joint[i][j] > 0.0 && marg[i] > 0.0 && margb[j] > 0.0)
            mi += joint[i][j] *
                  std::log2(joint[i][j] / (marg[i] * margb[j]));
        }
      }
      total += mi;
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace ppuf::metrics
