// Standard PUF quality metrics (Maiti et al., the paper's ref [27]),
// computed from a response matrix: responses[i][c] is instance i's response
// bit to challenge c.  Table 1 of the paper reports mean and standard
// deviation of each.
#pragma once

#include <vector>

#include "metrics/hamming.hpp"

namespace ppuf::metrics {

struct Statistic {
  double mean = 0.0;
  double stddev = 0.0;
};

using ResponseMatrix = std::vector<BitVector>;  // [instance][challenge]

/// Inter-class HD: fractional Hamming distance between the response vectors
/// of every pair of distinct instances (ideal 0.5).
Statistic inter_class_hd(const ResponseMatrix& responses);

/// Intra-class HD: fractional distance between each instance's reference
/// responses and each of its re-evaluations under noise/environmental
/// variation (ideal 0).  `reevaluations[i]` holds one or more response
/// vectors of instance i.
Statistic intra_class_hd(const ResponseMatrix& reference,
                         const std::vector<ResponseMatrix>& reevaluations);

/// Uniformity: per-instance fraction of 1-responses (ideal 0.5); the spread
/// is over instances.
Statistic uniformity(const ResponseMatrix& responses);

/// Randomness (bit-aliasing across the population): per-challenge fraction
/// of instances answering 1 (ideal 0.5); the spread is over challenges.
/// Same overall mean as uniformity — computed over the other axis of the
/// matrix — matching the structure of the paper's Table 1.
Statistic randomness(const ResponseMatrix& responses);

}  // namespace ppuf::metrics
