// Response-entropy estimation — how many key bits a PPUF population
// actually yields.  Complements Table 1: uniformity/randomness report
// first moments; entropy quantifies extractable randomness.
#pragma once

#include "metrics/puf_metrics.hpp"

namespace ppuf::metrics {

/// Shannon entropy of a Bernoulli(p) bit, in bits.
double binary_entropy(double p);

/// Average per-challenge Shannon entropy across the population:
/// mean over challenges of H(P[response = 1]).  Ideal 1 bit.
double shannon_entropy_per_bit(const ResponseMatrix& responses);

/// Average per-challenge min-entropy: mean of -log2 max(p, 1-p).  The
/// conservative figure key-derivation budgets use.  Ideal 1 bit.
double min_entropy_per_bit(const ResponseMatrix& responses);

/// Mean pairwise mutual information between challenge positions (bits),
/// estimated over the instance population.  Near 0 for independent
/// responses; large values flag structural correlation that would inflate
/// the naive entropy-per-bit times bit-count estimate.
double mean_pairwise_mutual_information(const ResponseMatrix& responses,
                                        std::size_t max_pairs = 2000);

}  // namespace ppuf::metrics
