#include "metrics/reliability.hpp"

#include <stdexcept>

namespace ppuf::metrics {

std::vector<ReliabilityPoint> ber_vs_noise(
    MaxFlowPpuf& instance, const std::vector<double>& noise_sigmas,
    std::size_t challenges, std::size_t repeats, util::Rng& rng,
    const circuit::Environment& env) {
  // Collect reference responses and margins once; noise is then applied to
  // the margins directly (the comparator adds noise after the analog sum,
  // so re-solving the network per noise draw would be pure waste).
  std::vector<double> margins;
  std::vector<int> reference;
  for (std::size_t c = 0; c < challenges; ++c) {
    const Challenge ch = random_challenge(instance.layout(), rng);
    const auto e = instance.evaluate(ch, env);
    margins.push_back(e.current_a - e.current_b +
                      instance.comparator_offset());
    reference.push_back(e.bit);
  }

  std::vector<ReliabilityPoint> out;
  for (const double sigma : noise_sigmas) {
    ReliabilityPoint p;
    p.noise_sigma = sigma;
    std::size_t flips = 0;
    for (std::size_t c = 0; c < margins.size(); ++c) {
      for (std::size_t r = 0; r < repeats; ++r) {
        const int bit =
            (margins[c] + rng.gaussian(0.0, sigma)) > 0.0 ? 1 : 0;
        flips += bit != reference[c] ? 1 : 0;
      }
    }
    p.samples = margins.size() * repeats;
    p.bit_error_rate =
        p.samples > 0 ? static_cast<double>(flips) /
                            static_cast<double>(p.samples)
                      : 0.0;
    out.push_back(p);
  }
  return out;
}

int majority_vote_response(MaxFlowPpuf& instance, const Challenge& challenge,
                           std::size_t votes, util::Rng& noise_rng,
                           const circuit::Environment& env) {
  if (votes == 0 || votes % 2 == 0)
    throw std::invalid_argument("majority_vote_response: votes must be odd");
  std::size_t ones = 0;
  for (std::size_t v = 0; v < votes; ++v)
    ones += instance.evaluate(challenge, env, &noise_rng).bit;
  return ones * 2 > votes ? 1 : 0;
}

double majority_vote_ber(MaxFlowPpuf& instance, std::size_t votes,
                         std::size_t challenges, util::Rng& rng,
                         const circuit::Environment& env) {
  std::size_t flips = 0;
  for (std::size_t c = 0; c < challenges; ++c) {
    const Challenge ch = random_challenge(instance.layout(), rng);
    const int reference = instance.evaluate(ch, env).bit;
    flips += majority_vote_response(instance, ch, votes, rng, env) !=
                     reference
                 ? 1
                 : 0;
  }
  return challenges > 0
             ? static_cast<double>(flips) / static_cast<double>(challenges)
             : 0.0;
}

}  // namespace ppuf::metrics
