// Typed outcomes, wall-clock budgets, and cooperative cancellation shared by
// every long-running solver in the project.
//
// The authentication protocol is built on *timely* answers, so a solver that
// can neither be bounded in time nor report a typed failure is a liability:
// the service layer needs "this item timed out" / "this item was malformed"
// as data, not as a stray exception that destroys a whole batch.  This
// header provides the vocabulary:
//
//   - Status / StatusCode: a small typed outcome (ok, cancelled, deadline
//     exceeded, invalid argument, ...) carried by solver results.
//   - Deadline: an absolute wall-clock budget (steady clock).
//   - CancelToken: a shared flag for cooperative cancellation.
//   - SolveControl: the pair (deadline, cancel token) threaded through the
//     max-flow solvers and batch front end.
//   - StopCheck: a cheap periodic checker for inner loops (one relaxed
//     atomic load per call; the clock is read only every `stride` calls).
//   - TransientError: an exception type marking failures that are worth
//     retrying (injected faults, resource exhaustion), as opposed to
//     deterministic ones (malformed input) that are not.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

namespace ppuf::util {

enum class StatusCode {
  kOk,
  kCancelled,
  kDeadlineExceeded,
  kInvalidArgument,
  kInternal,
  kUnavailable,  ///< transient: overloaded / draining / transport failure
  kNotFound,     ///< named entity (e.g. a device id) is not in the store
};

const char* status_code_name(StatusCode code);

/// A typed outcome with an optional human-readable message.  Default
/// constructed Status is ok, so result structs can grow a `status` member
/// without disturbing existing success paths.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status deadline_exceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status invalid_argument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status not_found(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "DEADLINE_EXCEEDED: ran out of budget after item 7".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Absolute wall-clock budget.  Default constructed deadlines are unlimited
/// (never expire), so passing `{}` means "no budget".
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< unlimited

  static Deadline unlimited() { return Deadline(); }
  /// Expires `seconds` from now; 0 (or negative) expires immediately.
  static Deadline after_seconds(double seconds);
  static Deadline at(Clock::time_point when) {
    Deadline d;
    d.limited_ = true;
    d.when_ = when;
    return d;
  }

  bool is_unlimited() const { return !limited_; }
  bool expired() const { return limited_ && Clock::now() >= when_; }
  /// Seconds until expiry; +inf when unlimited, <= 0 when expired.
  double remaining_seconds() const;
  /// Time until expiry, clamped to zero once expired;
  /// Clock::duration::max() when unlimited.  This is the form the service
  /// layer puts on the wire: an absolute deadline becomes a per-request
  /// millisecond budget that survives serialization.
  Clock::duration remaining() const;

 private:
  bool limited_ = false;
  Clock::time_point when_{};
};

/// Shared cooperative-cancellation flag.  Copies observe the same flag;
/// cancellation is sticky.  Thread-safe.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Deadline + optional cancel token, threaded through solvers.  Trivially
/// copyable-ish and cheap to pass by value; the default (`{}`) imposes no
/// constraint, so existing call sites keep their semantics.
struct SolveControl {
  Deadline deadline{};                    ///< wall-clock budget
  const CancelToken* cancel = nullptr;    ///< optional cancellation flag

  bool unconstrained() const {
    return deadline.is_unlimited() && cancel == nullptr;
  }
};

/// Periodic stop checker for solver inner loops.  The cancel flag is read on
/// every call (one relaxed atomic load); the clock only every `stride`
/// calls, plus on the very first call so a zero budget stops before any
/// work happens.  Once stopped, stays stopped.
class StopCheck {
 public:
  explicit StopCheck(const SolveControl& control, std::uint32_t stride = 256)
      : control_(control), stride_(stride == 0 ? 1 : stride) {}

  /// True when the solve should stop; query `status()` for the reason.
  bool should_stop() {
    if (code_ != StatusCode::kOk) return true;
    if (control_.unconstrained()) return false;
    if (control_.cancel != nullptr && control_.cancel->cancelled()) {
      code_ = StatusCode::kCancelled;
      return true;
    }
    if (count_++ % stride_ == 0 && control_.deadline.expired()) {
      code_ = StatusCode::kDeadlineExceeded;
      return true;
    }
    return false;
  }

  /// Why the solve stopped (ok when it never stopped).
  Status status(const std::string& where) const;

 private:
  SolveControl control_;
  std::uint32_t stride_;
  std::uint32_t count_ = 0;
  StatusCode code_ = StatusCode::kOk;
};

/// Failure worth retrying (injected fault, transient resource exhaustion).
/// solve_batch retries these up to BatchOptions::max_attempts; every other
/// exception type is treated as deterministic and fails the item at once.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace ppuf::util
