#include "util/status.hpp"

#include <limits>

namespace ppuf::util {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string s = status_code_name(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

Deadline Deadline::after_seconds(double seconds) {
  Deadline d;
  d.limited_ = true;
  if (seconds <= 0.0) {
    d.when_ = Clock::now();
    return d;
  }
  d.when_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds));
  return d;
}

double Deadline::remaining_seconds() const {
  if (!limited_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ - Clock::now()).count();
}

Deadline::Clock::duration Deadline::remaining() const {
  if (!limited_) return Clock::duration::max();
  const auto left = when_ - Clock::now();
  return left < Clock::duration::zero() ? Clock::duration::zero() : left;
}

Status StopCheck::status(const std::string& where) const {
  switch (code_) {
    case StatusCode::kCancelled:
      return Status::cancelled(where + ": cancelled");
    case StatusCode::kDeadlineExceeded:
      return Status::deadline_exceeded(where + ": deadline exceeded");
    default:
      return Status::ok();
  }
}

}  // namespace ppuf::util
