#include "util/fault_hooks.hpp"

namespace ppuf::util {

FaultHooks& FaultHooks::instance() {
  static FaultHooks hooks;
  return hooks;
}

}  // namespace ppuf::util
