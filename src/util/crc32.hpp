// CRC-32C (Castagnoli) over byte spans.
//
// The device registry frames every write-ahead-log record and snapshot
// body with a checksum so recovery can tell a *torn* write (incomplete
// tail bytes: truncate and continue) from *corruption* (a complete record
// whose bytes changed: a typed error).  CRC-32C is the standard pick for
// this job (iSCSI, ext4, LevelDB); the table-driven software form below is
// plenty fast for registry record sizes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ppuf::util {

/// CRC-32C of [data, data+size).  `seed` chains partial computations:
/// crc32c(b, crc32c(a)) == crc32c(a||b).
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace ppuf::util
