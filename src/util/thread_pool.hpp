// Fixed-size worker pool with per-worker deques and work stealing.
//
// The verifier side of the protocol is the cheap side of the paper's
// asymmetry — it must answer many authentication requests per second, each
// a handful of independent residual-graph checks or max-flow solves.  That
// workload is embarrassingly parallel *across* items, so the batch front
// ends (maxflow::solve_batch, SimulationModel::predict_batch,
// protocol::Verifier::verify_batch) all funnel into this one pool instead
// of each spawning ad-hoc std::threads per call.
//
// Design:
//   - `thread_count` workers are spawned once and live for the pool's
//     lifetime; parallel_for() distributes indices round-robin across the
//     per-worker deques, each worker drains its own deque front-first and
//     steals from the *back* of a victim's deque when empty (classic
//     work-stealing shape: owner and thief touch opposite ends).
//   - Cancellation/deadline integration: the control-aware parallel_for
//     keeps dispatching every index, but once the SolveControl fires the
//     task body receives the sticky non-ok Status so it can mark its item
//     ("cancelled before start") instead of attempting it.  That matches
//     the batch contract — every item ends with a typed status, none are
//     silently dropped.
//   - parallel_for calls carry their own completion state, so independent
//     callers may share one pool concurrently; tasks must not themselves
//     call parallel_for on the same pool (no nested dispatch).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.hpp"

namespace ppuf::util {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers (at least one).
  explicit ThreadPool(unsigned thread_count);

  /// Drains queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Default worker count for "use the machine": hardware concurrency,
  /// clamped to at least 1 (hardware_concurrency() may return 0).
  static unsigned default_thread_count();

  /// Fire-and-forget: enqueue one task (round-robin across the worker
  /// deques) and return immediately.  This is the service entry point —
  /// the AuthServer event loop hands each decoded request to the pool and
  /// goes back to its sockets.  The task must not throw (there is no job
  /// to collect the exception; an escaping one terminates the process) and
  /// must not itself call submit()/parallel_for() on the same pool.
  void submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, count); blocks until all have run.
  /// Exceptions thrown by fn are a bug in the caller (batch fronts catch
  /// per-item failures themselves); the first one is rethrown after the
  /// remaining tasks finish.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Control-aware variant.  Every index is still dispatched, but once
  /// `control` fires fn is handed the sticky non-ok Status (kCancelled or
  /// kDeadlineExceeded) so it can mark its item without attempting it.
  /// Returns Ok when every item was handed an ok status (even if the
  /// deadline expired while the last item was running or after it
  /// finished — a completed batch is a completed batch); returns the
  /// sticky status once any item observed the stop.
  Status parallel_for(
      std::size_t count,
      const std::function<void(std::size_t, const Status&)>& fn,
      const SolveControl& control);

 private:
  struct WorkerQueue;
  struct Job;

  void worker_loop(unsigned worker_index);
  /// Pop from own deque front, else steal from the back of another
  /// worker's deque.  Returns false when no task was found anywhere.
  bool try_take_task(unsigned worker_index, std::function<void()>* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0};  ///< submit() round-robin cursor

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stopping_ = false;
  std::size_t pending_ = 0;  ///< tasks enqueued but not yet taken by a worker
};

}  // namespace ppuf::util
