// Process-wide fault-injection hook points.
//
// The deterministic fault harness (src/testing/fault_injection.*) needs to
// reach *inside* the solvers — e.g. starve the direct Newton stage so the
// recovery ladder provably fires, or make a batch worker fail transiently so
// the retry path is exercised.  Those layers must not link against the test
// harness, so the hooks live here, at the bottom of the dependency graph:
// a handful of atomics the solvers consult with one relaxed load each.
//
// All hooks default to "inactive" (zero); production code never arms them.
// Arm/disarm through testing::ScopedFaultInjection, which restores the
// previous state on scope exit.  Hooks are intentionally crude knobs — the
// richer, seeded corruption (device parameters, NaN capacities, delayed
// reports) is pure-function work in the harness itself and needs no hooks.
#pragma once

#include <atomic>

namespace ppuf::util {

struct FaultHooks {
  /// > 0: cap the *direct* Newton stage (circuit::DcSolver and
  /// ppuf::NetworkSolver) at this many iterations, forcing a stall that
  /// only the recovery ladder can clear.  Ladder stages are unaffected.
  std::atomic<int> newton_direct_iteration_cap{0};

  /// true: skip the gmin-stepping rung so a forced stall escalates to
  /// source stepping / tightened damping (lets tests pin the deeper rungs).
  std::atomic<bool> newton_skip_gmin_stage{false};

  /// > 0: countdown of batch solve attempts that throw util::TransientError
  /// before doing any work (exercises solve_batch's bounded retry).
  std::atomic<int> maxflow_transient_failures{0};

  /// > 0: countdown of AuthServer socket sends that fail as if the peer
  /// reset the connection (the hard-error branch of flush()).  Lets tests
  /// deterministically close a connection mid-pipeline, a path that is
  /// otherwise a narrow timing race against a real RST.
  std::atomic<int> server_send_failures{0};

  /// >= 0: the next registry write-ahead-log append writes only this many
  /// bytes of the record and then fails as if the process died (a torn
  /// tail).  One-shot: consumed by the first append that observes it.
  /// -1 (default): inactive.  Crash-recovery tests arm this to prove the
  /// registry truncates the torn tail on reopen and keeps every
  /// previously committed device.
  std::atomic<int> registry_torn_write_bytes{-1};

  static FaultHooks& instance();

  bool any_newton_fault() const {
    return newton_direct_iteration_cap.load(std::memory_order_relaxed) > 0 ||
           newton_skip_gmin_stage.load(std::memory_order_relaxed);
  }

  /// Atomically consume one injected transient failure; true when the
  /// calling solve attempt should fail.
  static bool consume_transient_failure() {
    return consume_countdown(instance().maxflow_transient_failures);
  }

  /// Atomically consume one injected send failure; true when the calling
  /// send should fail as a peer reset.
  static bool consume_server_send_failure() {
    return consume_countdown(instance().server_send_failures);
  }

  /// Atomically consume the one-shot torn-write injection.  Returns the
  /// armed byte count (>= 0) exactly once, -1 otherwise.
  static int consume_registry_torn_write() {
    auto& hook = instance().registry_torn_write_bytes;
    if (hook.load(std::memory_order_relaxed) < 0) return -1;
    return hook.exchange(-1, std::memory_order_relaxed);
  }

  void reset() {
    newton_direct_iteration_cap.store(0, std::memory_order_relaxed);
    newton_skip_gmin_stage.store(false, std::memory_order_relaxed);
    maxflow_transient_failures.store(0, std::memory_order_relaxed);
    server_send_failures.store(0, std::memory_order_relaxed);
    registry_torn_write_bytes.store(-1, std::memory_order_relaxed);
  }

 private:
  static bool consume_countdown(std::atomic<int>& counter) {
    int n = counter.load(std::memory_order_relaxed);
    while (n > 0) {
      if (counter.compare_exchange_weak(n, n - 1,
                                        std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace ppuf::util
