// Process-wide fault-injection hook points.
//
// The deterministic fault harness (src/testing/fault_injection.*) needs to
// reach *inside* the solvers — e.g. starve the direct Newton stage so the
// recovery ladder provably fires, or make a batch worker fail transiently so
// the retry path is exercised.  Those layers must not link against the test
// harness, so the hooks live here, at the bottom of the dependency graph:
// a handful of atomics the solvers consult with one relaxed load each.
//
// Two kinds of hooks coexist:
//
//   * Deterministic hooks (countdowns / one-shots) for targeted regression
//     tests: "the next N appends fail", "the next send is a peer reset".
//
//   * The probabilistic chaos plane: per-site probabilities in parts per
//     million, drawn from one seeded splitmix64 stream, covering the
//     syscall boundary of the serving stack (client send/recv/latency,
//     server send/short-send/recv/accept, registry write/torn-write/
//     fsync/rename).  The chaos campaign (src/testing/chaos) arms whole
//     schedules of these and asserts serving invariants while they fire.
//
// All hooks default to "inactive" (zero); production code never arms them.
// Arm/disarm through testing::ScopedFaultInjection or the chaos scheduler,
// both of which restore the inactive state on scope exit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ppuf::util {

struct FaultHooks {
  /// > 0: cap the *direct* Newton stage (circuit::DcSolver and
  /// ppuf::NetworkSolver) at this many iterations, forcing a stall that
  /// only the recovery ladder can clear.  Ladder stages are unaffected.
  std::atomic<int> newton_direct_iteration_cap{0};

  /// true: skip the gmin-stepping rung so a forced stall escalates to
  /// source stepping / tightened damping (lets tests pin the deeper rungs).
  std::atomic<bool> newton_skip_gmin_stage{false};

  /// > 0: countdown of batch solve attempts that throw util::TransientError
  /// before doing any work (exercises solve_batch's bounded retry).
  std::atomic<int> maxflow_transient_failures{0};

  /// > 0: countdown of AuthServer socket sends that fail as if the peer
  /// reset the connection (the hard-error branch of flush()).  Lets tests
  /// deterministically close a connection mid-pipeline, a path that is
  /// otherwise a narrow timing race against a real RST.
  std::atomic<int> server_send_failures{0};

  /// true: AuthServer flush() treats every send as EAGAIN (kernel buffer
  /// full) without touching the socket — the deterministic way to grow a
  /// connection's reply backlog for slow-peer tests, independent of the
  /// host's actual socket buffer sizing.  State, not an event: it does
  /// not tick faults_injected.
  std::atomic<bool> server_send_block{false};

  /// >= 0: the next registry write-ahead-log append writes only this many
  /// bytes of the record and then fails as if the process died (a torn
  /// tail).  One-shot: consumed by the first append that observes it.
  /// -1 (default): inactive.  Crash-recovery tests arm this to prove the
  /// registry truncates the torn tail on reopen and keeps every
  /// previously committed device.
  std::atomic<int> registry_torn_write_bytes{-1};

  /// > 0: countdown of registry WAL appends that fail before writing a
  /// single byte, as if the disk were full.  The registry must surface a
  /// typed error and leave in-memory state untouched.
  std::atomic<int> registry_append_failures{0};

  /// > 0: countdown of registry fsync calls (WAL append, snapshot .tmp,
  /// directory) that fail.  The caller must treat the data as
  /// uncommitted.
  std::atomic<int> registry_fsync_failures{0};

  /// > 0: countdown of registry snapshot renames that fail; compaction
  /// must keep serving from the old snapshot + WAL.
  std::atomic<int> registry_rename_failures{0};

  // --------------------------------------------------------------------
  // Probabilistic chaos plane.  Each knob is a probability in parts per
  // million (0 = never, 1'000'000 = always); draws come from one seeded
  // lock-free splitmix64 stream so a campaign seed reproduces the same
  // fault decisions given the same sequence of hook consultations.
  // --------------------------------------------------------------------

  /// Client-side net::send_all fails as kUnavailable before sending.
  std::atomic<std::uint32_t> net_send_fail_ppm{0};
  /// Client-side net::recv_exact fails as kUnavailable before reading.
  std::atomic<std::uint32_t> net_recv_fail_ppm{0};
  /// Client-side socket ops sleep net_latency_us before proceeding.
  std::atomic<std::uint32_t> net_latency_ppm{0};
  std::atomic<std::uint32_t> net_latency_us{0};

  /// Server flush() treats the send as a peer reset (connection dropped).
  std::atomic<std::uint32_t> server_send_fail_ppm{0};
  /// Server flush() sends at most a few bytes (short write), exercising
  /// the partial-write bookkeeping without dropping the connection.
  std::atomic<std::uint32_t> server_send_short_ppm{0};
  /// Server read_ready() treats the recv as a hard error (drop).
  std::atomic<std::uint32_t> server_recv_fail_ppm{0};
  /// Server accept_ready() closes the just-accepted socket immediately.
  std::atomic<std::uint32_t> server_accept_fail_ppm{0};

  /// Registry WAL append fails before writing (disk full).
  std::atomic<std::uint32_t> wal_append_fail_ppm{0};
  /// Registry WAL append writes a random prefix of the record, then fails.
  std::atomic<std::uint32_t> wal_torn_ppm{0};
  /// Registry fsync (WAL / snapshot / directory) fails.
  std::atomic<std::uint32_t> fsync_fail_ppm{0};
  /// Registry snapshot rename fails.
  std::atomic<std::uint32_t> rename_fail_ppm{0};

  /// Seeded splitmix64 state shared by every chaos draw.
  std::atomic<std::uint64_t> chaos_rng_state{0};

  /// Total faults injected (deterministic and probabilistic) since the
  /// last reset; campaigns report it so "zero violations" is falsifiable
  /// against "zero faults actually fired".
  std::atomic<std::uint64_t> faults_injected{0};

  static FaultHooks& instance();

  bool any_newton_fault() const {
    return newton_direct_iteration_cap.load(std::memory_order_relaxed) > 0 ||
           newton_skip_gmin_stage.load(std::memory_order_relaxed);
  }

  /// Seed the chaos draw stream.  Call once per campaign, after reset().
  static void seed_chaos(std::uint64_t seed) {
    instance().chaos_rng_state.store(seed, std::memory_order_relaxed);
  }

  static std::uint64_t total_faults_injected() {
    return instance().faults_injected.load(std::memory_order_relaxed);
  }

  /// Atomically consume one injected transient failure; true when the
  /// calling solve attempt should fail.
  static bool consume_transient_failure() {
    return count(consume_countdown(instance().maxflow_transient_failures));
  }

  /// Atomically consume one injected send failure; true when the calling
  /// send should fail as a peer reset.
  static bool consume_server_send_failure() {
    auto& h = instance();
    return count(consume_countdown(h.server_send_failures) ||
                 h.roll(h.server_send_fail_ppm));
  }

  /// True while server sends should back-pressure as if the socket
  /// buffer were full.
  static bool server_send_blocked() {
    return instance().server_send_block.load(std::memory_order_relaxed);
  }

  /// True when the calling server send should be artificially short.
  static bool consume_server_send_short() {
    auto& h = instance();
    return count(h.roll(h.server_send_short_ppm));
  }

  /// True when the calling server recv should fail as a hard error.
  static bool consume_server_recv_failure() {
    auto& h = instance();
    return count(h.roll(h.server_recv_fail_ppm));
  }

  /// True when the just-accepted server socket should be dropped.
  static bool consume_server_accept_failure() {
    auto& h = instance();
    return count(h.roll(h.server_accept_fail_ppm));
  }

  /// True when the calling client-side send should fail.
  static bool consume_net_send_failure() {
    auto& h = instance();
    return count(h.roll(h.net_send_fail_ppm));
  }

  /// True when the calling client-side recv should fail.
  static bool consume_net_recv_failure() {
    auto& h = instance();
    return count(h.roll(h.net_recv_fail_ppm));
  }

  /// Microseconds of injected latency for the calling client socket op
  /// (0 = none).
  static std::uint32_t consume_net_latency_us() {
    auto& h = instance();
    if (!h.roll(h.net_latency_ppm)) return 0;
    count(true);
    return h.net_latency_us.load(std::memory_order_relaxed);
  }

  /// True when the calling registry WAL append should fail as disk-full.
  static bool consume_registry_append_failure() {
    auto& h = instance();
    return count(consume_countdown(h.registry_append_failures) ||
                 h.roll(h.wal_append_fail_ppm));
  }

  /// True when the calling registry fsync should fail.
  static bool consume_registry_fsync_failure() {
    auto& h = instance();
    return count(consume_countdown(h.registry_fsync_failures) ||
                 h.roll(h.fsync_fail_ppm));
  }

  /// True when the calling registry snapshot rename should fail.
  static bool consume_registry_rename_failure() {
    auto& h = instance();
    return count(consume_countdown(h.registry_rename_failures) ||
                 h.roll(h.rename_fail_ppm));
  }

  /// Atomically consume the one-shot torn-write injection.  Returns the
  /// armed byte count (>= 0) exactly once, -1 otherwise.  When the
  /// deterministic one-shot is inactive, the probabilistic wal_torn_ppm
  /// plane may still tear the record at a seeded prefix of frame_size.
  static int consume_registry_torn_write(std::size_t frame_size) {
    auto& h = instance();
    if (h.registry_torn_write_bytes.load(std::memory_order_relaxed) >= 0) {
      const int armed =
          h.registry_torn_write_bytes.exchange(-1, std::memory_order_relaxed);
      if (armed >= 0) {
        count(true);
        return armed;
      }
    }
    if (frame_size > 0 && h.roll(h.wal_torn_ppm)) {
      count(true);
      return static_cast<int>(h.draw() % frame_size);
    }
    return -1;
  }

  void reset() {
    newton_direct_iteration_cap.store(0, std::memory_order_relaxed);
    newton_skip_gmin_stage.store(false, std::memory_order_relaxed);
    maxflow_transient_failures.store(0, std::memory_order_relaxed);
    server_send_failures.store(0, std::memory_order_relaxed);
    server_send_block.store(false, std::memory_order_relaxed);
    registry_torn_write_bytes.store(-1, std::memory_order_relaxed);
    registry_append_failures.store(0, std::memory_order_relaxed);
    registry_fsync_failures.store(0, std::memory_order_relaxed);
    registry_rename_failures.store(0, std::memory_order_relaxed);
    net_send_fail_ppm.store(0, std::memory_order_relaxed);
    net_recv_fail_ppm.store(0, std::memory_order_relaxed);
    net_latency_ppm.store(0, std::memory_order_relaxed);
    net_latency_us.store(0, std::memory_order_relaxed);
    server_send_fail_ppm.store(0, std::memory_order_relaxed);
    server_send_short_ppm.store(0, std::memory_order_relaxed);
    server_recv_fail_ppm.store(0, std::memory_order_relaxed);
    server_accept_fail_ppm.store(0, std::memory_order_relaxed);
    wal_append_fail_ppm.store(0, std::memory_order_relaxed);
    wal_torn_ppm.store(0, std::memory_order_relaxed);
    fsync_fail_ppm.store(0, std::memory_order_relaxed);
    rename_fail_ppm.store(0, std::memory_order_relaxed);
    chaos_rng_state.store(0, std::memory_order_relaxed);
    faults_injected.store(0, std::memory_order_relaxed);
  }

  /// Zero only the probabilistic plane, leaving deterministic hooks and
  /// the faults_injected tally alone; the chaos scheduler calls this
  /// between phases of a schedule.
  void clear_chaos_plane() {
    net_send_fail_ppm.store(0, std::memory_order_relaxed);
    net_recv_fail_ppm.store(0, std::memory_order_relaxed);
    net_latency_ppm.store(0, std::memory_order_relaxed);
    net_latency_us.store(0, std::memory_order_relaxed);
    server_send_fail_ppm.store(0, std::memory_order_relaxed);
    server_send_short_ppm.store(0, std::memory_order_relaxed);
    server_recv_fail_ppm.store(0, std::memory_order_relaxed);
    server_accept_fail_ppm.store(0, std::memory_order_relaxed);
    wal_append_fail_ppm.store(0, std::memory_order_relaxed);
    wal_torn_ppm.store(0, std::memory_order_relaxed);
    fsync_fail_ppm.store(0, std::memory_order_relaxed);
    rename_fail_ppm.store(0, std::memory_order_relaxed);
  }

 private:
  static bool consume_countdown(std::atomic<int>& counter) {
    int n = counter.load(std::memory_order_relaxed);
    while (n > 0) {
      if (counter.compare_exchange_weak(n, n - 1,
                                        std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// One splitmix64 step on the shared chaos stream.  fetch_add of the
  /// golden gamma keeps the stream lock-free under concurrent draws; the
  /// finalizer decorrelates consecutive outputs.
  std::uint64_t draw() {
    std::uint64_t z = chaos_rng_state.fetch_add(0x9e3779b97f4a7c15ULL,
                                                std::memory_order_relaxed) +
                      0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// True with probability ppm / 1e6.  The cheap load-first guard keeps
  /// the disarmed (production) cost to one relaxed load per site.
  bool roll(std::atomic<std::uint32_t>& site_ppm) {
    const std::uint32_t ppm = site_ppm.load(std::memory_order_relaxed);
    if (ppm == 0) return false;
    return draw() % 1000000u < ppm;
  }

  /// Tally injected faults; passes the decision through so consume
  /// helpers stay one-liners.
  static bool count(bool fired) {
    if (fired) {
      instance().faults_injected.fetch_add(1, std::memory_order_relaxed);
    }
    return fired;
  }
};

}  // namespace ppuf::util
