// Small descriptive-statistics helpers used by the metric and benchmark code.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ppuf::util {

/// Arithmetic mean; returns 0 for an empty sample.
double mean(std::span<const double> xs);

/// Unbiased (n-1) sample standard deviation; returns 0 for n < 2.
double stddev(std::span<const double> xs);

/// Population (n) standard deviation; returns 0 for an empty sample.
double stddev_population(std::span<const double> xs);

/// Smallest / largest element; both require a non-empty sample.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Median (average of the two middle elements for even n); requires
/// a non-empty sample.  Does not modify the input.
double median(std::span<const double> xs);

/// p-th percentile with linear interpolation, p in [0,100]; requires a
/// non-empty sample.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient of two equally sized samples; returns 0
/// when either sample is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Running accumulator for mean/stddev without storing the sample
/// (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< unbiased; 0 for n < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ppuf::util
