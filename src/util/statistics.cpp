#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppuf::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

namespace {
double sum_sq_dev(std::span<const double> xs) {
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s;
}
}  // namespace

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  return std::sqrt(sum_sq_dev(xs) / static_cast<double>(xs.size() - 1));
}

double stddev_population(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::sqrt(sum_sq_dev(xs) / static_cast<double>(xs.size()));
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("median: empty sample");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p outside [0,100]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace ppuf::util
