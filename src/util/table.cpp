#include "util/table.hpp"

#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ppuf::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << " | ";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << title << '\n'
     << std::string(72, '=') << '\n';
}

double bench_scale() {
  const char* s = std::getenv("PPUF_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v <= 0.0) return 1.0;
  return v;
}

}  // namespace ppuf::util
