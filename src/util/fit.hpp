// Least-squares curve fitting used to reproduce the paper's Figure 7/8
// "polynomial fitting" and extrapolation (e.g. extrapolating measured
// 20..100-node data out to the 900-node design point).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ppuf::util {

/// Coefficients c[0] + c[1] x + ... + c[d] x^d.
struct Polynomial {
  std::vector<double> coeffs;

  double operator()(double x) const;
  std::string to_string() const;
};

/// Least-squares polynomial fit of the given degree (normal equations).
/// Requires xs.size() == ys.size() >= degree + 1.
Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   unsigned degree);

/// Power law y = a * x^b.
struct PowerLaw {
  double a = 0.0;
  double b = 0.0;

  double operator()(double x) const;
  std::string to_string() const;
};

/// Fit y = a x^b by linear regression in log-log space.  All xs and ys must
/// be strictly positive; requires at least two points.
PowerLaw fit_power_law(std::span<const double> xs, std::span<const double> ys);

/// Straight line y = intercept + slope * x.
struct Line {
  double intercept = 0.0;
  double slope = 0.0;

  double operator()(double x) const { return intercept + slope * x; }
};

/// Ordinary least-squares line; requires at least two points.
Line fit_line(std::span<const double> xs, std::span<const double> ys);

/// Coefficient of determination R^2 of predictions against observations.
double r_squared(std::span<const double> ys, std::span<const double> predicted);

/// Solve f(x) = target for x in [lo, hi] by bisection, assuming f is
/// monotone on the interval; returns NaN if target is not bracketed.
double solve_monotone(double (*f)(double, const void*), const void* ctx,
                      double target, double lo, double hi,
                      double tol = 1e-9);

}  // namespace ppuf::util
