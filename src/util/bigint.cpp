#include "util/bigint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppuf::util {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigUint::BigUint(std::uint64_t value) {
  while (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value & 0xffffffffULL));
    value >>= 32;
  }
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_decimal(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("BigUint: empty string");
  BigUint r;
  for (char c : s) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("BigUint: non-decimal character");
    r *= BigUint(10);
    r += BigUint(static_cast<std::uint64_t>(c - '0'));
  }
  return r;
}

BigUint BigUint::pow2(unsigned k) {
  BigUint r;
  r.limbs_.assign(k / 32 + 1, 0);
  r.limbs_[k / 32] = 1U << (k % 32);
  return r;
}

BigUint BigUint::binomial(unsigned n, unsigned k) {
  if (k > n) return BigUint(0);
  k = std::min(k, n - k);
  // C(n, i) = C(n, i-1) * (n - i + 1) / i; each intermediate is exact.
  BigUint r(1);
  for (unsigned i = 1; i <= k; ++i) {
    r *= BigUint(n - i + 1);
    r /= BigUint(i);
  }
  return r;
}

BigUint& BigUint::operator+=(const BigUint& rhs) {
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t s = carry + limbs_[i];
    if (i < rhs.limbs_.size()) s += rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(s & 0xffffffffULL);
    carry = s >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<std::uint32_t>(carry));
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& rhs) {
  if (*this < rhs) throw std::domain_error("BigUint: negative result");
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < rhs.limbs_.size()) d -= rhs.limbs_[i];
    if (d < 0) {
      d += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<std::uint32_t>(d);
  }
  trim();
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& rhs) {
  if (is_zero() || rhs.is_zero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint32_t> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      std::uint64_t cur = out[i + j] +
                          static_cast<std::uint64_t>(limbs_[i]) * rhs.limbs_[j] +
                          carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  limbs_ = std::move(out);
  trim();
  return *this;
}

std::uint32_t BigUint::div_small(std::uint32_t divisor) {
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    std::uint64_t cur = (rem << 32) | limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  trim();
  return static_cast<std::uint32_t>(rem);
}

BigUint& BigUint::operator/=(const BigUint& rhs) {
  if (rhs.is_zero()) throw std::domain_error("BigUint: divide by zero");
  if (rhs.limbs_.size() == 1) {
    div_small(rhs.limbs_[0]);
    return *this;
  }
  if (*this < rhs) {
    limbs_.clear();
    return *this;
  }
  // Schoolbook long division, one bit at a time.  Slow but simple and the
  // operand sizes in this project (a few hundred bits) make it instant.
  BigUint quotient;
  BigUint remainder;
  quotient.limbs_.assign(limbs_.size(), 0);
  for (unsigned bit = bit_length(); bit-- > 0;) {
    // remainder = remainder*2 + bit_of(*this, bit)
    remainder *= BigUint(2);
    if ((limbs_[bit / 32] >> (bit % 32)) & 1U) remainder += BigUint(1);
    if (remainder >= rhs) {
      remainder -= rhs;
      quotient.limbs_[bit / 32] |= 1U << (bit % 32);
    }
  }
  quotient.trim();
  *this = std::move(quotient);
  return *this;
}

bool operator<(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size();
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i];
  }
  return false;
}

std::string BigUint::to_decimal() const {
  if (is_zero()) return "0";
  BigUint tmp = *this;
  std::string out;
  while (!tmp.is_zero()) {
    const std::uint32_t digit = tmp.div_small(10);
    out.push_back(static_cast<char>('0' + digit));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

double BigUint::to_double() const {
  double r = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    r = r * static_cast<double>(kBase) + static_cast<double>(limbs_[i]);
    if (std::isinf(r)) return r;
  }
  return r;
}

unsigned BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  unsigned bits = 32 * static_cast<unsigned>(limbs_.size() - 1);
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

}  // namespace ppuf::util
