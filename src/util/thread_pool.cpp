#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace ppuf::util {

struct ThreadPool::WorkerQueue {
  std::mutex mutex;
  std::deque<std::function<void()>> tasks;
};

/// Completion state of one parallel_for call.  Tasks from different calls
/// interleave freely in the worker deques; each call waits only on its own
/// remaining count.
struct ThreadPool::Job {
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t remaining = 0;
  std::exception_ptr first_error;

  void finish_one() {
    std::lock_guard<std::mutex> lock(mutex);
    if (--remaining == 0) done_cv.notify_all();
  }
  void record_error(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!first_error) first_error = std::move(e);
  }
};

ThreadPool::ThreadPool(unsigned thread_count) {
  const unsigned n = std::max(1u, thread_count);
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

unsigned ThreadPool::default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

bool ThreadPool::try_take_task(unsigned worker_index,
                               std::function<void()>* task) {
  // Own deque first, front end (the thief uses the back end).
  {
    auto& q = *queues_[worker_index];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  // Steal sweep, starting just past ourselves so victims differ per worker.
  const std::size_t n = queues_.size();
  for (std::size_t d = 1; d < n; ++d) {
    auto& q = *queues_[(worker_index + d) % n];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned worker_index) {
  for (;;) {
    std::function<void()> task;
    if (try_take_task(worker_index, &task)) {
      {
        // pending_ counts *queued* tasks, decremented at take time, so
        // idle workers sleep (rather than spin) while the last in-flight
        // tasks execute; completion is tracked per-job, not here.
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --pending_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stopping_ && pending_ == 0) return;
    // A submitter bumps pending_ under the lock before pushing, so a
    // missed task implies pending_ > 0: sweep again (bounded spin while
    // the submitter is mid-push) rather than sleep through it.
    if (pending_ > 0) {
      lock.unlock();
      std::this_thread::yield();
      continue;
    }
    wake_cv_.wait(lock,
                  [this] { return pending_ > 0 || stopping_; });
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    // pending_ is bumped under the wake lock before the push so a worker
    // that misses the deque sweep spins rather than sleeping through it
    // (same ordering as parallel_for's dispatch).
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++pending_;
  }
  const std::size_t idx =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    auto& q = *queues_[idx];
    std::lock_guard<std::mutex> lock(q.mutex);
    q.tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(
      count, [&fn](std::size_t i, const Status&) { fn(i); },
      SolveControl{});
}

Status ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, const Status&)>& fn,
    const SolveControl& control) {
  if (count == 0) return Status::ok();

  auto job = std::make_shared<Job>();
  job->remaining = count;

  // Sticky stop state shared by this call's tasks: 0 = ok, else the
  // StatusCode that fired first.  Workers poll it once per item — items
  // are coarse (a max-flow solve), so one clock read per item is cheap.
  auto stop_code = std::make_shared<std::atomic<int>>(0);
  auto current_stop = [control, stop_code]() -> Status {
    int code = stop_code->load(std::memory_order_relaxed);
    if (code == 0 && !control.unconstrained()) {
      if (control.cancel != nullptr && control.cancel->cancelled())
        code = static_cast<int>(StatusCode::kCancelled);
      else if (control.deadline.expired())
        code = static_cast<int>(StatusCode::kDeadlineExceeded);
      if (code != 0) stop_code->store(code, std::memory_order_relaxed);
    }
    if (code == 0) return Status::ok();
    return Status(static_cast<StatusCode>(code),
                  "stopped before item start (thread pool)");
  };

  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    pending_ += count;
  }
  const std::size_t n = queues_.size();
  for (std::size_t i = 0; i < count; ++i) {
    auto task = [i, &fn, job, current_stop] {
      try {
        fn(i, current_stop());
      } catch (...) {
        job->record_error(std::current_exception());
      }
      job->finish_one();
    };
    auto& q = *queues_[i % n];
    std::lock_guard<std::mutex> lock(q.mutex);
    q.tasks.push_back(std::move(task));
  }
  wake_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&job] { return job->remaining == 0; });
    if (job->first_error) std::rethrow_exception(job->first_error);
  }
  // Report only the sticky stop state the dispatched items actually
  // observed.  Re-polling the control here would race the clock against
  // completion: a deadline expiring between the last item finishing and
  // this return would mislabel a fully-completed batch as
  // kDeadlineExceeded even though no item was skipped.
  const int code = stop_code->load(std::memory_order_relaxed);
  if (code == 0) return Status::ok();
  return Status(static_cast<StatusCode>(code),
                "stopped before item start (thread pool)");
}

}  // namespace ppuf::util
