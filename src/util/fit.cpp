#include "util/fit.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ppuf::util {

double Polynomial::operator()(double x) const {
  double r = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) r = r * x + coeffs[i];
  return r;
}

std::string Polynomial::to_string() const {
  std::ostringstream os;
  os.precision(4);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (i > 0) os << (coeffs[i] >= 0 ? " + " : " - ");
    os << std::scientific << std::abs(coeffs[i]);
    if (i == 1) os << "*x";
    if (i > 1) os << "*x^" << i;
  }
  return os.str();
}

namespace {

/// Gaussian elimination with partial pivoting for the small (<=10x10)
/// normal-equation systems produced here.  The general dense solver lives in
/// src/numeric; util cannot depend on it without creating a layering cycle,
/// and these systems are tiny.
std::vector<double> solve_small(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-300)
      throw std::runtime_error("polyfit: singular normal equations");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t row = n; row-- > 0;) {
    double s = b[row];
    for (std::size_t c = row + 1; c < n; ++c) s -= a[row][c] * x[c];
    x[row] = s / a[row][row];
  }
  return x;
}

}  // namespace

Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   unsigned degree) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("polyfit: size mismatch");
  const std::size_t k = degree + 1;
  if (xs.size() < k)
    throw std::invalid_argument("polyfit: not enough points for degree");

  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  std::vector<std::vector<double>> ata(k, std::vector<double>(k, 0.0));
  std::vector<double> aty(k, 0.0);
  for (std::size_t p = 0; p < xs.size(); ++p) {
    std::vector<double> pw(2 * k - 1);
    pw[0] = 1.0;
    for (std::size_t i = 1; i < pw.size(); ++i) pw[i] = pw[i - 1] * xs[p];
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) ata[i][j] += pw[i + j];
      aty[i] += pw[i] * ys[p];
    }
  }
  return Polynomial{solve_small(std::move(ata), std::move(aty))};
}

double PowerLaw::operator()(double x) const { return a * std::pow(x, b); }

std::string PowerLaw::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << std::scientific << a << " * n^" << std::defaultfloat << b;
  return os.str();
}

PowerLaw fit_power_law(std::span<const double> xs,
                       std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw std::invalid_argument("fit_power_law: need >= 2 matched points");
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0)
      throw std::invalid_argument("fit_power_law: inputs must be positive");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  const Line line = fit_line(lx, ly);
  return PowerLaw{std::exp(line.intercept), line.slope};
}

Line fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw std::invalid_argument("fit_line: need >= 2 matched points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-300)
    throw std::runtime_error("fit_line: degenerate x values");
  Line l;
  l.slope = (n * sxy - sx * sy) / denom;
  l.intercept = (sy - l.slope * sx) / n;
  return l;
}

double r_squared(std::span<const double> ys,
                 std::span<const double> predicted) {
  if (ys.size() != predicted.size() || ys.empty())
    throw std::invalid_argument("r_squared: size mismatch");
  double my = 0.0;
  for (double y : ys) my += y;
  my /= static_cast<double>(ys.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    ss_res += (ys[i] - predicted[i]) * (ys[i] - predicted[i]);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double solve_monotone(double (*f)(double, const void*), const void* ctx,
                      double target, double lo, double hi, double tol) {
  double flo = f(lo, ctx) - target;
  double fhi = f(hi, ctx) - target;
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0))
    return std::numeric_limits<double>::quiet_NaN();
  while (hi - lo > tol * std::max(1.0, std::abs(lo))) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid, ctx) - target;
    if (fm == 0.0) return mid;
    if ((fm > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ppuf::util
