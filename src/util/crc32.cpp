#include "util/crc32.hpp"

#include <array>

namespace ppuf::util {

namespace {

/// Reflected CRC-32C table (polynomial 0x1EDC6F41, reflected 0x82F63B78),
/// built once at first use.
const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = [] {
    std::array<std::uint32_t, 256> out{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      out[i] = c;
    }
    return out;
  }();
  return t;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto& t = table();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i)
    crc = t[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

}  // namespace ppuf::util
