// Plain-text table printer so every bench binary reports the paper's
// tables/series in a uniform, copy-pasteable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ppuf::util {

/// Column-aligned text table.  Usage:
///   Table t({"n", "mean", "stddev"});
///   t.add_row({"40", "0.5009", "0.1371"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 4);
  /// Scientific notation, for spans of many decades (ESG plots).
  static std::string sci(double v, int precision = 3);

  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner used between reproduced figures in bench output.
void print_banner(std::ostream& os, const std::string& title);

/// Read a positive scaling factor from the PPUF_BENCH_SCALE environment
/// variable (default 1.0).  Benches multiply their sample counts by it so
/// `PPUF_BENCH_SCALE=10 ./bench_...` approaches the paper's full sample
/// sizes while the default stays minutes-scale.
double bench_scale();

}  // namespace ppuf::util
