// Deterministic random-number utilities shared across the library.
//
// Every stochastic component (process variation, challenge sampling,
// Monte-Carlo loops) takes an explicit seed or an Rng&, never a global
// generator, so that experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace ppuf::util {

/// Project-wide random engine.  A distinct named type (rather than using
/// std::mt19937_64 directly everywhere) keeps the choice of engine a
/// single-line decision.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Fair coin flip.
  bool coin() { return uniform_int(0, 1) == 1; }

  /// Derive an independent child generator; used to give each Monte-Carlo
  /// instance its own stream so instance i is reproducible regardless of
  /// how many draws instance i-1 consumed.
  Rng fork() { return Rng(engine_() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ppuf::util
