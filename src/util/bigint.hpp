// Minimal arbitrary-precision unsigned integer.
//
// Used to evaluate the exact CRP-space lower bound of Section 4.2,
//   N_CRP >= n(n-1) * 2^(l^2) / sum_{i<d} C(l^2, i),
// whose intermediate values (2^225 for l = 15) overflow every built-in type.
// Only the operations that computation needs are provided.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppuf::util {

/// Arbitrary-precision unsigned integer, little-endian base 2^32 limbs.
class BigUint {
 public:
  BigUint() = default;
  BigUint(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  /// Parse a decimal string (digits only); throws std::invalid_argument.
  static BigUint from_decimal(const std::string& s);

  /// 2^k.
  static BigUint pow2(unsigned k);

  /// Binomial coefficient C(n, k), exact.
  static BigUint binomial(unsigned n, unsigned k);

  bool is_zero() const { return limbs_.empty(); }

  BigUint& operator+=(const BigUint& rhs);
  BigUint& operator-=(const BigUint& rhs);  ///< throws if rhs > *this
  BigUint& operator*=(const BigUint& rhs);
  /// Floor division; throws std::domain_error on divide by zero.
  BigUint& operator/=(const BigUint& rhs);

  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }
  friend BigUint operator-(BigUint a, const BigUint& b) { return a -= b; }
  friend BigUint operator*(BigUint a, const BigUint& b) { return a *= b; }
  friend BigUint operator/(BigUint a, const BigUint& b) { return a /= b; }

  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigUint& a, const BigUint& b) {
    return !(a == b);
  }
  friend bool operator<(const BigUint& a, const BigUint& b);
  friend bool operator>(const BigUint& a, const BigUint& b) { return b < a; }
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return !(b < a);
  }
  friend bool operator>=(const BigUint& a, const BigUint& b) {
    return !(a < b);
  }

  /// Decimal representation ("0" for zero).
  std::string to_decimal() const;

  /// Approximate value as double (inf on overflow).
  double to_double() const;

  /// Number of bits in the value (0 for zero).
  unsigned bit_length() const;

 private:
  void trim();
  /// Divide by a single 32-bit divisor in place, returning the remainder.
  std::uint32_t div_small(std::uint32_t divisor);

  std::vector<std::uint32_t> limbs_;  // empty == zero
};

}  // namespace ppuf::util
