#include "server/auth_server.hpp"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "backend/backend.hpp"
#include "backend/maxflow_backend.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "ppuf/response_cache.hpp"
#include "protocol/authentication.hpp"
#include "registry/device_registry.hpp"
#include "registry/hydration_cache.hpp"
#include "util/fault_hooks.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ppuf::server {

namespace {

using net::DecodeResult;
using net::ErrorReply;
using net::Frame;
using net::MessageType;
using net::WireCode;
using util::Status;

constexpr std::size_t kReadChunk = 64 * 1024;

/// Error replies echo the request's device id so a client multiplexing
/// devices over one connection can attribute the failure.
std::vector<std::uint8_t> error_frame(std::uint64_t request_id,
                                      std::uint64_t device_id, WireCode code,
                                      std::string message) {
  ErrorReply err;
  err.code = code;
  err.message = std::move(message);
  return net::encode_frame(MessageType::kErrorReply, request_id, device_id,
                           0, net::encode_error_reply(err));
}

WireCode wire_code_for(const Status& s) {
  switch (s.code()) {
    case util::StatusCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case util::StatusCode::kCancelled:
      return WireCode::kCancelled;
    case util::StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case util::StatusCode::kUnavailable:
      return WireCode::kOverloaded;
    case util::StatusCode::kNotFound:
      return WireCode::kUnknownDevice;
    default:
      return WireCode::kInternal;
  }
}

}  // namespace

/// Minimal RAII fd for epoll/eventfd: these must outlive the worker pool
/// (a finishing worker writes the eventfd), so they are declared before it
/// and closed after it joins.
struct OwnedFd {
  int fd = -1;
  ~OwnedFd() {
    if (fd >= 0) ::close(fd);
  }
};

struct AuthServer::Impl {
  /// Single-device mode: one max-flow device, addressed as device 0.
  Impl(const SimulationModel& model, const AuthServerOptions& options,
       std::atomic<bool>& draining)
      : options(options),
        draining(draining),
        rng(options.challenge_seed),
        pool(options.threads) {
    backend::MaterializeOptions mopts;
    mopts.verifier_deadline_seconds = options.verifier_deadline_seconds;
    mopts.flow_tolerance_fraction = options.flow_tolerance_fraction;
    mopts.verify_threads = 1;
    single_device = backend::make_maxflow_device(model, mopts);
    if (options.response_cache_bytes > 0)
      response_cache.emplace(options.response_cache_bytes);
  }

  /// Multi-tenant mode: devices resolve through the registry via a
  /// bounded hydration cache.
  Impl(registry::DeviceRegistry& registry,
       const AuthServerOptions& options, std::atomic<bool>& draining)
      : device_registry(&registry),
        options(options),
        draining(draining),
        rng(options.challenge_seed),
        pool(options.threads) {
    if (options.response_cache_bytes > 0)
      response_cache.emplace(options.response_cache_bytes);
    registry::HydrationCache::Options cache_options;
    cache_options.max_entries = options.hydration_cache_entries;
    cache_options.verifier_deadline_seconds =
        options.verifier_deadline_seconds;
    cache_options.flow_tolerance_fraction = options.flow_tolerance_fraction;
    cache_options.verify_threads = 1;
    // Wired at materialisation: every hydrated device comes out of the
    // cache already attached to the fleet's warm-response plane, so the
    // coalesced predict path serves registry devices from the shared
    // device-keyed cache without a second lookup layer.
    cache_options.response_cache =
        response_cache ? &*response_cache : nullptr;
    hydration.emplace(registry, cache_options);
  }

  // --- shared state -------------------------------------------------------

  /// Exactly one of these two is set.  The registry pointer is non-const:
  /// ENROLL mutates it and WAL_FETCH exports from it (both registry-mode
  /// only; the registry's own mutex serialises against other callers).
  std::unique_ptr<backend::Device> single_device;
  registry::DeviceRegistry* device_registry = nullptr;
  /// Shared device-keyed CRP cache for the coalesced predict path
  /// (options.response_cache_bytes > 0).  Declared before `hydration`
  /// because hydrated devices carry a pointer into it.
  std::optional<ResponseCache> response_cache;
  std::optional<registry::HydrationCache> hydration;

  AuthServerOptions options;
  std::atomic<bool>& draining;

  /// What a handler works against once the frame's device id resolved:
  /// a borrowed backend::Device, kept alive by `hold` in registry mode
  /// (eviction from the hydration cache must not free a device
  /// mid-request).  Every request path goes through this interface, so a
  /// max-flow crossbar and a PDL chain serve through identical code.
  struct DeviceContext {
    const backend::Device* device = nullptr;
    std::shared_ptr<const registry::HydratedDevice> hold;
  };

  /// kNotFound when the id is unknown or revoked (mapped to a typed
  /// UNKNOWN_DEVICE reply by the caller).
  Status resolve_device(std::uint64_t device_id, DeviceContext* out) {
    if (single_device != nullptr) {
      if (device_id != net::kDefaultDeviceId)
        return Status::not_found("single-device server; use device id 0");
      out->device = single_device.get();
      return Status::ok();
    }
    if (device_id == net::kDefaultDeviceId)
      return Status::not_found(
          "registry-backed server requires an enrolled device id");
    std::shared_ptr<const registry::HydratedDevice> device;
    if (Status s = hydration->get(device_id, &device); !s.is_ok()) return s;
    out->device = device->device.get();
    out->hold = std::move(device);
    return Status::ok();
  }

  /// The typed reply for a frame whose device id did not resolve.  An
  /// unknown/revoked id is an UNKNOWN_DEVICE reply and counted; transient
  /// hydration failures map through wire_code_for like any other status.
  std::vector<std::uint8_t> device_error_reply(const Frame& frame,
                                               const Status& s) {
    if (s.code() == util::StatusCode::kNotFound) {
      unknown_device_rejections.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::global()
          .counter("server.unknown_device_rejections")
          .add();
    }
    return error_frame(frame.request_id, frame.device_id, wire_code_for(s),
                       s.message());
  }

  std::mutex rng_mutex;  ///< guards rng (workers issue challenges too)
  util::Rng rng;

  std::atomic<std::size_t> inflight{0};

  net::Socket listener;
  OwnedFd epoll_handle;
  OwnedFd wake_handle;
  int epoll_fd = -1;  ///< == epoll_handle.fd, kept for readability
  int wake_fd = -1;   ///< == wake_handle.fd

  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    std::vector<std::uint8_t> inbuf;
    std::deque<std::vector<std::uint8_t>> outq;
    std::size_t out_offset = 0;  ///< bytes of outq.front() already sent
    std::size_t outq_bytes = 0;  ///< total queued reply bytes (backlog cap)
    bool close_after_flush = false;
    bool want_write = false;
  };

  std::unordered_map<int, Connection> connections;       // fd -> state
  std::unordered_map<std::uint64_t, int> connection_fd;  // id -> fd
  std::uint64_t next_connection_id = 1;

  /// Fds closed while processing the current epoll_wait batch.  accept()
  /// may reuse such an fd for a NEW connection within the same batch; a
  /// stale queued event (e.g. EPOLLHUP for the old peer) must not be
  /// applied to it.  Events for the new fd cannot be in this batch, so
  /// skipping is always safe.
  std::unordered_set<int> closed_in_batch;

  struct Completion {
    std::uint64_t connection_id;
    std::vector<std::uint8_t> bytes;
  };
  /// completion_mutex protects ONLY the vector push/swap — it is never
  /// held across a socket flush or any other syscall.  Workers post under
  /// the lock and return; the event loop swaps the whole vector out under
  /// the lock (drain_completions) and does every enqueue/flush after
  /// releasing it, so a slow or blocked peer can never stall a worker
  /// that is trying to post a completion.
  std::mutex completion_mutex;
  std::vector<Completion> completions;

  // --- coalescing stage (event-loop thread only) --------------------------

  /// One frame parked in a per-device batch.  The deadline was re-anchored
  /// at decode, so waiting in the batch burns the request's own budget.
  struct PendingItem {
    std::uint64_t connection_id = 0;
    Frame frame;
    util::Deadline deadline;
    std::chrono::steady_clock::time_point enqueued_at{};
  };
  /// device id -> open batch.  Only the event loop touches this; a batch
  /// leaves the map wholesale when it is flushed to the pool.
  std::unordered_map<std::uint64_t, std::vector<PendingItem>> pending;
  std::size_t pending_count = 0;

  bool coalesce_enabled() const { return options.coalesce_max_batch > 1; }

  // Stats (relaxed atomics; read via AuthServer::stats()).
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> overloaded_rejections{0};
  std::atomic<std::uint64_t> shutdown_rejections{0};
  std::atomic<std::uint64_t> malformed_frames{0};
  std::atomic<std::uint64_t> unknown_device_rejections{0};
  std::atomic<std::uint64_t> coalesced_batches{0};
  std::atomic<std::uint64_t> coalesced_items{0};
  std::atomic<std::uint64_t> solo_dispatches{0};
  std::atomic<std::uint64_t> slow_peer_disconnects{0};
  std::atomic<std::uint64_t> enrolls_served{0};
  std::atomic<std::uint64_t> wal_fetches_served{0};

  /// Declared last so it is destroyed FIRST: the pool's destructor joins
  /// workers that may still be writing wake_fd, which must stay open
  /// until they are gone.
  util::ThreadPool pool;

  // --- event loop ---------------------------------------------------------

  void run();
  void accept_ready();
  void read_ready(int fd);
  void consume_frames(int fd);
  void dispatch(Connection& conn, Frame frame);
  /// Per-frame dispatch: one pool task for one frame (the pre-coalescing
  /// path, still used for every non-batchable type and for solo frames).
  void submit_frame(std::uint64_t connection_id, Frame frame,
                    const util::Deadline& deadline);
  /// Flush one device's open batch to the pool.
  void flush_device_batch(std::uint64_t device_id);
  /// Flush every batch that is due: full batches close in dispatch();
  /// here age (oldest item waited >= coalesce_wait_us) or a drain closes
  /// the rest.
  void flush_ready_batches(bool force);
  /// epoll timeout until the next batch-window expiry, in ms (clamped to
  /// [1, fallback]); fallback when no batch is open.
  int poll_timeout_ms(int fallback) const;
  void enqueue_reply(Connection& conn, std::vector<std::uint8_t> bytes);
  void flush(Connection& conn);
  void update_epoll(Connection& conn);
  void close_connection(int fd);
  void drain_completions();
  bool drained();

  /// Health snapshot carried in every PING reply (safe from any thread:
  /// all inputs are atomics, immutable options, or the registry behind
  /// its own mutex).  Registry mode also reports the device count and
  /// WAL position, so a gateway's health probe doubles as replication-lag
  /// telemetry.
  net::HealthInfo health_info() const {
    net::HealthInfo h;
    h.inflight = static_cast<std::uint32_t>(
        inflight.load(std::memory_order_relaxed));
    h.max_inflight = static_cast<std::uint32_t>(options.max_inflight);
    h.draining = draining.load(std::memory_order_relaxed) ? 1 : 0;
    h.requests_served = requests.load(std::memory_order_relaxed);
    h.connections_accepted =
        connections_accepted.load(std::memory_order_relaxed);
    if (device_registry != nullptr) {
      h.device_count = device_registry->device_count();
      const registry::DeviceRegistry::WalPosition pos =
          device_registry->wal_position();
      h.wal_epoch = pos.epoch;
      h.wal_offset = pos.offset;
    }
    return h;
  }

  // --- request handlers (worker threads) ----------------------------------

  /// The response cache the coalesced predict path should use for `ctx`:
  /// the pointer the device was hydrated with (registry mode), or the
  /// server's own cache (single-device mode); null when disabled.
  ResponseCache* cache_for(const DeviceContext& ctx) {
    if (ctx.hold != nullptr) return ctx.hold->response_cache;
    return response_cache ? &*response_cache : nullptr;
  }

  /// Serve one coalesced device batch on a worker: resolve the device
  /// once, run predicts through predict_batch (device-keyed cache,
  /// per-item deadlines) and verifies through verify_batch, then scatter
  /// one completion per item back to its originating connection.
  void run_batch(std::uint64_t device_id, std::vector<PendingItem> items);

  std::vector<std::uint8_t> handle(const Frame& frame,
                                   const util::Deadline& deadline);
  std::vector<std::uint8_t> handle_ping(const Frame& frame,
                                        const util::Deadline& deadline);
  std::vector<std::uint8_t> handle_predict(const Frame& frame,
                                           const util::Deadline& deadline);
  std::vector<std::uint8_t> handle_verify(const Frame& frame,
                                          const util::Deadline& deadline);
  std::vector<std::uint8_t> handle_verify_batch(
      const Frame& frame, const util::Deadline& deadline);
  std::vector<std::uint8_t> handle_challenge(const Frame& frame);
  std::vector<std::uint8_t> handle_chained_auth(
      const Frame& frame, const util::Deadline& deadline);
  std::vector<std::uint8_t> handle_enroll(const Frame& frame);
  std::vector<std::uint8_t> handle_wal_fetch(const Frame& frame);
};

// --- lifecycle -------------------------------------------------------------

AuthServer::AuthServer(const SimulationModel& model,
                       AuthServerOptions options)
    : model_(&model), options_(options) {}

AuthServer::AuthServer(registry::DeviceRegistry& registry,
                       AuthServerOptions options)
    : registry_(&registry), options_(options) {}

AuthServer::~AuthServer() { stop(); }

util::Status AuthServer::start() {
  if (running_.load(std::memory_order_acquire))
    return Status::invalid_argument("server already started");
  impl_ = model_ != nullptr
              ? std::make_unique<Impl>(*model_, options_, draining_)
              : std::make_unique<Impl>(*registry_, options_, draining_);

  if (Status s = net::listen_tcp(options_.port, options_.listen_backlog,
                                 &impl_->listener, &port_);
      !s.is_ok())
    return s;

  impl_->epoll_handle.fd = epoll_create1(EPOLL_CLOEXEC);
  impl_->epoll_fd = impl_->epoll_handle.fd;
  if (impl_->epoll_fd < 0)
    return Status::unavailable(std::string("epoll_create1: ") +
                               strerror(errno));
  impl_->wake_handle.fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  impl_->wake_fd = impl_->wake_handle.fd;
  if (impl_->wake_fd < 0)
    return Status::unavailable(std::string("eventfd: ") + strerror(errno));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = impl_->listener.fd();
  epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->listener.fd(), &ev);
  ev.data.fd = impl_->wake_fd;
  epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->wake_fd, &ev);

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { impl_->run(); });
  return Status::ok();
}

void AuthServer::request_drain() {
  if (impl_ == nullptr) return;
  draining_.store(true, std::memory_order_relaxed);
  // Wake the loop so it notices; eventfd writes are async-signal-safe,
  // so a signal-handling thread may call this.
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t rc =
      ::write(impl_->wake_fd, &one, sizeof(one));
}

void AuthServer::wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
  running_.store(false, std::memory_order_release);
}

void AuthServer::stop() {
  request_drain();
  wait();
}

AuthServer::Stats AuthServer::stats() const {
  Stats s;
  if (impl_ == nullptr) return s;
  s.connections_accepted =
      impl_->connections_accepted.load(std::memory_order_relaxed);
  s.requests = impl_->requests.load(std::memory_order_relaxed);
  s.overloaded_rejections =
      impl_->overloaded_rejections.load(std::memory_order_relaxed);
  s.shutdown_rejections =
      impl_->shutdown_rejections.load(std::memory_order_relaxed);
  s.malformed_frames =
      impl_->malformed_frames.load(std::memory_order_relaxed);
  s.unknown_device_rejections =
      impl_->unknown_device_rejections.load(std::memory_order_relaxed);
  s.coalesced_batches =
      impl_->coalesced_batches.load(std::memory_order_relaxed);
  s.coalesced_items = impl_->coalesced_items.load(std::memory_order_relaxed);
  s.solo_dispatches = impl_->solo_dispatches.load(std::memory_order_relaxed);
  s.slow_peer_disconnects =
      impl_->slow_peer_disconnects.load(std::memory_order_relaxed);
  s.enrolls_served = impl_->enrolls_served.load(std::memory_order_relaxed);
  s.wal_fetches_served =
      impl_->wal_fetches_served.load(std::memory_order_relaxed);
  return s;
}

// --- event loop ------------------------------------------------------------

void AuthServer::Impl::run() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  bool listener_open = true;
  std::vector<epoll_event> events(64);
  for (;;) {
    const bool drain_now = draining.load(std::memory_order_relaxed);
    if (drain_now && listener_open) {
      epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listener.fd(), nullptr);
      listener.close();
      listener_open = false;
    }
    if (drain_now && drained()) break;

    const int n = epoll_wait(epoll_fd, events.data(),
                             static_cast<int>(events.size()),
                             poll_timeout_ms(drain_now ? 50 : 500));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sensible left to do
    }
    closed_in_batch.clear();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd) {
        std::uint64_t drainv = 0;
        while (::read(wake_fd, &drainv, sizeof(drainv)) > 0) {
        }
        continue;  // completions handled below every iteration
      }
      if (listener_open && fd == listener.fd()) {
        accept_ready();
        continue;
      }
      if (closed_in_batch.count(fd) != 0) continue;  // stale: fd was reused
      auto it = connections.find(fd);
      if (it == connections.end()) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_connection(fd);
        continue;
      }
      if (events[i].events & EPOLLIN) read_ready(fd);
      // read_ready may have closed the connection; re-find before writing.
      auto wit = connections.find(fd);
      if (wit != connections.end() && (events[i].events & EPOLLOUT))
        flush(wit->second);
    }
    // Batches whose window elapsed while we slept (or that a drain must
    // not strand) go to the pool before completions are scattered.
    flush_ready_batches(/*force=*/drain_now);
    drain_completions();
    reg.gauge("server.inflight")
        .set(static_cast<std::int64_t>(
            inflight.load(std::memory_order_relaxed)));
    reg.gauge("server.connections")
        .set(static_cast<std::int64_t>(connections.size()));
  }
  // Drained: close every remaining connection.  The epoll/event fds stay
  // open until ~Impl (workers may still be writing wake_fd).
  std::vector<int> fds;
  fds.reserve(connections.size());
  for (const auto& [fd, conn] : connections) fds.push_back(fd);
  for (const int fd : fds) close_connection(fd);
}

bool AuthServer::Impl::drained() {
  if (pending_count != 0) return false;  // open batches still hold frames
  if (inflight.load(std::memory_order_relaxed) != 0) return false;
  {
    std::lock_guard<std::mutex> lock(completion_mutex);
    if (!completions.empty()) return false;
  }
  for (const auto& [fd, conn] : connections)
    if (!conn.outq.empty()) return false;
  return true;
}

void AuthServer::Impl::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listener.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the loop will retry
    }
    if (util::FaultHooks::consume_server_accept_failure()) {
      // Injected accept failure: the peer sees an immediate close, as if
      // the listener ran out of fds or reset under SYN pressure.
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.id = next_connection_id++;
    connection_fd[conn.id] = fd;
    connections.emplace(fd, std::move(conn));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    connections_accepted.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::global().counter("server.connections_accepted")
        .add();
  }
}

void AuthServer::Impl::read_ready(int fd) {
  auto it = connections.find(fd);
  if (it == connections.end()) return;
  if (util::FaultHooks::consume_server_recv_failure()) {
    // Injected hard recv error: drop the connection mid-stream.
    close_connection(fd);
    return;
  }
  Connection& conn = it->second;
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.inbuf.insert(conn.inbuf.end(), chunk, chunk + n);
      obs::MetricsRegistry::global().counter("server.bytes_read")
          .add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n == 0) {  // peer closed
      close_connection(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(fd);
    return;
  }
  consume_frames(fd);
}

void AuthServer::Impl::consume_frames(int fd) {
  // The Connection must be re-looked-up after every dispatch: a reply flush
  // can hit a send error (peer reset mid-pipeline) and close_connection()
  // destroys the map entry, so any reference held across dispatch dangles.
  auto it = connections.find(fd);
  if (it == connections.end()) return;
  const std::uint64_t conn_id = it->second.id;
  std::size_t offset = 0;
  while (!it->second.close_after_flush) {
    Connection& conn = it->second;
    Frame frame;
    std::size_t consumed = 0;
    const DecodeResult r = net::decode_frame(
        conn.inbuf.data() + offset, conn.inbuf.size() - offset, &frame,
        &consumed);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kMalformed) {
      // The stream cannot be resynchronised: answer with a typed error
      // (request id unknown — use 0) and close once it is flushed.
      malformed_frames.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::global().counter("server.malformed_frames")
          .add();
      // Flag before enqueueing so the flush inside enqueue_reply closes the
      // socket as soon as the error is written; return without touching
      // `conn` again — it may already be destroyed by that close.
      conn.close_after_flush = true;
      enqueue_reply(conn, error_frame(0, net::kDefaultDeviceId,
                                      WireCode::kMalformed,
                                      "unparseable frame"));
      return;
    }
    offset += consumed;
    dispatch(conn, std::move(frame));
    it = connections.find(fd);
    if (it == connections.end() || it->second.id != conn_id)
      return;  // closed (and possibly reused) during dispatch
  }
  if (offset > 0)
    it->second.inbuf.erase(
        it->second.inbuf.begin(),
        it->second.inbuf.begin() + static_cast<std::ptrdiff_t>(offset));
}

void AuthServer::Impl::dispatch(Connection& conn, Frame frame) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  if (!net::is_request(frame.type)) {
    enqueue_reply(conn,
                  error_frame(frame.request_id, frame.device_id,
                              WireCode::kUnsupportedType,
                              std::string("not a request type: ") +
                                  net::message_type_name(frame.type)));
    return;
  }
  if (draining.load(std::memory_order_relaxed)) {
    if (frame.type == MessageType::kPingRequest) {
      // Readiness must stay observable *during* the drain — a load
      // balancer that cannot ping a draining node just sees it vanish.
      // PING is answered inline on the event loop (no pool, no admission
      // control, delay knob ignored) so nothing can stall the drain, and
      // the health payload reports draining=1.
      enqueue_reply(conn,
                    net::encode_frame(MessageType::kPingReply,
                                      frame.request_id, frame.device_id, 0,
                                      net::encode_ping_reply(health_info())));
      return;
    }
    shutdown_rejections.fetch_add(1, std::memory_order_relaxed);
    reg.counter("server.shutdown_rejections").add();
    enqueue_reply(conn, error_frame(frame.request_id, frame.device_id,
                                    WireCode::kShuttingDown,
                                    "server is draining"));
    return;
  }
  // Admission control.  Only the event loop increments, so load+store is
  // race-free; workers decrement when done.
  if (inflight.load(std::memory_order_relaxed) >= options.max_inflight) {
    overloaded_rejections.fetch_add(1, std::memory_order_relaxed);
    reg.counter("server.overloaded_rejections").add();
    enqueue_reply(conn, error_frame(frame.request_id, frame.device_id,
                                    WireCode::kOverloaded,
                                    "in-flight limit reached"));
    return;
  }
  inflight.fetch_add(1, std::memory_order_relaxed);
  requests.fetch_add(1, std::memory_order_relaxed);
  reg.counter("server.requests").add();

  // Budget is re-anchored NOW, at decode: queue wait burns budget.
  const util::Deadline deadline = frame.deadline();
  const bool batchable = coalesce_enabled() &&
                         (frame.type == MessageType::kPredictRequest ||
                          frame.type == MessageType::kVerifyRequest);
  if (!batchable) {
    submit_frame(conn.id, std::move(frame), deadline);
    return;
  }
  // Batch-window deadline policy: a frame joins a batch only if its
  // budget can survive the full window; otherwise it goes to the pool
  // solo, where nothing ahead of it can eat the remaining budget.
  if (!deadline.is_unlimited() &&
      deadline.remaining() < std::chrono::microseconds(
                                 options.coalesce_wait_us)) {
    solo_dispatches.fetch_add(1, std::memory_order_relaxed);
    reg.counter("server.solo_dispatches").add();
    submit_frame(conn.id, std::move(frame), deadline);
    return;
  }
  const std::uint64_t device_id = frame.device_id;
  std::vector<PendingItem>& batch = pending[device_id];
  PendingItem item;
  item.connection_id = conn.id;
  item.frame = std::move(frame);
  item.deadline = deadline;
  item.enqueued_at = std::chrono::steady_clock::now();
  batch.push_back(std::move(item));
  ++pending_count;
  if (batch.size() >= options.coalesce_max_batch)
    flush_device_batch(device_id);
}

void AuthServer::Impl::submit_frame(std::uint64_t connection_id, Frame frame,
                                    const util::Deadline& deadline) {
  auto shared_frame = std::make_shared<Frame>(std::move(frame));
  pool.submit([this, shared_frame, deadline, connection_id] {
    std::vector<std::uint8_t> reply;
    try {
      reply = handle(*shared_frame, deadline);
    } catch (const std::exception& e) {
      reply = error_frame(shared_frame->request_id, shared_frame->device_id,
                          WireCode::kInternal, e.what());
    } catch (...) {
      reply = error_frame(shared_frame->request_id, shared_frame->device_id,
                          WireCode::kInternal, "unknown handler failure");
    }
    {
      std::lock_guard<std::mutex> lock(completion_mutex);
      completions.push_back({connection_id, std::move(reply)});
    }
    inflight.fetch_sub(1, std::memory_order_relaxed);
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t rc = ::write(wake_fd, &one, sizeof(one));
  });
}

void AuthServer::Impl::flush_device_batch(std::uint64_t device_id) {
  const auto it = pending.find(device_id);
  if (it == pending.end() || it->second.empty()) return;
  std::vector<PendingItem> items = std::move(it->second);
  pending.erase(it);
  pending_count -= items.size();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  coalesced_batches.fetch_add(1, std::memory_order_relaxed);
  coalesced_items.fetch_add(items.size(), std::memory_order_relaxed);
  reg.counter("server.coalesced_batches").add();
  reg.counter("server.coalesced_items").add(items.size());
  reg.histogram("server.batch_size")
      .record(static_cast<double>(items.size()));
  const auto waited = std::chrono::steady_clock::now() -
                      items.front().enqueued_at;
  reg.histogram("server.coalesce_wait_us")
      .record(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(waited)
              .count()));

  auto shared_items =
      std::make_shared<std::vector<PendingItem>>(std::move(items));
  pool.submit([this, device_id, shared_items] {
    run_batch(device_id, std::move(*shared_items));
  });
}

void AuthServer::Impl::flush_ready_batches(bool force) {
  if (pending.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  const auto window = std::chrono::microseconds(options.coalesce_wait_us);
  std::vector<std::uint64_t> due;
  for (const auto& [device_id, batch] : pending) {
    if (force ||
        (!batch.empty() && now - batch.front().enqueued_at >= window))
      due.push_back(device_id);
  }
  for (const std::uint64_t device_id : due) flush_device_batch(device_id);
}

int AuthServer::Impl::poll_timeout_ms(int fallback) const {
  if (pending.empty()) return fallback;
  const auto now = std::chrono::steady_clock::now();
  const auto window = std::chrono::microseconds(options.coalesce_wait_us);
  auto next = std::chrono::steady_clock::duration::max();
  for (const auto& [device_id, batch] : pending) {
    if (batch.empty()) continue;
    next = std::min(next, (batch.front().enqueued_at + window) - now);
  }
  if (next == std::chrono::steady_clock::duration::max()) return fallback;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(next).count();
  // Clamp to >= 1: a zero timeout would busy-spin, and a 1 ms over-wait
  // is inside the window tolerance the policy already promises.
  return static_cast<int>(
      std::min<long long>(fallback, std::max<long long>(1, ms)));
}

void AuthServer::Impl::drain_completions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completion_mutex);
    done.swap(completions);
  }
  for (Completion& c : done) {
    const auto it = connection_fd.find(c.connection_id);
    if (it == connection_fd.end()) continue;  // connection died meanwhile
    const auto cit = connections.find(it->second);
    if (cit == connections.end()) continue;
    enqueue_reply(cit->second, std::move(c.bytes));
  }
}

void AuthServer::Impl::enqueue_reply(Connection& conn,
                                     std::vector<std::uint8_t> bytes) {
  conn.outq_bytes += bytes.size();
  conn.outq.push_back(std::move(bytes));
  flush(conn);
}

void AuthServer::Impl::flush(Connection& conn) {
  while (!conn.outq.empty()) {
    if (util::FaultHooks::server_send_blocked()) break;  // injected EAGAIN
    if (util::FaultHooks::consume_server_send_failure()) {
      // Injected peer reset (test-only; see util::FaultHooks).
      close_connection(conn.fd);
      return;
    }
    const std::vector<std::uint8_t>& front = conn.outq.front();
    std::size_t left = front.size() - conn.out_offset;
    if (left > 1 && util::FaultHooks::consume_server_send_short()) {
      // Injected short write: the kernel "accepts" only a few bytes, so
      // the partial-write bookkeeping (out_offset, EPOLLOUT re-arm) runs
      // under test instead of only under a saturated socket buffer.
      left = std::min<std::size_t>(left, 8);
    }
    const ssize_t n = ::send(conn.fd, front.data() + conn.out_offset, left,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(conn.fd);
      return;
    }
    obs::MetricsRegistry::global().counter("server.bytes_written")
        .add(static_cast<std::uint64_t>(n));
    conn.out_offset += static_cast<std::size_t>(n);
    if (conn.out_offset == front.size()) {
      conn.outq_bytes -= front.size();
      conn.outq.pop_front();
      conn.out_offset = 0;
    }
  }
  if (conn.outq.empty() && conn.close_after_flush) {
    close_connection(conn.fd);
    return;
  }
  // Slow-peer bound: a reader that stopped draining while replies keep
  // arriving gets disconnected here rather than growing the out-queue
  // without limit.  Workers are unaffected either way — they post
  // completions under completion_mutex and never touch a socket.
  if (options.max_connection_backlog_bytes != 0 &&
      conn.outq_bytes > options.max_connection_backlog_bytes) {
    slow_peer_disconnects.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::global()
        .counter("server.slow_peer_disconnects")
        .add();
    close_connection(conn.fd);
    return;
  }
  update_epoll(conn);
}

void AuthServer::Impl::update_epoll(Connection& conn) {
  const bool want_write = !conn.outq.empty();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void AuthServer::Impl::close_connection(int fd) {
  const auto it = connections.find(fd);
  if (it == connections.end()) return;
  closed_in_batch.insert(fd);
  connection_fd.erase(it->second.id);
  epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections.erase(it);
  obs::MetricsRegistry::global().counter("server.connections_closed").add();
}

// --- request handlers (worker threads) -------------------------------------

std::vector<std::uint8_t> AuthServer::Impl::handle(
    const Frame& frame, const util::Deadline& deadline) {
  // Expired in the queue: answer with the typed error instead of doing
  // work nobody is waiting for.
  if (deadline.expired())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kDeadlineExceeded,
                       "budget expired before processing");
  switch (frame.type) {
    case MessageType::kPingRequest:
      return handle_ping(frame, deadline);
    case MessageType::kPredictRequest:
      return handle_predict(frame, deadline);
    case MessageType::kVerifyRequest:
      return handle_verify(frame, deadline);
    case MessageType::kVerifyBatchRequest:
      return handle_verify_batch(frame, deadline);
    case MessageType::kChallengeRequest:
      return handle_challenge(frame);
    case MessageType::kChainedAuthRequest:
      return handle_chained_auth(frame, deadline);
    case MessageType::kEnrollRequest:
      return handle_enroll(frame);
    case MessageType::kWalFetchRequest:
      return handle_wal_fetch(frame);
    default:
      return error_frame(frame.request_id, frame.device_id,
                         WireCode::kUnsupportedType,
                         "unsupported request type");
  }
}

std::vector<std::uint8_t> AuthServer::Impl::handle_ping(
    const Frame& frame, const util::Deadline& deadline) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "server.ping.request_us");
  std::uint32_t delay_ms = 0;
  if (Status s = net::decode_ping_request(frame.payload, &delay_ms);
      !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kMalformed, s.message());
  delay_ms = std::min(delay_ms, options.max_ping_delay_ms);
  if (delay_ms > 0) {
    // Sleep in slices so an expiring budget still gets its typed answer
    // roughly on time.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(delay_ms);
    while (std::chrono::steady_clock::now() < until) {
      if (deadline.expired())
        return error_frame(frame.request_id, frame.device_id,
                           WireCode::kDeadlineExceeded,
                           "budget expired during ping delay");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // PING is transport-level: it answers for any device id without
  // resolving it (load tests ping before enrolment exists), and the reply
  // carries the server's health report.
  return net::encode_frame(MessageType::kPingReply, frame.request_id,
                           frame.device_id, 0,
                           net::encode_ping_reply(health_info()));
}

std::vector<std::uint8_t> AuthServer::Impl::handle_predict(
    const Frame& frame, const util::Deadline& deadline) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "server.predict.request_us");
  DeviceContext ctx;
  if (Status s = resolve_device(frame.device_id, &ctx); !s.is_ok())
    return device_error_reply(frame, s);
  Challenge challenge;
  if (Status s = net::decode_predict_request(frame.payload, &challenge);
      !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kMalformed, s.message());
  if (Status s = ctx.device->validate_challenge(challenge); !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kInvalidArgument, s.message());
  util::SolveControl control;
  control.deadline = deadline;
  const SimulationModel::Prediction p = ctx.device->predict(challenge,
                                                            control);
  if (!p.ok())
    return error_frame(frame.request_id, frame.device_id,
                       wire_code_for(p.status), p.status.to_string());
  return net::encode_frame(MessageType::kPredictReply, frame.request_id,
                           frame.device_id, 0,
                           net::encode_predict_reply(p));
}

std::vector<std::uint8_t> AuthServer::Impl::handle_verify(
    const Frame& frame, const util::Deadline& deadline) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "server.verify.request_us");
  DeviceContext ctx;
  if (Status s = resolve_device(frame.device_id, &ctx); !s.is_ok())
    return device_error_reply(frame, s);
  Challenge challenge;
  protocol::ProverReport report;
  if (Status s =
          net::decode_verify_request(frame.payload, &challenge, &report);
      !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kMalformed, s.message());
  if (Status s = ctx.device->validate_challenge(challenge); !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kInvalidArgument, s.message());
  if (deadline.expired())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kDeadlineExceeded,
                       "budget expired before verification");
  const protocol::AuthenticationResult result =
      ctx.device->verify(challenge, report);
  return net::encode_frame(MessageType::kVerifyReply, frame.request_id,
                           frame.device_id, 0,
                           net::encode_verify_reply(result));
}

std::vector<std::uint8_t> AuthServer::Impl::handle_verify_batch(
    const Frame& frame, const util::Deadline& deadline) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "server.verify_batch.request_us");
  DeviceContext ctx;
  if (Status s = resolve_device(frame.device_id, &ctx); !s.is_ok())
    return device_error_reply(frame, s);
  std::vector<Challenge> challenges;
  std::vector<protocol::ProverReport> reports;
  if (Status s = net::decode_verify_batch_request(frame.payload,
                                                  &challenges, &reports);
      !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kMalformed, s.message());
  for (const Challenge& c : challenges)
    if (Status s = ctx.device->validate_challenge(c); !s.is_ok())
      return error_frame(frame.request_id, frame.device_id,
                         WireCode::kInvalidArgument, s.message());
  // Items run inline on this worker (no nested pool dispatch); the budget
  // is checked between items so an expiring batch still answers typed.
  std::vector<protocol::AuthenticationResult> results;
  results.reserve(challenges.size());
  for (std::size_t i = 0; i < challenges.size(); ++i) {
    if (deadline.expired())
      return error_frame(frame.request_id, frame.device_id,
                         WireCode::kDeadlineExceeded,
                         "budget expired at batch item " +
                             std::to_string(i));
    results.push_back(ctx.device->verify(challenges[i], reports[i]));
  }
  return net::encode_frame(MessageType::kVerifyBatchReply, frame.request_id,
                           frame.device_id, 0,
                           net::encode_verify_batch_reply(results));
}

std::vector<std::uint8_t> AuthServer::Impl::handle_challenge(
    const Frame& frame) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "server.challenge.request_us");
  DeviceContext ctx;
  if (Status s = resolve_device(frame.device_id, &ctx); !s.is_ok())
    return device_error_reply(frame, s);
  if (Status s = net::decode_challenge_request(frame.payload); !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kMalformed, s.message());
  net::ChallengeGrant grant;
  {
    std::lock_guard<std::mutex> lock(rng_mutex);
    grant.challenge = ctx.device->issue_challenge(rng);
    grant.nonce = rng();
  }
  grant.chain_length = options.chain_length;
  grant.deadline_seconds = ctx.device->deadline_seconds();
  return net::encode_frame(MessageType::kChallengeReply, frame.request_id,
                           frame.device_id, 0,
                           net::encode_challenge_reply(grant));
}

std::vector<std::uint8_t> AuthServer::Impl::handle_chained_auth(
    const Frame& frame, const util::Deadline& deadline) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "server.chained_auth.request_us");
  DeviceContext ctx;
  if (Status s = resolve_device(frame.device_id, &ctx); !s.is_ok())
    return device_error_reply(frame, s);
  net::ChainedAuthRequest request;
  if (Status s =
          net::decode_chained_auth_request(frame.payload, &request);
      !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kMalformed, s.message());
  if (Status s = ctx.device->validate_challenge(request.grant.challenge);
      !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kInvalidArgument, s.message());
  // k is adversary-controlled verification work; bound it.
  if (request.grant.chain_length > options.max_chain_length)
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kInvalidArgument,
                       "chain length exceeds server limit");
  if (deadline.expired())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kDeadlineExceeded,
                       "budget expired before chain verification");
  util::Rng spot_rng;
  {
    std::lock_guard<std::mutex> lock(rng_mutex);
    spot_rng = rng.fork();
  }
  const protocol::ChainedVerifyResult result = ctx.device->verify_chain(
      request.grant.challenge, request.grant.chain_length,
      request.grant.nonce, request.report, options.spot_checks, spot_rng);
  return net::encode_frame(MessageType::kChainedAuthReply, frame.request_id,
                           frame.device_id, 0,
                           net::encode_chained_auth_reply(result));
}

std::vector<std::uint8_t> AuthServer::Impl::handle_enroll(
    const Frame& frame) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "server.enroll.request_us");
  if (device_registry == nullptr)
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kInvalidArgument,
                       "enrollment requires a registry-backed server");
  net::EnrollRequestBody body;
  if (Status s = net::decode_enroll_request(frame.payload, &body);
      !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kMalformed, s.message());
  // The wire passes unknown non-zero backend bytes through (forward
  // compatibility); they die here with a typed error instead.
  const auto kind = static_cast<backend::BackendKind>(body.backend);
  if (backend::find_backend(kind) == nullptr)
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kInvalidArgument,
                       "enroll: unknown backend");
  registry::EnrollRequest request;
  request.node_count = body.node_count;
  request.grid_size = body.grid_size;
  request.seed = body.fabrication_seed;
  request.label = body.label;
  request.backend = kind;
  // The frame header's device id doubles as the requested id (0 = assign
  // next free) so the gateway routes ENROLL like every other frame.
  request.device_id = frame.device_id;
  std::uint64_t assigned = 0;
  if (Status s = device_registry->enroll(request, &assigned); !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       wire_code_for(s), s.message());
  enrolls_served.fetch_add(1, std::memory_order_relaxed);
  net::EnrollReplyBody reply;
  reply.device_id = assigned;
  return net::encode_frame(MessageType::kEnrollReply, frame.request_id,
                           assigned, 0, net::encode_enroll_reply(reply));
}

std::vector<std::uint8_t> AuthServer::Impl::handle_wal_fetch(
    const Frame& frame) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "server.wal_fetch.request_us");
  if (device_registry == nullptr)
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kInvalidArgument,
                       "WAL shipping requires a registry-backed server");
  net::WalFetchRequestBody request;
  if (Status s = net::decode_wal_fetch_request(frame.payload, &request);
      !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       WireCode::kMalformed, s.message());
  // Clamp the pull size: 0 means "server's choice", and nothing may
  // exceed a bound well under kMaxPayload.
  constexpr std::size_t kDefaultSegment = 1u << 20;  // 1 MiB
  constexpr std::size_t kMaxSegment = 4u << 20;      // 4 MiB
  std::size_t max_bytes =
      request.max_bytes == 0 ? kDefaultSegment : request.max_bytes;
  max_bytes = std::min(max_bytes, kMaxSegment);
  net::WalSegmentBody reply;
  bool stale = false;
  if (Status s = device_registry->read_wal_segment(
          request.epoch, request.offset, max_bytes, &reply.bytes, &stale);
      !s.is_ok())
    return error_frame(frame.request_id, frame.device_id,
                       wire_code_for(s), s.message());
  if (stale) {
    // Epoch mismatch or out-of-range offset: the standby's position is
    // meaningless (restart or compaction happened).  Answer with a full
    // bootstrap snapshot and the position it corresponds to.
    reply.bytes.clear();
    registry::DeviceRegistry::WalPosition pos;
    if (Status s = device_registry->export_bootstrap(&reply.bytes, &pos);
        !s.is_ok())
      return error_frame(frame.request_id, frame.device_id,
                         wire_code_for(s), s.message());
    reply.bootstrap = 1;
    reply.epoch = pos.epoch;
    reply.next_offset = pos.offset;
  } else {
    reply.bootstrap = 0;
    reply.epoch = request.epoch;
    reply.next_offset = request.offset + reply.bytes.size();
  }
  wal_fetches_served.fetch_add(1, std::memory_order_relaxed);
  return net::encode_frame(MessageType::kWalSegmentReply, frame.request_id,
                           frame.device_id, 0,
                           net::encode_wal_segment_reply(reply));
}

void AuthServer::Impl::run_batch(std::uint64_t device_id,
                                 std::vector<PendingItem> items) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "server.batch.request_us");
  // Every item produces exactly one reply, no matter how the batch goes.
  std::vector<std::vector<std::uint8_t>> replies(items.size());
  try {
    DeviceContext ctx;
    if (Status resolved = resolve_device(device_id, &ctx);
        !resolved.is_ok()) {
      for (std::size_t i = 0; i < items.size(); ++i)
        replies[i] = device_error_reply(items[i].frame, resolved);
    } else {
      // Partition: decode/validate failures answer their own item and
      // drop out; the survivors gather into ONE predict_batch call and
      // ONE verify_batch call.  Both run inline on this worker — nested
      // pool dispatch would deadlock the pool (DESIGN.md §12).
      struct PredictSlot {
        std::size_t item;
        Challenge challenge;
      };
      struct VerifySlot {
        std::size_t item;
        Challenge challenge;
        protocol::ProverReport report;
      };
      std::vector<PredictSlot> predicts;
      std::vector<VerifySlot> verifies;
      for (std::size_t i = 0; i < items.size(); ++i) {
        const Frame& frame = items[i].frame;
        if (frame.type == MessageType::kPredictRequest) {
          Challenge c;
          if (Status s = net::decode_predict_request(frame.payload, &c);
              !s.is_ok()) {
            replies[i] = error_frame(frame.request_id, frame.device_id,
                                     WireCode::kMalformed, s.message());
            continue;
          }
          if (Status s = ctx.device->validate_challenge(c); !s.is_ok()) {
            replies[i] = error_frame(frame.request_id, frame.device_id,
                                     WireCode::kInvalidArgument,
                                     s.message());
            continue;
          }
          predicts.push_back({i, std::move(c)});
        } else {  // kVerifyRequest: dispatch() coalesces only these two
          Challenge c;
          protocol::ProverReport r;
          if (Status s = net::decode_verify_request(frame.payload, &c, &r);
              !s.is_ok()) {
            replies[i] = error_frame(frame.request_id, frame.device_id,
                                     WireCode::kMalformed, s.message());
            continue;
          }
          if (Status s = ctx.device->validate_challenge(c); !s.is_ok()) {
            replies[i] = error_frame(frame.request_id, frame.device_id,
                                     WireCode::kInvalidArgument,
                                     s.message());
            continue;
          }
          verifies.push_back({i, std::move(c), std::move(r)});
        }
      }
      if (!predicts.empty()) {
        std::vector<Challenge> challenges;
        challenges.reserve(predicts.size());
        SimulationModel::PredictBatchOptions popts;
        popts.algorithm = maxflow::Algorithm::kPushRelabel;
        popts.thread_count = 1;  // inline: this IS a pool worker already
        popts.cache = cache_for(ctx);
        popts.cache_device_id = device_id;
        popts.deadlines.reserve(predicts.size());
        for (const PredictSlot& slot : predicts) {
          challenges.push_back(slot.challenge);
          popts.deadlines.push_back(items[slot.item].deadline);
        }
        const std::vector<SimulationModel::Prediction> preds =
            ctx.device->predict_batch(challenges, popts);
        for (std::size_t k = 0; k < predicts.size(); ++k) {
          const std::size_t i = predicts[k].item;
          const Frame& frame = items[i].frame;
          if (!preds[k].ok())
            replies[i] = error_frame(frame.request_id, frame.device_id,
                                     wire_code_for(preds[k].status),
                                     preds[k].status.to_string());
          else
            replies[i] = net::encode_frame(
                MessageType::kPredictReply, frame.request_id,
                frame.device_id, 0, net::encode_predict_reply(preds[k]));
        }
      }
      if (!verifies.empty()) {
        // verify_batch has no per-item deadline plumbing; check expiry
        // per item here so a dead budget answers typed without poisoning
        // its batch-mates.
        std::vector<Challenge> vc;
        std::vector<protocol::ProverReport> vr;
        std::vector<std::size_t> live;
        for (VerifySlot& slot : verifies) {
          if (items[slot.item].deadline.expired()) {
            const Frame& frame = items[slot.item].frame;
            replies[slot.item] = error_frame(
                frame.request_id, frame.device_id,
                WireCode::kDeadlineExceeded,
                "budget expired in coalescing window");
            continue;
          }
          live.push_back(slot.item);
          vc.push_back(std::move(slot.challenge));
          vr.push_back(std::move(slot.report));
        }
        if (!vc.empty()) {
          protocol::Verifier::BatchVerifyOptions vopts;
          vopts.thread_count = 1;  // inline on this worker
          const std::vector<protocol::AuthenticationResult> results =
              ctx.device->verify_batch(vc, vr, vopts);
          for (std::size_t k = 0; k < live.size(); ++k) {
            const Frame& frame = items[live[k]].frame;
            replies[live[k]] = net::encode_frame(
                MessageType::kVerifyReply, frame.request_id,
                frame.device_id, 0, net::encode_verify_reply(results[k]));
          }
        }
      }
    }
  } catch (const std::exception& e) {
    for (std::size_t i = 0; i < items.size(); ++i)
      if (replies[i].empty())
        replies[i] = error_frame(items[i].frame.request_id,
                                 items[i].frame.device_id,
                                 WireCode::kInternal, e.what());
  } catch (...) {
    for (std::size_t i = 0; i < items.size(); ++i)
      if (replies[i].empty())
        replies[i] = error_frame(items[i].frame.request_id,
                                 items[i].frame.device_id,
                                 WireCode::kInternal,
                                 "unknown batch handler failure");
  }
  // Reply-scatter: one lock and one wake for the whole batch; each item
  // routes back to its own originating connection.
  {
    std::lock_guard<std::mutex> lock(completion_mutex);
    for (std::size_t i = 0; i < items.size(); ++i)
      completions.push_back({items[i].connection_id, std::move(replies[i])});
  }
  inflight.fetch_sub(items.size(), std::memory_order_relaxed);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t rc = ::write(wake_fd, &one, sizeof(one));
}

}  // namespace ppuf::server
