// Network authentication service: the paper's verifier as a TCP server.
//
// A public PUF is a client/server primitive by construction — the prover
// owns the chip, the verifier owns only the published model — so this
// server is the missing half of the reproduction: it loads a
// SimulationModel and serves PREDICT / VERIFY / VERIFY_BATCH / CHALLENGE /
// CHAINED_AUTH over the framed wire protocol of net/wire.
//
// Threading model (DESIGN.md §12):
//   - ONE event-loop thread owns every socket: epoll-driven non-blocking
//     accept/read/write, frame extraction, admission control, and error
//     replies.  It never solves anything.
//   - A util::ThreadPool executes request bodies (max-flow solves,
//     residual-graph verification).  Workers never touch sockets; they
//     hand finished reply bytes back through a completion queue and wake
//     the loop via an eventfd.
//
// Overload semantics: admission is a bounded in-flight count checked by
// the event loop before dispatch.  Past the bound the request is answered
// immediately with a typed OVERLOADED error reply — the acceptor never
// blocks, the connection never drops, and the client's backoff machinery
// gets a signal it can act on.
//
// Deadlines: the frame header's budget_ms is re-anchored to an absolute
// util::Deadline when the frame is decoded, so queue wait counts against
// the budget.  The deadline propagates into SolveControl for predictions
// and is checked between items/rounds for verification, so an expired
// request yields a typed DEADLINE_EXCEEDED reply, never a hung or dropped
// connection.
//
// Drain: request_drain() stops the acceptor, answers new requests with
// SHUTTING_DOWN, lets in-flight work finish, flushes every reply, then
// closes.  SIGTERM wiring lives in the caller (ppuf_tool serve).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "ppuf/sim_model.hpp"
#include "util/status.hpp"

namespace ppuf::registry {
class DeviceRegistry;
}

namespace ppuf::server {

struct AuthServerOptions {
  std::uint16_t port = 0;       ///< 0 = ephemeral (read back via port())
  int listen_backlog = 64;
  unsigned threads = 1;         ///< worker pool size
  std::size_t max_inflight = 64;  ///< admission bound (dispatched, unfinished)
  /// Verifier response-time budget handed out with challenge grants and
  /// enforced against reported elapsed_seconds.
  double verifier_deadline_seconds = 1.0;
  /// Flow tolerance as a fraction of the model's mean edge capacity (see
  /// Verifier's constructor notes; 0.10 is the robust setting).
  double flow_tolerance_fraction = 0.10;
  std::uint32_t chain_length = 4;  ///< k granted to CHALLENGE requests
  std::size_t spot_checks = 2;     ///< chained rounds fully verified (0=all)
  /// Seed of the challenge-issuing RNG.  Callers MUST set this to an
  /// unpredictable value: a guessable seed means guessable challenges,
  /// which collapses the protocol (ppuf_tool refuses to serve a single
  /// device without an explicit seed for exactly this reason).
  std::uint64_t challenge_seed = 1;
  /// Registry mode only: bound on concurrently materialised devices (the
  /// hydration cache's LRU size).
  std::size_t hydration_cache_entries = 8;
  /// Upper bound accepted for a client-echoed grant's chain length — the
  /// verification cost is k solves, so k is adversary-controlled work.
  std::uint32_t max_chain_length = 64;
  /// Upper bound honoured for PING delay_ms (a load-testing knob, not an
  /// invitation to park workers forever).
  std::uint32_t max_ping_delay_ms = 10000;
  /// Cross-connection request coalescing (DESIGN.md §16).  When > 1 the
  /// event loop gathers PREDICT / VERIFY frames from *all* connections
  /// into per-device batches instead of dispatching one pool task per
  /// frame: a batch closes when it reaches this many items, when its
  /// oldest frame has waited coalesce_wait_us, or when the server starts
  /// draining.  A frame whose budget cannot survive the batch window is
  /// dispatched solo.  1 (the default) preserves per-frame dispatch
  /// exactly — same tasks, same replies, byte for byte.
  std::size_t coalesce_max_batch = 1;
  /// Batch window: the longest a coalesced frame waits before its batch
  /// is flushed to the worker pool regardless of fill.
  std::uint32_t coalesce_wait_us = 500;
  /// Bytes of the shared, device-keyed CRP response cache wired into the
  /// coalesced predict path; 0 disables.  Per-frame dispatch never reads
  /// it, so a coalesce-off server measures the uncached baseline.
  std::size_t response_cache_bytes = 0;
  /// Per-connection bound on queued reply bytes.  A peer that stops
  /// reading while replies keep arriving (a slow or blocked reader) is
  /// disconnected at this bound instead of growing the out-queue without
  /// limit; 0 = unbounded.  Workers never block on a peer either way —
  /// only the event loop touches sockets.
  std::size_t max_connection_backlog_bytes = 4 * 1024 * 1024;
};

class AuthServer {
 public:
  /// Single-device mode: serve exactly one model, addressed on the wire
  /// as device id 0 (net::kDefaultDeviceId).  `model` must outlive the
  /// server.
  AuthServer(const SimulationModel& model, AuthServerOptions options = {});

  /// Multi-tenant mode: serve every active device enrolled in `registry`,
  /// addressed by its registry id; unknown or revoked ids get a typed
  /// UNKNOWN_DEVICE reply (and so does id 0 — there is no implicit device
  /// in this mode).  Models are materialised on demand through a bounded
  /// hydration cache.  `registry` must outlive the server.  Non-const
  /// because this mode also serves ENROLL (network enrollment) and
  /// WAL_FETCH (standby replication) frames, which mutate/export the
  /// registry; both are refused with a typed error in single-device mode.
  AuthServer(registry::DeviceRegistry& registry,
             AuthServerOptions options = {});
  ~AuthServer();

  AuthServer(const AuthServer&) = delete;
  AuthServer& operator=(const AuthServer&) = delete;

  /// Bind, listen, and spawn the event loop + worker pool.
  util::Status start();

  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Begin graceful shutdown: stop accepting, reject new requests with
  /// SHUTTING_DOWN, finish in-flight work, flush replies, close.
  /// Idempotent; safe from any thread (including a signal-watching one).
  void request_drain();

  /// Block until the event loop has exited (drained).
  void wait();

  /// request_drain() + wait().  Also called by the destructor.
  void stop();

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests = 0;            ///< dispatched to the pool
    std::uint64_t overloaded_rejections = 0;
    std::uint64_t shutdown_rejections = 0;
    std::uint64_t malformed_frames = 0;
    std::uint64_t unknown_device_rejections = 0;
    std::uint64_t coalesced_batches = 0;   ///< device batches flushed
    std::uint64_t coalesced_items = 0;     ///< frames served via a batch
    std::uint64_t solo_dispatches = 0;     ///< budget too tight to coalesce
    std::uint64_t slow_peer_disconnects = 0;  ///< backlog bound enforced
    std::uint64_t enrolls_served = 0;      ///< network enrollments committed
    std::uint64_t wal_fetches_served = 0;  ///< standby segment/bootstrap pulls
  };
  Stats stats() const;

 private:
  struct Impl;

  const SimulationModel* model_ = nullptr;    ///< single-device mode
  registry::DeviceRegistry* registry_ = nullptr;  ///< registry mode
  AuthServerOptions options_;
  std::unique_ptr<Impl> impl_;
  std::thread loop_thread_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
};

}  // namespace ppuf::server
