// Deterministic fault-injection harness.
//
// Robustness claims are only as good as the failures they were tested
// against, and the interesting failures here — Newton stalls, poisoned
// capacities, late provers — are rare in healthy instances.  This harness
// manufactures them on demand, seeded so every corrupted input is
// bit-for-bit reproducible:
//
//   - ScopedFaultInjection arms the process-wide util::FaultHooks (the tiny
//     atomic hook points the solvers consult) and restores a clean slate on
//     scope exit, so a failing test cannot leak faults into the next one;
//   - FaultInjector derives corrupted copies of real inputs: perturbed
//     device parameters, NaN/inf capacities, delayed prover reports.
//
// The harness lives above every subsystem it corrupts; production code
// never links it.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"
#include "graph/digraph.hpp"
#include "protocol/authentication.hpp"
#include "util/fault_hooks.hpp"
#include "util/rng.hpp"

namespace ppuf::testing {

/// Declarative description of the process-wide hooks to arm.
struct FaultSpec {
  /// >0: cap the iteration budget of the *direct* Newton rung, forcing the
  /// recovery ladder to engage deterministically.
  int newton_direct_iteration_cap = 0;
  /// Skip the gmin-stepping rung so a test can pin which deeper rung
  /// recovers.
  bool newton_skip_gmin_stage = false;
  /// The next N batch solve attempts fail with util::TransientError.
  int maxflow_transient_failures = 0;
  /// The next N AuthServer socket sends fail as if the peer reset the
  /// connection (deterministic close-mid-pipeline).
  int server_send_failures = 0;
  /// >= 0: the next registry WAL append writes only this many bytes of the
  /// record and then fails as if the process died (torn tail).  One-shot.
  int registry_torn_write_bytes = -1;
  /// The next N registry WAL appends fail before writing anything, as if
  /// the disk were full (typed error, state unchanged).
  int registry_append_failures = 0;
  /// The next N registry fsyncs (WAL append, snapshot .tmp, directory)
  /// fail; the caller must treat the data as uncommitted.
  int registry_fsync_failures = 0;
  /// The next N registry snapshot renames fail; compaction must keep the
  /// old snapshot + WAL intact.
  int registry_rename_failures = 0;
};

/// RAII arming of util::FaultHooks.  Restores an all-clear state on
/// destruction, including on exceptions and test assertion unwinds.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultSpec& spec);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// Seeded source of corrupted-but-reproducible inputs.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// `count` distinct indices in [0, size), deterministic in the seed.
  std::vector<std::size_t> pick_indices(std::size_t size, std::size_t count);

  /// Copy of `netlist` with every MOSFET threshold shifted by a gaussian
  /// draw of stddev `vth_sigma` volts and every resistor scaled by
  /// (1 + gaussian(0, resistor_rel_sigma)).
  circuit::Netlist perturb_devices(const circuit::Netlist& netlist,
                                   double vth_sigma,
                                   double resistor_rel_sigma);

  /// Copy of `g` with the capacity of each listed edge replaced by
  /// `poison` (NaN and +inf are the interesting values — Digraph already
  /// rejects negatives at the API boundary).
  graph::Digraph corrupt_capacities(const graph::Digraph& g,
                                    const std::vector<graph::EdgeId>& edges,
                                    double poison);

  /// The report a too-slow prover would send: same claims, elapsed time
  /// pushed past whatever it was by `delay_seconds`.
  static protocol::ProverReport delay_report(protocol::ProverReport report,
                                             double delay_seconds);

 private:
  util::Rng rng_;
};

}  // namespace ppuf::testing
