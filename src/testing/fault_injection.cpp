#include "testing/fault_injection.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppuf::testing {

ScopedFaultInjection::ScopedFaultInjection(const FaultSpec& spec) {
  util::FaultHooks& hooks = util::FaultHooks::instance();
  hooks.reset();
  hooks.newton_direct_iteration_cap.store(spec.newton_direct_iteration_cap,
                                          std::memory_order_relaxed);
  hooks.newton_skip_gmin_stage.store(spec.newton_skip_gmin_stage,
                                     std::memory_order_relaxed);
  hooks.maxflow_transient_failures.store(spec.maxflow_transient_failures,
                                         std::memory_order_relaxed);
  hooks.server_send_failures.store(spec.server_send_failures,
                                   std::memory_order_relaxed);
  hooks.registry_torn_write_bytes.store(spec.registry_torn_write_bytes,
                                        std::memory_order_relaxed);
  hooks.registry_append_failures.store(spec.registry_append_failures,
                                       std::memory_order_relaxed);
  hooks.registry_fsync_failures.store(spec.registry_fsync_failures,
                                      std::memory_order_relaxed);
  hooks.registry_rename_failures.store(spec.registry_rename_failures,
                                       std::memory_order_relaxed);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  util::FaultHooks::instance().reset();
}

std::vector<std::size_t> FaultInjector::pick_indices(std::size_t size,
                                                     std::size_t count) {
  if (count > size)
    throw std::invalid_argument("pick_indices: count > size");
  // Partial Fisher-Yates over an index identity vector: the first `count`
  // slots end up a uniform sample without replacement.
  std::vector<std::size_t> all(size);
  for (std::size_t i = 0; i < size; ++i) all[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(rng_.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(size) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

circuit::Netlist FaultInjector::perturb_devices(
    const circuit::Netlist& netlist, double vth_sigma,
    double resistor_rel_sigma) {
  circuit::Netlist out = netlist;
  for (circuit::Netlist::Mosfet& m : out.mosfets())
    m.params.vth += rng_.gaussian(0.0, vth_sigma);
  for (circuit::Netlist::Resistor& r : out.resistors())
    r.resistance *= 1.0 + rng_.gaussian(0.0, resistor_rel_sigma);
  return out;
}

graph::Digraph FaultInjector::corrupt_capacities(
    const graph::Digraph& g, const std::vector<graph::EdgeId>& edges,
    double poison) {
  graph::Digraph out = g;
  for (const graph::EdgeId e : edges) {
    if (e >= out.edge_count())
      throw std::invalid_argument("corrupt_capacities: edge id out of range");
    out.set_capacity(e, poison);
  }
  return out;
}

protocol::ProverReport FaultInjector::delay_report(
    protocol::ProverReport report, double delay_seconds) {
  report.elapsed_seconds += delay_seconds;
  return report;
}

}  // namespace ppuf::testing
