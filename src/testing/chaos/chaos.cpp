#include "testing/chaos/chaos.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "circuit/mna.hpp"
#include "net/client.hpp"
#include "ppuf/challenge.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/authentication.hpp"
#include "registry/device_registry.hpp"
#include "server/auth_server.hpp"
#include "util/fault_hooks.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ppuf::testing::chaos {

namespace fs = std::filesystem;
using util::Deadline;
using util::FaultHooks;
using util::Status;
using util::StatusCode;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// The only error codes a fault is allowed to surface to a client.
bool is_transient(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

}  // namespace

const char* phase_kind_name(FaultPhase::Kind kind) {
  switch (kind) {
    case FaultPhase::Kind::kQuiet: return "quiet";
    case FaultPhase::Kind::kNetwork: return "network";
    case FaultPhase::Kind::kDisk: return "disk";
    case FaultPhase::Kind::kLatency: return "latency";
    case FaultPhase::Kind::kMixed: return "mixed";
  }
  return "unknown";
}

FaultSchedule FaultSchedule::from_seed(std::uint64_t seed,
                                       double total_seconds) {
  FaultSchedule schedule;
  schedule.seed = seed;
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  // Percentage -> parts-per-million, jittered within [lo, hi].
  const auto ppm = [&rng](double lo_pct, double hi_pct) {
    return static_cast<std::uint32_t>(
        10000.0 * (lo_pct + (hi_pct - lo_pct) * rng.uniform()));
  };
  double remaining = total_seconds;
  bool first = true;
  while (remaining > 1e-9) {
    FaultPhase p;
    p.duration_s = std::min(remaining, 0.06 + 0.12 * rng.uniform());
    // Always open with a quiet window so the stack warms up before the
    // first burst; after that the kind is drawn per window.
    const int kind = first ? 0 : static_cast<int>(rng.uniform_int(0, 4));
    first = false;
    p.kind = static_cast<FaultPhase::Kind>(kind);
    switch (p.kind) {
      case FaultPhase::Kind::kQuiet:
        break;
      case FaultPhase::Kind::kNetwork:
        p.net_send_fail_ppm = ppm(0.5, 4.0);
        p.net_recv_fail_ppm = ppm(0.5, 4.0);
        p.server_send_fail_ppm = ppm(0.5, 4.0);
        p.server_send_short_ppm = ppm(1.0, 10.0);
        p.server_recv_fail_ppm = ppm(0.5, 3.0);
        p.server_accept_fail_ppm = ppm(0.5, 5.0);
        break;
      case FaultPhase::Kind::kDisk:
        p.wal_append_fail_ppm = ppm(2.0, 20.0);
        p.wal_torn_ppm = ppm(1.0, 10.0);
        p.fsync_fail_ppm = ppm(2.0, 20.0);
        p.rename_fail_ppm = ppm(5.0, 30.0);
        break;
      case FaultPhase::Kind::kLatency:
        p.net_latency_ppm = ppm(5.0, 25.0);
        p.net_latency_us =
            static_cast<std::uint32_t>(200 + 2800 * rng.uniform());
        break;
      case FaultPhase::Kind::kMixed:
        p.net_send_fail_ppm = ppm(0.3, 2.0);
        p.net_recv_fail_ppm = ppm(0.3, 2.0);
        p.server_send_fail_ppm = ppm(0.3, 2.0);
        p.server_send_short_ppm = ppm(0.5, 5.0);
        p.server_accept_fail_ppm = ppm(0.3, 2.0);
        p.wal_append_fail_ppm = ppm(1.0, 10.0);
        p.wal_torn_ppm = ppm(0.5, 5.0);
        p.fsync_fail_ppm = ppm(1.0, 10.0);
        p.rename_fail_ppm = ppm(2.0, 15.0);
        p.net_latency_ppm = ppm(2.0, 10.0);
        p.net_latency_us =
            static_cast<std::uint32_t>(100 + 1400 * rng.uniform());
        break;
    }
    schedule.phases.push_back(p);
    remaining -= p.duration_s;
  }
  return schedule;
}

namespace {

void apply_phase(const FaultPhase& p) {
  FaultHooks::instance().clear_chaos_plane();
  auto& h = FaultHooks::instance();
  h.net_send_fail_ppm = p.net_send_fail_ppm;
  h.net_recv_fail_ppm = p.net_recv_fail_ppm;
  h.net_latency_ppm = p.net_latency_ppm;
  h.net_latency_us = p.net_latency_us;
  h.server_send_fail_ppm = p.server_send_fail_ppm;
  h.server_send_short_ppm = p.server_send_short_ppm;
  h.server_recv_fail_ppm = p.server_recv_fail_ppm;
  h.server_accept_fail_ppm = p.server_accept_fail_ppm;
  h.wal_append_fail_ppm = p.wal_append_fail_ppm;
  h.wal_torn_ppm = p.wal_torn_ppm;
  h.fsync_fail_ppm = p.fsync_fail_ppm;
  h.rename_fail_ppm = p.rename_fail_ppm;
}

/// Everything the worker threads share; violations and tallies are merged
/// under one mutex (the campaign is seconds long, contention is nil).
struct CampaignState {
  std::mutex mutex;
  std::vector<std::string> violations;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t typed_transient = 0;
  std::uint64_t typed_rejections = 0;
  std::atomic<bool> stop{false};

  static constexpr std::size_t kMaxViolations = 32;

  void violation(const std::string& message) {
    std::lock_guard<std::mutex> lock(mutex);
    if (violations.size() < kMaxViolations) violations.push_back(message);
  }
  void tally(std::uint64_t req, std::uint64_t okc, std::uint64_t transient,
             std::uint64_t rejections) {
    std::lock_guard<std::mutex> lock(mutex);
    requests += req;
    ok += okc;
    typed_transient += transient;
    typed_rejections += rejections;
  }
};

struct OracleDevice {
  std::uint64_t id = 0;
  std::uint64_t fab_seed = 0;
  SimulationModel model;
  std::vector<Challenge> challenges;
  std::vector<SimulationModel::Prediction> expected;
};

/// One client worker: hammers the server with a seeded mix of operations
/// and checks every *successful* reply against the oracle.  Transient
/// typed errors are expected under faults; anything else is a violation.
void client_worker(int index, const CampaignOptions& options,
                   std::uint16_t port,
                   const std::vector<OracleDevice>& oracle,
                   std::shared_ptr<circuit::SymbolicCache> symbolic,
                   CampaignState* state) {
  util::Rng rng(options.seed * 1315423911ULL + 0x7f4a7c15ULL * (index + 1));
  net::ClientOptions copts;
  copts.connect_timeout_ms = 250;
  copts.request_timeout_ms = 400;
  copts.max_attempts = 2;
  copts.backoff_initial_ms = 1;
  copts.backoff_max_ms = 20;
  copts.backoff_seed = options.seed * 100 + index + 1;
  copts.breaker_failure_threshold = 5;
  copts.breaker_cooldown_ms = 50;
  copts.pipeline_depth = 4;
  net::AuthClient client("127.0.0.1", port, copts);

  // The honest prover needs the physical chip: refabricate each oracle
  // device from its seed (the seed IS the silicon).  Every chip shares
  // the registry's enrollment symbolic cache — same netlist topology, so
  // the MNA pattern/sparse-LU analysis is derived once, not per chip per
  // worker.
  PpufParams params;
  params.node_count = static_cast<std::size_t>(options.node_count);
  params.grid_size = static_cast<std::size_t>(options.grid_size);
  std::vector<std::unique_ptr<MaxFlowPpuf>> chips;
  chips.reserve(oracle.size());
  for (const OracleDevice& dev : oracle) {
    chips.push_back(std::make_unique<MaxFlowPpuf>(params, dev.fab_seed));
    if (symbolic != nullptr) {
      chips.back()->network_a().set_symbolic_cache(symbolic);
      chips.back()->network_b().set_symbolic_cache(symbolic);
    }
  }
  constexpr double kChipDelay = 1e-6;

  std::uint64_t requests = 0, ok = 0, transient = 0, rejections = 0;
  const auto classify = [&](const Status& s, const char* what) {
    ++requests;
    if (s.is_ok()) {
      ++ok;
      return true;
    }
    if (is_transient(s.code())) {
      ++transient;
    } else {
      state->violation(std::string("client ") + std::to_string(index) + " " +
                       what + ": untyped/unexpected error: " + s.to_string());
    }
    return false;
  };

  while (!state->stop.load(std::memory_order_relaxed)) {
    const std::size_t dev_index =
        static_cast<std::size_t>(rng.uniform_int(0, oracle.size() - 1));
    const OracleDevice& dev = oracle[dev_index];
    client.set_device_id(dev.id);
    const int op = static_cast<int>(rng.uniform_int(0, 99));

    if (op < 32) {
      // PREDICT against the precomputed oracle table: a successful reply
      // that differs from the device's own model is a wrong response
      // (cross-device or corrupted) — the core invariant.
      const std::size_t c =
          static_cast<std::size_t>(rng.uniform_int(0, dev.challenges.size() - 1));
      SimulationModel::Prediction got;
      const Status s = client.predict(dev.challenges[c], &got,
                                      Deadline::after_seconds(0.5));
      if (classify(s, "predict")) {
        const SimulationModel::Prediction& want = dev.expected[c];
        if (got.bit != want.bit || got.flow_a != want.flow_a ||
            got.flow_b != want.flow_b) {
          state->violation(
              "wrong response for device " + std::to_string(dev.id) +
              ": bit " + std::to_string(got.bit) + " vs " +
              std::to_string(want.bit) + " (oracle mismatch)");
        }
      }
    } else if (op < 40) {
      // Pipelined PREDICT window: replies may come back out of submission
      // order (a coalescing server answers solo dispatches ahead of
      // batch-mates), so strict request-id matching must still attribute
      // every reply to its own challenge — checked against the oracle.
      const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 4));
      std::vector<Challenge> window;
      std::vector<std::size_t> which;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t c = static_cast<std::size_t>(
            rng.uniform_int(0, dev.challenges.size() - 1));
        which.push_back(c);
        window.push_back(dev.challenges[c]);
      }
      std::vector<SimulationModel::Prediction> got;
      const Status s = client.predict_pipelined(
          window, &got, Deadline::after_seconds(0.8));
      if (classify(s, "predict_pipelined")) {
        for (std::size_t k = 0; k < n; ++k) {
          if (!got[k].ok()) {
            if (!is_transient(got[k].status.code()))
              state->violation("pipelined item: unexpected typed error: " +
                               got[k].status.to_string());
            continue;
          }
          const SimulationModel::Prediction& want = dev.expected[which[k]];
          if (got[k].bit != want.bit || got[k].flow_a != want.flow_a ||
              got[k].flow_b != want.flow_b)
            state->violation("pipelined wrong response for device " +
                             std::to_string(dev.id) +
                             " (misattributed or corrupted reply)");
        }
      }
    } else if (op < 58) {
      net::HealthInfo health;
      const Status s = client.ping(0, Deadline::after_seconds(0.5), &health);
      if (classify(s, "ping")) {
        if (health.max_inflight !=
            static_cast<std::uint32_t>(options.max_inflight)) {
          state->violation("health payload max_inflight " +
                           std::to_string(health.max_inflight) +
                           " != configured " +
                           std::to_string(options.max_inflight));
        }
      }
    } else if (op < 70) {
      net::ChallengeGrant grant;
      const Status s =
          client.get_challenge(&grant, Deadline::after_seconds(0.5));
      if (classify(s, "get_challenge") && grant.chain_length == 0) {
        state->violation("challenge grant with chain_length 0");
      }
    } else if (op < 82) {
      // Unknown-device probe: must be refused with a typed NOT_FOUND, an
      // ok reply here means the registry served a device that does not
      // exist.
      client.set_device_id(1000000 + static_cast<std::uint64_t>(index));
      SimulationModel::Prediction got;
      const Status s = client.predict(dev.challenges[0], &got,
                                      Deadline::after_seconds(0.5));
      ++requests;
      if (s.is_ok()) {
        state->violation("unknown device id was served a prediction");
      } else if (s.code() == StatusCode::kNotFound) {
        ++rejections;
      } else if (is_transient(s.code())) {
        ++transient;
      } else {
        state->violation("unknown-device probe: unexpected error: " +
                         s.to_string());
      }
    } else {
      // Chained authentication.  Honest proof must be accepted; a forged
      // report (every response bit flipped) must be rejected — both are
      // deterministic verdicts, so either failure is a wrong-accept /
      // wrong-reject violation.
      net::ChallengeGrant grant;
      Status s = client.get_challenge(&grant, Deadline::after_seconds(0.5));
      if (classify(s, "get_challenge(chain)")) {
        protocol::ChainedReport report = protocol::prove_chain_with_ppuf(
            *chips[dev_index], grant.challenge, grant.chain_length,
            grant.nonce, kChipDelay);
        const bool forge = op >= 93;
        if (forge)
          for (auto& round : report.rounds) round.bit = 1 - round.bit;
        protocol::ChainedVerifyResult verdict;
        s = client.chained_auth(grant, report, &verdict,
                                Deadline::after_seconds(0.8));
        if (classify(s, "chained_auth")) {
          // Only the wrong-ACCEPT direction is a hard invariant: the
          // forged report must never pass.  The honest direction is
          // statistical (the chip's circuit-level currents sit inside the
          // verifier's flow tolerance for most but not every challenge),
          // so a rejection there is not a campaign violation.
          if (forge && verdict.accepted) {
            state->violation("forged chained report was ACCEPTED (device " +
                             std::to_string(dev.id) + ")");
          }
        }
      }
    }
  }
  state->tally(requests, ok, transient, rejections);
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options) {
  CampaignResult result;
  result.seed = options.seed;

  FaultHooks::instance().reset();
  FaultHooks::seed_chaos(options.seed);

  const fs::path dir =
      fs::temp_directory_path() /
      ("ppuf_chaos_" + std::to_string(options.seed) + "_" +
       std::to_string(static_cast<long>(::getpid())));
  std::error_code ec;
  fs::remove_all(dir, ec);

  registry::DeviceRegistry reg;
  Status st = reg.open(dir.string());
  if (!st.is_ok()) {
    result.violations.push_back("registry open failed: " + st.to_string());
    return result;
  }

  // Enroll the oracle devices and precompute their expected predictions
  // while the fault plane is still cold.
  std::vector<OracleDevice> oracle;
  util::Rng challenge_rng(options.seed ^ 0x5bd1e995U);
  for (int i = 0; i < options.devices; ++i) {
    OracleDevice dev;
    dev.fab_seed = options.seed * 1000 + i + 1;
    registry::EnrollRequest req;
    req.node_count = static_cast<std::size_t>(options.node_count);
    req.grid_size = static_cast<std::size_t>(options.grid_size);
    req.seed = dev.fab_seed;
    req.label = "oracle-" + std::to_string(i);
    st = reg.enroll(req, &dev.id);
    if (!st.is_ok()) {
      result.violations.push_back("oracle enroll failed: " + st.to_string());
      return result;
    }
    st = reg.load_model(dev.id, &dev.model);
    if (!st.is_ok()) {
      result.violations.push_back("oracle load_model failed: " +
                                  st.to_string());
      return result;
    }
    for (int c = 0; c < 6; ++c) {
      dev.challenges.push_back(
          random_challenge(dev.model.layout(), challenge_rng));
      dev.expected.push_back(dev.model.predict(dev.challenges.back()));
    }
    oracle.push_back(std::move(dev));
  }

  server::AuthServerOptions sopts;
  sopts.port = 0;
  sopts.threads = static_cast<unsigned>(options.server_threads);
  sopts.max_inflight = static_cast<std::size_t>(options.max_inflight);
  sopts.chain_length = 2;
  sopts.spot_checks = 2;
  sopts.challenge_seed = options.seed * 2654435761ULL + 17;
  sopts.coalesce_max_batch = options.coalesce_batch;
  sopts.coalesce_wait_us = options.coalesce_wait_us;
  sopts.response_cache_bytes = options.response_cache_bytes;
  auto server = std::make_unique<server::AuthServer>(reg, sopts);
  st = server->start();
  if (!st.is_ok()) {
    result.violations.push_back("server start failed: " + st.to_string());
    return result;
  }
  const std::uint16_t port = server->port();
  sopts.port = port;  // restarts rebind the same port

  CampaignState state;

  // Fault scheduler: replay the seeded schedule, looping until told to
  // stop; the plane is cleared between windows and fully reset at exit.
  const FaultSchedule schedule =
      FaultSchedule::from_seed(options.seed, options.duration_s);
  std::thread scheduler([&schedule, &state] {
    while (!state.stop.load(std::memory_order_relaxed)) {
      for (const FaultPhase& p : schedule.phases) {
        if (state.stop.load(std::memory_order_relaxed)) break;
        apply_phase(p);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(p.duration_s));
      }
    }
    FaultHooks::instance().clear_chaos_plane();
  });

  // Enrollment churn: disk faults must land on live WAL appends and
  // auto-compactions, and every acknowledged commit is recorded so the
  // final recovery can be diffed against it.
  std::set<std::uint64_t> committed_enrolls;
  std::set<std::uint64_t> committed_revokes;
  std::uint64_t enrolls_failed = 0;
  std::thread churn;
  if (options.enroll_churn) {
    churn = std::thread([&] {
      util::Rng rng(options.seed * 31 + 7);
      std::uint64_t counter = 0;
      std::vector<std::uint64_t> mine;
      while (!state.stop.load(std::memory_order_relaxed)) {
        registry::EnrollRequest req;
        req.node_count = 6;
        req.grid_size = 3;
        req.seed = options.seed * 1000 + 500 + counter++;
        req.label = "churn";
        std::uint64_t id = 0;
        const Status es = reg.enroll(req, &id);
        if (es.is_ok()) {
          committed_enrolls.insert(id);
          mine.push_back(id);
        } else {
          ++enrolls_failed;
        }
        if (!mine.empty() && rng.uniform_int(0, 3) == 0) {
          const std::uint64_t rid = mine[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(mine.size()) - 1))];
          if (reg.revoke(rid).is_ok()) committed_revokes.insert(rid);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  std::vector<std::thread> workers;
  for (int i = 0; i < options.clients; ++i) {
    workers.emplace_back(client_worker, i, options, port, std::cref(oracle),
                         reg.enroll_symbolic_cache(), &state);
  }

  // Controller: spread the restarts evenly across the campaign and
  // measure each blackout from stop() to the first successful ping.
  const auto begin = Clock::now();
  const double slice_s =
      options.duration_s / static_cast<double>(options.restarts + 1);
  for (int r = 0; r < options.restarts + 1; ++r) {
    std::this_thread::sleep_for(std::chrono::duration<double>(slice_s));
    if (r == options.restarts) break;  // last slice just runs out the clock
    const auto t0 = Clock::now();
    server->stop();
    server = std::make_unique<server::AuthServer>(reg, sopts);
    st = server->start();
    for (int attempt = 0; !st.is_ok() && attempt < 50; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      server = std::make_unique<server::AuthServer>(reg, sopts);
      st = server->start();
    }
    if (!st.is_ok()) {
      state.violation("server failed to restart on port " +
                      std::to_string(port) + ": " + st.to_string());
      break;
    }
    // Readiness probe with self-protection off: one attempt per ping, no
    // breaker, so the measurement is the server's, not the client's.
    net::ClientOptions popts;
    popts.connect_timeout_ms = 100;
    popts.request_timeout_ms = 200;
    popts.max_attempts = 1;
    popts.breaker_failure_threshold = 0;
    popts.backoff_seed = options.seed + 99;
    net::AuthClient probe("127.0.0.1", port, popts);
    bool up = false;
    while (elapsed_ms(t0) < options.recovery_bound_ms) {
      if (probe.ping(0, Deadline::after_seconds(0.2)).is_ok()) {
        up = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const double blackout = elapsed_ms(t0);
    if (!up) {
      state.violation("restart " + std::to_string(r) +
                      " did not recover within " +
                      std::to_string(options.recovery_bound_ms) + " ms");
    } else {
      result.recovery_ms.push_back(blackout);
    }
  }
  (void)begin;

  state.stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : workers) w.join();
  if (churn.joinable()) churn.join();
  scheduler.join();

  result.faults_injected = FaultHooks::total_faults_injected();
  FaultHooks::instance().reset();

  server->stop();
  server.reset();

  // Final durability diff: recover the directory from scratch and check
  // every acknowledged commit survived.
  registry::DeviceRegistry recovered;
  st = recovered.open(dir.string());
  if (!st.is_ok()) {
    result.violations.push_back("final recovery failed: " + st.to_string());
  } else {
    for (const OracleDevice& dev : oracle) {
      if (!recovered.active(dev.id))
        result.violations.push_back("oracle device " + std::to_string(dev.id) +
                                    " lost after recovery");
    }
    for (const std::uint64_t id : committed_enrolls) {
      if (!recovered.contains(id))
        result.violations.push_back("committed enrollment " +
                                    std::to_string(id) +
                                    " lost after recovery");
    }
    for (const std::uint64_t id : committed_revokes) {
      if (recovered.active(id))
        result.violations.push_back("revoked device " + std::to_string(id) +
                                    " active again after recovery");
    }
  }

  {
    std::lock_guard<std::mutex> lock(state.mutex);
    result.requests = state.requests;
    result.ok = state.ok;
    result.typed_transient = state.typed_transient;
    result.typed_rejections = state.typed_rejections;
    for (std::string& v : state.violations)
      result.violations.push_back(std::move(v));
  }
  result.enrolls_committed = committed_enrolls.size();
  result.enrolls_failed = enrolls_failed;

  fs::remove_all(dir, ec);
  return result;
}

namespace {

bool write_line(int fd, const char* buffer, std::size_t length) {
  std::size_t done = 0;
  while (done < length) {
    const ssize_t n = ::write(fd, buffer + done, length - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Child body for one torture iteration: enroll (and occasionally revoke)
/// as fast as possible, acknowledging each commit over the pipe only
/// AFTER the registry reported it durable.  The parent SIGKILLs us at an
/// arbitrary point; anything acknowledged must survive.
[[noreturn]] void torture_child(const TortureOptions& options,
                                const std::string& dir, int iteration,
                                int ack_fd) {
  registry::DeviceRegistry reg;
  if (!reg.open(dir).is_ok()) ::_exit(2);
  util::Rng rng(options.seed * 7919 + static_cast<std::uint64_t>(iteration));
  std::vector<std::uint64_t> mine;
  for (int k = 0; k < 1000; ++k) {
    registry::EnrollRequest req;
    req.node_count = static_cast<std::size_t>(options.node_count);
    req.grid_size = static_cast<std::size_t>(options.grid_size);
    req.seed = options.seed * 100000 +
               static_cast<std::uint64_t>(iteration) * 1000 +
               static_cast<std::uint64_t>(k) + 1;
    req.label = "t9";
    std::uint64_t id = 0;
    if (!reg.enroll(req, &id).is_ok()) ::_exit(3);
    char line[48];
    const int n = std::snprintf(line, sizeof line, "E %llu\n",
                                static_cast<unsigned long long>(id));
    if (!write_line(ack_fd, line, static_cast<std::size_t>(n))) ::_exit(4);
    mine.push_back(id);
    if (rng.uniform_int(0, 4) == 0) {
      const std::uint64_t rid = mine[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mine.size()) - 1))];
      if (reg.revoke(rid).is_ok()) {
        const int m = std::snprintf(line, sizeof line, "R %llu\n",
                                    static_cast<unsigned long long>(rid));
        if (!write_line(ack_fd, line, static_cast<std::size_t>(m)))
          ::_exit(4);
      }
    }
  }
  ::_exit(0);
}

}  // namespace

TortureResult run_kill9_torture(const TortureOptions& options) {
  TortureResult result;
  FaultHooks::instance().reset();  // children inherit a clean fault plane

  const bool own_dir = options.directory.empty();
  const fs::path dir =
      own_dir ? fs::temp_directory_path() /
                    ("ppuf_chaos_t9_" + std::to_string(options.seed) + "_" +
                     std::to_string(static_cast<long>(::getpid())))
              : fs::path(options.directory);
  std::error_code ec;
  if (own_dir) fs::remove_all(dir, ec);

  util::Rng rng(options.seed ^ 0x9e3779b9U);
  std::set<std::uint64_t> acked_enrolls;
  std::set<std::uint64_t> acked_revokes;

  for (int iter = 0; iter < options.iterations; ++iter) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      result.violations.push_back("pipe() failed");
      break;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      result.violations.push_back("fork() failed");
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      break;
    }
    if (pid == 0) {
      ::close(pipe_fds[0]);
      torture_child(options, dir.string(), iter, pipe_fds[1]);
    }
    ::close(pipe_fds[1]);

    // Block until the child has committed (and acknowledged) at least one
    // record — killing before any work would make the diff vacuous on a
    // loaded machine — then let it run a random slice and pull the plug.
    std::string acks;
    char buffer[4096];
    {
      ssize_t n;
      do {
        n = ::read(pipe_fds[0], buffer, sizeof buffer);
      } while (n < 0 && errno == EINTR);
      if (n > 0) acks.append(buffer, static_cast<std::size_t>(n));
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(rng.uniform_int(0, 23)));
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);

    // Drain every acknowledgement the child managed to write.  Each line
    // was a single atomic pipe write, so the stream is whole lines.
    for (;;) {
      const ssize_t n = ::read(pipe_fds[0], buffer, sizeof buffer);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      acks.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(pipe_fds[0]);
    std::istringstream lines(acks);
    char kind = 0;
    unsigned long long id = 0;
    while (lines >> kind >> id) {
      if (kind == 'E') acked_enrolls.insert(id);
      if (kind == 'R') acked_revokes.insert(id);
    }

    // Recover and diff the survivors against the acknowledged log.
    const auto t0 = Clock::now();
    registry::DeviceRegistry recovered;
    const Status st = recovered.open(dir.string());
    const double rec_ms = elapsed_ms(t0);
    if (!st.is_ok()) {
      result.violations.push_back("iteration " + std::to_string(iter) +
                                  ": recovery failed: " + st.to_string());
      continue;
    }
    result.recovery_ms.push_back(rec_ms);
    if (rec_ms > options.recovery_bound_ms) {
      result.violations.push_back(
          "iteration " + std::to_string(iter) + ": recovery took " +
          std::to_string(rec_ms) + " ms (bound " +
          std::to_string(options.recovery_bound_ms) + ")");
    }
    for (const std::uint64_t e : acked_enrolls) {
      if (!recovered.contains(e)) {
        result.violations.push_back("iteration " + std::to_string(iter) +
                                    ": committed enrollment " +
                                    std::to_string(e) + " lost by kill -9");
        break;
      }
    }
    for (const std::uint64_t r : acked_revokes) {
      if (recovered.active(r)) {
        result.violations.push_back("iteration " + std::to_string(iter) +
                                    ": revoked device " + std::to_string(r) +
                                    " resurrected by kill -9");
        break;
      }
    }

    // Periodically serve the recovered registry and check the admission
    // policy end to end: live id answered, revoked and unknown refused.
    if (options.serve_check_every > 0 &&
        (iter + 1) % options.serve_check_every == 0) {
      std::uint64_t live_id = 0;
      for (const std::uint64_t e : acked_enrolls) {
        if (acked_revokes.count(e) == 0 && recovered.active(e)) {
          live_id = e;
          break;
        }
      }
      server::AuthServerOptions sopts;
      sopts.threads = 1;
      sopts.challenge_seed = options.seed + 13;
      server::AuthServer server(recovered, sopts);
      if (!server.start().is_ok()) {
        result.violations.push_back("iteration " + std::to_string(iter) +
                                    ": serve-check server failed to start");
      } else {
        net::ClientOptions copts;
        copts.backoff_seed = options.seed + 29;
        net::AuthClient client("127.0.0.1", server.port(), copts);
        net::ChallengeGrant grant;
        if (live_id != 0) {
          client.set_device_id(live_id);
          if (!client.get_challenge(&grant).is_ok())
            result.violations.push_back(
                "iteration " + std::to_string(iter) + ": live device " +
                std::to_string(live_id) + " refused after recovery");
        }
        if (!acked_revokes.empty()) {
          client.set_device_id(*acked_revokes.begin());
          if (client.get_challenge(&grant).code() != StatusCode::kNotFound)
            result.violations.push_back("iteration " + std::to_string(iter) +
                                        ": revoked device admitted");
        }
        client.set_device_id(999999999);
        if (client.get_challenge(&grant).code() != StatusCode::kNotFound)
          result.violations.push_back("iteration " + std::to_string(iter) +
                                      ": unknown device admitted");
        server.stop();
      }
    }
    ++result.iterations;
  }

  result.committed_enrolls = acked_enrolls.size();
  result.committed_revokes = acked_revokes.size();
  if (own_dir) fs::remove_all(dir, ec);
  return result;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size());
  std::size_t index =
      rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

void Aggregate::add(const CampaignResult& r) {
  seeds.push_back(r.seed);
  faults_injected += r.faults_injected;
  requests += r.requests;
  ok += r.ok;
  typed_transient += r.typed_transient;
  typed_rejections += r.typed_rejections;
  enrolls_committed += r.enrolls_committed;
  enrolls_failed += r.enrolls_failed;
  violation_count += r.violations.size();
  if (!r.violations.empty() && failing_seed == 0) failing_seed = r.seed;
  for (const std::string& v : r.violations)
    if (sample_violations.size() < 8) sample_violations.push_back(v);
  recovery_ms.insert(recovery_ms.end(), r.recovery_ms.begin(),
                     r.recovery_ms.end());
}

void Aggregate::add(const TortureResult& r) {
  torture_iterations += r.iterations;
  torture_committed_enrolls += r.committed_enrolls;
  torture_committed_revokes += r.committed_revokes;
  violation_count += r.violations.size();
  for (const std::string& v : r.violations)
    if (sample_violations.size() < 8) sample_violations.push_back(v);
  recovery_ms.insert(recovery_ms.end(), r.recovery_ms.begin(),
                     r.recovery_ms.end());
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Aggregate::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"chaos\",\n";
  os << "  \"seeds\": [";
  for (std::size_t i = 0; i < seeds.size(); ++i)
    os << (i ? ", " : "") << seeds[i];
  os << "],\n";
  os << "  \"faults_injected\": " << faults_injected << ",\n";
  os << "  \"requests\": " << requests << ",\n";
  os << "  \"ok\": " << ok << ",\n";
  os << "  \"typed_transient\": " << typed_transient << ",\n";
  os << "  \"typed_rejections\": " << typed_rejections << ",\n";
  os << "  \"enrolls_committed\": " << enrolls_committed << ",\n";
  os << "  \"enrolls_failed\": " << enrolls_failed << ",\n";
  os << "  \"violations\": " << violation_count << ",\n";
  os << "  \"failing_seed\": " << failing_seed << ",\n";
  os << "  \"sample_violations\": [";
  for (std::size_t i = 0; i < sample_violations.size(); ++i)
    os << (i ? ", " : "") << '"' << json_escape(sample_violations[i]) << '"';
  os << "],\n";
  os << "  \"recovery_samples\": " << recovery_ms.size() << ",\n";
  os << "  \"recovery_ms_p50\": " << percentile(recovery_ms, 50.0) << ",\n";
  os << "  \"recovery_ms_p99\": " << percentile(recovery_ms, 99.0) << ",\n";
  os << "  \"torture_iterations\": " << torture_iterations << ",\n";
  os << "  \"torture_committed_enrolls\": " << torture_committed_enrolls
     << ",\n";
  os << "  \"torture_committed_revokes\": " << torture_committed_revokes
     << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace ppuf::testing::chaos
