// Chaos campaign layer: seeded fault schedules against the live stack.
//
// The per-subsystem fault hooks (util::FaultHooks) prove that each layer
// survives ITS injected failure in isolation; a deployment dies from the
// combinations.  This library turns the hooks into one randomized,
// reproducible campaign: a FaultSchedule derived from a seed walks the
// probabilistic fault plane through burst windows (network faults, disk
// faults, injected latency, everything at once) while concurrent
// AuthClients hammer a registry-mode AuthServer — and the campaign
// asserts the invariants that make the service trustworthy:
//
//   * no crash — the stack keeps answering across every phase;
//   * no wrong accept / cross-device response — every successful PREDICT
//     is compared bit-exact against a per-device oracle table computed
//     from the enrolled model, and impostor chains must be rejected;
//   * only typed errors on the wire — a client may see UNAVAILABLE /
//     DEADLINE_EXCEEDED under faults, never an unparseable frame;
//   * committed enrollments survive — every acknowledged enroll/revoke
//     is diffed against a fresh recovery of the registry directory;
//   * recovery time bounded — mid-campaign server restarts must come
//     back within a hard ceiling, and the blackout is measured.
//
// run_kill9_torture() is the process-death variant: fork a child that
// enrolls into the registry and acknowledges each commit over a pipe,
// SIGKILL it at a random moment, recover, and diff the survivors against
// the acknowledged log — at least TortureOptions::iterations times.
//
// Everything is deterministic in the seed (modulo scheduling noise in
// *which* requests a fault lands on): a failing seed from CI reproduces
// locally via `ppuf_tool chaos --seed S`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppuf::testing::chaos {

/// One burst window of the fault plane; ppm knobs are applied for the
/// window's duration and cleared between windows.
struct FaultPhase {
  enum class Kind { kQuiet, kNetwork, kDisk, kLatency, kMixed };
  Kind kind = Kind::kQuiet;
  double duration_s = 0.25;

  std::uint32_t net_send_fail_ppm = 0;
  std::uint32_t net_recv_fail_ppm = 0;
  std::uint32_t net_latency_ppm = 0;
  std::uint32_t net_latency_us = 0;
  std::uint32_t server_send_fail_ppm = 0;
  std::uint32_t server_send_short_ppm = 0;
  std::uint32_t server_recv_fail_ppm = 0;
  std::uint32_t server_accept_fail_ppm = 0;
  std::uint32_t wal_append_fail_ppm = 0;
  std::uint32_t wal_torn_ppm = 0;
  std::uint32_t fsync_fail_ppm = 0;
  std::uint32_t rename_fail_ppm = 0;
};

const char* phase_kind_name(FaultPhase::Kind kind);

/// Seeded schedule: same seed, same phases, same knob magnitudes.
struct FaultSchedule {
  std::uint64_t seed = 0;
  std::vector<FaultPhase> phases;

  static FaultSchedule from_seed(std::uint64_t seed, double total_seconds);
};

struct CampaignOptions {
  std::uint64_t seed = 1;
  double duration_s = 2.0;
  /// Oracle devices enrolled up front (their models drive the
  /// wrong-accept check).
  int devices = 3;
  /// Concurrent AuthClient worker threads.
  int clients = 4;
  /// PPUF geometry for oracle devices (small = fast fabrication).
  int node_count = 16;
  int grid_size = 4;
  /// Mid-campaign kill-and-restart cycles of the server (0 = none).
  int restarts = 1;
  /// Run a background enroll/revoke churn thread so disk faults land on
  /// live WAL appends and auto-compactions.
  bool enroll_churn = true;
  int server_threads = 2;
  int max_inflight = 16;
  /// Hard ceiling on restart recovery before it counts as a violation.
  double recovery_bound_ms = 5000.0;
  /// Cross-connection coalescing knobs for the campaign server (the
  /// batched serving path must hold the same invariants under faults as
  /// per-frame dispatch; 1 would fall back to per-frame).
  std::size_t coalesce_batch = 8;
  std::uint32_t coalesce_wait_us = 200;
  /// Server-side CRP response cache (bytes); the campaign exercises the
  /// warm path, so wrong-response checks also cover cached replies.
  std::size_t response_cache_bytes = 1 << 20;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  /// Typed UNAVAILABLE / DEADLINE_EXCEEDED — the only errors faults are
  /// allowed to surface.
  std::uint64_t typed_transient = 0;
  /// Typed NOT_FOUND on deliberate unknown-device probes (expected).
  std::uint64_t typed_rejections = 0;
  std::uint64_t enrolls_committed = 0;
  std::uint64_t enrolls_failed = 0;
  std::vector<std::string> violations;
  /// Restart blackout: stop() begin -> first successful ping.
  std::vector<double> recovery_ms;

  bool passed() const { return violations.empty(); }
};

/// Run one seeded campaign against a fresh registry + live server in a
/// temp directory.  Arms/clears util::FaultHooks process-wide: do not
/// run concurrently with anything else that uses the hooks.
CampaignResult run_campaign(const CampaignOptions& options);

struct TortureOptions {
  int iterations = 20;
  std::uint64_t seed = 1;
  /// Small geometry: the torture measures durability, not solver speed.
  int node_count = 6;
  int grid_size = 3;
  /// Registry directory; empty = fresh temp dir (removed contents).
  std::string directory;
  /// Probe the recovered registry through a live server every this many
  /// iterations (revoked/unknown must be refused); 0 disables.
  int serve_check_every = 5;
  double recovery_bound_ms = 5000.0;
};

struct TortureResult {
  int iterations = 0;
  std::uint64_t committed_enrolls = 0;
  std::uint64_t committed_revokes = 0;
  std::vector<std::string> violations;
  /// DeviceRegistry::open() wall time per recovery.
  std::vector<double> recovery_ms;

  bool passed() const { return violations.empty(); }
};

/// Enroll -> SIGKILL -> recover loop.  Forks: the caller must ensure no
/// other threads are alive in the process (run it before, or after
/// joining, any server/campaign work).
TortureResult run_kill9_torture(const TortureOptions& options);

/// Nearest-rank percentile (p in [0,100]); 0 for an empty sample.
double percentile(std::vector<double> values, double p);

/// Roll-up across campaigns + torture for the drivers (bench_chaos,
/// `ppuf_tool chaos`) and their BENCH_chaos.json.
struct Aggregate {
  std::vector<std::uint64_t> seeds;
  std::uint64_t faults_injected = 0;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t typed_transient = 0;
  std::uint64_t typed_rejections = 0;
  std::uint64_t enrolls_committed = 0;
  std::uint64_t enrolls_failed = 0;
  std::size_t violation_count = 0;
  /// First few violation messages, for the report.
  std::vector<std::string> sample_violations;
  /// First seed that produced a violation (0 = none).
  std::uint64_t failing_seed = 0;
  std::vector<double> recovery_ms;
  int torture_iterations = 0;
  std::uint64_t torture_committed_enrolls = 0;
  std::uint64_t torture_committed_revokes = 0;

  void add(const CampaignResult& r);
  void add(const TortureResult& r);
  bool passed() const { return violation_count == 0; }
  /// BENCH_chaos.json body.
  std::string to_json() const;
};

}  // namespace ppuf::testing::chaos
