#include "backend/backend.hpp"

#include "backend/maxflow_backend.hpp"
#include "backend/pdl_backend.hpp"

namespace ppuf::backend {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMaxFlow:
      return "maxflow";
    case BackendKind::kPdlDelay:
      return "pdl";
  }
  return "unknown";
}

bool parse_backend(const std::string& name, BackendKind* out) {
  if (name == "maxflow") {
    *out = BackendKind::kMaxFlow;
    return true;
  }
  if (name == "pdl") {
    *out = BackendKind::kPdlDelay;
    return true;
  }
  return false;
}

const PufBackend* find_backend(BackendKind kind) {
  static const MaxFlowBackend max_flow;
  static const PdlDelayBackend pdl;
  switch (kind) {
    case BackendKind::kMaxFlow:
      return &max_flow;
    case BackendKind::kPdlDelay:
      return &pdl;
  }
  return nullptr;
}

const PufBackend* find_backend(const std::string& name) {
  BackendKind kind;
  if (!parse_backend(name, &kind)) return nullptr;
  return find_backend(kind);
}

}  // namespace ppuf::backend
