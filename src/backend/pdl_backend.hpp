// PDL delay-PUF backend — the arbiter-style baseline the paper's Fig. 10
// compares against, served through the same registry/wire/server stack as
// the max-flow PPUF.
//
// Structure (modelled on the PDL reference design in SNIPPETS.md): a
// device is m XORed instances of a k-stage programmable-delay-line switch
// chain.  Each instance follows the standard additive linear-delay model —
// the challenge steers two racing paths through the k stages, the arbiter
// flip-flop samples which edge wins, and the response is
// r_i = sign(w_i . phi(c)) over the parity feature map phi (shared with
// the attack harness via ArbiterPuf::parity_features).  The device bit is
// the XOR of the m instance bits.
//
// The PUBLIC model of a delay PUF is the weight vector itself: anyone
// holding it evaluates responses exactly as fast as the silicon, so there
// is no execution-simulation gap and `asymmetric_verify()` is false.
// Authentication of PDL devices therefore rests entirely on model secrecy
// + learnability economics — which is exactly the comparison the paper
// draws, and what the cross-backend attack harness measures.
//
// Challenge mapping: `Challenge.bits` carries the k stage-select bits;
// source/sink are fixed at (0, 1) — a delay chain has no terminal choice.
//
// Blob format (protocol::codec, little-endian):
//   u32 stages | u32 instances | f64 noise_sigma |
//   instances * (stages + 1) f64 weights
#pragma once

#include <memory>

#include "backend/backend.hpp"
#include "puf/arbiter.hpp"

namespace ppuf::backend {

/// Geometry bounds: keeps hostile blobs from forcing huge allocations and
/// keeps the XOR depth in the range real XOR-arbiter constructions use.
inline constexpr std::size_t kPdlMaxStages = 4096;
inline constexpr std::size_t kPdlMaxInstances = 64;

class PdlDelayBackend final : public PufBackend {
 public:
  BackendKind kind() const override { return BackendKind::kPdlDelay; }
  const char* name() const override { return "pdl"; }
  util::Status validate_geometry(std::size_t node_count,
                                 std::size_t grid_size) const override;
  util::Status fabricate(
      const FabricateRequest& request,
      const std::shared_ptr<circuit::SymbolicCache>& symbolic_cache,
      std::vector<std::uint8_t>* model_bytes) const override;
  util::Status validate_model(const std::uint8_t* data, std::size_t size,
                              std::uint32_t nodes,
                              std::uint32_t grid) const override;
  util::Status materialize(const std::vector<std::uint8_t>& bytes,
                           const MaterializeOptions& options,
                           std::unique_ptr<Device>* out) const override;
};

/// Deterministic fabrication: instance i of a device is
/// ArbiterPuf(stages, per-instance seed derived from `seed`).  Shared by
/// the backend (enrollment) and the holder side (ppuf_tool auth, tests),
/// so re-fabricating from the enrollment seed yields the enrolled silicon.
std::vector<puf::ArbiterPuf> fabricate_pdl_instances(std::size_t stages,
                                                     std::size_t instances,
                                                     std::uint64_t seed);

/// Device response: XOR of the m instance sign bits.
int pdl_response(const std::vector<puf::ArbiterPuf>& instances,
                 const std::vector<std::uint8_t>& bits);

/// The public successor function for chained authentication: C_{i+1} is a
/// hash-mix of (C_i, R_i, nonce) expanded to k fresh stage bits.  Public
/// and deterministic, mirroring ppuf::next_challenge for max-flow chains.
Challenge pdl_next_challenge(const Challenge& previous, int response,
                             std::uint64_t protocol_nonce);

/// Honest holder: executes the chain on (re-fabricated) silicon; elapsed
/// time is k times the modelled per-round delay.  Mirrors
/// protocol::prove_chain_with_ppuf for the max-flow backend.
protocol::ChainedReport prove_chain_with_pdl(
    const std::vector<puf::ArbiterPuf>& instances, const Challenge& first,
    std::size_t k, std::uint64_t protocol_nonce,
    double modelled_delay_seconds);

}  // namespace ppuf::backend
