// Max-flow crossbar backend: wraps the existing SimulationModel +
// protocol::Verifier serving path behind the backend::Device interface.
// Fabrication, blob format, validation, and verification are bit-for-bit
// the pre-backend registry/enroll/hydration code paths (proven by the
// golden corpus and the sparse-vs-dense differential suite).
#pragma once

#include <memory>

#include "backend/backend.hpp"

namespace ppuf::backend {

class MaxFlowBackend final : public PufBackend {
 public:
  BackendKind kind() const override { return BackendKind::kMaxFlow; }
  const char* name() const override { return "maxflow"; }
  util::Status validate_geometry(std::size_t node_count,
                                 std::size_t grid_size) const override;
  util::Status fabricate(
      const FabricateRequest& request,
      const std::shared_ptr<circuit::SymbolicCache>& symbolic_cache,
      std::vector<std::uint8_t>* model_bytes) const override;
  util::Status validate_model(const std::uint8_t* data, std::size_t size,
                              std::uint32_t nodes,
                              std::uint32_t grid) const override;
  util::Status materialize(const std::vector<std::uint8_t>& bytes,
                           const MaterializeOptions& options,
                           std::unique_ptr<Device>* out) const override;
};

/// Wrap an already-built model (the single-device serve path, which has no
/// registry blob to materialise from).  The model is copied in; tolerance
/// is `flow_tolerance_fraction * model.mean_capacity()` exactly as the
/// registry hydration path computes it.
std::unique_ptr<Device> make_maxflow_device(SimulationModel model,
                                            const MaterializeOptions& options);

}  // namespace ppuf::backend
