// Pluggable PUF backend subsystem.
//
// The serving stack (registry, hydration cache, auth server, tooling) is
// written against two abstractions:
//
//  - `PufBackend`: a *family* of devices — fabricate an instance from a
//    seed, derive its public model as an opaque byte blob, validate a
//    stored blob, and materialise a serving-side `Device` from it.
//  - `Device`: one hydrated device — predict / verify / issue challenges /
//    verify chained reports, mirroring exactly the calls the AuthServer
//    makes per request.
//
// Two implementations register here: `kMaxFlow` wraps the paper's crossbar
// SimulationModel + residual-graph Verifier (bit-for-bit the pre-backend
// serving path), and `kPdlDelay` is the classic arbiter/PDL delay PUF the
// paper compares against in Fig. 10 — learnable with modest CRP counts,
// and with NO verify-time asymmetry (`asymmetric_verify()` is false: a
// simulator answers a linear model as fast as the chip does).
//
// The backend tag is a wire/storage byte: values are stable, never reused.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ppuf/challenge.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/authentication.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ppuf::circuit {
class SymbolicCache;  // circuit/mna.hpp
}

namespace ppuf::backend {

/// Stable on-wire / on-disk backend identifiers.  0 is reserved (decoders
/// reject it) so an uninitialised byte never aliases a real backend.
enum class BackendKind : std::uint8_t {
  kMaxFlow = 1,
  kPdlDelay = 2,
};

/// Canonical CLI / log name: "maxflow" or "pdl".  Unknown kinds print as
/// "unknown".
const char* backend_name(BackendKind kind);

/// Parse a CLI name ("maxflow" / "pdl").  Returns false on anything else.
bool parse_backend(const std::string& name, BackendKind* out);

/// Fabrication request, in the backend's own units.  For max-flow,
/// (node_count, grid_size) is the crossbar geometry; for PDL, node_count
/// is the number of chain stages and grid_size the number of XORed
/// instances.  The registry stores both verbatim as the entry's
/// (nodes, grid) mirror fields.
struct FabricateRequest {
  std::size_t node_count = 0;
  std::size_t grid_size = 0;
  std::uint64_t seed = 0;
};

struct MaterializeOptions {
  double verifier_deadline_seconds = 1.0;
  /// Tolerance knob in backend-native units: max-flow scales it by the
  /// model's mean edge capacity; PDL applies it to delay margins directly.
  double flow_tolerance_fraction = 0.10;
  unsigned verify_threads = 1;
};

/// One hydrated device.  Instances are heap-allocated and never moved
/// (implementations hold internal references); all methods are const and
/// safe to call from multiple worker threads concurrently.
class Device {
 public:
  virtual ~Device() = default;

  virtual BackendKind kind() const = 0;

  /// True when verification is time-asymmetric (the paper's ESG): an
  /// impersonator simulating the public model misses the deadline.  False
  /// for delay PUFs, whose public model evaluates as fast as the silicon.
  virtual bool asymmetric_verify() const = 0;

  /// Shape/range check for an adversary-supplied challenge.
  virtual util::Status validate_challenge(const Challenge& c) const = 0;

  virtual SimulationModel::Prediction predict(
      const Challenge& c, const util::SolveControl& control) const = 0;

  /// Batch predict; honours options.deadlines / options.cache the same way
  /// SimulationModel::predict_batch does (backends without per-item solver
  /// cost still respect deadlines so expiry semantics stay uniform).
  virtual std::vector<SimulationModel::Prediction> predict_batch(
      const std::vector<Challenge>& challenges,
      const SimulationModel::PredictBatchOptions& options) const = 0;

  virtual protocol::AuthenticationResult verify(
      const Challenge& c, const protocol::ProverReport& report) const = 0;

  virtual std::vector<protocol::AuthenticationResult> verify_batch(
      const std::vector<Challenge>& challenges,
      const std::vector<protocol::ProverReport>& reports,
      const protocol::Verifier::BatchVerifyOptions& options) const = 0;

  virtual Challenge issue_challenge(util::Rng& rng) const = 0;

  virtual double deadline_seconds() const = 0;

  virtual protocol::ChainedVerifyResult verify_chain(
      const Challenge& first, std::size_t chain_length, std::uint64_t nonce,
      const protocol::ChainedReport& report, std::size_t spot_checks,
      util::Rng& rng) const = 0;

  /// Escape hatch for max-flow-only callers (differential suites, the
  /// single-model serve path).  Null for every other backend.
  virtual const SimulationModel* sim_model() const { return nullptr; }
};

/// A backend: fabrication + blob validation + hydration for one PUF family.
/// Implementations are stateless singletons; pointers from find_backend()
/// are valid for the process lifetime.
class PufBackend {
 public:
  virtual ~PufBackend() = default;

  virtual BackendKind kind() const = 0;
  virtual const char* name() const = 0;

  /// Geometry bounds for FabricateRequest, mirrored by the registry's
  /// enroll-time validation.
  virtual util::Status validate_geometry(std::size_t node_count,
                                         std::size_t grid_size) const = 0;

  /// Fabricate an instance from the seed and serialise its PUBLIC model.
  /// `symbolic_cache` is the fleet-level circuit cache (max-flow reuses
  /// block characterisation across enrollments; other backends ignore it).
  virtual util::Status fabricate(
      const FabricateRequest& request,
      const std::shared_ptr<circuit::SymbolicCache>& symbolic_cache,
      std::vector<std::uint8_t>* model_bytes) const = 0;

  /// Full structural validation of a stored blob against the record's
  /// (nodes, grid) mirror fields — called on every record decode, so a
  /// corrupted or geometry-forged blob is a typed error at recovery time,
  /// not a crash at hydration time.
  virtual util::Status validate_model(const std::uint8_t* data,
                                      std::size_t size, std::uint32_t nodes,
                                      std::uint32_t grid) const = 0;

  /// Materialise a serving Device from a validated blob.
  virtual util::Status materialize(const std::vector<std::uint8_t>& bytes,
                                   const MaterializeOptions& options,
                                   std::unique_ptr<Device>* out) const = 0;
};

/// Registry lookups; nullptr for unknown kinds/names (callers turn that
/// into a typed kInvalidArgument).
const PufBackend* find_backend(BackendKind kind);
const PufBackend* find_backend(const std::string& name);

}  // namespace ppuf::backend
