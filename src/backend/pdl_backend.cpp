#include "backend/pdl_backend.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "protocol/codec.hpp"

namespace ppuf::backend {

namespace {

using protocol::codec::Reader;
using protocol::codec::Writer;
using util::Status;

/// splitmix64 finaliser: the mixing step for per-instance seeds and the
/// chain successor.  Public and fixed — it is part of the protocol.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Decoded public model of one PDL device.
struct PdlModel {
  std::size_t stages = 0;
  double noise_sigma = 0.0;
  std::vector<puf::ArbiterPuf> instances;
};

Status decode_pdl_model(const std::uint8_t* data, std::size_t size,
                        PdlModel* out) {
  Reader r(data, size);
  std::uint32_t stages = 0, instances = 0;
  double noise_sigma = 0.0;
  if (!r.u32(&stages) || !r.u32(&instances) || !r.f64(&noise_sigma))
    return Status::invalid_argument("pdl model header");
  if (stages < 1 || stages > kPdlMaxStages || instances < 1 ||
      instances > kPdlMaxInstances)
    return Status::invalid_argument("pdl model geometry");
  if (!std::isfinite(noise_sigma) || noise_sigma < 0.0)
    return Status::invalid_argument("pdl model noise sigma");
  // Exact length is part of the format: weights are fixed-width, so any
  // shortfall or surplus is corruption, not an optional field.
  const std::size_t per_instance = static_cast<std::size_t>(stages) + 1;
  out->stages = stages;
  out->noise_sigma = noise_sigma;
  out->instances.clear();
  out->instances.reserve(instances);
  for (std::uint32_t i = 0; i < instances; ++i) {
    std::vector<double> weights(per_instance);
    for (double& w : weights) {
      if (!r.f64(&w)) return Status::invalid_argument("pdl model weights");
    }
    out->instances.emplace_back(std::move(weights));
  }
  if (!r.exhausted())
    return Status::invalid_argument("pdl model trailing bytes");
  return Status::ok();
}

void encode_pdl_model(Writer& w, const PdlModel& model) {
  w.u32(static_cast<std::uint32_t>(model.stages));
  w.u32(static_cast<std::uint32_t>(model.instances.size()));
  w.f64(model.noise_sigma);
  for (const puf::ArbiterPuf& inst : model.instances)
    for (const double weight : inst.weights()) w.f64(weight);
}

std::vector<double> pdl_margins(const std::vector<puf::ArbiterPuf>& instances,
                                const std::vector<std::uint8_t>& bits) {
  std::vector<double> margins;
  margins.reserve(instances.size());
  for (const puf::ArbiterPuf& inst : instances)
    margins.push_back(inst.margin(bits));
  return margins;
}

/// One hydrated PDL device.  Evaluation is O(m * k) arithmetic — there is
/// no solver, no asymmetry, and nothing worth caching.
class PdlDevice final : public Device {
 public:
  PdlDevice(PdlModel model, const MaterializeOptions& options)
      : model_(std::move(model)),
        deadline_(options.verifier_deadline_seconds),
        // Margins are ~unit scale by construction (ArbiterPuf normalises
        // stage sigmas), so the tolerance fraction applies directly.
        tolerance_(options.flow_tolerance_fraction) {}

  BackendKind kind() const override { return BackendKind::kPdlDelay; }

  bool asymmetric_verify() const override { return false; }

  Status validate_challenge(const Challenge& c) const override {
    if (c.source != 0 || c.sink != 1)
      return Status::invalid_argument("challenge: bad source/sink pair");
    if (c.bits.size() != model_.stages)
      return Status::invalid_argument("challenge: wrong control-bit count");
    for (const std::uint8_t b : c.bits)
      if (b > 1)
        return Status::invalid_argument("challenge: non-binary control bit");
    return Status::ok();
  }

  SimulationModel::Prediction predict(
      const Challenge& c, const util::SolveControl& control) const override {
    SimulationModel::Prediction p;
    if (Status s = validate_challenge(c); !s.is_ok()) {
      p.status = s;
      return p;
    }
    util::StopCheck stop(control, /*stride=*/1);
    if (stop.should_stop()) {
      p.status = stop.status("pdl predict");
      return p;
    }
    const std::vector<double> margins = pdl_margins(model_.instances, c.bits);
    int bit = 0;
    for (const double m : margins) bit ^= m > 0.0 ? 1 : 0;
    p.bit = bit;
    p.flow_a = margins[0];
    p.flow_b = margins.size() > 1 ? margins[1] : 0.0;
    return p;
  }

  std::vector<SimulationModel::Prediction> predict_batch(
      const std::vector<Challenge>& challenges,
      const SimulationModel::PredictBatchOptions& options) const override {
    if (!options.deadlines.empty() &&
        options.deadlines.size() != challenges.size())
      throw std::invalid_argument(
          "predict_batch: deadlines size mismatch");
    std::vector<SimulationModel::Prediction> out(challenges.size());
    for (std::size_t i = 0; i < challenges.size(); ++i) {
      util::SolveControl control = options.control;
      if (!options.deadlines.empty()) {
        // Same coalescing contract as the max-flow batch path: an item
        // with an expired budget is answered typed without poisoning its
        // batch-mates.
        if (options.deadlines[i].expired()) {
          out[i].status = Status::deadline_exceeded(
              "deadline expired before evaluation");
          continue;
        }
        if (control.deadline.is_unlimited() ||
            options.deadlines[i].remaining_seconds() <
                control.deadline.remaining_seconds())
          control.deadline = options.deadlines[i];
      }
      out[i] = predict(challenges[i], control);
    }
    return out;
  }

  protocol::AuthenticationResult verify(
      const Challenge& c,
      const protocol::ProverReport& report) const override {
    protocol::AuthenticationResult result;
    if (Status s = validate_challenge(c); !s.is_ok()) {
      result.detail = s.message();
      return result;
    }
    const std::vector<double> margins = pdl_margins(model_.instances, c.bits);
    int bit = 0;
    for (const double m : margins) bit ^= m > 0.0 ? 1 : 0;

    // The claimed delay margins must match the public model within
    // tolerance — the PDL analogue of the residual-graph flow check.
    const double want_a = margins[0];
    const double want_b = margins.size() > 1 ? margins[1] : 0.0;
    result.flows_valid = std::abs(report.flow_a - want_a) <= tolerance_ &&
                         std::abs(report.flow_b - want_b) <= tolerance_;
    result.bit_consistent = report.bit == bit;
    result.in_time = report.elapsed_seconds <= deadline_;
    result.accepted =
        result.flows_valid && result.bit_consistent && result.in_time;
    if (!result.accepted) {
      if (!result.flows_valid)
        result.detail = "claimed delay margins do not match the model";
      else if (!result.bit_consistent)
        result.detail = "response bit does not match the model";
      else
        result.detail = "missed the deadline";
    }
    return result;
  }

  std::vector<protocol::AuthenticationResult> verify_batch(
      const std::vector<Challenge>& challenges,
      const std::vector<protocol::ProverReport>& reports,
      const protocol::Verifier::BatchVerifyOptions&) const override {
    if (challenges.size() != reports.size())
      throw std::invalid_argument("verify_batch: size mismatch");
    std::vector<protocol::AuthenticationResult> out;
    out.reserve(challenges.size());
    for (std::size_t i = 0; i < challenges.size(); ++i)
      out.push_back(verify(challenges[i], reports[i]));
    return out;
  }

  Challenge issue_challenge(util::Rng& rng) const override {
    Challenge c;
    c.source = 0;
    c.sink = 1;
    c.bits.resize(model_.stages);
    for (std::uint8_t& b : c.bits) b = rng.coin() ? 1 : 0;
    return c;
  }

  double deadline_seconds() const override { return deadline_; }

  protocol::ChainedVerifyResult verify_chain(
      const Challenge& first, std::size_t chain_length, std::uint64_t nonce,
      const protocol::ChainedReport& report, std::size_t /*spot_checks*/,
      util::Rng& /*rng*/) const override {
    // Evaluation is trivial, so every round is fully verified — spot
    // checking exists to bound the max-flow verifier's work, and buys a
    // delay PUF nothing.
    protocol::ChainedVerifyResult result;
    if (report.rounds.size() != chain_length) {
      result.detail = "round count does not match the grant";
      return result;
    }
    result.chain_consistent = true;
    result.rounds_valid = true;
    Challenge c = first;
    for (std::size_t i = 0; i < chain_length; ++i) {
      const protocol::AuthenticationResult round = verify(c, report.rounds[i]);
      // in_time is enforced on the whole chain below, not per round.
      if (!(round.flows_valid && round.bit_consistent)) {
        result.rounds_valid = false;
        result.detail =
            "round " + std::to_string(i) + ": " +
            (round.detail.empty() ? "rejected" : round.detail);
        break;
      }
      c = pdl_next_challenge(c, report.rounds[i].bit, nonce);
    }
    result.in_time =
        report.elapsed_seconds <= static_cast<double>(chain_length) * deadline_;
    if (result.rounds_valid && !result.in_time)
      result.detail = "chain exceeded the deadline";
    result.accepted =
        result.chain_consistent && result.rounds_valid && result.in_time;
    return result;
  }

 private:
  const PdlModel model_;
  const double deadline_;
  const double tolerance_;
};

}  // namespace

util::Status PdlDelayBackend::validate_geometry(std::size_t node_count,
                                                std::size_t grid_size) const {
  if (node_count < 1 || node_count > kPdlMaxStages || grid_size < 1 ||
      grid_size > kPdlMaxInstances)
    return Status::invalid_argument("enroll: invalid geometry");
  return Status::ok();
}

util::Status PdlDelayBackend::fabricate(
    const FabricateRequest& request,
    const std::shared_ptr<circuit::SymbolicCache>& /*symbolic_cache*/,
    std::vector<std::uint8_t>* model_bytes) const {
  if (Status s = validate_geometry(request.node_count, request.grid_size);
      !s.is_ok())
    return s;
  PdlModel model;
  model.stages = request.node_count;
  // Fabrication publishes the noise-free model; evaluate_noisy() remains
  // available for reliability studies, and the blob carries the sigma so
  // a noisy enrollment stays representable.
  model.noise_sigma = 0.0;
  model.instances = fabricate_pdl_instances(request.node_count,
                                            request.grid_size, request.seed);
  Writer w;
  encode_pdl_model(w, model);
  *model_bytes = w.take();
  return Status::ok();
}

util::Status PdlDelayBackend::validate_model(const std::uint8_t* data,
                                             std::size_t size,
                                             std::uint32_t nodes,
                                             std::uint32_t grid) const {
  PdlModel model;
  if (Status s = decode_pdl_model(data, size, &model); !s.is_ok()) return s;
  if (model.stages != nodes || model.instances.size() != grid)
    return Status::invalid_argument("device entry geometry mismatch");
  return Status::ok();
}

util::Status PdlDelayBackend::materialize(
    const std::vector<std::uint8_t>& bytes, const MaterializeOptions& options,
    std::unique_ptr<Device>* out) const {
  PdlModel model;
  if (Status s = decode_pdl_model(bytes.data(), bytes.size(), &model);
      !s.is_ok())
    return Status::internal("stored model blob is invalid: " + s.message());
  *out = std::make_unique<PdlDevice>(std::move(model), options);
  return Status::ok();
}

std::vector<puf::ArbiterPuf> fabricate_pdl_instances(std::size_t stages,
                                                     std::size_t instances,
                                                     std::uint64_t seed) {
  std::vector<puf::ArbiterPuf> out;
  out.reserve(instances);
  for (std::size_t i = 0; i < instances; ++i)
    out.emplace_back(stages, mix64(seed + i));
  return out;
}

int pdl_response(const std::vector<puf::ArbiterPuf>& instances,
                 const std::vector<std::uint8_t>& bits) {
  int bit = 0;
  for (const puf::ArbiterPuf& inst : instances) bit ^= inst.evaluate(bits);
  return bit;
}

Challenge pdl_next_challenge(const Challenge& previous, int response,
                             std::uint64_t protocol_nonce) {
  // Absorb the previous stage bits, the response, and the nonce into one
  // 64-bit state, then expand to k fresh bits.  The feedback makes the
  // chain strictly sequential for the prover, same as the max-flow ESG.
  std::uint64_t h = mix64(protocol_nonce ^ (response ? 0x5851f42d4c957f2dULL
                                                     : 0x14057b7ef767814fULL));
  for (std::size_t i = 0; i < previous.bits.size(); ++i)
    h = mix64(h ^ (static_cast<std::uint64_t>(previous.bits[i]) << (i % 63)));
  Challenge next;
  next.source = 0;
  next.sink = 1;
  next.bits.resize(previous.bits.size());
  util::Rng rng(h);
  for (std::uint8_t& b : next.bits) b = rng.coin() ? 1 : 0;
  return next;
}

protocol::ChainedReport prove_chain_with_pdl(
    const std::vector<puf::ArbiterPuf>& instances, const Challenge& first,
    std::size_t k, std::uint64_t protocol_nonce,
    double modelled_delay_seconds) {
  protocol::ChainedReport report;
  report.rounds.reserve(k);
  Challenge c = first;
  for (std::size_t i = 0; i < k; ++i) {
    const std::vector<double> margins = pdl_margins(instances, c.bits);
    protocol::ProverReport round;
    int bit = 0;
    for (const double m : margins) bit ^= m > 0.0 ? 1 : 0;
    round.bit = bit;
    round.flow_a = margins[0];
    round.flow_b = margins.size() > 1 ? margins[1] : 0.0;
    round.elapsed_seconds = modelled_delay_seconds;
    report.rounds.push_back(std::move(round));
    c = pdl_next_challenge(c, bit, protocol_nonce);
  }
  report.elapsed_seconds = modelled_delay_seconds * static_cast<double>(k);
  return report;
}

}  // namespace ppuf::backend
