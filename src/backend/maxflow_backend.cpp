#include "backend/maxflow_backend.hpp"

#include <utility>

#include "ppuf/feedback.hpp"
#include "ppuf/ppuf.hpp"
#include "protocol/codec.hpp"

namespace ppuf::backend {

namespace {

using protocol::codec::Reader;
using protocol::codec::Writer;
using util::Status;

/// One hydrated max-flow device: the public model plus its residual-graph
/// verifier.  The verifier holds a reference to `model_`, so instances
/// live on the heap and never move (member order matters: model first).
class MaxFlowDevice final : public Device {
 public:
  MaxFlowDevice(SimulationModel model, const MaterializeOptions& options)
      : model_(std::move(model)),
        verifier_(model_, options.verifier_deadline_seconds,
                  model_.mean_capacity() * options.flow_tolerance_fraction,
                  options.verify_threads) {}

  BackendKind kind() const override { return BackendKind::kMaxFlow; }

  bool asymmetric_verify() const override { return true; }

  Status validate_challenge(const Challenge& c) const override {
    const CrossbarLayout& layout = model_.layout();
    if (c.source >= layout.node_count() || c.sink >= layout.node_count() ||
        c.source == c.sink)
      return Status::invalid_argument("challenge: bad source/sink pair");
    if (c.bits.size() != layout.cell_count())
      return Status::invalid_argument("challenge: wrong control-bit count");
    return Status::ok();
  }

  SimulationModel::Prediction predict(
      const Challenge& c, const util::SolveControl& control) const override {
    return model_.predict(c, maxflow::Algorithm::kPushRelabel, control);
  }

  std::vector<SimulationModel::Prediction> predict_batch(
      const std::vector<Challenge>& challenges,
      const SimulationModel::PredictBatchOptions& options) const override {
    return model_.predict_batch(challenges, options);
  }

  protocol::AuthenticationResult verify(
      const Challenge& c,
      const protocol::ProverReport& report) const override {
    return verifier_.verify(c, report);
  }

  std::vector<protocol::AuthenticationResult> verify_batch(
      const std::vector<Challenge>& challenges,
      const std::vector<protocol::ProverReport>& reports,
      const protocol::Verifier::BatchVerifyOptions& options) const override {
    return verifier_.verify_batch(challenges, reports, options);
  }

  Challenge issue_challenge(util::Rng& rng) const override {
    return verifier_.issue_challenge(rng);
  }

  double deadline_seconds() const override {
    return verifier_.deadline_seconds();
  }

  protocol::ChainedVerifyResult verify_chain(
      const Challenge& first, std::size_t chain_length, std::uint64_t nonce,
      const protocol::ChainedReport& report, std::size_t spot_checks,
      util::Rng& rng) const override {
    return protocol::verify_chain(verifier_, model_, first, chain_length,
                                  nonce, report, spot_checks, rng);
  }

  const SimulationModel* sim_model() const override { return &model_; }

 private:
  const SimulationModel model_;
  const protocol::Verifier verifier_;
};

}  // namespace

util::Status MaxFlowBackend::validate_geometry(std::size_t node_count,
                                               std::size_t grid_size) const {
  if (node_count < 2 || grid_size < 1 || grid_size > node_count)
    return Status::invalid_argument("enroll: invalid geometry");
  return Status::ok();
}

util::Status MaxFlowBackend::fabricate(
    const FabricateRequest& request,
    const std::shared_ptr<circuit::SymbolicCache>& symbolic_cache,
    std::vector<std::uint8_t>* model_bytes) const {
  if (Status s = validate_geometry(request.node_count, request.grid_size);
      !s.is_ok())
    return s;
  // Fabricate the instance and extract its public model — enrollment *is*
  // the publish step of the PPUF lifecycle.  The shared symbolic cache
  // gives fleet-level reuse: all devices' blocks share one netlist
  // topology, so block characterisation after the first enrollment skips
  // the MNA pattern build and sparse-LU symbolic analysis entirely.
  PpufParams params;
  params.node_count = request.node_count;
  params.grid_size = request.grid_size;
  MaxFlowPpuf puf(params, request.seed);
  if (symbolic_cache != nullptr) {
    puf.network_a().set_symbolic_cache(symbolic_cache);
    puf.network_b().set_symbolic_cache(symbolic_cache);
  }
  SimulationModel model(puf);
  Writer w;
  protocol::codec::encode_sim_model(w, model);
  *model_bytes = w.take();
  return Status::ok();
}

util::Status MaxFlowBackend::validate_model(const std::uint8_t* data,
                                            std::size_t size,
                                            std::uint32_t nodes,
                                            std::uint32_t grid) const {
  Reader r(data, size);
  SimulationModel model;
  if (Status s = protocol::codec::decode_sim_model(r, &model); !s.is_ok())
    return s;
  if (!r.exhausted())
    return Status::invalid_argument("device entry model blob length");
  if (model.layout().node_count() != nodes ||
      model.layout().grid_size() != grid)
    return Status::invalid_argument("device entry geometry mismatch");
  return Status::ok();
}

util::Status MaxFlowBackend::materialize(
    const std::vector<std::uint8_t>& bytes, const MaterializeOptions& options,
    std::unique_ptr<Device>* out) const {
  Reader r(bytes.data(), bytes.size());
  SimulationModel model;
  if (Status s = protocol::codec::decode_sim_model(r, &model); !s.is_ok())
    return Status::internal("stored model blob is invalid: " + s.message());
  if (!r.exhausted())
    return Status::internal("stored model blob has trailing bytes");
  *out = std::make_unique<MaxFlowDevice>(std::move(model), options);
  return Status::ok();
}

std::unique_ptr<Device> make_maxflow_device(
    SimulationModel model, const MaterializeOptions& options) {
  return std::make_unique<MaxFlowDevice>(std::move(model), options);
}

}  // namespace ppuf::backend
