#include "graph/bfs.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>

namespace ppuf::graph {

std::vector<std::uint32_t> bfs_distances(std::size_t vertex_count,
                                         VertexId source,
                                         const NeighborFn& neighbors) {
  if (source >= vertex_count)
    throw std::out_of_range("bfs_distances: source out of range");
  std::vector<std::uint32_t> dist(vertex_count, kUnreachable);
  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  std::vector<VertexId> scratch;
  dist[source] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (VertexId v : frontier) {
      scratch.clear();
      neighbors(v, scratch);
      for (VertexId w : scratch) {
        if (dist[w] == kUnreachable) {
          dist[w] = level;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

bool reachable(std::size_t vertex_count, VertexId source, VertexId target,
               const NeighborFn& neighbors) {
  if (target >= vertex_count)
    throw std::out_of_range("reachable: target out of range");
  if (source == target) return true;
  const auto dist = bfs_distances(vertex_count, source, neighbors);
  return dist[target] != kUnreachable;
}

std::vector<std::uint32_t> bfs_distances_parallel(
    std::size_t vertex_count, VertexId source, const NeighborFn& neighbors,
    unsigned thread_count) {
  if (thread_count <= 1) return bfs_distances(vertex_count, source, neighbors);
  if (source >= vertex_count)
    throw std::out_of_range("bfs_distances_parallel: source out of range");

  std::vector<std::uint32_t> dist(vertex_count, kUnreachable);
  // One atomic claim flag per vertex so two threads cannot both enqueue it.
  auto claimed = std::make_unique<std::atomic<bool>[]>(vertex_count);
  for (std::size_t i = 0; i < vertex_count; ++i)
    claimed[i].store(false, std::memory_order_relaxed);

  std::vector<VertexId> frontier{source};
  claimed[source].store(true, std::memory_order_relaxed);
  dist[source] = 0;
  std::uint32_t level = 0;

  while (!frontier.empty()) {
    ++level;
    std::vector<std::vector<VertexId>> next_local(thread_count);
    const std::size_t chunk =
        (frontier.size() + thread_count - 1) / thread_count;

    auto worker = [&](unsigned t) {
      const std::size_t begin = t * chunk;
      const std::size_t end = std::min(begin + chunk, frontier.size());
      std::vector<VertexId> scratch;
      for (std::size_t i = begin; i < end; ++i) {
        scratch.clear();
        neighbors(frontier[i], scratch);
        for (VertexId w : scratch) {
          bool expected = false;
          if (claimed[w].compare_exchange_strong(expected, true,
                                                 std::memory_order_relaxed)) {
            next_local[t].push_back(w);
          }
        }
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (unsigned t = 1; t < thread_count; ++t) threads.emplace_back(worker, t);
    worker(0);
    for (auto& th : threads) th.join();

    std::vector<VertexId> next;
    for (auto& local : next_local) {
      for (VertexId w : local) dist[w] = level;
      next.insert(next.end(), local.begin(), local.end());
    }
    frontier.swap(next);
  }
  return dist;
}

}  // namespace ppuf::graph
