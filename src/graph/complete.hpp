// Builders for the complete directed graphs the crossbar realises, plus
// random graphs used by the max-flow test/bench workloads.
#pragma once

#include <functional>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace ppuf::graph {

/// Capacity generator invoked per ordered pair (from, to).
using CapacityFn = std::function<double(VertexId from, VertexId to)>;

/// Complete directed graph on n vertices (m = n(n-1) edges), capacities from
/// the generator.  The returned graph is finalized.  Edge ids are laid out
/// row-major over ordered pairs, matching ppuf::CrossbarLayout.
Digraph make_complete(std::size_t n, const CapacityFn& capacity);

/// Complete graph with capacities uniform in [lo, hi).
Digraph make_complete_uniform(std::size_t n, util::Rng& rng, double lo = 0.5,
                              double hi = 1.5);

/// Sparse random graph: each ordered pair gets an edge with probability p
/// and uniform capacity in [lo, hi); s->t path existence is not guaranteed.
Digraph make_random(std::size_t n, double p, util::Rng& rng, double lo = 0.5,
                    double hi = 1.5);

/// Edge id of the ordered pair (from, to) in a graph built by
/// make_complete*: row-major over pairs with the diagonal skipped.
EdgeId complete_edge_id(std::size_t n, VertexId from, VertexId to);

}  // namespace ppuf::graph
