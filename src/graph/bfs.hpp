// Breadth-first search over an adjacency oracle.  Serial and multi-threaded
// frontier-parallel variants; the parallel one backs the paper's O(n^2/p)
// residual-graph verification argument (Section 2).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace ppuf::graph {

/// Adjacency oracle: appends the successors of v to `out`.  Using a callback
/// lets the same BFS run over a Digraph or over an implicit residual graph
/// without materialising it.
using NeighborFn =
    std::function<void(VertexId v, std::vector<VertexId>& out)>;

/// Distances (in hops) from source; kUnreachable for unreached vertices.
constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

std::vector<std::uint32_t> bfs_distances(std::size_t vertex_count,
                                         VertexId source,
                                         const NeighborFn& neighbors);

/// True if `target` is reachable from `source`.
bool reachable(std::size_t vertex_count, VertexId source, VertexId target,
               const NeighborFn& neighbors);

/// Frontier-parallel BFS using `thread_count` worker threads (1 = serial
/// fallback).  Each level's frontier is split across threads; next-level
/// claims are made with atomic flags.  Produces the same distances as
/// bfs_distances.
std::vector<std::uint32_t> bfs_distances_parallel(
    std::size_t vertex_count, VertexId source, const NeighborFn& neighbors,
    unsigned thread_count);

}  // namespace ppuf::graph
