// Directed graph with non-negative edge capacities — the abstract object the
// PPUF instantiates in silicon (Section 2 of the paper) and the input to the
// max-flow solvers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ppuf::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// One directed edge with capacity (the paper's c(v_i, v_j) >= 0).
struct Edge {
  VertexId from = 0;
  VertexId to = 0;
  double capacity = 0.0;
};

/// Directed graph in edge-list form with a CSR-style adjacency index over
/// outgoing edges.  Edges are immutable once the index is built; capacities
/// stay mutable (type-B challenges re-weight edges without re-building).
class Digraph {
 public:
  explicit Digraph(std::size_t vertex_count = 0);

  std::size_t vertex_count() const { return vertex_count_; }
  std::size_t edge_count() const { return edges_.size(); }

  /// Adds a directed edge; invalidates the adjacency index until the next
  /// finalize().  Throws if an endpoint is out of range or capacity < 0.
  EdgeId add_edge(VertexId from, VertexId to, double capacity);

  /// Builds the adjacency index.  Must be called after the last add_edge and
  /// before out_edges() queries.  Idempotent.
  void finalize();
  bool finalized() const { return finalized_; }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  std::span<const Edge> edges() const { return edges_; }

  /// Re-weight one edge (used when a challenge changes block capacities).
  void set_capacity(EdgeId e, double capacity);

  /// Ids of edges leaving v; requires finalize().
  std::span<const EdgeId> out_edges(VertexId v) const;

  /// Out-degree of v; requires finalize().
  std::size_t out_degree(VertexId v) const { return out_edges(v).size(); }

  /// True if every ordered pair (i, j), i != j, has an edge.
  bool is_complete() const;

  /// Sum of capacities of edges leaving v.
  double out_capacity(VertexId v) const;

 private:
  std::size_t vertex_count_ = 0;
  std::vector<Edge> edges_;
  // CSR adjacency: out_index_[v]..out_index_[v+1] into out_edge_ids_.
  std::vector<std::size_t> out_index_;
  std::vector<EdgeId> out_edge_ids_;
  bool finalized_ = false;
};

/// A max-flow problem instance: graph + distinguished source and sink
/// (the paper's type-A challenge selects these two vertices).
struct FlowProblem {
  const Digraph* graph = nullptr;
  VertexId source = 0;
  VertexId sink = 0;
};

}  // namespace ppuf::graph
