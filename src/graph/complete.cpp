#include "graph/complete.hpp"

#include <stdexcept>

namespace ppuf::graph {

Digraph make_complete(std::size_t n, const CapacityFn& capacity) {
  if (n < 2) throw std::invalid_argument("make_complete: need n >= 2");
  Digraph g(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      if (i == j) continue;
      g.add_edge(i, j, capacity(i, j));
    }
  }
  g.finalize();
  return g;
}

Digraph make_complete_uniform(std::size_t n, util::Rng& rng, double lo,
                              double hi) {
  return make_complete(
      n, [&](VertexId, VertexId) { return rng.uniform(lo, hi); });
}

Digraph make_random(std::size_t n, double p, util::Rng& rng, double lo,
                    double hi) {
  if (n < 2) throw std::invalid_argument("make_random: need n >= 2");
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("make_random: p outside [0,1]");
  Digraph g(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rng.uniform() < p) g.add_edge(i, j, rng.uniform(lo, hi));
    }
  }
  g.finalize();
  return g;
}

EdgeId complete_edge_id(std::size_t n, VertexId from, VertexId to) {
  if (from == to || from >= n || to >= n)
    throw std::invalid_argument("complete_edge_id: bad pair");
  // Row `from` has n-1 edges; within the row the diagonal is skipped.
  const std::size_t col = to < from ? to : to - 1;
  return static_cast<EdgeId>(from * (n - 1) + col);
}

}  // namespace ppuf::graph
