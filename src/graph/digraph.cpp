#include "graph/digraph.hpp"

#include <stdexcept>

namespace ppuf::graph {

Digraph::Digraph(std::size_t vertex_count) : vertex_count_(vertex_count) {}

EdgeId Digraph::add_edge(VertexId from, VertexId to, double capacity) {
  if (from >= vertex_count_ || to >= vertex_count_)
    throw std::out_of_range("Digraph::add_edge: vertex out of range");
  if (capacity < 0.0)
    throw std::invalid_argument("Digraph::add_edge: negative capacity");
  finalized_ = false;
  edges_.push_back(Edge{from, to, capacity});
  return static_cast<EdgeId>(edges_.size() - 1);
}

void Digraph::finalize() {
  if (finalized_) return;
  out_index_.assign(vertex_count_ + 1, 0);
  for (const Edge& e : edges_) ++out_index_[e.from + 1];
  for (std::size_t v = 0; v < vertex_count_; ++v)
    out_index_[v + 1] += out_index_[v];
  out_edge_ids_.resize(edges_.size());
  std::vector<std::size_t> cursor(out_index_.begin(),
                                  out_index_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e)
    out_edge_ids_[cursor[edges_[e].from]++] = e;
  finalized_ = true;
}

void Digraph::set_capacity(EdgeId e, double capacity) {
  if (e >= edges_.size())
    throw std::out_of_range("Digraph::set_capacity: bad edge id");
  if (capacity < 0.0)
    throw std::invalid_argument("Digraph::set_capacity: negative capacity");
  edges_[e].capacity = capacity;
}

std::span<const EdgeId> Digraph::out_edges(VertexId v) const {
  if (!finalized_)
    throw std::logic_error("Digraph::out_edges: call finalize() first");
  if (v >= vertex_count_)
    throw std::out_of_range("Digraph::out_edges: vertex out of range");
  return {out_edge_ids_.data() + out_index_[v],
          out_index_[v + 1] - out_index_[v]};
}

bool Digraph::is_complete() const {
  if (vertex_count_ < 2) return false;
  if (edges_.size() != vertex_count_ * (vertex_count_ - 1)) return false;
  std::vector<bool> seen(vertex_count_ * vertex_count_, false);
  for (const Edge& e : edges_) {
    if (e.from == e.to) return false;
    const std::size_t key = e.from * vertex_count_ + e.to;
    if (seen[key]) return false;  // parallel edge
    seen[key] = true;
  }
  return true;
}

double Digraph::out_capacity(VertexId v) const {
  double s = 0.0;
  for (EdgeId e : out_edges(v)) s += edges_[e].capacity;
  return s;
}

}  // namespace ppuf::graph
