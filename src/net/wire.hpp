// Framed wire protocol of the authentication service.
//
// Every message is one frame:
//
//   offset  size  field
//        0     4  magic          "PPUF" (0x46 0x55 0x50 0x50 on the wire —
//                                little-endian u32 of 'P','P','U','F')
//        4     2  version        kWireVersion (2)
//        6     2  type           MessageType
//        8     8  request_id     echoed verbatim in the reply
//       16     8  device_id      registry device the request addresses;
//                                0 = the server's single implicit device
//       24     4  budget_ms      per-request deadline budget; 0 = unlimited
//       28     4  payload_len    bytes following the header (<= kMaxPayload)
//       32     …  payload        protocol::codec bytes, per message type
//
// The header is fixed at kHeaderSize bytes.  budget_ms travels in the
// header (not the payload) so deadline propagation is uniform across every
// request type: the client converts its absolute Deadline into a relative
// budget with Deadline::remaining(), the server re-anchors it on arrival.
// device_id travels in the header for the same reason: multi-tenant
// routing is uniform across every request type, and replies echo the id so
// a client multiplexing devices over one connection can correlate.
// Version history: v1 had no device_id (24-byte header); v2 inserted it.
// Decoders accept exactly kWireVersion — there are no v1 peers to keep
// compatible with, and a version mismatch must fail loudly, not half-work.
//
// decode_frame() is incremental and strict: it reports kNeedMore until a
// whole frame is buffered, and kMalformed on a bad magic, unknown version,
// or oversized payload — at which point the stream is unsynchronised and
// the connection must be closed (after a best-effort typed error reply).
// Payload decoders additionally require the payload to be consumed exactly
// (no trailing bytes), so two frames can never blur together.
#pragma once

#include <cstdint>
#include <vector>

#include "ppuf/challenge.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/authentication.hpp"
#include "protocol/codec.hpp"
#include "util/status.hpp"

namespace ppuf::net {

inline constexpr std::uint32_t kWireMagic =
    0x46555050u;  // 'P' 'P' 'U' 'F' little-endian
inline constexpr std::uint16_t kWireVersion = 2;
inline constexpr std::size_t kHeaderSize = 32;
/// Header device id meaning "the single device this server was started
/// with" — what every pre-registry client speaks.
inline constexpr std::uint64_t kDefaultDeviceId = 0;
/// Hard payload bound; a forged length cannot make the server buffer more.
inline constexpr std::uint32_t kMaxPayload = 16u * 1024 * 1024;

enum class MessageType : std::uint16_t {
  // requests
  kPingRequest = 1,
  kPredictRequest = 2,
  kVerifyRequest = 3,
  kVerifyBatchRequest = 4,
  kChallengeRequest = 5,
  kChainedAuthRequest = 6,
  kEnrollRequest = 7,    ///< enroll a device into the server's registry
  kAdminRequest = 8,     ///< gateway fleet administration (add/drain/…)
  kWalFetchRequest = 9,  ///< standby pulling registry WAL bytes
  // replies (request type + 100)
  kErrorReply = 100,
  kPingReply = 101,
  kPredictReply = 102,
  kVerifyReply = 103,
  kVerifyBatchReply = 104,
  kChallengeReply = 105,
  kChainedAuthReply = 106,
  kEnrollReply = 107,
  kAdminReply = 108,
  kWalSegmentReply = 109,
  /// Out-of-band reply to ANY request: "re-resolve and talk to this
  /// endpoint instead".  A gateway emits it for a draining shard that has
  /// a configured successor; AuthClient follows it transparently.
  kRedirectReply = 110,
};

const char* message_type_name(MessageType type);
bool is_request(MessageType type);

/// Typed failure codes carried by kErrorReply.  These are the service's
/// contract: an overloaded or draining server *answers* (it never silently
/// drops a connection that spoke valid frames).
enum class WireCode : std::uint16_t {
  kOk = 0,
  kInvalidArgument = 1,   ///< well-framed but semantically bad request
  kMalformed = 2,         ///< undecodable payload / broken framing
  kDeadlineExceeded = 3,  ///< budget_ms expired before or during the work
  kCancelled = 4,
  kOverloaded = 5,        ///< admission control rejected; retry later
  kShuttingDown = 6,      ///< server draining; retry elsewhere/later
  kUnsupportedType = 7,   ///< unknown request type for this version
  kInternal = 8,
  kUnknownDevice = 9,     ///< device_id not enrolled, or revoked
  kShardUnavailable = 10, ///< gateway: the shard owning this id is down or
                          ///< draining; re-resolve and retry
};

const char* wire_code_name(WireCode code);
/// Client-side mapping into the project-wide Status vocabulary
/// (kOverloaded / kShuttingDown become kUnavailable, i.e. retryable).
util::Status wire_code_to_status(WireCode code, const std::string& message);

struct Frame {
  std::uint16_t version = kWireVersion;
  MessageType type = MessageType::kPingRequest;
  std::uint64_t request_id = 0;
  std::uint64_t device_id = kDefaultDeviceId;
  std::uint32_t budget_ms = 0;  ///< 0 = unlimited
  std::vector<std::uint8_t> payload;

  /// Re-anchor the relative budget as an absolute deadline at the
  /// receiver.  0 = unlimited.
  util::Deadline deadline() const {
    return budget_ms == 0 ? util::Deadline::unlimited()
                          : util::Deadline::after_seconds(budget_ms * 1e-3);
  }
};

/// Serialise a complete frame (header + payload).  A payload over
/// kMaxPayload is never framed (the peer would reject it and drop the
/// connection); it is replaced by a kErrorReply frame (kInternal) with the
/// same request id so the failure stays typed and in-band.
std::vector<std::uint8_t> encode_frame(MessageType type,
                                       std::uint64_t request_id,
                                       std::uint64_t device_id,
                                       std::uint32_t budget_ms,
                                       const std::vector<std::uint8_t>&
                                           payload);

enum class DecodeResult {
  kOk,        ///< one frame extracted; *consumed bytes were used
  kNeedMore,  ///< buffer holds a frame prefix; read more bytes
  kMalformed, ///< stream is broken; close the connection
};

/// Try to extract one frame from the front of [data, data+size).  On kOk,
/// `*out` holds the frame and `*consumed` the bytes to drop from the
/// buffer.  Never reads past `size`.
DecodeResult decode_frame(const std::uint8_t* data, std::size_t size,
                          Frame* out, std::size_t* consumed);

/// Blocking receive of exactly one frame from `fd`: header, then payload,
/// both bounded by `deadline`.  Transport failures pass through from the
/// socket layer (kUnavailable / kDeadlineExceeded); an unparseable header
/// or frame returns kInternal, at which point the stream cannot be
/// resynchronised and the caller must drop the connection.  This is the
/// single client-side read path — the synchronous round trip, the
/// pipelined window, and raw-socket tests all read replies through it, so
/// framing bugs cannot hide in one copy of the peek logic.
util::Status read_frame(int fd, Frame* out, const util::Deadline& deadline);

// --- typed payloads -------------------------------------------------------
//
// One encode/decode pair per message type.  Decoders return
// kInvalidArgument on any malformed byte and reject trailing garbage.

struct ErrorReply {
  WireCode code = WireCode::kInternal;
  std::string message;
};

struct ChallengeGrant {
  Challenge challenge;           ///< first challenge of the chain
  std::uint32_t chain_length = 1;
  std::uint64_t nonce = 0;       ///< protocol nonce for the successor fn
  double deadline_seconds = 0.0; ///< verifier's response-time budget
};

struct ChainedAuthRequest {
  ChallengeGrant grant;               ///< echoed grant being answered
  protocol::ChainedReport report;
};

std::vector<std::uint8_t> encode_error_reply(const ErrorReply& e);
util::Status decode_error_reply(const std::vector<std::uint8_t>& payload,
                                ErrorReply* out);

std::vector<std::uint8_t> encode_ping_request(std::uint32_t delay_ms);
util::Status decode_ping_request(const std::vector<std::uint8_t>& payload,
                                 std::uint32_t* delay_ms);

/// Health/readiness report carried in every PING reply: enough for a load
/// balancer (or the chaos campaign) to see saturation and drain state
/// without a separate admin channel.
struct HealthInfo {
  std::uint32_t inflight = 0;        ///< requests currently being served
  std::uint32_t max_inflight = 0;    ///< admission-control ceiling
  std::uint8_t draining = 0;         ///< 1 once a drain has been requested
  std::uint64_t requests_served = 0;
  std::uint64_t connections_accepted = 0;
  // Fleet extension (absent on pre-fleet servers; decodes to zeros):
  std::uint64_t device_count = 0;    ///< active devices in the registry
  std::uint64_t wal_epoch = 0;       ///< registry WAL epoch (0 = no registry)
  std::uint64_t wal_offset = 0;      ///< committed WAL byte offset
};

std::vector<std::uint8_t> encode_ping_reply(const HealthInfo& h);
/// Strict decode; an *empty* payload is accepted as all-defaults so a
/// new client can still ping a pre-health server, and the 25-byte
/// pre-fleet body is accepted with the fleet fields defaulted to zero.
util::Status decode_ping_reply(const std::vector<std::uint8_t>& payload,
                               HealthInfo* out);

std::vector<std::uint8_t> encode_predict_request(const Challenge& c);
util::Status decode_predict_request(const std::vector<std::uint8_t>& payload,
                                    Challenge* out);

std::vector<std::uint8_t> encode_predict_reply(
    const SimulationModel::Prediction& p);
util::Status decode_predict_reply(const std::vector<std::uint8_t>& payload,
                                  SimulationModel::Prediction* out);

std::vector<std::uint8_t> encode_verify_request(
    const Challenge& c, const protocol::ProverReport& report);
util::Status decode_verify_request(const std::vector<std::uint8_t>& payload,
                                   Challenge* c,
                                   protocol::ProverReport* report);

std::vector<std::uint8_t> encode_verify_reply(
    const protocol::AuthenticationResult& r);
util::Status decode_verify_reply(const std::vector<std::uint8_t>& payload,
                                 protocol::AuthenticationResult* out);

std::vector<std::uint8_t> encode_verify_batch_request(
    const std::vector<Challenge>& challenges,
    const std::vector<protocol::ProverReport>& reports);
util::Status decode_verify_batch_request(
    const std::vector<std::uint8_t>& payload,
    std::vector<Challenge>* challenges,
    std::vector<protocol::ProverReport>* reports);

std::vector<std::uint8_t> encode_verify_batch_reply(
    const std::vector<protocol::AuthenticationResult>& results);
util::Status decode_verify_batch_reply(
    const std::vector<std::uint8_t>& payload,
    std::vector<protocol::AuthenticationResult>* out);

std::vector<std::uint8_t> encode_challenge_request();
util::Status decode_challenge_request(
    const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_challenge_reply(const ChallengeGrant& g);
util::Status decode_challenge_reply(const std::vector<std::uint8_t>& payload,
                                    ChallengeGrant* out);

std::vector<std::uint8_t> encode_chained_auth_request(
    const ChainedAuthRequest& req);
util::Status decode_chained_auth_request(
    const std::vector<std::uint8_t>& payload, ChainedAuthRequest* out);

std::vector<std::uint8_t> encode_chained_auth_reply(
    const protocol::ChainedVerifyResult& r);
util::Status decode_chained_auth_reply(
    const std::vector<std::uint8_t>& payload,
    protocol::ChainedVerifyResult* out);

// --- fleet payloads -------------------------------------------------------
//
// The requested device id travels in the FRAME HEADER (device_id), not in
// this payload, so a gateway consistent-hashes enrollments exactly like
// every other frame.  Header id 0 means "assign the next free id" and is
// only meaningful direct-to-shard; a gateway rejects it (it cannot route
// an id it does not know yet).
struct EnrollRequestBody {
  std::uint32_t node_count = 0;
  std::uint32_t grid_size = 0;
  std::uint64_t fabrication_seed = 0;
  std::string label;
  /// Backend tag (backend::BackendKind byte; 1 = max-flow).  Optional
  /// trailing field on the wire: v1 frames end after `label` and decode
  /// as max-flow, v2 frames append one byte.  0 is rejected.  Unknown
  /// non-zero values pass wire decode — the server answers them with a
  /// typed kInvalidArgument, not a frame error, so old servers and new
  /// clients fail cleanly.
  std::uint8_t backend = 1;
};

struct EnrollReplyBody {
  std::uint64_t device_id = 0;  ///< the id actually assigned
};

std::vector<std::uint8_t> encode_enroll_request(const EnrollRequestBody& e);
util::Status decode_enroll_request(const std::vector<std::uint8_t>& payload,
                                   EnrollRequestBody* out);

std::vector<std::uint8_t> encode_enroll_reply(const EnrollReplyBody& e);
util::Status decode_enroll_reply(const std::vector<std::uint8_t>& payload,
                                 EnrollReplyBody* out);

/// Gateway shard-lifecycle operations carried by kAdminRequest.
enum class AdminOp : std::uint8_t {
  kStatus = 1,       ///< report every shard's state + counters
  kAddShard = 2,     ///< add (or re-point) shard `shard` at host:port
  kDrainShard = 3,   ///< stop new sessions; host:port = optional successor
  kUndrainShard = 4, ///< cancel a drain
  kRemoveShard = 5,  ///< take the shard out of the ring entirely
};

struct AdminRequestBody {
  AdminOp op = AdminOp::kStatus;
  std::string shard;  ///< target shard name (ignored for kStatus)
  std::string host;   ///< kAddShard: endpoint; kDrainShard: successor
  std::uint16_t port = 0;
};

struct ShardStatus {
  std::string name;
  std::string host;
  std::uint16_t port = 0;
  std::uint8_t state = 0;     ///< fleet::ShardState numeric value
  std::uint8_t draining = 0;  ///< backend reports draining via PING
  std::uint64_t inflight = 0;         ///< forwards in flight right now
  std::uint64_t pinned_sessions = 0;  ///< live chained-auth pins
  std::uint64_t forwarded = 0;        ///< lifetime forwards
  std::uint64_t device_count = 0;     ///< from the shard's health reply
  std::uint64_t wal_epoch = 0;
  std::uint64_t wal_offset = 0;
};

struct AdminReplyBody {
  std::uint8_t ok = 0;
  std::string message;
  std::vector<ShardStatus> shards;
};

std::vector<std::uint8_t> encode_admin_request(const AdminRequestBody& a);
util::Status decode_admin_request(const std::vector<std::uint8_t>& payload,
                                  AdminRequestBody* out);

std::vector<std::uint8_t> encode_admin_reply(const AdminReplyBody& a);
util::Status decode_admin_reply(const std::vector<std::uint8_t>& payload,
                                AdminReplyBody* out);

/// Standby pull: "give me WAL bytes of `epoch` starting at `offset`".
struct WalFetchRequestBody {
  std::uint64_t epoch = 0;   ///< 0 = unknown; always answered by bootstrap
  std::uint64_t offset = 0;
  std::uint32_t max_bytes = 0;  ///< 0 = server default cap
};

/// Reply to a WAL fetch.  Either a byte-exact WAL segment (bootstrap == 0,
/// `bytes` appended at `offset` of epoch `epoch`), or a full snapshot
/// image (bootstrap == 1) when the requested epoch/offset no longer exists
/// (compaction bumped the epoch, or the primary restarted).  After a
/// bootstrap the standby resumes at {epoch, next_offset}.
struct WalSegmentBody {
  std::uint8_t bootstrap = 0;
  std::uint64_t epoch = 0;
  std::uint64_t next_offset = 0;  ///< offset after `bytes` (segment) or the
                                  ///< WAL position the snapshot folds in
  std::vector<std::uint8_t> bytes;
};

std::vector<std::uint8_t> encode_wal_fetch_request(
    const WalFetchRequestBody& f);
util::Status decode_wal_fetch_request(
    const std::vector<std::uint8_t>& payload, WalFetchRequestBody* out);

std::vector<std::uint8_t> encode_wal_segment_reply(const WalSegmentBody& s);
util::Status decode_wal_segment_reply(
    const std::vector<std::uint8_t>& payload, WalSegmentBody* out);

struct RedirectReplyBody {
  std::string host;
  std::uint16_t port = 0;
  std::string shard;    ///< shard name, informational
  std::string message;
};

std::vector<std::uint8_t> encode_redirect_reply(const RedirectReplyBody& r);
util::Status decode_redirect_reply(const std::vector<std::uint8_t>& payload,
                                   RedirectReplyBody* out);

}  // namespace ppuf::net
