// Thin RAII layer over POSIX TCP sockets (Linux).
//
// Everything the service needs and nothing more: an owning fd wrapper, a
// listener factory that can bind an ephemeral port and report which one it
// got, a connector with a real connect timeout (non-blocking connect +
// poll), and deadline-bounded send_all/recv_exact for the blocking client.
// Errors are typed Statuses, not errno soup: transport failures come back
// kUnavailable (retryable), timeouts kDeadlineExceeded.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace ppuf::net {

/// Owning file descriptor.  Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Release ownership without closing.
  int release();
  void close();

 private:
  int fd_ = -1;
};

/// Bind + listen on 127.0.0.1:`port` (0 = ephemeral).  On success fills
/// `*bound_port` with the actual port.  The socket is returned in
/// non-blocking mode (it feeds the epoll loop).
util::Status listen_tcp(std::uint16_t port, int backlog, Socket* out,
                        std::uint16_t* bound_port);

/// Connect to host:port with a timeout; the returned socket is *blocking*
/// (the client does synchronous request/reply).
util::Status connect_tcp(const std::string& host, std::uint16_t port,
                         int timeout_ms, Socket* out);

util::Status set_nonblocking(int fd);

/// Write all `size` bytes before `deadline` (poll-bounded).
util::Status send_all(int fd, const std::uint8_t* data, std::size_t size,
                      const util::Deadline& deadline);

/// Read exactly `size` bytes before `deadline`.  A clean peer close mid-
/// message is kUnavailable ("connection closed").
util::Status recv_exact(int fd, std::uint8_t* data, std::size_t size,
                        const util::Deadline& deadline);

}  // namespace ppuf::net
