// Per-endpoint circuit breaker for client-side self-protection.
//
// When a server dies (or a chaos schedule makes the network lie), every
// client that keeps hammering the dead endpoint burns its own deadline
// budget *and* contributes to the recovering server's thundering herd.
// The breaker converts a run of consecutive transport failures into a
// fast local "no" for a cooldown window, then lets exactly one half-open
// probe through; the probe's outcome decides between closing the circuit
// and another cooldown.
//
// Only transport failures count: a *typed* error reply (OVERLOADED,
// SHUTTING_DOWN, UNKNOWN_DEVICE…) proves the endpoint is alive and
// talking protocol, so it records as a success here even though the call
// itself failed.
//
// Breakers are shared per endpoint via endpoint_breaker(): every
// AuthClient in the process talking to the same host:port sees the same
// state, which is the point — one client discovering a dead server
// spares the rest of the fleet in this process.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace ppuf::net {

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive transport failures that trip the breaker.
    int failure_threshold = 5;
    /// How long the breaker stays open before admitting a half-open
    /// probe.
    int cooldown_ms = 1000;
  };

  explicit CircuitBreaker(const Options& options) : options_(options) {}

  /// May this call proceed?  kClosed: yes.  kOpen: no, until the
  /// cooldown elapses — then exactly one caller is admitted as the
  /// half-open probe.  kHalfOpen: no (a probe is already in flight).
  bool allow();

  /// The endpoint answered (any protocol-level reply counts).
  void record_success();

  /// The endpoint failed at the transport level (connect/send/recv).
  void record_failure();

  State state() const;

  /// Times the breaker transitioned kClosed/kHalfOpen -> kOpen.
  std::uint64_t times_opened() const;

 private:
  using Clock = std::chrono::steady_clock;

  const Options options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  std::uint64_t times_opened_ = 0;
  Clock::time_point opened_at_{};
};

/// Process-wide breaker for `host:port`, created on first use with
/// `options` (later callers share the existing breaker regardless of
/// their options).
std::shared_ptr<CircuitBreaker> endpoint_breaker(
    const std::string& host, std::uint16_t port,
    const CircuitBreaker::Options& options);

}  // namespace ppuf::net
