#include "net/breaker.hpp"

#include <map>

namespace ppuf::net {

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      const auto elapsed = Clock::now() - opened_at_;
      if (elapsed < std::chrono::milliseconds(options_.cooldown_ms))
        return false;
      // Cooldown over: this caller becomes the single half-open probe.
      state_ = State::kHalfOpen;
      return true;
    }
    case State::kHalfOpen:
      return false;  // probe already in flight
  }
  return true;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: straight back to open for another cooldown.
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    ++times_opened_;
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    ++times_opened_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::times_opened() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return times_opened_;
}

std::shared_ptr<CircuitBreaker> endpoint_breaker(
    const std::string& host, std::uint16_t port,
    const CircuitBreaker::Options& options) {
  static std::mutex registry_mutex;
  static std::map<std::string, std::shared_ptr<CircuitBreaker>>& registry =
      *new std::map<std::string, std::shared_ptr<CircuitBreaker>>();
  const std::string key = host + ":" + std::to_string(port);
  std::lock_guard<std::mutex> lock(registry_mutex);
  auto it = registry.find(key);
  if (it == registry.end())
    it = registry.emplace(key, std::make_shared<CircuitBreaker>(options))
             .first;
  return it->second;
}

}  // namespace ppuf::net
