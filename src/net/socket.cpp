#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/fault_hooks.hpp"

namespace ppuf::net {

namespace {

using util::Status;

/// Chaos-plane entry for client-side socket ops: optional injected
/// latency (bounded by the remaining deadline) ahead of the real I/O.
void maybe_inject_latency(const util::Deadline& deadline) {
  const std::uint32_t us = util::FaultHooks::consume_net_latency_us();
  if (us == 0) return;
  auto pause = std::chrono::microseconds(us);
  if (!deadline.is_unlimited()) {
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        deadline.remaining());
    pause = std::min(pause, std::max(std::chrono::microseconds(0), left));
  }
  std::this_thread::sleep_for(pause);
}

Status errno_status(const char* what) {
  return Status::unavailable(std::string(what) + ": " + strerror(errno));
}

/// Remaining deadline budget as a poll() timeout: -1 for unlimited,
/// clamped to [0, INT_MAX] otherwise.
int poll_timeout_ms(const util::Deadline& deadline) {
  if (deadline.is_unlimited()) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline.remaining());
  return static_cast<int>(
      std::min<std::chrono::milliseconds::rep>(left.count(), 1 << 30));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return errno_status("fcntl(O_NONBLOCK)");
  return Status::ok();
}

util::Status listen_tcp(std::uint16_t port, int backlog, Socket* out,
                        std::uint16_t* bound_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_status("socket");
  const int one = 1;
  // REUSEADDR so a drained-and-restarted server does not trip over
  // TIME_WAIT from its own previous life.
  setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0)
    return errno_status("bind");
  if (::listen(sock.fd(), backlog) < 0) return errno_status("listen");

  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) <
      0)
    return errno_status("getsockname");
  *bound_port = ntohs(actual.sin_port);

  if (Status s = set_nonblocking(sock.fd()); !s.is_ok()) return s;
  *out = std::move(sock);
  return Status::ok();
}

util::Status connect_tcp(const std::string& host, std::uint16_t port,
                         int timeout_ms, Socket* out) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_status("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Status::invalid_argument("not an IPv4 address: " + host);

  // Non-blocking connect + poll gives a real timeout (a blocking connect
  // can hang for minutes on a black-holed address).
  if (Status s = set_nonblocking(sock.fd()); !s.is_ok()) return s;
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) return errno_status("connect");
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0)
      return Status::deadline_exceeded("connect timed out: " + host);
    if (rc < 0) return errno_status("poll(connect)");
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      errno = err;
      return errno_status("connect");
    }
  }

  // Back to blocking for the synchronous client; disable Nagle so small
  // request frames do not wait for a 40 ms delayed ACK.
  const int flags = fcntl(sock.fd(), F_GETFL, 0);
  if (flags < 0 ||
      fcntl(sock.fd(), F_SETFL, flags & ~O_NONBLOCK) < 0)
    return errno_status("fcntl(blocking)");
  const int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = std::move(sock);
  return Status::ok();
}

util::Status send_all(int fd, const std::uint8_t* data, std::size_t size,
                      const util::Deadline& deadline) {
  maybe_inject_latency(deadline);
  if (util::FaultHooks::consume_net_send_failure())
    return Status::unavailable("injected send failure");
  std::size_t sent = 0;
  while (sent < size) {
    if (deadline.expired())
      return Status::deadline_exceeded("send timed out");
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (rc == 0) return Status::deadline_exceeded("send timed out");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_status("poll(send)");
    }
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return errno_status("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

util::Status recv_exact(int fd, std::uint8_t* data, std::size_t size,
                        const util::Deadline& deadline) {
  maybe_inject_latency(deadline);
  if (util::FaultHooks::consume_net_recv_failure())
    return Status::unavailable("injected recv failure");
  std::size_t got = 0;
  while (got < size) {
    if (deadline.expired())
      return Status::deadline_exceeded("recv timed out");
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (rc == 0) return Status::deadline_exceeded("recv timed out");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_status("poll(recv)");
    }
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) return Status::unavailable("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return errno_status("recv");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace ppuf::net
