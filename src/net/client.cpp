#include "net/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <unordered_map>

#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace ppuf::net {

namespace {

using util::Status;

obs::Counter* counter_or_null(const char* name) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  return reg.enabled() ? &reg.counter(name) : nullptr;
}

std::uint64_t entropy_seed() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

/// The deadline actually used for one attempt: the caller's, or the
/// default per-attempt budget when the caller passed unlimited (a client
/// must never block forever on a wedged server).
util::Deadline attempt_deadline(const util::Deadline& caller,
                                int default_ms) {
  if (!caller.is_unlimited()) return caller;
  return util::Deadline::after_seconds(default_ms * 1e-3);
}

std::uint32_t budget_ms_for(const util::Deadline& caller) {
  if (caller.is_unlimited()) return 0;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      caller.remaining());
  // A sub-millisecond remainder still rounds up to 1 so "expired on the
  // client" and "unlimited on the wire" can never be confused.
  const auto ms = std::max<std::chrono::milliseconds::rep>(1, left.count());
  return static_cast<std::uint32_t>(
      std::min<std::chrono::milliseconds::rep>(ms, 0xffffffffu));
}

}  // namespace

int decorrelated_jitter_ms(util::Rng& rng, int base_ms, int cap_ms,
                           int prev_ms) {
  base_ms = std::max(1, base_ms);
  cap_ms = std::max(base_ms, cap_ms);
  // Decorrelated jitter (a la the classic AWS architecture-blog scheme):
  // each pause is uniform in [base, 3 * previous], capped.  Growth is
  // still roughly exponential in expectation, but two clients that failed
  // at the same instant immediately diverge.
  const std::int64_t hi = std::min<std::int64_t>(
      cap_ms, 3ll * std::max(prev_ms, base_ms));
  return static_cast<int>(rng.uniform_int(base_ms, hi));
}

AuthClient::AuthClient(std::string host, std::uint16_t port,
                       ClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      backoff_rng_(options.backoff_seed != 0 ? options.backoff_seed
                                             : entropy_seed()) {
  refresh_breaker();
}

void AuthClient::refresh_breaker() {
  if (options_.breaker_failure_threshold <= 0) {
    breaker_ = nullptr;
    return;
  }
  const std::string key = host_ + ":" + std::to_string(port_);
  auto it = breakers_.find(key);
  if (it == breakers_.end()) {
    CircuitBreaker::Options bo;
    bo.failure_threshold = options_.breaker_failure_threshold;
    bo.cooldown_ms = options_.breaker_cooldown_ms;
    it = breakers_.emplace(key, endpoint_breaker(host_, port_, bo)).first;
  }
  breaker_ = it->second;
}

void AuthClient::set_endpoint(const std::string& host, std::uint16_t port) {
  if (host == host_ && port == port_) return;
  disconnect();
  host_ = host;
  port_ = port;
  refresh_breaker();
}

AuthClient::~AuthClient() { disconnect(); }

bool AuthClient::connected() const { return fd_ >= 0; }

void AuthClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status AuthClient::ensure_connected(const util::Deadline& deadline) {
  if (fd_ >= 0) return Status::ok();
  const auto left_ms = deadline.is_unlimited()
                           ? options_.connect_timeout_ms
                           : static_cast<int>(std::min<long long>(
                                 options_.connect_timeout_ms,
                                 std::chrono::duration_cast<
                                     std::chrono::milliseconds>(
                                     deadline.remaining())
                                     .count()));
  Socket sock;
  if (Status s = connect_tcp(host_, port_, left_ms, &sock); !s.is_ok())
    return s;
  fd_ = sock.release();
  ++stats_.reconnects;
  return Status::ok();
}

util::Status AuthClient::attempt(MessageType type,
                                 const std::vector<std::uint8_t>& payload,
                                 const util::Deadline& deadline,
                                 Frame* reply) {
  ++stats_.attempts;
  if (Status s = ensure_connected(deadline); !s.is_ok()) return s;

  const std::uint64_t request_id = next_request_id_++;
  const std::vector<std::uint8_t> frame =
      encode_frame(type, request_id, options_.device_id,
                   budget_ms_for(deadline), payload);
  if (Status s = send_all(fd_, frame.data(), frame.size(), deadline);
      !s.is_ok()) {
    disconnect();
    return s;
  }

  if (Status s = read_frame(fd_, reply, deadline); !s.is_ok()) {
    disconnect();
    return s;
  }
  if (reply->request_id != request_id) {
    // The stream is out of sync (a stale reply from a previous timed-out
    // request); drop the connection rather than guess.
    disconnect();
    return Status::unavailable("reply id mismatch; connection resynced");
  }
  return Status::ok();
}

util::Status AuthClient::round_trip(MessageType type,
                                    const std::vector<std::uint8_t>& payload,
                                    const util::Deadline& deadline,
                                    MessageType expected_reply,
                                    Frame* reply) {
  ++stats_.requests;
  if (obs::Counter* c = counter_or_null("client.requests")) c->add();
  if (payload.size() > kMaxPayload)
    return Status::invalid_argument(
        std::string(message_type_name(type)) +
        " request payload exceeds frame limit");
  Status last = Status::internal("no attempt made");
  int backoff_ms = options_.backoff_initial_ms;
  const int attempts = std::max(1, options_.max_attempts);
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      // Backoff must respect the caller's budget: an already-expired
      // deadline answers now, and the sleep never outlives what remains.
      if (deadline.expired())
        return Status::deadline_exceeded(
            "deadline expired before retry; last error: " + last.message());
      ++stats_.retries;
      if (obs::Counter* c = counter_or_null("client.retries")) c->add();
      backoff_ms = decorrelated_jitter_ms(backoff_rng_,
                                          options_.backoff_initial_ms,
                                          options_.backoff_max_ms, backoff_ms);
      auto pause = std::chrono::milliseconds(backoff_ms);
      if (!deadline.is_unlimited())
        pause = std::min(
            pause, std::chrono::duration_cast<std::chrono::milliseconds>(
                       deadline.remaining()));
      if (pause.count() > 0) std::this_thread::sleep_for(pause);
    }
    // Fast-fail while the endpoint's breaker is open: protect the
    // recovering server (and our own deadline budget) instead of piling
    // on.  Later iterations still backoff, so a half-open probe can be
    // admitted within this same logical request once the cooldown ends.
    if (breaker_ && !breaker_->allow()) {
      ++stats_.breaker_fast_fails;
      if (obs::Counter* c = counter_or_null("client.breaker.fast_fails"))
        c->add();
      last = Status::unavailable("circuit breaker open for " + host_ + ":" +
                                 std::to_string(port_));
      continue;
    }
    const util::Deadline att =
        attempt_deadline(deadline, options_.request_timeout_ms);
    const std::uint64_t opens_before =
        breaker_ ? breaker_->times_opened() : 0;
    last = attempt(type, payload, att, reply);
    if (breaker_) {
      // A typed error reply is a *successful* transport round-trip: the
      // endpoint is alive and speaking protocol, so only a failed attempt
      // records as a breaker failure.
      if (last.is_ok()) {
        breaker_->record_success();
      } else {
        breaker_->record_failure();
        if (breaker_->times_opened() > opens_before) {
          if (obs::Counter* c = counter_or_null("client.breaker.opened"))
            c->add();
        }
      }
    }
    if (last.is_ok()) {
      if (reply->type == MessageType::kRedirectReply) {
        // The peer (a gateway fronting a draining shard, typically) told
        // us where this request should go; retarget and retry there.
        RedirectReplyBody rd;
        if (Status s = decode_redirect_reply(reply->payload, &rd);
            !s.is_ok())
          return s;
        ++stats_.redirects_followed;
        if (obs::Counter* c = counter_or_null("client.redirects")) c->add();
        set_endpoint(rd.host, rd.port);
        last = Status::unavailable("redirected to " + rd.host + ":" +
                                   std::to_string(rd.port));
        continue;
      }
      if (reply->type == MessageType::kErrorReply) {
        ErrorReply err;
        if (Status s = decode_error_reply(reply->payload, &err); !s.is_ok())
          return s;
        last = wire_code_to_status(
            err.code, std::string(wire_code_name(err.code)) +
                          (err.message.empty() ? "" : ": " + err.message));
        // Typed transient rejections (OVERLOADED, SHUTTING_DOWN) retry
        // like transport failures; anything else is final.
        if (last.code() != util::StatusCode::kUnavailable) return last;
        continue;
      }
      if (reply->type != expected_reply) {
        disconnect();
        return Status::internal(
            std::string("unexpected reply type ") +
            message_type_name(reply->type));
      }
      return Status::ok();
    }
    // Only transient transport failures are worth another attempt.
    if (last.code() != util::StatusCode::kUnavailable) return last;
  }
  return last;
}

util::Status AuthClient::ping(std::uint32_t delay_ms,
                              const util::Deadline& deadline,
                              HealthInfo* health) {
  Frame reply;
  if (Status s = round_trip(MessageType::kPingRequest,
                            encode_ping_request(delay_ms), deadline,
                            MessageType::kPingReply, &reply);
      !s.is_ok())
    return s;
  if (health == nullptr) return Status::ok();
  return decode_ping_reply(reply.payload, health);
}

util::Status AuthClient::run_pipeline(
    const std::vector<Challenge>& challenges,
    std::vector<SimulationModel::Prediction>* out,
    const util::Deadline& deadline) {
  ++stats_.attempts;
  if (Status s = ensure_connected(deadline); !s.is_ok()) return s;
  const std::size_t window =
      static_cast<std::size_t>(std::max(1, options_.pipeline_depth));
  // Outstanding request id -> index into `challenges`.  Replies are
  // matched STRICTLY through this map: a reply whose id is absent (a late
  // answer to a request some earlier window abandoned, or a confused
  // peer) must never be attributed to whatever happens to be oldest —
  // that is exactly the late-reply misattribution bug.  Drop the
  // connection instead so the next window starts on a clean stream.
  std::unordered_map<std::uint64_t, std::size_t> outstanding;
  outstanding.reserve(window);
  std::size_t next = 0, answered = 0;
  while (answered < challenges.size()) {
    while (next < challenges.size() && outstanding.size() < window) {
      const std::uint64_t id = next_request_id_++;
      const std::vector<std::uint8_t> frame = encode_frame(
          MessageType::kPredictRequest, id, options_.device_id,
          budget_ms_for(deadline), encode_predict_request(challenges[next]));
      if (Status s = send_all(fd_, frame.data(), frame.size(), deadline);
          !s.is_ok()) {
        disconnect();
        return s;
      }
      outstanding.emplace(id, next);
      ++next;
    }
    Frame reply;
    if (Status s = read_frame(fd_, &reply, deadline); !s.is_ok()) {
      disconnect();
      return s;
    }
    const auto it = outstanding.find(reply.request_id);
    if (it == outstanding.end()) {
      disconnect();
      return Status::unavailable(
          "pipelined reply id " + std::to_string(reply.request_id) +
          " matches no outstanding request; connection resynced");
    }
    const std::size_t index = it->second;
    outstanding.erase(it);
    ++answered;
    if (reply.type == MessageType::kErrorReply) {
      ErrorReply err;
      if (Status s = decode_error_reply(reply.payload, &err); !s.is_ok()) {
        disconnect();
        return s;
      }
      (*out)[index].status = wire_code_to_status(
          err.code, std::string(wire_code_name(err.code)) +
                        (err.message.empty() ? "" : ": " + err.message));
      continue;
    }
    if (reply.type != MessageType::kPredictReply) {
      disconnect();
      return Status::internal(std::string("unexpected reply type ") +
                              message_type_name(reply.type));
    }
    if (Status s = decode_predict_reply(reply.payload, &(*out)[index]);
        !s.is_ok()) {
      disconnect();
      return s;
    }
  }
  return Status::ok();
}

util::Status AuthClient::predict_pipelined(
    const std::vector<Challenge>& challenges,
    std::vector<SimulationModel::Prediction>* out,
    const util::Deadline& deadline) {
  out->assign(challenges.size(), SimulationModel::Prediction{});
  for (SimulationModel::Prediction& p : *out)
    p.status = Status::unavailable("pipelined request not answered");
  if (challenges.empty()) return Status::ok();
  ++stats_.requests;
  if (obs::Counter* c = counter_or_null("client.requests")) c->add();
  if (breaker_ && !breaker_->allow()) {
    ++stats_.breaker_fast_fails;
    if (obs::Counter* c = counter_or_null("client.breaker.fast_fails"))
      c->add();
    return Status::unavailable("circuit breaker open for " + host_ + ":" +
                               std::to_string(port_));
  }
  const util::Deadline att =
      attempt_deadline(deadline, options_.request_timeout_ms);
  const Status s = run_pipeline(challenges, out, att);
  if (breaker_) {
    if (s.is_ok())
      breaker_->record_success();
    else
      breaker_->record_failure();
  }
  return s;
}

util::Status AuthClient::predict(const Challenge& challenge,
                                 SimulationModel::Prediction* out,
                                 const util::Deadline& deadline) {
  Frame reply;
  if (Status s = round_trip(MessageType::kPredictRequest,
                            encode_predict_request(challenge), deadline,
                            MessageType::kPredictReply, &reply);
      !s.is_ok())
    return s;
  return decode_predict_reply(reply.payload, out);
}

util::Status AuthClient::verify(const Challenge& challenge,
                                const protocol::ProverReport& report,
                                protocol::AuthenticationResult* out,
                                const util::Deadline& deadline) {
  Frame reply;
  if (Status s = round_trip(MessageType::kVerifyRequest,
                            encode_verify_request(challenge, report),
                            deadline, MessageType::kVerifyReply, &reply);
      !s.is_ok())
    return s;
  return decode_verify_reply(reply.payload, out);
}

util::Status AuthClient::verify_batch(
    const std::vector<Challenge>& challenges,
    const std::vector<protocol::ProverReport>& reports,
    std::vector<protocol::AuthenticationResult>* out,
    const util::Deadline& deadline) {
  if (challenges.size() != reports.size())
    return Status::invalid_argument(
        "verify_batch: challenges/reports size mismatch");
  Frame reply;
  if (Status s =
          round_trip(MessageType::kVerifyBatchRequest,
                     encode_verify_batch_request(challenges, reports),
                     deadline, MessageType::kVerifyBatchReply, &reply);
      !s.is_ok())
    return s;
  return decode_verify_batch_reply(reply.payload, out);
}

util::Status AuthClient::get_challenge(ChallengeGrant* out,
                                       const util::Deadline& deadline) {
  Frame reply;
  if (Status s = round_trip(MessageType::kChallengeRequest,
                            encode_challenge_request(), deadline,
                            MessageType::kChallengeReply, &reply);
      !s.is_ok())
    return s;
  return decode_challenge_reply(reply.payload, out);
}

util::Status AuthClient::chained_auth(const ChallengeGrant& grant,
                                      const protocol::ChainedReport& report,
                                      protocol::ChainedVerifyResult* out,
                                      const util::Deadline& deadline) {
  ChainedAuthRequest req;
  req.grant = grant;
  req.report = report;
  Frame reply;
  if (Status s = round_trip(MessageType::kChainedAuthRequest,
                            encode_chained_auth_request(req), deadline,
                            MessageType::kChainedAuthReply, &reply);
      !s.is_ok())
    return s;
  return decode_chained_auth_reply(reply.payload, out);
}

util::Status AuthClient::enroll_device(const EnrollRequestBody& spec,
                                       std::uint64_t requested_id,
                                       std::uint64_t* assigned,
                                       const util::Deadline& deadline) {
  // The requested id rides the frame header so a gateway routes the
  // enrollment like any other frame; stamp it for this round trip only.
  const std::uint64_t saved = options_.device_id;
  options_.device_id = requested_id;
  Frame reply;
  const Status s =
      round_trip(MessageType::kEnrollRequest, encode_enroll_request(spec),
                 deadline, MessageType::kEnrollReply, &reply);
  options_.device_id = saved;
  if (!s.is_ok()) return s;
  EnrollReplyBody body;
  if (Status d = decode_enroll_reply(reply.payload, &body); !d.is_ok())
    return d;
  if (assigned != nullptr) *assigned = body.device_id;
  return Status::ok();
}

util::Status AuthClient::admin(const AdminRequestBody& request,
                               AdminReplyBody* out,
                               const util::Deadline& deadline) {
  Frame reply;
  if (Status s = round_trip(MessageType::kAdminRequest,
                            encode_admin_request(request), deadline,
                            MessageType::kAdminReply, &reply);
      !s.is_ok())
    return s;
  return decode_admin_reply(reply.payload, out);
}

util::Status AuthClient::wal_fetch(const WalFetchRequestBody& request,
                                   WalSegmentBody* out,
                                   const util::Deadline& deadline) {
  Frame reply;
  if (Status s = round_trip(MessageType::kWalFetchRequest,
                            encode_wal_fetch_request(request), deadline,
                            MessageType::kWalSegmentReply, &reply);
      !s.is_ok())
    return s;
  return decode_wal_segment_reply(reply.payload, out);
}

}  // namespace ppuf::net
