// Blocking client for the authentication service.
//
// One AuthClient owns one connection (lazily opened, transparently
// reopened) and performs synchronous request/reply rounds.  Transient
// failures — connect refused, connection reset, a typed OVERLOADED or
// SHUTTING_DOWN reply — are retried up to `max_attempts` with bounded
// *decorrelated-jitter* backoff (every client doubling in lockstep after
// a restart is a thundering herd at fleet scale); deterministic failures
// (malformed, invalid argument, a typed DEADLINE_EXCEEDED) are returned
// at once.  All request methods are read-only on the server, so retry is
// always safe.
//
// Self-protection: clients to the same endpoint share a per-endpoint
// circuit breaker (net/breaker.hpp).  A run of consecutive *transport*
// failures opens it and further attempts fail fast with kUnavailable
// until a half-open probe succeeds; typed error replies never trip it.
// Set breaker_failure_threshold = 0 to opt out.
//
// Deadline plumbing: pass a util::Deadline per request and the client puts
// Deadline::remaining() on the wire as the budget_ms header field; the
// server re-anchors it on arrival and propagates it into its solvers.  The
// same deadline also bounds the client-side socket I/O, so a dead server
// cannot hold the caller past its own budget.
//
// Not thread-safe: one AuthClient per thread (they are cheap — a load
// generator opens K of them).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/breaker.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ppuf::net {

struct ClientOptions {
  int connect_timeout_ms = 2000;
  /// Per-attempt transport budget when the request carries no deadline.
  int request_timeout_ms = 30000;
  /// Total tries per request (1 = no retry).
  int max_attempts = 3;
  int backoff_initial_ms = 10;
  int backoff_max_ms = 500;
  /// Seed for the backoff jitter stream; 0 (default) seeds from entropy
  /// so distinct clients decorrelate, nonzero makes tests reproducible.
  std::uint64_t backoff_seed = 0;
  /// Consecutive transport failures that open the shared per-endpoint
  /// circuit breaker; 0 disables the breaker for this client.
  int breaker_failure_threshold = 5;
  /// How long an open breaker waits before admitting a half-open probe.
  int breaker_cooldown_ms = 1000;
  /// Registry device every request addresses (header field).
  /// kDefaultDeviceId targets a single-device server's implicit model; a
  /// registry-backed server answers it with UNKNOWN_DEVICE.
  std::uint64_t device_id = kDefaultDeviceId;
  /// Bound on outstanding requests in predict_pipelined (clamped to >= 1).
  /// 1 degenerates to one-at-a-time round trips; a deeper window is what
  /// keeps a coalescing server's batches fed from a single connection.
  int pipeline_depth = 1;
};

/// Next backoff pause, AWS-style decorrelated jitter:
/// uniform(base, min(cap, 3 * prev)).  Exposed as a free function so the
/// distribution itself is testable.
int decorrelated_jitter_ms(util::Rng& rng, int base_ms, int cap_ms,
                           int prev_ms);

class AuthClient {
 public:
  AuthClient(std::string host, std::uint16_t port,
             ClientOptions options = {});
  ~AuthClient();

  AuthClient(const AuthClient&) = delete;
  AuthClient& operator=(const AuthClient&) = delete;

  /// Round-trip a no-op frame; `delay_ms` asks the server's worker to hold
  /// the request that long before answering (load/overload testing).
  /// When `health` is non-null it receives the server's health report
  /// (in-flight load, drain state) carried in the reply.
  util::Status ping(std::uint32_t delay_ms = 0,
                    const util::Deadline& deadline = {},
                    HealthInfo* health = nullptr);

  util::Status predict(const Challenge& challenge,
                       SimulationModel::Prediction* out,
                       const util::Deadline& deadline = {});

  /// Pipelined predictions: keep up to options.pipeline_depth requests
  /// outstanding on this connection and match replies STRICTLY by request
  /// id — out-of-order replies are legal (a coalescing server answers
  /// cache hits and solo dispatches ahead of slower batch-mates).  `out`
  /// is resized to challenges.size(); a typed per-item error reply (e.g.
  /// DEADLINE_EXCEEDED) lands in that item's Prediction::status without
  /// affecting the rest of the window.  The returned Status covers the
  /// transport: on a desync — a reply id matching no outstanding request —
  /// the connection is dropped and a typed kUnavailable is returned, with
  /// unanswered items left holding kUnavailable statuses.  No automatic
  /// retry: a half-answered window is not idempotently resumable, so
  /// callers wanting retry re-issue the whole window.
  util::Status predict_pipelined(
      const std::vector<Challenge>& challenges,
      std::vector<SimulationModel::Prediction>* out,
      const util::Deadline& deadline = {});

  util::Status verify(const Challenge& challenge,
                      const protocol::ProverReport& report,
                      protocol::AuthenticationResult* out,
                      const util::Deadline& deadline = {});

  util::Status verify_batch(
      const std::vector<Challenge>& challenges,
      const std::vector<protocol::ProverReport>& reports,
      std::vector<protocol::AuthenticationResult>* out,
      const util::Deadline& deadline = {});

  /// Ask the verifier for a chain grant (first challenge, k, nonce).
  util::Status get_challenge(ChallengeGrant* out,
                             const util::Deadline& deadline = {});

  /// Submit the chained report answering `grant`.
  util::Status chained_auth(const ChallengeGrant& grant,
                            const protocol::ChainedReport& report,
                            protocol::ChainedVerifyResult* out,
                            const util::Deadline& deadline = {});

  /// Enroll a device (registry-backed server or gateway).  `requested_id`
  /// travels in the frame header: 0 asks a shard to assign the next free
  /// id (a gateway rejects 0 — it cannot route an unknown id); non-zero
  /// enrolls exactly that id.  On success `*assigned` holds the id.
  /// NOT idempotent: a retry after a transport failure whose first
  /// attempt actually committed answers "already enrolled"
  /// (kInvalidArgument) — callers enrolling explicit ids should treat
  /// that as success-after-crash if they own the id space.
  util::Status enroll_device(const EnrollRequestBody& spec,
                             std::uint64_t requested_id,
                             std::uint64_t* assigned,
                             const util::Deadline& deadline = {});

  /// Gateway fleet administration (add/drain/undrain/remove/status).
  util::Status admin(const AdminRequestBody& request, AdminReplyBody* out,
                     const util::Deadline& deadline = {});

  /// Pull registry WAL bytes (standby replication).
  util::Status wal_fetch(const WalFetchRequestBody& request,
                         WalSegmentBody* out,
                         const util::Deadline& deadline = {});

  struct Stats {
    std::uint64_t requests = 0;   ///< logical requests issued
    std::uint64_t attempts = 0;   ///< wire round-trips tried
    std::uint64_t retries = 0;    ///< attempts beyond the first
    std::uint64_t reconnects = 0; ///< sockets (re)opened
    std::uint64_t breaker_fast_fails = 0;  ///< attempts refused locally
    std::uint64_t redirects_followed = 0;  ///< kRedirectReply retargets
  };
  const Stats& stats() const { return stats_; }

  bool connected() const;
  void disconnect();

  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }

  /// Retarget this client at another endpoint: drops the connection and
  /// switches to that endpoint's circuit breaker (breaker state is keyed
  /// per host:port, so a dead shard's open breaker never fast-fails a
  /// healthy one).  Called internally when a kRedirectReply arrives.
  void set_endpoint(const std::string& host, std::uint16_t port);

  /// Retarget subsequent requests at another enrolled device.  Safe
  /// between round trips (the id is stamped per request).
  void set_device_id(std::uint64_t device_id) {
    options_.device_id = device_id;
  }
  std::uint64_t device_id() const { return options_.device_id; }

 private:
  /// One request with retry/backoff/reconnect.  On success `*reply` holds
  /// the reply frame (possibly kErrorReply, which is mapped to a Status by
  /// the caller-facing wrappers).
  util::Status round_trip(MessageType type,
                          const std::vector<std::uint8_t>& payload,
                          const util::Deadline& deadline,
                          MessageType expected_reply, Frame* reply);
  /// Single attempt: (re)connect if needed, send, receive one frame.
  util::Status attempt(MessageType type,
                       const std::vector<std::uint8_t>& payload,
                       const util::Deadline& deadline, Frame* reply);
  /// One pipelined window (no retry); results land in *out per item.
  util::Status run_pipeline(const std::vector<Challenge>& challenges,
                            std::vector<SimulationModel::Prediction>* out,
                            const util::Deadline& deadline);
  util::Status ensure_connected(const util::Deadline& deadline);
  /// Point breaker_ at the current endpoint's breaker (cached per
  /// endpoint in breakers_ so a retarget back is a map hit).
  void refresh_breaker();

  std::string host_;
  std::uint16_t port_;
  ClientOptions options_;
  Stats stats_;
  std::uint64_t next_request_id_ = 1;
  int fd_ = -1;
  util::Rng backoff_rng_;
  /// Per-endpoint ("host:port") breaker handles this client has talked
  /// to; each handle is the process-wide shared breaker for that
  /// endpoint.  breaker_ is the CURRENT endpoint's entry — state must
  /// never leak across a retarget.
  std::unordered_map<std::string, std::shared_ptr<CircuitBreaker>> breakers_;
  std::shared_ptr<CircuitBreaker> breaker_;  ///< null when disabled
};

}  // namespace ppuf::net
