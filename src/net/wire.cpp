#include "net/wire.hpp"

#include <algorithm>

#include "net/socket.hpp"

namespace ppuf::net {

namespace {

using protocol::codec::Reader;
using protocol::codec::Writer;
using util::Status;

Status malformed(const char* what) {
  return Status::invalid_argument(std::string("malformed ") + what);
}

/// Shared epilogue: a payload decoder must consume its bytes exactly.
Status finish(const Reader& r, const char* what) {
  if (!r.exhausted()) return malformed(what);
  return Status::ok();
}

}  // namespace

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kPingRequest: return "PING";
    case MessageType::kPredictRequest: return "PREDICT";
    case MessageType::kVerifyRequest: return "VERIFY";
    case MessageType::kVerifyBatchRequest: return "VERIFY_BATCH";
    case MessageType::kChallengeRequest: return "CHALLENGE";
    case MessageType::kChainedAuthRequest: return "CHAINED_AUTH";
    case MessageType::kEnrollRequest: return "ENROLL";
    case MessageType::kAdminRequest: return "ADMIN";
    case MessageType::kWalFetchRequest: return "WAL_FETCH";
    case MessageType::kErrorReply: return "ERROR_REPLY";
    case MessageType::kPingReply: return "PING_REPLY";
    case MessageType::kPredictReply: return "PREDICT_REPLY";
    case MessageType::kVerifyReply: return "VERIFY_REPLY";
    case MessageType::kVerifyBatchReply: return "VERIFY_BATCH_REPLY";
    case MessageType::kChallengeReply: return "CHALLENGE_REPLY";
    case MessageType::kChainedAuthReply: return "CHAINED_AUTH_REPLY";
    case MessageType::kEnrollReply: return "ENROLL_REPLY";
    case MessageType::kAdminReply: return "ADMIN_REPLY";
    case MessageType::kWalSegmentReply: return "WAL_SEGMENT_REPLY";
    case MessageType::kRedirectReply: return "REDIRECT_REPLY";
  }
  return "UNKNOWN";
}

bool is_request(MessageType type) {
  switch (type) {
    case MessageType::kPingRequest:
    case MessageType::kPredictRequest:
    case MessageType::kVerifyRequest:
    case MessageType::kVerifyBatchRequest:
    case MessageType::kChallengeRequest:
    case MessageType::kChainedAuthRequest:
    case MessageType::kEnrollRequest:
    case MessageType::kAdminRequest:
    case MessageType::kWalFetchRequest:
      return true;
    default:
      return false;
  }
}

const char* wire_code_name(WireCode code) {
  switch (code) {
    case WireCode::kOk: return "OK";
    case WireCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireCode::kMalformed: return "MALFORMED";
    case WireCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WireCode::kCancelled: return "CANCELLED";
    case WireCode::kOverloaded: return "OVERLOADED";
    case WireCode::kShuttingDown: return "SHUTTING_DOWN";
    case WireCode::kUnsupportedType: return "UNSUPPORTED_TYPE";
    case WireCode::kInternal: return "INTERNAL";
    case WireCode::kUnknownDevice: return "UNKNOWN_DEVICE";
    case WireCode::kShardUnavailable: return "SHARD_UNAVAILABLE";
  }
  return "UNKNOWN";
}

util::Status wire_code_to_status(WireCode code, const std::string& message) {
  switch (code) {
    case WireCode::kOk:
      return Status::ok();
    case WireCode::kDeadlineExceeded:
      return Status::deadline_exceeded(message);
    case WireCode::kCancelled:
      return Status::cancelled(message);
    case WireCode::kOverloaded:
    case WireCode::kShuttingDown:
    case WireCode::kShardUnavailable:
      // Retryable: the shard may come back, or a re-resolve may route the
      // id to its promoted standby.
      return Status::unavailable(message);
    case WireCode::kInvalidArgument:
    case WireCode::kMalformed:
    case WireCode::kUnsupportedType:
      return Status::invalid_argument(message);
    case WireCode::kInternal:
      return Status::internal(message);
    case WireCode::kUnknownDevice:
      // NOT retryable: the id is wrong (or revoked), and retrying the same
      // id can only get the same answer.
      return Status::not_found(message);
  }
  return Status::internal(message);
}

std::vector<std::uint8_t> encode_frame(
    MessageType type, std::uint64_t request_id, std::uint64_t device_id,
    std::uint32_t budget_ms, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayload) {
    // A frame the peer is guaranteed to reject as unparseable (oversized
    // length, or a silently truncated u32 beyond 4 GiB) desynchronises the
    // stream and drops the connection.  Degrade to a typed error carrying
    // the same request id so the sender fails loudly instead.
    ErrorReply err;
    err.code = WireCode::kInternal;
    err.message = std::string(message_type_name(type)) +
                  " payload exceeds frame limit";
    return encode_frame(MessageType::kErrorReply, request_id, device_id,
                        budget_ms, encode_error_reply(err));
  }
  Writer w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(request_id);
  w.u64(device_id);
  w.u32(budget_ms);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload.data(), payload.size());
  return w.take();
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t size,
                          Frame* out, std::size_t* consumed) {
  if (size < kHeaderSize) return DecodeResult::kNeedMore;
  Reader r(data, kHeaderSize);
  std::uint32_t magic = 0, payload_len = 0;
  std::uint16_t version = 0, type_raw = 0;
  std::uint64_t request_id = 0, device_id = 0;
  std::uint32_t budget_ms = 0;
  r.u32(&magic);
  r.u16(&version);
  r.u16(&type_raw);
  r.u64(&request_id);
  r.u64(&device_id);
  r.u32(&budget_ms);
  r.u32(&payload_len);
  if (magic != kWireMagic || version != kWireVersion ||
      payload_len > kMaxPayload)
    return DecodeResult::kMalformed;
  const std::size_t total = kHeaderSize + payload_len;
  if (size < total) return DecodeResult::kNeedMore;
  out->version = version;
  out->type = static_cast<MessageType>(type_raw);
  out->request_id = request_id;
  out->device_id = device_id;
  out->budget_ms = budget_ms;
  out->payload.assign(data + kHeaderSize, data + total);
  *consumed = total;
  return DecodeResult::kOk;
}

util::Status read_frame(int fd, Frame* out, const util::Deadline& deadline) {
  std::vector<std::uint8_t> buf(kHeaderSize);
  if (Status s = recv_exact(fd, buf.data(), buf.size(), deadline);
      !s.is_ok())
    return s;
  // Peek the payload length out of the fixed header so we know how many
  // more bytes to read; full validation happens in decode_frame below.
  Reader r(buf.data(), buf.size());
  std::uint32_t magic = 0, payload_len = 0, budget = 0;
  std::uint16_t version = 0, type_raw = 0;
  std::uint64_t reply_id = 0, reply_device = 0;
  r.u32(&magic);
  r.u16(&version);
  r.u16(&type_raw);
  r.u64(&reply_id);
  r.u64(&reply_device);
  r.u32(&budget);
  r.u32(&payload_len);
  if (magic != kWireMagic || version != kWireVersion ||
      payload_len > kMaxPayload)
    return Status::internal("peer sent an unparseable frame header");
  buf.resize(kHeaderSize + payload_len);
  if (payload_len > 0) {
    if (Status s =
            recv_exact(fd, buf.data() + kHeaderSize, payload_len, deadline);
        !s.is_ok())
      return s;
  }
  std::size_t consumed = 0;
  if (decode_frame(buf.data(), buf.size(), out, &consumed) !=
      DecodeResult::kOk)
    return Status::internal("peer sent an unparseable frame");
  return Status::ok();
}

// --- typed payloads -------------------------------------------------------

std::vector<std::uint8_t> encode_error_reply(const ErrorReply& e) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(e.code));
  w.str(e.message);
  return w.take();
}

util::Status decode_error_reply(const std::vector<std::uint8_t>& payload,
                                ErrorReply* out) {
  Reader r(payload.data(), payload.size());
  std::uint16_t code = 0;
  if (!r.u16(&code) ||
      code > static_cast<std::uint16_t>(WireCode::kShardUnavailable) ||
      !r.str(&out->message))
    return malformed("error reply");
  out->code = static_cast<WireCode>(code);
  return finish(r, "error reply");
}

std::vector<std::uint8_t> encode_ping_request(std::uint32_t delay_ms) {
  Writer w;
  w.u32(delay_ms);
  return w.take();
}

util::Status decode_ping_request(const std::vector<std::uint8_t>& payload,
                                 std::uint32_t* delay_ms) {
  Reader r(payload.data(), payload.size());
  if (!r.u32(delay_ms)) return malformed("ping request");
  return finish(r, "ping request");
}

std::vector<std::uint8_t> encode_ping_reply(const HealthInfo& h) {
  Writer w;
  w.u32(h.inflight);
  w.u32(h.max_inflight);
  w.u8(h.draining);
  w.u64(h.requests_served);
  w.u64(h.connections_accepted);
  w.u64(h.device_count);
  w.u64(h.wal_epoch);
  w.u64(h.wal_offset);
  return w.take();
}

util::Status decode_ping_reply(const std::vector<std::uint8_t>& payload,
                               HealthInfo* out) {
  *out = HealthInfo{};
  if (payload.empty()) return Status::ok();  // pre-health servers
  Reader r(payload.data(), payload.size());
  if (!r.u32(&out->inflight) || !r.u32(&out->max_inflight) ||
      !r.u8(&out->draining) || !r.u64(&out->requests_served) ||
      !r.u64(&out->connections_accepted))
    return malformed("ping reply");
  // Pre-fleet servers stop here; the fleet fields default to zero.
  if (r.exhausted()) return Status::ok();
  if (!r.u64(&out->device_count) || !r.u64(&out->wal_epoch) ||
      !r.u64(&out->wal_offset))
    return malformed("ping reply");
  return finish(r, "ping reply");
}

std::vector<std::uint8_t> encode_predict_request(const Challenge& c) {
  Writer w;
  protocol::codec::encode_challenge(w, c);
  return w.take();
}

util::Status decode_predict_request(const std::vector<std::uint8_t>& payload,
                                    Challenge* out) {
  Reader r(payload.data(), payload.size());
  if (Status s = protocol::codec::decode_challenge(r, out); !s.is_ok())
    return s;
  return finish(r, "predict request");
}

std::vector<std::uint8_t> encode_predict_reply(
    const SimulationModel::Prediction& p) {
  Writer w;
  protocol::codec::encode_prediction(w, p);
  return w.take();
}

util::Status decode_predict_reply(const std::vector<std::uint8_t>& payload,
                                  SimulationModel::Prediction* out) {
  Reader r(payload.data(), payload.size());
  if (Status s = protocol::codec::decode_prediction(r, out); !s.is_ok())
    return s;
  return finish(r, "predict reply");
}

std::vector<std::uint8_t> encode_verify_request(
    const Challenge& c, const protocol::ProverReport& report) {
  Writer w;
  protocol::codec::encode_challenge(w, c);
  protocol::codec::encode_prover_report(w, report);
  return w.take();
}

util::Status decode_verify_request(const std::vector<std::uint8_t>& payload,
                                   Challenge* c,
                                   protocol::ProverReport* report) {
  Reader r(payload.data(), payload.size());
  if (Status s = protocol::codec::decode_challenge(r, c); !s.is_ok())
    return s;
  if (Status s = protocol::codec::decode_prover_report(r, report);
      !s.is_ok())
    return s;
  return finish(r, "verify request");
}

std::vector<std::uint8_t> encode_verify_reply(
    const protocol::AuthenticationResult& res) {
  Writer w;
  protocol::codec::encode_auth_result(w, res);
  return w.take();
}

util::Status decode_verify_reply(const std::vector<std::uint8_t>& payload,
                                 protocol::AuthenticationResult* out) {
  Reader r(payload.data(), payload.size());
  if (Status s = protocol::codec::decode_auth_result(r, out); !s.is_ok())
    return s;
  return finish(r, "verify reply");
}

std::vector<std::uint8_t> encode_verify_batch_request(
    const std::vector<Challenge>& challenges,
    const std::vector<protocol::ProverReport>& reports) {
  // Bounded by BOTH vectors: a mismatched caller gets the common prefix,
  // not an out-of-bounds read.
  const std::size_t n = std::min(challenges.size(), reports.size());
  Writer w;
  w.u32(static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    protocol::codec::encode_challenge(w, challenges[i]);
    protocol::codec::encode_prover_report(w, reports[i]);
  }
  return w.take();
}

util::Status decode_verify_batch_request(
    const std::vector<std::uint8_t>& payload,
    std::vector<Challenge>* challenges,
    std::vector<protocol::ProverReport>* reports) {
  Reader r(payload.data(), payload.size());
  std::uint32_t count = 0;
  if (!r.u32(&count)) return malformed("verify batch request");
  // An item is at least ~52 bytes (12-byte minimal challenge + 40-byte
  // minimal report); 52 defeats forged counts without being tight.
  if (static_cast<std::size_t>(count) > r.remaining() / 52)
    return malformed("verify batch count");
  challenges->clear();
  reports->clear();
  challenges->reserve(count);
  reports->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Challenge c;
    protocol::ProverReport report;
    if (Status s = protocol::codec::decode_challenge(r, &c); !s.is_ok())
      return s;
    if (Status s = protocol::codec::decode_prover_report(r, &report);
        !s.is_ok())
      return s;
    challenges->push_back(std::move(c));
    reports->push_back(std::move(report));
  }
  return finish(r, "verify batch request");
}

std::vector<std::uint8_t> encode_verify_batch_reply(
    const std::vector<protocol::AuthenticationResult>& results) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const auto& res : results) protocol::codec::encode_auth_result(w, res);
  return w.take();
}

util::Status decode_verify_batch_reply(
    const std::vector<std::uint8_t>& payload,
    std::vector<protocol::AuthenticationResult>* out) {
  Reader r(payload.data(), payload.size());
  std::uint32_t count = 0;
  if (!r.u32(&count) ||
      static_cast<std::size_t>(count) > r.remaining() / 8)
    return malformed("verify batch reply");
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    protocol::AuthenticationResult res;
    if (Status s = protocol::codec::decode_auth_result(r, &res); !s.is_ok())
      return s;
    out->push_back(std::move(res));
  }
  return finish(r, "verify batch reply");
}

std::vector<std::uint8_t> encode_challenge_request() { return {}; }

util::Status decode_challenge_request(
    const std::vector<std::uint8_t>& payload) {
  if (!payload.empty()) return malformed("challenge request");
  return Status::ok();
}

std::vector<std::uint8_t> encode_challenge_reply(const ChallengeGrant& g) {
  Writer w;
  protocol::codec::encode_challenge(w, g.challenge);
  w.u32(g.chain_length);
  w.u64(g.nonce);
  w.f64(g.deadline_seconds);
  return w.take();
}

util::Status decode_challenge_reply(const std::vector<std::uint8_t>& payload,
                                    ChallengeGrant* out) {
  Reader r(payload.data(), payload.size());
  if (Status s = protocol::codec::decode_challenge(r, &out->challenge);
      !s.is_ok())
    return s;
  if (!r.u32(&out->chain_length) || out->chain_length == 0 ||
      !r.u64(&out->nonce) || !r.f64(&out->deadline_seconds))
    return malformed("challenge reply");
  return finish(r, "challenge reply");
}

std::vector<std::uint8_t> encode_chained_auth_request(
    const ChainedAuthRequest& req) {
  Writer w;
  protocol::codec::encode_challenge(w, req.grant.challenge);
  w.u32(req.grant.chain_length);
  w.u64(req.grant.nonce);
  w.f64(req.grant.deadline_seconds);
  protocol::codec::encode_chained_report(w, req.report);
  return w.take();
}

util::Status decode_chained_auth_request(
    const std::vector<std::uint8_t>& payload, ChainedAuthRequest* out) {
  Reader r(payload.data(), payload.size());
  if (Status s =
          protocol::codec::decode_challenge(r, &out->grant.challenge);
      !s.is_ok())
    return s;
  if (!r.u32(&out->grant.chain_length) || out->grant.chain_length == 0 ||
      !r.u64(&out->grant.nonce) || !r.f64(&out->grant.deadline_seconds))
    return malformed("chained auth grant");
  if (Status s = protocol::codec::decode_chained_report(r, &out->report);
      !s.is_ok())
    return s;
  return finish(r, "chained auth request");
}

std::vector<std::uint8_t> encode_chained_auth_reply(
    const protocol::ChainedVerifyResult& res) {
  Writer w;
  protocol::codec::encode_chained_result(w, res);
  return w.take();
}

util::Status decode_chained_auth_reply(
    const std::vector<std::uint8_t>& payload,
    protocol::ChainedVerifyResult* out) {
  Reader r(payload.data(), payload.size());
  if (Status s = protocol::codec::decode_chained_result(r, out); !s.is_ok())
    return s;
  return finish(r, "chained auth reply");
}

// --- fleet payloads -------------------------------------------------------

std::vector<std::uint8_t> encode_enroll_request(const EnrollRequestBody& e) {
  Writer w;
  w.u32(e.node_count);
  w.u32(e.grid_size);
  w.u64(e.fabrication_seed);
  w.str(e.label);
  w.u8(e.backend);
  return w.take();
}

util::Status decode_enroll_request(const std::vector<std::uint8_t>& payload,
                                   EnrollRequestBody* out) {
  Reader r(payload.data(), payload.size());
  if (!r.u32(&out->node_count) || !r.u32(&out->grid_size) ||
      !r.u64(&out->fabrication_seed) || !r.str(&out->label))
    return malformed("enroll request");
  // Optional trailing backend byte (same evolution pattern as ping_reply):
  // a v1 frame ends after the label and means max-flow.
  out->backend = 1;
  if (r.remaining() > 0) {
    if (!r.u8(&out->backend) || out->backend == 0)
      return malformed("enroll request backend");
  }
  // Geometry sanity.  Max-flow mirrors registry::EnrollRequest validation,
  // so a forged request never reaches the fabricator; other backends use
  // different geometry units, so the wire only rejects zeros and leaves
  // full validation to the registry's backend dispatch.
  if (out->backend == 1) {
    if (out->node_count < 2 || out->grid_size == 0 ||
        out->grid_size > out->node_count)
      return malformed("enroll request geometry");
  } else if (out->node_count == 0 || out->grid_size == 0) {
    return malformed("enroll request geometry");
  }
  return finish(r, "enroll request");
}

std::vector<std::uint8_t> encode_enroll_reply(const EnrollReplyBody& e) {
  Writer w;
  w.u64(e.device_id);
  return w.take();
}

util::Status decode_enroll_reply(const std::vector<std::uint8_t>& payload,
                                 EnrollReplyBody* out) {
  Reader r(payload.data(), payload.size());
  if (!r.u64(&out->device_id) || out->device_id == 0)
    return malformed("enroll reply");
  return finish(r, "enroll reply");
}

std::vector<std::uint8_t> encode_admin_request(const AdminRequestBody& a) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(a.op));
  w.str(a.shard);
  w.str(a.host);
  w.u16(a.port);
  return w.take();
}

util::Status decode_admin_request(const std::vector<std::uint8_t>& payload,
                                  AdminRequestBody* out) {
  Reader r(payload.data(), payload.size());
  std::uint8_t op = 0;
  if (!r.u8(&op) ||
      op < static_cast<std::uint8_t>(AdminOp::kStatus) ||
      op > static_cast<std::uint8_t>(AdminOp::kRemoveShard) ||
      !r.str(&out->shard) || !r.str(&out->host) || !r.u16(&out->port))
    return malformed("admin request");
  out->op = static_cast<AdminOp>(op);
  return finish(r, "admin request");
}

std::vector<std::uint8_t> encode_admin_reply(const AdminReplyBody& a) {
  Writer w;
  w.u8(a.ok);
  w.str(a.message);
  w.u32(static_cast<std::uint32_t>(a.shards.size()));
  for (const ShardStatus& s : a.shards) {
    w.str(s.name);
    w.str(s.host);
    w.u16(s.port);
    w.u8(s.state);
    w.u8(s.draining);
    w.u64(s.inflight);
    w.u64(s.pinned_sessions);
    w.u64(s.forwarded);
    w.u64(s.device_count);
    w.u64(s.wal_epoch);
    w.u64(s.wal_offset);
  }
  return w.take();
}

util::Status decode_admin_reply(const std::vector<std::uint8_t>& payload,
                                AdminReplyBody* out) {
  Reader r(payload.data(), payload.size());
  std::uint32_t count = 0;
  if (!r.u8(&out->ok) || !r.str(&out->message) || !r.u32(&count))
    return malformed("admin reply");
  // A shard entry is at least 60 bytes (three length-prefixed strings of
  // 4 bytes each + the fixed fields); defeats forged counts.
  if (static_cast<std::size_t>(count) > r.remaining() / 60)
    return malformed("admin reply shard count");
  out->shards.clear();
  out->shards.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ShardStatus s;
    if (!r.str(&s.name) || !r.str(&s.host) || !r.u16(&s.port) ||
        !r.u8(&s.state) || !r.u8(&s.draining) || !r.u64(&s.inflight) ||
        !r.u64(&s.pinned_sessions) || !r.u64(&s.forwarded) ||
        !r.u64(&s.device_count) || !r.u64(&s.wal_epoch) ||
        !r.u64(&s.wal_offset))
      return malformed("admin reply shard");
    out->shards.push_back(std::move(s));
  }
  return finish(r, "admin reply");
}

std::vector<std::uint8_t> encode_wal_fetch_request(
    const WalFetchRequestBody& f) {
  Writer w;
  w.u64(f.epoch);
  w.u64(f.offset);
  w.u32(f.max_bytes);
  return w.take();
}

util::Status decode_wal_fetch_request(
    const std::vector<std::uint8_t>& payload, WalFetchRequestBody* out) {
  Reader r(payload.data(), payload.size());
  if (!r.u64(&out->epoch) || !r.u64(&out->offset) || !r.u32(&out->max_bytes))
    return malformed("wal fetch request");
  return finish(r, "wal fetch request");
}

std::vector<std::uint8_t> encode_wal_segment_reply(const WalSegmentBody& s) {
  Writer w;
  w.u8(s.bootstrap);
  w.u64(s.epoch);
  w.u64(s.next_offset);
  w.u32(static_cast<std::uint32_t>(s.bytes.size()));
  w.raw(s.bytes.data(), s.bytes.size());
  return w.take();
}

util::Status decode_wal_segment_reply(
    const std::vector<std::uint8_t>& payload, WalSegmentBody* out) {
  Reader r(payload.data(), payload.size());
  std::uint32_t len = 0;
  if (!r.u8(&out->bootstrap) || out->bootstrap > 1 || !r.u64(&out->epoch) ||
      !r.u64(&out->next_offset) || !r.u32(&len) || len != r.remaining())
    return malformed("wal segment reply");
  const std::uint8_t* tail = payload.data() + (payload.size() - len);
  out->bytes.assign(tail, tail + len);
  return Status::ok();
}

std::vector<std::uint8_t> encode_redirect_reply(const RedirectReplyBody& rr) {
  Writer w;
  w.str(rr.host);
  w.u16(rr.port);
  w.str(rr.shard);
  w.str(rr.message);
  return w.take();
}

util::Status decode_redirect_reply(const std::vector<std::uint8_t>& payload,
                                   RedirectReplyBody* out) {
  Reader r(payload.data(), payload.size());
  if (!r.str(&out->host) || !r.u16(&out->port) || out->port == 0 ||
      out->host.empty() || !r.str(&out->shard) || !r.str(&out->message))
    return malformed("redirect reply");
  return finish(r, "redirect reply");
}

}  // namespace ppuf::net
