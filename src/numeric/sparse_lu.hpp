// Sparse LU with a one-time symbolic analysis and a fast numeric-only
// refactorisation — the linear core behind the circuit solvers' Newton
// iterations.
//
// The split mirrors how SPICE-class simulators amortise factorisation cost:
//
//   factorize()    full Gilbert–Peierls left-looking LU with partial
//                  pivoting, after a minimum-degree column preordering of
//                  the symmetrised pattern (hubs eliminate last, which is
//                  what keeps fill linear-ish on MNA matrices).  Besides
//                  the factors it records the *symbolic* outcome — the fill
//                  pattern of L and U, the pivot and column orders, and the
//                  CSR→CSC traversal of the input pattern — as an
//                  immutable, shareable object.
//   refactorize()  numeric-only replay for a matrix with the SAME pattern:
//                  no searching, no pivoting decisions, no allocation —
//                  just the floating-point work.  This is every Newton
//                  iteration after the first, and (via a shared Symbolic)
//                  every same-topology netlist after the first.
//
// Pivots are fixed at factorize() time, so refactorize() guards against
// numerical degradation: a pivot that collapses relative to its column
// returns a typed kUnavailable status and the caller re-runs factorize()
// (fresh pivot order) — never a crash, never a silent bad factor.
//
// All failure modes are reported through util::Status (the project's error
// ladder): kInvalidArgument for singular/ill-posed inputs, kUnavailable for
// a recoverable pivot degradation, std::invalid_argument only for caller
// bugs (shape mismatches).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "numeric/sparse.hpp"
#include "util/status.hpp"

namespace ppuf::numeric {

class SparseLu {
 public:
  /// Immutable symbolic analysis: pattern of A, pivot order, and fill
  /// pattern of the factors.  Safe to share across threads and across
  /// SparseLu instances factoring different same-pattern matrices (each
  /// instance keeps its own numeric values).
  struct Symbolic {
    std::size_t n = 0;

    // Pattern of the analysed matrix (CSR), used to validate reuse.
    std::vector<std::size_t> a_row_ptr;
    std::vector<std::size_t> a_col_idx;
    std::uint64_t a_pattern_hash = 0;

    // Column-major traversal of A: column j's entries are
    // [acol_ptr[j], acol_ptr[j+1]) with original row ids in arow_idx and
    // the index into the CSR value array in a_slot.
    std::vector<std::size_t> acol_ptr;
    std::vector<std::size_t> arow_idx;
    std::vector<std::size_t> a_slot;

    // L (unit lower, diagonal implicit) and U (upper, diagonal stored
    // last per column), both CSC with row indices in pivot space,
    // ascending within a column.
    std::vector<std::size_t> lcol_ptr;
    std::vector<std::size_t> lrow_idx;
    std::vector<std::size_t> ucol_ptr;
    std::vector<std::size_t> urow_idx;

    // Row permutation: pinv[original_row] = pivot position;
    // perm[pivot position] = original_row.
    std::vector<std::size_t> pinv;
    std::vector<std::size_t> perm;

    // Fill-reducing column elimination order (minimum degree on the
    // symmetrised pattern): step j eliminates original column colperm[j].
    // High-degree hub columns — e.g. the bar nodes of a flattened crossbar
    // MNA system — are driven to the end, where their fill is cheap.
    std::vector<std::size_t> colperm;

    std::size_t factor_nnz() const {
      return lrow_idx.size() + urow_idx.size();
    }
  };

  SparseLu() = default;

  /// Full factorisation of a square sparse matrix: symbolic analysis +
  /// numeric factors.  kInvalidArgument when structurally or numerically
  /// singular.  On success symbolic() is (re)populated.
  util::Status factorize(const SparseMatrix& a);

  /// Numeric-only refactorisation against the held symbolic analysis.
  /// kInvalidArgument if no symbolic is held or the pattern differs;
  /// kUnavailable when a fixed pivot degrades (retry with factorize()).
  util::Status refactorize(const SparseMatrix& a);

  /// Refactorise using an externally shared symbolic analysis (e.g. from a
  /// circuit::SymbolicCache).  Adopts `symbolic` on success.
  util::Status refactorize(const SparseMatrix& a,
                           std::shared_ptr<const Symbolic> symbolic);

  /// The held analysis (null until the first successful factorize()).
  std::shared_ptr<const Symbolic> symbolic() const { return sym_; }

  /// True when the instance holds a usable factorisation.
  bool ok() const { return factored_; }

  std::size_t size() const { return sym_ ? sym_->n : 0; }
  std::size_t factor_nnz() const { return sym_ ? sym_->factor_nnz() : 0; }

  /// Solve A x = b.  kInvalidArgument when not factored or sizes mismatch.
  util::Status solve(std::span<const double> b, Vector* x) const;

  /// Destructive solve: overwrites `bx` with the solution.  Same statuses.
  util::Status solve_in_place(std::span<double> bx) const;

 private:
  util::Status refactor_with(const SparseMatrix& a, const Symbolic& sym,
                             std::vector<double>* lval,
                             std::vector<double>* uval) const;

  std::shared_ptr<const Symbolic> sym_;
  std::vector<double> lval_;  // values matching sym_->lrow_idx
  std::vector<double> uval_;  // values matching sym_->urow_idx
  bool factored_ = false;
  // Scratch reused across refactorisations (size n, zeroed between uses).
  mutable std::vector<double> work_;
};

}  // namespace ppuf::numeric
