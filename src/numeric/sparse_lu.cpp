#include "numeric/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>

namespace ppuf::numeric {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
/// Absolute floor below which a pivot counts as numerically zero (matches
/// the dense LuDecomposition threshold).
constexpr double kTinyPivot = 1e-300;
/// A replayed pivot smaller than this fraction of its column's magnitude
/// has degraded past what the frozen pivot order can support; the caller
/// should re-run factorize() for a fresh order.
constexpr double kPivotDegradation = 1e-10;

/// Minimum-degree ordering on the symmetrised pattern of A (classic
/// elimination-graph form: eliminate the minimum-degree vertex, turn its
/// neighbourhood into a clique, repeat).  Runs once per topology — the
/// result lives in the shared Symbolic — so the simple O(n^2) selection
/// scan is fine.  For MNA matrices this pushes hub nodes (crossbar bars,
/// supply rails) to the end of the elimination, where their dense trailing
/// block is small; without it, eliminating a hub first fills in its whole
/// neighbourhood and the factor degenerates toward dense.
std::vector<std::size_t> min_degree_order(
    std::size_t n, const std::vector<std::size_t>& row_ptr,
    const std::vector<std::size_t>& col_idx) {
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      const std::size_t c = col_idx[p];
      if (c == r) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  std::vector<char> done(n, 0);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> clique, merged;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = kNone;
    std::size_t best_deg = static_cast<std::size_t>(-1);
    for (std::size_t v = 0; v < n; ++v) {
      if (!done[v] && adj[v].size() < best_deg) {
        best_deg = adj[v].size();
        best = v;
      }
    }
    done[best] = 1;
    order.push_back(best);

    // Eliminating `best` joins its (live) neighbours into a clique; each
    // neighbour's list also drops `best`, so lists never hold eliminated
    // vertices.
    clique = adj[best];
    for (const std::size_t u : clique) {
      merged.clear();
      merged.reserve(adj[u].size() + clique.size());
      std::set_union(adj[u].begin(), adj[u].end(), clique.begin(),
                     clique.end(), std::back_inserter(merged));
      merged.erase(std::remove_if(merged.begin(), merged.end(),
                                  [&](std::size_t w) {
                                    return w == u || done[w];
                                  }),
                   merged.end());
      adj[u].swap(merged);
    }
    adj[best].clear();
    adj[best].shrink_to_fit();
  }
  return order;
}

}  // namespace

util::Status SparseLu::factorize(const SparseMatrix& a) {
  factored_ = false;
  if (a.rows() == 0 || a.cols() == 0)
    return util::Status::invalid_argument("SparseLu: empty matrix");
  if (a.rows() != a.cols())
    return util::Status::invalid_argument("SparseLu: matrix not square");
  const std::size_t n = a.rows();

  auto sym = std::make_shared<Symbolic>();
  sym->n = n;
  sym->a_row_ptr.assign(a.row_ptr().begin(), a.row_ptr().end());
  sym->a_col_idx.assign(a.col_idx().begin(), a.col_idx().end());
  sym->a_pattern_hash = a.pattern_hash();

  // Column-major traversal of the CSR input (counting sort by column).
  sym->acol_ptr.assign(n + 1, 0);
  for (const std::size_t c : a.col_idx()) ++sym->acol_ptr[c + 1];
  for (std::size_t j = 0; j < n; ++j) sym->acol_ptr[j + 1] += sym->acol_ptr[j];
  sym->arow_idx.assign(a.nnz(), 0);
  sym->a_slot.assign(a.nnz(), 0);
  {
    std::vector<std::size_t> next(sym->acol_ptr.begin(),
                                  sym->acol_ptr.end() - 1);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
        const std::size_t c = a.col_idx()[k];
        sym->arow_idx[next[c]] = r;
        sym->a_slot[next[c]] = k;
        ++next[c];
      }
    }
  }

  sym->pinv.assign(n, kNone);
  sym->perm.assign(n, kNone);
  sym->colperm = min_degree_order(n, sym->a_row_ptr, sym->a_col_idx);

  // Working factors: per-column entry lists.  L keeps ORIGINAL row ids
  // until the permutation is complete; U keeps pivot positions (ascending
  // by construction of the worklist).
  std::vector<std::vector<std::pair<std::size_t, double>>> lcols(n);
  std::vector<std::vector<std::pair<std::size_t, double>>> ucols(n);
  std::vector<double> udiag(n, 0.0);

  std::vector<double> x(n, 0.0);        // dense accumulator, orig-row space
  std::vector<char> marked(n, 0);
  std::vector<std::size_t> touched;
  touched.reserve(64);
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      pivots_due;

  for (std::size_t j = 0; j < n; ++j) {
    // Scatter A(:, c), the column the fill-reducing order puts at step j.
    const std::size_t c = sym->colperm[j];
    for (std::size_t p = sym->acol_ptr[c]; p < sym->acol_ptr[c + 1]; ++p) {
      const std::size_t r = sym->arow_idx[p];
      x[r] += a.values()[sym->a_slot[p]];
      if (!marked[r]) {
        marked[r] = 1;
        touched.push_back(r);
        if (sym->pinv[r] != kNone) pivots_due.push(sym->pinv[r]);
      }
    }

    // Left-looking elimination in ascending pivot order.  Rows stored in
    // L(:, k) were uneliminated at step k, so any pivot they later receive
    // is > k — the worklist never needs to revisit an earlier pivot.
    while (!pivots_due.empty()) {
      const std::size_t k = pivots_due.top();
      pivots_due.pop();
      const double xk = x[sym->perm[k]];
      ucols[j].emplace_back(k, xk);
      for (const auto& [r, lv] : lcols[k]) {
        if (!marked[r]) {
          marked[r] = 1;
          touched.push_back(r);
          if (sym->pinv[r] != kNone) pivots_due.push(sym->pinv[r]);
        }
        x[r] -= lv * xk;
      }
    }

    // Partial pivot among the uneliminated rows of the column (original
    // pattern plus fill); deterministic tie-break on the row id.
    std::size_t best = kNone;
    double best_mag = -1.0;
    for (const std::size_t r : touched) {
      if (sym->pinv[r] != kNone) continue;
      const double mag = std::abs(x[r]);
      if (mag > best_mag || (mag == best_mag && best != kNone && r < best)) {
        best_mag = mag;
        best = r;
      }
    }
    if (best == kNone || best_mag < kTinyPivot) {
      for (const std::size_t r : touched) {
        x[r] = 0.0;
        marked[r] = 0;
      }
      return util::Status::invalid_argument(
          "SparseLu: singular matrix at column " + std::to_string(c));
    }
    sym->pinv[best] = j;
    sym->perm[j] = best;
    udiag[j] = x[best];
    const double inv_piv = 1.0 / x[best];
    for (const std::size_t r : touched) {
      if (sym->pinv[r] == kNone)  // keep structural zeros: stable pattern
        lcols[j].emplace_back(r, x[r] * inv_piv);
      x[r] = 0.0;
      marked[r] = 0;
    }
    touched.clear();
  }

  // Freeze the factors as CSC in pivot space, ascending row ids per
  // column; U's diagonal goes last in its column.
  sym->lcol_ptr.assign(n + 1, 0);
  sym->ucol_ptr.assign(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    sym->lcol_ptr[j + 1] = sym->lcol_ptr[j] + lcols[j].size();
    sym->ucol_ptr[j + 1] = sym->ucol_ptr[j] + ucols[j].size() + 1;
  }
  sym->lrow_idx.assign(sym->lcol_ptr[n], 0);
  sym->urow_idx.assign(sym->ucol_ptr[n], 0);
  lval_.assign(sym->lcol_ptr[n], 0.0);
  uval_.assign(sym->ucol_ptr[n], 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    auto& lc = lcols[j];
    for (auto& [r, v] : lc) r = sym->pinv[r];  // to pivot space
    std::sort(lc.begin(), lc.end());
    std::size_t q = sym->lcol_ptr[j];
    for (const auto& [r, v] : lc) {
      sym->lrow_idx[q] = r;
      lval_[q] = v;
      ++q;
    }
    q = sym->ucol_ptr[j];
    for (const auto& [k, v] : ucols[j]) {  // already ascending
      sym->urow_idx[q] = k;
      uval_[q] = v;
      ++q;
    }
    sym->urow_idx[q] = j;
    uval_[q] = udiag[j];
  }

  sym_ = std::move(sym);
  factored_ = true;
  return util::Status::ok();
}

util::Status SparseLu::refactor_with(const SparseMatrix& a,
                                     const Symbolic& sym,
                                     std::vector<double>* lval,
                                     std::vector<double>* uval) const {
  if (a.rows() != sym.n || a.cols() != sym.n ||
      a.pattern_hash() != sym.a_pattern_hash ||
      !std::equal(a.row_ptr().begin(), a.row_ptr().end(),
                  sym.a_row_ptr.begin(), sym.a_row_ptr.end()) ||
      !std::equal(a.col_idx().begin(), a.col_idx().end(),
                  sym.a_col_idx.begin(), sym.a_col_idx.end())) {
    return util::Status::invalid_argument(
        "SparseLu::refactorize: pattern mismatch");
  }
  lval->assign(sym.lrow_idx.size(), 0.0);
  uval->assign(sym.urow_idx.size(), 0.0);
  work_.assign(sym.n, 0.0);
  std::vector<double>& x = work_;  // pivot-space accumulator

  for (std::size_t j = 0; j < sym.n; ++j) {
    const std::size_t c = sym.colperm[j];
    for (std::size_t p = sym.acol_ptr[c]; p < sym.acol_ptr[c + 1]; ++p)
      x[sym.pinv[sym.arow_idx[p]]] = a.values()[sym.a_slot[p]];

    const std::size_t ubegin = sym.ucol_ptr[j];
    const std::size_t udiag_at = sym.ucol_ptr[j + 1] - 1;
    for (std::size_t p = ubegin; p < udiag_at; ++p) {
      const std::size_t k = sym.urow_idx[p];
      const double xk = x[k];
      (*uval)[p] = xk;
      if (xk != 0.0) {
        for (std::size_t q = sym.lcol_ptr[k]; q < sym.lcol_ptr[k + 1]; ++q)
          x[sym.lrow_idx[q]] -= (*lval)[q] * xk;
      }
    }

    const double piv = x[j];
    double col_max = std::abs(piv);
    for (std::size_t q = sym.lcol_ptr[j]; q < sym.lcol_ptr[j + 1]; ++q)
      col_max = std::max(col_max, std::abs(x[sym.lrow_idx[q]]));
    if (std::abs(piv) < kTinyPivot ||
        std::abs(piv) < kPivotDegradation * col_max) {
      // Clean the accumulator before reporting so a retry starts fresh.
      for (std::size_t p = ubegin; p <= udiag_at; ++p)
        x[sym.urow_idx[p]] = 0.0;
      for (std::size_t q = sym.lcol_ptr[j]; q < sym.lcol_ptr[j + 1]; ++q)
        x[sym.lrow_idx[q]] = 0.0;
      return util::Status::unavailable(
          "SparseLu::refactorize: pivot degraded at column " +
          std::to_string(j) + "; re-run factorize()");
    }
    (*uval)[udiag_at] = piv;
    const double inv_piv = 1.0 / piv;
    for (std::size_t q = sym.lcol_ptr[j]; q < sym.lcol_ptr[j + 1]; ++q) {
      const std::size_t r = sym.lrow_idx[q];
      (*lval)[q] = x[r] * inv_piv;
      x[r] = 0.0;
    }
    for (std::size_t p = ubegin; p <= udiag_at; ++p) x[sym.urow_idx[p]] = 0.0;
  }
  return util::Status::ok();
}

util::Status SparseLu::refactorize(const SparseMatrix& a) {
  if (!sym_) {
    return util::Status::invalid_argument(
        "SparseLu::refactorize: no symbolic analysis held (call factorize)");
  }
  factored_ = false;
  const util::Status st = refactor_with(a, *sym_, &lval_, &uval_);
  factored_ = st.is_ok();
  return st;
}

util::Status SparseLu::refactorize(const SparseMatrix& a,
                                   std::shared_ptr<const Symbolic> symbolic) {
  if (!symbolic) {
    return util::Status::invalid_argument(
        "SparseLu::refactorize: null symbolic");
  }
  factored_ = false;
  const util::Status st = refactor_with(a, *symbolic, &lval_, &uval_);
  if (st.is_ok()) {
    sym_ = std::move(symbolic);
    factored_ = true;
  }
  return st;
}

util::Status SparseLu::solve(std::span<const double> b, Vector* x) const {
  if (!factored_ || !sym_)
    return util::Status::invalid_argument("SparseLu::solve: not factored");
  if (b.size() != sym_->n || x == nullptr)
    return util::Status::invalid_argument("SparseLu::solve: size mismatch");
  const std::size_t n = sym_->n;
  // Row permutation applies to the right-hand side; the solve runs in
  // elimination (step) space, then scatters through the column order.
  work_.resize(n);
  Vector& y = work_;
  for (std::size_t j = 0; j < n; ++j) y[j] = b[sym_->perm[j]];

  // Forward substitution through unit-lower L (column-oriented).
  for (std::size_t j = 0; j < n; ++j) {
    const double xj = y[j];
    if (xj == 0.0) continue;
    for (std::size_t q = sym_->lcol_ptr[j]; q < sym_->lcol_ptr[j + 1]; ++q)
      y[sym_->lrow_idx[q]] -= lval_[q] * xj;
  }
  // Back substitution through U (diagonal last per column).
  for (std::size_t j = n; j-- > 0;) {
    const std::size_t udiag_at = sym_->ucol_ptr[j + 1] - 1;
    const double xj = y[j] / uval_[udiag_at];
    y[j] = xj;
    if (xj == 0.0) continue;
    for (std::size_t p = sym_->ucol_ptr[j]; p < udiag_at; ++p)
      y[sym_->urow_idx[p]] -= uval_[p] * xj;
  }
  // Step j solved for original unknown colperm[j].
  x->resize(n);
  for (std::size_t j = 0; j < n; ++j) (*x)[sym_->colperm[j]] = y[j];
  return util::Status::ok();
}

util::Status SparseLu::solve_in_place(std::span<double> bx) const {
  Vector out;
  const util::Status st = solve({bx.data(), bx.size()}, &out);
  if (!st.is_ok()) return st;
  std::copy(out.begin(), out.end(), bx.begin());
  return util::Status::ok();
}

}  // namespace ppuf::numeric
