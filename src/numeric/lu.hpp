// LU factorisation with partial pivoting — the workhorse behind every
// Newton step in the circuit solver.
#pragma once

#include <span>

#include "numeric/matrix.hpp"

namespace ppuf::numeric {

/// In-place LU decomposition PA = LU with partial pivoting.
/// Factor once, solve many right-hand sides.
class LuDecomposition {
 public:
  /// Factorises a square matrix; throws std::runtime_error if singular
  /// (pivot magnitude below tiny threshold).
  explicit LuDecomposition(Matrix a);

  std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b.
  Vector solve(std::span<const double> b) const;

  /// Determinant of the original matrix.
  double determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

/// One-shot convenience: solve A x = b.
Vector lu_solve(Matrix a, std::span<const double> b);

/// Destructive in-place solve: factorises `a` (clobbered, with partial
/// pivoting applied directly to `b`) and overwrites `b` with the solution.
/// No heap allocation — the fast path for small systems solved in a loop
/// (the per-iteration Newton solves).  Throws std::runtime_error when
/// singular.
void solve_in_place(Matrix& a, std::span<double> b);

}  // namespace ppuf::numeric
