// LU factorisation with partial pivoting — the workhorse behind every
// Newton step in the circuit solver.
//
// Singularity is reported through util::Status (the project's error
// ladder), never thrown: a degenerate netlist reaching a serving worker
// must surface as a typed, per-item failure, not a process-killing
// exception.  std::invalid_argument remains for caller bugs only (shape
// mismatches).
#pragma once

#include <span>

#include "numeric/matrix.hpp"
#include "util/status.hpp"

namespace ppuf::numeric {

/// In-place LU decomposition PA = LU with partial pivoting.
/// Factor once, solve many right-hand sides.
class LuDecomposition {
 public:
  /// Factorises a square matrix.  Never throws on numeric trouble: check
  /// status() / ok() before solving.  Throws std::invalid_argument only
  /// for a non-square input (a caller bug).
  explicit LuDecomposition(Matrix a);

  /// kOk, or kInvalidArgument when the matrix is singular (pivot below the
  /// tiny threshold).
  const util::Status& status() const { return status_; }
  bool ok() const { return status_.is_ok(); }

  std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b.  kInvalidArgument when the factorisation failed or
  /// sizes mismatch.
  util::Status solve(std::span<const double> b, Vector* x) const;

  /// Determinant of the original matrix (≈0 when singular).
  double determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
  util::Status status_;
};

/// One-shot convenience: solve A x = b into *x.  kInvalidArgument when
/// singular or sizes mismatch.
util::Status lu_solve(Matrix a, std::span<const double> b, Vector* x);

/// Destructive in-place solve: factorises `a` (clobbered, with partial
/// pivoting applied directly to `b`) and overwrites `b` with the solution.
/// No heap allocation — the fast path for small systems solved in a loop
/// (the per-iteration Newton solves).  kInvalidArgument when singular; `b`
/// is left in an unspecified state on failure.
util::Status solve_in_place(Matrix& a, std::span<double> b);

}  // namespace ppuf::numeric
