#include "numeric/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ppuf::numeric {

SparseMatrix SparseMatrix::from_triplets(
    std::size_t rows, std::size_t cols, std::span<const Triplet> triplets,
    std::vector<std::size_t>* slot_of_triplet) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols)
      throw std::invalid_argument("SparseMatrix::from_triplets: index out of "
                                  "range");
  }

  // Sort triplet *indices* by (row, col) so duplicate coordinates become
  // adjacent and each original triplet can be traced to its final slot.
  std::vector<std::size_t> order(triplets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Triplet& ta = triplets[a];
    const Triplet& tb = triplets[b];
    return ta.row != tb.row ? ta.row < tb.row : ta.col < tb.col;
  });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  if (slot_of_triplet != nullptr) slot_of_triplet->assign(triplets.size(), 0);

  std::size_t prev_row = npos;
  std::size_t prev_col = npos;
  for (const std::size_t idx : order) {
    const Triplet& t = triplets[idx];
    if (t.row == prev_row && t.col == prev_col) {
      m.values_.back() += t.value;  // duplicate: accumulate
    } else {
      m.col_idx_.push_back(t.col);
      m.values_.push_back(t.value);
      ++m.row_ptr_[t.row + 1];
      prev_row = t.row;
      prev_col = t.col;
    }
    if (slot_of_triplet != nullptr)
      (*slot_of_triplet)[idx] = m.values_.size() - 1;
  }
  for (std::size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense,
                                      double drop_tolerance) {
  SparseMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.row_ptr_.assign(m.rows_ + 1, 0);
  for (std::size_t r = 0; r < m.rows_; ++r) {
    for (std::size_t c = 0; c < m.cols_; ++c) {
      const double v = dense(r, c);
      if (std::abs(v) > drop_tolerance) {
        m.col_idx_.push_back(c);
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[r + 1] = m.values_.size();
  }
  return m;
}

Matrix SparseMatrix::to_dense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      dense(r, col_idx_[k]) += values_[k];
  }
  return dense;
}

void SparseMatrix::zero_values() {
  std::fill(values_.begin(), values_.end(), 0.0);
}

std::size_t SparseMatrix::find_slot(std::size_t row, std::size_t col) const {
  if (row >= rows_) return npos;
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(
                                            row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(
                                          row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return npos;
  return static_cast<std::size_t>(it - col_idx_.begin());
}

bool SparseMatrix::same_pattern(const SparseMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_;
}

std::uint64_t SparseMatrix::pattern_hash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(rows_);
  mix(cols_);
  for (const std::size_t p : row_ptr_) mix(p);
  for (const std::size_t c : col_idx_) mix(c);
  return h;
}

Vector SparseMatrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("SparseMatrix::multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      s += values_[k] * x[col_idx_[k]];
    y[r] = s;
  }
  return y;
}

}  // namespace ppuf::numeric
