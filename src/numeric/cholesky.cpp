#include "numeric/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace ppuf::numeric {

CholeskyDecomposition::CholeskyDecomposition(Matrix a) : l_(std::move(a)) {
  if (l_.rows() != l_.cols())
    throw std::invalid_argument("Cholesky: matrix not square");
  const std::size_t n = l_.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = l_(j, j);
    auto rowj = l_.row(j);
    for (std::size_t k = 0; k < j; ++k) d -= rowj[k] * rowj[k];
    if (d <= 0.0) throw std::runtime_error("Cholesky: matrix not SPD");
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = l_(i, j);
      auto rowi = l_.row(i);
      for (std::size_t k = 0; k < j; ++k) s -= rowi[k] * rowj[k];
      l_(i, j) = s * inv;
    }
  }
}

Vector CholeskyDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = size();
  if (b.size() != n)
    throw std::invalid_argument("Cholesky::solve: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    auto rowi = l_.row(i);
    for (std::size_t j = 0; j < i; ++j) s -= rowi[j] * y[j];
    y[i] = s / rowi[i];
  }
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= l_(j, i) * x[j];
    x[i] = s / l_(i, i);
  }
  return x;
}

Vector cholesky_solve(Matrix a, std::span<const double> b) {
  return CholeskyDecomposition(std::move(a)).solve(b);
}

}  // namespace ppuf::numeric
