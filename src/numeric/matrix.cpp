#include "numeric/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace ppuf::numeric {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ > 0 ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("Matrix::multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const double* rowp = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) s += rowp[c] * x[c];
    y[r] = s;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (rhs.rows() != cols_)
    throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, rhs.cols(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols(); ++c)
        out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm_inf(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace ppuf::numeric
