#include "numeric/lu.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace ppuf::numeric {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols())
    throw std::invalid_argument("LuDecomposition: matrix not square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      status_ = util::Status::invalid_argument(
          "LuDecomposition: singular matrix at column " + std::to_string(col));
      return;
    }
    if (pivot != col) {
      auto rp = lu_.row(pivot);
      auto rc = lu_.row(col);
      for (std::size_t c = 0; c < n; ++c) std::swap(rp[c], rc[c]);
      std::swap(perm_[pivot], perm_[col]);
      perm_sign_ = -perm_sign_;
    }
    // Eliminate below the pivot, storing multipliers in the L part.
    const double inv_piv = 1.0 / lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = lu_(r, col) * inv_piv;
      lu_(r, col) = f;
      if (f == 0.0) continue;
      auto rowr = lu_.row(r);
      auto rowc = lu_.row(col);
      for (std::size_t c = col + 1; c < n; ++c) rowr[c] -= f * rowc[c];
    }
  }
}

util::Status LuDecomposition::solve(std::span<const double> b,
                                    Vector* x) const {
  if (!status_.is_ok()) return status_;
  const std::size_t n = size();
  if (b.size() != n || x == nullptr)
    return util::Status::invalid_argument(
        "LuDecomposition::solve: size mismatch");
  x->resize(n);
  Vector& out = *x;
  // Apply permutation and forward-substitute through L (unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    auto rowi = lu_.row(i);
    for (std::size_t j = 0; j < i; ++j) s -= rowi[j] * out[j];
    out[i] = s;
  }
  // Back-substitute through U.
  for (std::size_t i = n; i-- > 0;) {
    double s = out[i];
    auto rowi = lu_.row(i);
    for (std::size_t j = i + 1; j < n; ++j) s -= rowi[j] * out[j];
    out[i] = s / rowi[i];
  }
  return util::Status::ok();
}

double LuDecomposition::determinant() const {
  // A failed (singular) factorisation stopped at a sub-tiny pivot; the
  // partial diagonal product is still ≈0, which is the right answer.
  double d = perm_sign_;
  for (std::size_t i = 0; i < size(); ++i) d *= lu_(i, i);
  return d;
}

util::Status lu_solve(Matrix a, std::span<const double> b, Vector* x) {
  return LuDecomposition(std::move(a)).solve(b, x);
}

util::Status solve_in_place(Matrix& a, std::span<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("solve_in_place: shape mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot, applying the row swap to b immediately so no
    // permutation array is needed.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300)
      return util::Status::invalid_argument(
          "solve_in_place: singular matrix at column " + std::to_string(col));
    if (pivot != col) {
      auto rp = a.row(pivot);
      auto rc = a.row(col);
      for (std::size_t c = col; c < n; ++c) std::swap(rp[c], rc[c]);
      std::swap(b[pivot], b[col]);
    }
    const double inv_piv = 1.0 / a(col, col);
    auto rowc = a.row(col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv_piv;
      if (f == 0.0) continue;
      auto rowr = a.row(r);
      for (std::size_t c = col + 1; c < n; ++c) rowr[c] -= f * rowc[c];
      b[r] -= f * b[col];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    auto rowi = a.row(i);
    for (std::size_t j = i + 1; j < n; ++j) s -= rowi[j] * b[j];
    b[i] = s / rowi[i];
  }
  return util::Status::ok();
}

}  // namespace ppuf::numeric
