// Compressed sparse row matrix for the circuit solvers' MNA systems.
//
// The crossbar's device-level netlists produce Jacobians whose nonzero
// pattern is fixed by the topology (a handful of entries per row), while the
// *values* change every Newton iteration.  This type is built once from
// triplets — returning a slot map so assemblers can overwrite values in
// place with no per-iteration searching — and then reused for the life of
// the netlist.  See sparse_lu.hpp for the factorisation that exploits the
// fixed pattern.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "numeric/matrix.hpp"

namespace ppuf::numeric {

/// One coordinate-format entry.  Duplicates are summed by from_triplets,
/// matching the accumulate semantics of MNA stamping.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  SparseMatrix() = default;

  /// Build from coordinate triplets (any order, duplicates summed).
  /// When `slot_of_triplet` is non-null it receives, per input triplet, the
  /// index into values() where that triplet landed — the assembler's
  /// precomputed write plan.  Throws std::invalid_argument on out-of-range
  /// indices (a caller bug, like a bad NodeId).
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::span<const Triplet> triplets,
                                    std::vector<std::size_t>* slot_of_triplet =
                                        nullptr);

  /// Dense conversion helpers (tests and the dense-oracle comparisons).
  /// Entries with |value| <= drop_tolerance are left structurally zero.
  static SparseMatrix from_dense(const Matrix& dense,
                                 double drop_tolerance = 0.0);
  Matrix to_dense() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// CSR structure: row r's entries live in [row_ptr()[r], row_ptr()[r+1]),
  /// column indices ascending within a row.
  std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  std::span<const std::size_t> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }
  std::span<double> values() { return values_; }

  /// Reset every stored value to zero (pattern untouched) — the start of a
  /// Newton iteration.
  void zero_values();

  /// Slot of entry (row, col), or npos when the entry is not in the
  /// pattern.  Binary search within the row.
  std::size_t find_slot(std::size_t row, std::size_t col) const;

  /// Structural equality (dimensions + pattern, values ignored).
  bool same_pattern(const SparseMatrix& other) const;

  /// FNV-1a hash over dimensions and pattern — cheap cache key for
  /// symbolic-analysis reuse across same-topology matrices.
  std::uint64_t pattern_hash() const;

  /// y = A x; x.size() must equal cols().
  Vector multiply(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;  // rows_ + 1
  std::vector<std::size_t> col_idx_;  // nnz
  std::vector<double> values_;        // nnz
};

}  // namespace ppuf::numeric
