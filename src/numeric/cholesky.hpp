// Cholesky factorisation for symmetric positive-definite systems — used for
// the LS-SVM kernel system (K + I/gamma) and the network Jacobian, which is
// symmetric positive definite by incremental passivity.
#pragma once

#include <span>

#include "numeric/matrix.hpp"

namespace ppuf::numeric {

/// A = L L^T for symmetric positive-definite A.
class CholeskyDecomposition {
 public:
  /// Factorises; throws std::runtime_error if A is not (numerically) SPD.
  explicit CholeskyDecomposition(Matrix a);

  std::size_t size() const { return l_.rows(); }

  Vector solve(std::span<const double> b) const;

 private:
  Matrix l_;  // lower triangular, upper part unused
};

/// One-shot convenience for SPD systems.
Vector cholesky_solve(Matrix a, std::span<const double> b);

}  // namespace ppuf::numeric
