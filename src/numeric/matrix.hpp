// Dense row-major matrix used by the Newton solver (circuit Jacobians) and
// the LS-SVM kernel systems.  Sized for the problem scales in this project
// (a few thousand unknowns at most), so simplicity beats blocking tricks.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace ppuf::numeric {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer list; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Raw row access for hot loops.
  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  void fill(double v);

  Matrix transposed() const;

  /// Matrix-vector product; x.size() must equal cols().
  Vector multiply(std::span<const double> x) const;

  /// Matrix-matrix product; rhs.rows() must equal cols().
  Matrix multiply(const Matrix& rhs) const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(std::span<const double> v);

/// Infinity norm.
double norm_inf(std::span<const double> v);

/// Dot product; sizes must match.
double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x (sizes must match).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace ppuf::numeric
