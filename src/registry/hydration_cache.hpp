// Bounded LRU of materialised devices with single-flight loading.
//
// The registry stores models as encoded blobs; serving needs them
// *materialised* — a backend::Device hydrated by the device's tagged
// backend (for max-flow, a SimulationModel plus a Verifier sized for it).
// Decoding a blob and configuring the verifier is the expensive,
// once-per-device step, and a popular device is asked for by many
// connections at once.  This cache makes that cheap and bounded:
//
//   - LRU over at most Options::max_entries materialised devices, so a
//     million-device registry serves from a working set, not from RAM
//     proportional to enrollment;
//   - single-flight: concurrent requests for the same *cold* device wait
//     on one hydration instead of decoding the same blob N times (the
//     classic cache-stampede fix);
//   - revocation-aware: every get() consults the registry first, so a
//     device revoked after being cached is evicted and refused.
//
// A HydratedDevice is heap-allocated and never moved: backend devices
// hold internal references (the max-flow Verifier references its model),
// which stay valid for exactly as long as callers hold the shared_ptr —
// including after eviction, so inflight requests finish on the instance
// they resolved.
//
// Publishes registry.hydration.* metrics through the global obs registry
// (hits / misses / single-flight waits / evictions / load-time histogram).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "backend/backend.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/authentication.hpp"
#include "registry/device_registry.hpp"
#include "util/status.hpp"

namespace ppuf::registry {

/// A device ready to serve: the backend::Device materialised from the
/// stored blob by its tagged backend.  Immutable after construction;
/// shared by reference count.
struct HydratedDevice {
  HydratedDevice(std::uint64_t id_, std::unique_ptr<backend::Device> device_,
                 ResponseCache* response_cache_ = nullptr)
      : id(id_),
        device(std::move(device_)),
        response_cache(response_cache_) {}

  HydratedDevice(const HydratedDevice&) = delete;
  HydratedDevice& operator=(const HydratedDevice&) = delete;

  const std::uint64_t id;
  const std::unique_ptr<backend::Device> device;
  /// The fleet's shared CRP response cache, attached at materialisation
  /// so every serving path that resolved this device already holds the
  /// warm plane (keyed by the device's registry id — entries never cross
  /// devices).  Non-owning; null when the deployment runs uncached.
  ResponseCache* const response_cache;
};

class HydrationCache {
 public:
  struct Options {
    std::size_t max_entries = 8;  ///< clamped to >= 1
    /// Verifier configuration, applied per device: the absolute flow
    /// tolerance is flow_tolerance_fraction * model.mean_capacity().
    double verifier_deadline_seconds = 1.0;
    double flow_tolerance_fraction = 0.10;
    unsigned verify_threads = 1;
    /// Shared device-keyed CRP cache handed to every hydrated device
    /// (non-owning, must outlive the cache); null = serve uncached.
    ResponseCache* response_cache = nullptr;
  };

  /// `registry` must outlive the cache.
  HydrationCache(const DeviceRegistry& registry, const Options& options);

  /// The materialised device, hydrating on a cold miss.  kNotFound when
  /// the id is unknown *or revoked* — the caller cannot tell the two
  /// apart, which is deliberate: a revoked id must look exactly as dead
  /// as one that never existed.
  util::Status get(std::uint64_t id,
                   std::shared_ptr<const HydratedDevice>* out);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;            ///< cold loads performed
    std::uint64_t single_flight_waits = 0;  ///< requests that joined a load
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
  };
  Stats stats() const;

  std::size_t max_entries() const { return max_entries_; }

 private:
  struct Slot {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    util::Status status;
    std::shared_ptr<const HydratedDevice> device;
  };

  const DeviceRegistry& registry_;
  Options options_;
  std::size_t max_entries_;

  mutable std::mutex mutex_;
  /// Most recently used at the front.
  std::list<std::pair<std::uint64_t, std::shared_ptr<const HydratedDevice>>>
      lru_;
  std::unordered_map<
      std::uint64_t,
      std::list<std::pair<std::uint64_t,
                          std::shared_ptr<const HydratedDevice>>>::iterator>
      index_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Slot>> inflight_;
  Stats stats_;
};

}  // namespace ppuf::registry
