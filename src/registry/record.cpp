#include "registry/record.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace ppuf::registry {

namespace {

using protocol::codec::Reader;
using protocol::codec::Writer;
using util::Status;

Status malformed(const char* what) {
  return Status::invalid_argument(std::string("malformed ") + what);
}

}  // namespace

void encode_device_entry(Writer& w, const DeviceEntry& e) {
  w.u64(e.id);
  w.u32(e.nodes);
  w.u32(e.grid);
  w.str(e.label);
  w.u8(e.revoked ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(e.model_bytes.size()));
  w.raw(e.model_bytes.data(), e.model_bytes.size());
}

util::Status decode_device_entry(Reader& r, DeviceEntry* out,
                                 backend::BackendKind kind) {
  const backend::PufBackend* impl = backend::find_backend(kind);
  if (impl == nullptr) return malformed("device entry backend");
  out->backend = kind;
  std::uint8_t revoked = 0;
  std::uint32_t model_len = 0;
  if (!r.u64(&out->id) || !r.u32(&out->nodes) || !r.u32(&out->grid) ||
      !r.str(&out->label) || !r.u8(&revoked))
    return malformed("device entry");
  if (revoked > 1) return malformed("device entry revoked flag");
  out->revoked = revoked != 0;
  if (!r.u32(&model_len) || model_len > r.remaining())
    return malformed("device entry model length");
  out->model_bytes.resize(model_len);
  for (std::uint32_t i = 0; i < model_len; ++i) {
    if (!r.u8(&out->model_bytes[i])) return malformed("device entry model");
  }
  // The blob must itself be a valid model of the tagged backend whose
  // header agrees with the entry's mirror fields — catching a mismatch
  // here, at decode time, means hydration can never materialise a model
  // for the wrong geometry (or the wrong backend).
  return impl->validate_model(out->model_bytes.data(),
                              out->model_bytes.size(), out->nodes,
                              out->grid);
}

void encode_wal_record(Writer& w, const WalRecord& record) {
  w.u8(static_cast<std::uint8_t>(record.type));
  switch (record.type) {
    case WalRecord::Type::kEnroll:
      encode_device_entry(w, record.entry);
      break;
    case WalRecord::Type::kEnrollTagged:
      w.u8(static_cast<std::uint8_t>(record.entry.backend));
      encode_device_entry(w, record.entry);
      break;
    case WalRecord::Type::kRevoke:
      w.u64(record.entry.id);
      break;
  }
}

util::Status decode_wal_record(Reader& r, WalRecord* out) {
  std::uint8_t type = 0;
  if (!r.u8(&type)) return malformed("wal record");
  switch (type) {
    case static_cast<std::uint8_t>(WalRecord::Type::kEnroll):
      out->type = WalRecord::Type::kEnroll;
      if (Status s = decode_device_entry(r, &out->entry); !s.is_ok())
        return s;
      break;
    case static_cast<std::uint8_t>(WalRecord::Type::kEnrollTagged): {
      out->type = WalRecord::Type::kEnrollTagged;
      std::uint8_t tag = 0;
      if (!r.u8(&tag)) return malformed("wal record backend");
      const auto kind = static_cast<backend::BackendKind>(tag);
      if (backend::find_backend(kind) == nullptr)
        return malformed("wal record backend");
      if (Status s = decode_device_entry(r, &out->entry, kind); !s.is_ok())
        return s;
      break;
    }
    case static_cast<std::uint8_t>(WalRecord::Type::kRevoke):
      out->type = WalRecord::Type::kRevoke;
      out->entry = DeviceEntry{};
      if (!r.u64(&out->entry.id)) return malformed("revoke record");
      break;
    default:
      return malformed("wal record type");
  }
  if (!r.exhausted()) return malformed("wal record (trailing bytes)");
  return Status::ok();
}

std::vector<std::uint8_t> frame_record(const WalRecord& record) {
  Writer body;
  encode_wal_record(body, record);
  Writer frame;
  frame.u32(kRecordMagic);
  frame.u32(static_cast<std::uint32_t>(body.bytes().size()));
  frame.u32(util::crc32c(body.bytes().data(), body.bytes().size()));
  frame.raw(body.bytes().data(), body.bytes().size());
  return frame.take();
}

ExtractStatus extract_record(const std::uint8_t* data, std::size_t size,
                             std::size_t* consumed,
                             std::vector<std::uint8_t>* body,
                             std::string* error) {
  *consumed = 0;
  body->clear();
  constexpr std::size_t kHeader = 12;  // magic + body_len + crc
  if (size < kHeader) return ExtractStatus::kNeedMore;
  Reader r(data, size);
  std::uint32_t magic = 0, body_len = 0, crc = 0;
  r.u32(&magic);
  r.u32(&body_len);
  r.u32(&crc);
  if (magic != kRecordMagic) {
    *error = "bad record magic";
    return ExtractStatus::kCorrupt;
  }
  if (body_len > kMaxBodyBytes) {
    *error = "implausible record length";
    return ExtractStatus::kCorrupt;
  }
  if (size - kHeader < body_len) return ExtractStatus::kNeedMore;
  if (util::crc32c(data + kHeader, body_len) != crc) {
    *error = "record checksum mismatch";
    return ExtractStatus::kCorrupt;
  }
  body->assign(data + kHeader, data + kHeader + body_len);
  *consumed = kHeader + body_len;
  return ExtractStatus::kOk;
}

void encode_snapshot_body(Writer& w, const SnapshotBody& s,
                          std::uint32_t version) {
  w.u64(s.next_id);
  w.u32(static_cast<std::uint32_t>(s.entries.size()));
  for (const DeviceEntry& e : s.entries) {
    if (version >= 2) w.u8(static_cast<std::uint8_t>(e.backend));
    encode_device_entry(w, e);
  }
}

util::Status decode_snapshot_body(Reader& r, SnapshotBody* out,
                                  std::uint32_t version) {
  std::uint32_t count = 0;
  if (!r.u64(&out->next_id) || !r.u32(&count))
    return malformed("snapshot header");
  // An entry is at least 25 bytes (id + nodes + grid + empty label +
  // revoked + empty blob length); enough to defeat a forged count.
  if (static_cast<std::size_t>(count) > r.remaining() / 25)
    return malformed("snapshot entry count");
  out->entries.clear();
  out->entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto kind = backend::BackendKind::kMaxFlow;
    if (version >= 2) {
      std::uint8_t tag = 0;
      if (!r.u8(&tag)) return malformed("snapshot entry backend");
      kind = static_cast<backend::BackendKind>(tag);
      if (backend::find_backend(kind) == nullptr)
        return malformed("snapshot entry backend");
    }
    DeviceEntry e;
    if (Status s = decode_device_entry(r, &e, kind); !s.is_ok()) return s;
    out->entries.push_back(std::move(e));
  }
  if (!r.exhausted()) return malformed("snapshot (trailing bytes)");
  return Status::ok();
}

std::vector<std::uint8_t> frame_snapshot(const SnapshotBody& snapshot) {
  bool all_maxflow = true;
  for (const DeviceEntry& e : snapshot.entries) {
    if (e.backend != backend::BackendKind::kMaxFlow) all_maxflow = false;
  }
  const std::uint32_t version = all_maxflow ? 1 : 2;
  Writer body;
  encode_snapshot_body(body, snapshot, version);
  Writer file;
  file.raw(version == 1 ? kSnapshotMagic : kSnapshotMagicV2,
           sizeof(kSnapshotMagic));
  file.u32(static_cast<std::uint32_t>(body.bytes().size()));
  file.u32(util::crc32c(body.bytes().data(), body.bytes().size()));
  file.raw(body.bytes().data(), body.bytes().size());
  return file.take();
}

util::Status parse_snapshot(const std::uint8_t* data, std::size_t size,
                            SnapshotBody* out) {
  constexpr std::size_t kHeader = sizeof(kSnapshotMagic) + 8;
  std::uint32_t version = 0;
  if (size >= kHeader) {
    if (std::memcmp(data, kSnapshotMagic, sizeof(kSnapshotMagic)) == 0)
      version = 1;
    else if (std::memcmp(data, kSnapshotMagicV2,
                         sizeof(kSnapshotMagicV2)) == 0)
      version = 2;
  }
  if (version == 0) return malformed("snapshot magic");
  Reader header(data + sizeof(kSnapshotMagic), 8);
  std::uint32_t body_len = 0, crc = 0;
  header.u32(&body_len);
  header.u32(&crc);
  if (body_len > kMaxBodyBytes || size - kHeader != body_len)
    return malformed("snapshot length");
  if (util::crc32c(data + kHeader, body_len) != crc)
    return malformed("snapshot checksum");
  Reader body(data + kHeader, body_len);
  return decode_snapshot_body(body, out, version);
}

}  // namespace ppuf::registry
