#include "registry/hydration_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace ppuf::registry {

using util::Status;

HydrationCache::HydrationCache(const DeviceRegistry& registry,
                               const Options& options)
    : registry_(registry),
      options_(options),
      max_entries_(std::max<std::size_t>(1, options.max_entries)) {}

util::Status HydrationCache::get(
    std::uint64_t id, std::shared_ptr<const HydratedDevice>* out) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Histogram* m_load_time =
      reg.enabled() ? &reg.histogram("registry.hydration.load_time_us")
                    : nullptr;
  auto bump = [&reg](const char* name) {
    if (reg.enabled()) reg.counter(name).add();
  };

  // Policy before cache: a revoked device must be refused even while its
  // materialised instance is still resident.
  if (!registry_.active(id)) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(id);
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
      ++stats_.evictions;
      bump("registry.hydration.evictions");
    }
    return Status::not_found("device " + std::to_string(id) +
                             " is not enrolled or is revoked");
  }

  std::shared_ptr<Slot> slot;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(id);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      bump("registry.hydration.hits");
      *out = it->second->second;
      return Status::ok();
    }
    auto [inflight_it, inserted] =
        inflight_.try_emplace(id, std::make_shared<Slot>());
    slot = inflight_it->second;
    leader = inserted;
    if (leader) {
      ++stats_.misses;
      bump("registry.hydration.misses");
    } else {
      ++stats_.single_flight_waits;
      bump("registry.hydration.single_flight_waits");
    }
  }

  if (!leader) {
    // Someone else is hydrating this device; wait for their result.
    std::unique_lock<std::mutex> lock(slot->mutex);
    slot->cv.wait(lock, [&] { return slot->done; });
    if (!slot->status.is_ok()) return slot->status;
    *out = slot->device;
    return Status::ok();
  }

  // Leader path: hydrate outside both locks so other devices keep moving.
  Status status;
  std::shared_ptr<const HydratedDevice> device;
  {
    obs::ScopedTimer timer(m_load_time);
    auto kind = backend::BackendKind::kMaxFlow;
    std::vector<std::uint8_t> model_bytes;
    status = registry_.load_entry(id, &kind, &model_bytes);
    if (status.is_ok()) {
      const backend::PufBackend* impl = backend::find_backend(kind);
      if (impl == nullptr) {
        // Unreachable through the registry (decode rejects unknown tags),
        // but a typed refusal beats materialising the wrong family.
        status = Status::invalid_argument(
            "device " + std::to_string(id) + " has an unknown backend");
      } else {
        backend::MaterializeOptions mopts;
        mopts.verifier_deadline_seconds = options_.verifier_deadline_seconds;
        mopts.flow_tolerance_fraction = options_.flow_tolerance_fraction;
        mopts.verify_threads = options_.verify_threads;
        std::unique_ptr<backend::Device> dev;
        status = impl->materialize(model_bytes, mopts, &dev);
        if (status.is_ok())
          device = std::make_shared<const HydratedDevice>(
              id, std::move(dev), options_.response_cache);
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status.is_ok()) {
      lru_.emplace_front(id, device);
      index_[id] = lru_.begin();
      while (lru_.size() > max_entries_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
        bump("registry.hydration.evictions");
      }
    }
    inflight_.erase(id);
    if (reg.enabled())
      reg.gauge("registry.hydration.entries")
          .set(static_cast<std::int64_t>(lru_.size()));
  }
  {
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->status = status;
    slot->device = device;
    slot->done = true;
  }
  slot->cv.notify_all();

  if (!status.is_ok()) return status;
  *out = std::move(device);
  return Status::ok();
}

HydrationCache::Stats HydrationCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = lru_.size();
  return s;
}

}  // namespace ppuf::registry
