// Persistent, crash-safe store of enrolled PPUF devices.
//
// The whole point of a *public* PUF is that each chip's model is published
// so any verifier can (slowly) simulate it — which makes the published
// model database the deployment substrate: enrollment writes a device's
// public model into the store, serving reads it back, revocation retires
// it.  This class is that store.
//
// Layout on disk (one directory per registry):
//
//   <dir>/snapshot.bin   folded state at the last compaction (optional)
//   <dir>/wal.log        framed enroll/revoke records appended since
//
// Durability model: every mutation appends one CRC-framed record to the
// WAL and fsyncs it before the in-memory state changes, so a crash can
// lose at most the record being written — and that loss is *detectable*:
// the torn tail fails its frame (kNeedMore at EOF) and open() truncates
// it, keeping every committed device.  A record that is complete but
// wrong (bit rot, tampering) fails its CRC instead and open() refuses
// with a typed error — the registry never guesses at corrupt state.  A
// *failed* append (disk full, fsync error, torn write) marks the WAL
// dirty; the next append first truncates back to the last committed
// length, so partial bytes can never end up buried under later records.
//
// Compaction folds snapshot + WAL into a fresh snapshot: written to a
// temp file, fsynced, atomically renamed, then the directory is fsynced
// so the rename itself survives power loss; only then is the WAL
// truncated.  A stale snapshot.bin.tmp left by a crashed compaction is
// removed during recovery.  Compaction runs explicitly via compact() and
// automatically every Options::auto_compact_records appends, so the WAL
// stays bounded under continuous enrollment.
//
// Thread safety: every public method is safe to call concurrently; one
// mutex guards the map and the log file.  Reads that services care about
// (contains / active / load_model) are map lookups plus, for load_model,
// one model decode — the hydration cache above this class amortises that.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ppuf/sim_model.hpp"
#include "registry/record.hpp"
#include "util/status.hpp"

namespace ppuf::circuit {
class SymbolicCache;  // circuit/mna.hpp
}

namespace ppuf::registry {

/// Listing row: everything about a device except its model blob.
struct DeviceInfo {
  std::uint64_t id = 0;
  std::uint32_t nodes = 0;
  std::uint32_t grid = 0;
  std::string label;
  bool revoked = false;
  backend::BackendKind backend = backend::BackendKind::kMaxFlow;
};

/// What enroll() fabricates: backend + geometry + fabrication seed (the
/// same seed always fabricates the same instance, so the seed is the
/// "silicon").  Geometry is in the backend's own units — crossbar
/// (nodes, grid) for max-flow, (stages, instances) for PDL.
struct EnrollRequest {
  std::size_t node_count = 40;
  std::size_t grid_size = 8;
  std::uint64_t seed = 0;
  std::string label;
  /// 0 = assign the next free id.  Non-zero = enroll under exactly this
  /// id (what a gateway forwards, so the id a client hashed on is the id
  /// the shard stores); enrolling an id that already exists is a typed
  /// kInvalidArgument, never an overwrite.
  std::uint64_t device_id = 0;
  backend::BackendKind backend = backend::BackendKind::kMaxFlow;
};

class DeviceRegistry {
 public:
  struct Options {
    /// Compact automatically once this many WAL records accumulate past
    /// the snapshot; 0 disables auto-compaction.
    std::size_t auto_compact_records = 64;
  };

  /// Stats from the last open(): how recovery went.
  struct RecoveryStats {
    std::size_t snapshot_entries = 0;   ///< devices loaded from snapshot
    std::size_t wal_records = 0;        ///< records replayed from the WAL
    std::size_t truncated_tail_bytes = 0;  ///< torn bytes dropped at EOF
  };

  DeviceRegistry() = default;
  DeviceRegistry(const DeviceRegistry&) = delete;
  DeviceRegistry& operator=(const DeviceRegistry&) = delete;

  /// Open (creating the directory if needed) and recover.  Typed errors:
  /// kInvalidArgument for a corrupt snapshot or WAL record, kInternal for
  /// I/O failures.  A torn WAL tail is not an error — it is truncated and
  /// reported through recovery_stats().
  util::Status open(const std::string& directory, const Options& options);
  util::Status open(const std::string& directory) {
    return open(directory, Options());
  }

  bool is_open() const;
  const std::string& directory() const { return directory_; }

  /// Fabricate, derive the public model, assign the next id, persist.
  /// On success `*id_out` is the stable device id (ids start at 1 and are
  /// never reused, including across revocations and restarts).
  util::Status enroll(const EnrollRequest& request, std::uint64_t* id_out);

  /// Mark a device revoked (idempotent).  kNotFound for unknown ids.
  util::Status revoke(std::uint64_t id);

  bool contains(std::uint64_t id) const;
  /// Enrolled and not revoked — the predicate serving cares about.
  bool active(std::uint64_t id) const;

  /// Decode the stored public model.  kNotFound for unknown ids (revoked
  /// devices still load: revocation is a serving policy, the model is
  /// still published).  Max-flow devices only — a device of any other
  /// backend is a typed kInvalidArgument; backend-generic callers use
  /// load_entry() and materialise through the backend registry instead.
  util::Status load_model(std::uint64_t id, SimulationModel* out) const;

  /// Backend-generic read: the device's backend tag plus its stored model
  /// blob, verbatim.  kNotFound for unknown ids.  This is what hydration
  /// uses — the blob goes to find_backend(kind)->materialize().
  util::Status load_entry(std::uint64_t id, backend::BackendKind* kind,
                          std::vector<std::uint8_t>* model_bytes) const;

  std::vector<DeviceInfo> list() const;
  std::size_t device_count() const;

  /// Fold snapshot + WAL into a fresh snapshot and truncate the WAL.
  util::Status compact();

  RecoveryStats recovery_stats() const;

  // --- WAL shipping (primary side) ---------------------------------------
  //
  // The WAL is an append-only byte stream within one *epoch*; compaction
  // (and every open()) starts a new epoch, because it rewrites history
  // into the snapshot and truncates the log.  A standby therefore tracks
  // {epoch, offset}: as long as the epoch matches, bytes at a given
  // offset are immutable and can be shipped verbatim; on a mismatch the
  // standby re-bootstraps from a full snapshot image.

  struct WalPosition {
    std::uint64_t epoch = 0;   ///< random per open(), regenerated on compact
    std::uint64_t offset = 0;  ///< committed WAL byte length
  };

  WalPosition wal_position() const;

  /// Copy committed WAL bytes of `epoch` starting at `offset` (at most
  /// `max_bytes`) into `*out`.  If the epoch does not match or the offset
  /// is past the committed length, sets `*stale` and returns ok with an
  /// empty segment — the caller must fall back to export_bootstrap().
  util::Status read_wal_segment(std::uint64_t epoch, std::uint64_t offset,
                                std::size_t max_bytes,
                                std::vector<std::uint8_t>* out,
                                bool* stale) const;

  /// Frame the complete current state as a snapshot image a standby can
  /// install_bootstrap(); `*pos` is the WAL position the image folds in
  /// (shipping resumes from there).
  util::Status export_bootstrap(std::vector<std::uint8_t>* image,
                                WalPosition* pos) const;

  // --- WAL shipping (standby side) ---------------------------------------

  /// Replace this registry's state with a shipped snapshot image and
  /// persist it durably (local snapshot write + WAL truncate).
  util::Status install_bootstrap(const std::vector<std::uint8_t>& image);

  /// Replay shipped WAL bytes: whole records are appended durably to the
  /// local WAL and applied to memory; `*consumed` reports how many bytes
  /// were used, so a partial trailing record stays in the caller's buffer
  /// for the next segment.  A corrupt record is a typed kInvalidArgument
  /// (the caller should re-bootstrap).
  util::Status apply_wal_bytes(const std::uint8_t* data, std::size_t size,
                               std::size_t* consumed);

  /// The fleet-level circuit symbolic cache built up by enroll() (see the
  /// member's notes).  Null until the first enrollment.  Exposed so
  /// callers that re-fabricate oracle chips for devices enrolled here —
  /// differential tests, chaos campaigns — can share the analysis instead
  /// of re-deriving the identical topology per chip.
  std::shared_ptr<circuit::SymbolicCache> enroll_symbolic_cache() const;

 private:
  util::Status append_record_locked(const WalRecord& record);
  util::Status append_raw_locked(const std::uint8_t* data, std::size_t size);
  util::Status compact_locked();
  std::string wal_path() const { return directory_ + "/wal.log"; }
  std::string snapshot_path() const { return directory_ + "/snapshot.bin"; }

  mutable std::mutex mutex_;
  std::string directory_;
  Options options_;
  bool open_ = false;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, DeviceEntry> entries_;
  std::size_t wal_records_since_snapshot_ = 0;
  RecoveryStats recovery_stats_;
  /// Committed WAL byte length — everything before it replays cleanly.
  std::uint64_t wal_len_ = 0;
  /// WAL shipping epoch: random and non-zero, regenerated by open() and
  /// every compaction, so a standby can detect that offsets it remembers
  /// no longer name the same bytes.
  std::uint64_t wal_epoch_ = 0;
  /// True after a failed append left (possibly) uncommitted bytes past
  /// wal_len_; the next append truncates back to wal_len_ first.
  bool wal_dirty_ = false;
  /// Fleet-level circuit symbolic cache: every enrolled device's blocks
  /// share one netlist topology, so the MNA pattern + sparse-LU analysis
  /// from the first enrollment is replayed by all later ones.  Created
  /// lazily on the first enroll; guarded by mutex_.
  std::shared_ptr<circuit::SymbolicCache> enroll_symbolic_cache_;
};

}  // namespace ppuf::registry
