#include "registry/device_registry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "obs/metrics.hpp"
#include "ppuf/ppuf.hpp"
#include "protocol/codec.hpp"
#include "util/fault_hooks.hpp"

namespace ppuf::registry {

namespace {

using util::Status;

namespace fs = std::filesystem;

/// Whole-file read; distinguishes "absent" (empty result, ok) from I/O
/// failure so recovery can treat a missing snapshot/WAL as a fresh store.
Status read_file(const std::string& path, std::vector<std::uint8_t>* out,
                 bool* exists) {
  out->clear();
  std::error_code ec;
  *exists = fs::exists(path, ec);
  if (ec) return Status::internal("stat " + path + ": " + ec.message());
  if (!*exists) return Status::ok();
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::internal("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size))
    return Status::internal("cannot read " + path);
  return Status::ok();
}

obs::Counter* counter_or_null(const char* name) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  return reg.enabled() ? &reg.counter(name) : nullptr;
}

}  // namespace

util::Status DeviceRegistry::open(const std::string& directory,
                                  const Options& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  directory_ = directory;
  options_ = options;
  open_ = false;
  next_id_ = 1;
  entries_.clear();
  wal_records_since_snapshot_ = 0;
  recovery_stats_ = RecoveryStats{};

  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec)
    return Status::internal("create " + directory_ + ": " + ec.message());

  // 1. Snapshot: the folded state at the last compaction, if any.
  std::vector<std::uint8_t> bytes;
  bool exists = false;
  if (Status s = read_file(snapshot_path(), &bytes, &exists); !s.is_ok())
    return s;
  if (exists) {
    SnapshotBody snapshot;
    if (Status s = parse_snapshot(bytes.data(), bytes.size(), &snapshot);
        !s.is_ok())
      return Status::invalid_argument("registry snapshot " + snapshot_path() +
                                      ": " + s.message());
    for (DeviceEntry& e : snapshot.entries) {
      const std::uint64_t id = e.id;
      entries_[id] = std::move(e);
    }
    next_id_ = std::max(snapshot.next_id, next_id_);
    recovery_stats_.snapshot_entries = entries_.size();
  }

  // 2. WAL replay.  kNeedMore at EOF is the torn-tail case: the process
  // died mid-append, so the incomplete bytes were never acknowledged —
  // truncate them and keep everything before.  kCorrupt is different in
  // kind (a *complete* record whose bytes lie) and is refused.
  if (Status s = read_file(wal_path(), &bytes, &exists); !s.is_ok()) return s;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    std::size_t consumed = 0;
    std::vector<std::uint8_t> body;
    std::string error;
    const ExtractStatus es = extract_record(bytes.data() + offset,
                                            bytes.size() - offset, &consumed,
                                            &body, &error);
    if (es == ExtractStatus::kNeedMore) {
      recovery_stats_.truncated_tail_bytes = bytes.size() - offset;
      fs::resize_file(wal_path(), offset, ec);
      if (ec)
        return Status::internal("truncate " + wal_path() + ": " +
                                ec.message());
      break;
    }
    if (es == ExtractStatus::kCorrupt)
      return Status::invalid_argument("registry wal " + wal_path() + ": " +
                                      error);
    protocol::codec::Reader r(body.data(), body.size());
    WalRecord record;
    if (Status s = decode_wal_record(r, &record); !s.is_ok())
      return Status::invalid_argument("registry wal " + wal_path() + ": " +
                                      s.message());
    switch (record.type) {
      case WalRecord::Type::kEnroll: {
        const std::uint64_t id = record.entry.id;
        next_id_ = std::max(next_id_, id + 1);
        entries_[id] = std::move(record.entry);
        break;
      }
      case WalRecord::Type::kRevoke: {
        const auto it = entries_.find(record.entry.id);
        if (it == entries_.end())
          return Status::invalid_argument(
              "registry wal " + wal_path() + ": revoke of unknown device " +
              std::to_string(record.entry.id));
        it->second.revoked = true;
        break;
      }
    }
    ++recovery_stats_.wal_records;
    ++wal_records_since_snapshot_;
    offset += consumed;
  }

  open_ = true;
  return Status::ok();
}

bool DeviceRegistry::is_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_;
}

util::Status DeviceRegistry::append_record_locked(const WalRecord& record) {
  const std::vector<std::uint8_t> frame = frame_record(record);
  std::ofstream out(wal_path(), std::ios::binary | std::ios::app);
  if (!out) return Status::internal("cannot open " + wal_path());
  // Crash-recovery tests arm this hook to leave a deterministic torn
  // tail: only the first `torn` bytes of the frame reach the file, then
  // the append fails exactly as a mid-write crash would.
  const int torn = util::FaultHooks::consume_registry_torn_write();
  if (torn >= 0) {
    const std::size_t n =
        std::min(frame.size(), static_cast<std::size_t>(torn));
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(n));
    out.flush();
    return Status::internal("injected torn write after " +
                            std::to_string(n) + " bytes");
  }
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  out.flush();
  if (!out) return Status::internal("cannot append to " + wal_path());
  return Status::ok();
}

util::Status DeviceRegistry::enroll(const EnrollRequest& request,
                                    std::uint64_t* id_out) {
  if (request.node_count < 2 || request.grid_size < 1 ||
      request.grid_size > request.node_count)
    return Status::invalid_argument("enroll: invalid geometry");
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return Status::internal("registry not open");

  // Fabricate the instance and extract its public model — enrollment *is*
  // the publish step of the PPUF lifecycle.
  PpufParams params;
  params.node_count = request.node_count;
  params.grid_size = request.grid_size;
  MaxFlowPpuf puf(params, request.seed);
  SimulationModel model(puf);

  WalRecord record;
  record.type = WalRecord::Type::kEnroll;
  record.entry.id = next_id_;
  record.entry.nodes = static_cast<std::uint32_t>(request.node_count);
  record.entry.grid = static_cast<std::uint32_t>(request.grid_size);
  record.entry.label = request.label;
  record.entry.revoked = false;
  protocol::codec::Writer w;
  protocol::codec::encode_sim_model(w, model);
  record.entry.model_bytes = w.take();

  // WAL first, memory second: state the process acknowledges is state a
  // restart will reconstruct.
  if (Status s = append_record_locked(record); !s.is_ok()) return s;
  const std::uint64_t id = record.entry.id;
  entries_[id] = std::move(record.entry);
  next_id_ = id + 1;
  ++wal_records_since_snapshot_;
  if (id_out != nullptr) *id_out = id;
  if (obs::Counter* c = counter_or_null("registry.enrolls")) c->add();

  // Auto-compaction is best-effort: the enroll is already durable in the
  // WAL, so a failed snapshot must not make it look failed.
  if (options_.auto_compact_records > 0 &&
      wal_records_since_snapshot_ >= options_.auto_compact_records)
    (void)compact_locked();
  return Status::ok();
}

util::Status DeviceRegistry::revoke(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return Status::internal("registry not open");
  const auto it = entries_.find(id);
  if (it == entries_.end())
    return Status::not_found("device " + std::to_string(id) +
                             " is not enrolled");
  if (it->second.revoked) return Status::ok();  // idempotent
  WalRecord record;
  record.type = WalRecord::Type::kRevoke;
  record.entry.id = id;
  if (Status s = append_record_locked(record); !s.is_ok()) return s;
  it->second.revoked = true;
  ++wal_records_since_snapshot_;
  if (obs::Counter* c = counter_or_null("registry.revokes")) c->add();
  if (options_.auto_compact_records > 0 &&
      wal_records_since_snapshot_ >= options_.auto_compact_records)
    (void)compact_locked();
  return Status::ok();
}

bool DeviceRegistry::contains(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(id) != 0;
}

bool DeviceRegistry::active(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  return it != entries_.end() && !it->second.revoked;
}

util::Status DeviceRegistry::load_model(std::uint64_t id,
                                        SimulationModel* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end())
    return Status::not_found("device " + std::to_string(id) +
                             " is not enrolled");
  protocol::codec::Reader r(it->second.model_bytes.data(),
                            it->second.model_bytes.size());
  if (Status s = protocol::codec::decode_sim_model(r, out); !s.is_ok())
    return Status::internal("device " + std::to_string(id) +
                            " model blob: " + s.message());
  if (!r.exhausted())
    return Status::internal("device " + std::to_string(id) +
                            " model blob: trailing bytes");
  return Status::ok();
}

std::vector<DeviceInfo> DeviceRegistry::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DeviceInfo> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_)
    out.push_back(DeviceInfo{id, e.nodes, e.grid, e.label, e.revoked});
  return out;
}

std::size_t DeviceRegistry::device_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

util::Status DeviceRegistry::compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return Status::internal("registry not open");
  return compact_locked();
}

util::Status DeviceRegistry::compact_locked() {
  SnapshotBody snapshot;
  snapshot.next_id = next_id_;
  snapshot.entries.reserve(entries_.size());
  for (const auto& [id, e] : entries_) snapshot.entries.push_back(e);
  const std::vector<std::uint8_t> image = frame_snapshot(snapshot);

  // Temp-then-rename so a crash mid-compaction leaves the old snapshot
  // intact; rename within one directory is atomic on POSIX.
  const std::string tmp = snapshot_path() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::internal("cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) return Status::internal("cannot write " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, snapshot_path(), ec);
  if (ec)
    return Status::internal("rename " + tmp + ": " + ec.message());

  // Only now is the WAL redundant.
  std::ofstream wal(wal_path(), std::ios::binary | std::ios::trunc);
  if (!wal) return Status::internal("cannot truncate " + wal_path());
  wal_records_since_snapshot_ = 0;
  if (obs::Counter* c = counter_or_null("registry.compactions")) c->add();
  return Status::ok();
}

DeviceRegistry::RecoveryStats DeviceRegistry::recovery_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovery_stats_;
}

}  // namespace ppuf::registry
