#include "registry/device_registry.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <system_error>

#include "backend/backend.hpp"
#include "circuit/mna.hpp"
#include "obs/metrics.hpp"
#include "protocol/codec.hpp"
#include "util/fault_hooks.hpp"

namespace ppuf::registry {

namespace {

using util::Status;

namespace fs = std::filesystem;

/// Whole-file read; distinguishes "absent" (empty result, ok) from I/O
/// failure so recovery can treat a missing snapshot/WAL as a fresh store.
Status read_file(const std::string& path, std::vector<std::uint8_t>* out,
                 bool* exists) {
  out->clear();
  std::error_code ec;
  *exists = fs::exists(path, ec);
  if (ec) return Status::internal("stat " + path + ": " + ec.message());
  if (!*exists) return Status::ok();
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::internal("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size))
    return Status::internal("cannot read " + path);
  return Status::ok();
}

obs::Counter* counter_or_null(const char* name) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  return reg.enabled() ? &reg.counter(name) : nullptr;
}

/// RAII file descriptor so every error branch below closes exactly once.
struct Fd {
  int fd = -1;
  explicit Fd(int f) : fd(f) {}
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  bool ok() const { return fd >= 0; }
};

/// Full write with EINTR retry; false on any hard error (errno set).
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync that consults the fault plane first, so durability failures are
/// injectable exactly at the syscall boundary.
Status fsync_durable(int fd, const std::string& what) {
  if (util::FaultHooks::consume_registry_fsync_failure())
    return Status::internal("injected fsync failure on " + what);
  if (::fsync(fd) != 0)
    return Status::internal("fsync " + what + ": " +
                            std::strerror(errno));
  return Status::ok();
}

/// fsync the directory so a just-renamed or just-created entry survives
/// power loss (the rename/creat is durable only once its directory is).
Status fsync_directory(const std::string& directory) {
  Fd dfd(::open(directory.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
  if (!dfd.ok())
    return Status::internal("open dir " + directory + ": " +
                            std::strerror(errno));
  return fsync_durable(dfd.fd, "directory " + directory);
}

/// Fresh non-zero WAL-shipping epoch.  Randomness (not a counter) so an
/// epoch from *any* earlier process lifetime — where the same offsets may
/// name different bytes — can never collide with the current one.
std::uint64_t fresh_wal_epoch() {
  std::random_device rd;
  std::uint64_t e = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  return e == 0 ? 1 : e;
}

}  // namespace

util::Status DeviceRegistry::open(const std::string& directory,
                                  const Options& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  directory_ = directory;
  options_ = options;
  open_ = false;
  next_id_ = 1;
  entries_.clear();
  wal_records_since_snapshot_ = 0;
  recovery_stats_ = RecoveryStats{};
  wal_len_ = 0;
  wal_dirty_ = false;

  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec)
    return Status::internal("create " + directory_ + ": " + ec.message());

  // A crashed compaction can leave a snapshot.bin.tmp that was never
  // renamed; it is dead bytes (the old snapshot is still authoritative),
  // so recovery removes it rather than letting it accumulate.
  fs::remove(snapshot_path() + ".tmp", ec);

  // 1. Snapshot: the folded state at the last compaction, if any.
  std::vector<std::uint8_t> bytes;
  bool exists = false;
  if (Status s = read_file(snapshot_path(), &bytes, &exists); !s.is_ok())
    return s;
  if (exists) {
    SnapshotBody snapshot;
    if (Status s = parse_snapshot(bytes.data(), bytes.size(), &snapshot);
        !s.is_ok())
      return Status::invalid_argument("registry snapshot " + snapshot_path() +
                                      ": " + s.message());
    for (DeviceEntry& e : snapshot.entries) {
      const std::uint64_t id = e.id;
      entries_[id] = std::move(e);
    }
    next_id_ = std::max(snapshot.next_id, next_id_);
    recovery_stats_.snapshot_entries = entries_.size();
  }

  // 2. WAL replay.  kNeedMore at EOF is the torn-tail case: the process
  // died mid-append, so the incomplete bytes were never acknowledged —
  // truncate them and keep everything before.  kCorrupt is different in
  // kind (a *complete* record whose bytes lie) and is refused.
  if (Status s = read_file(wal_path(), &bytes, &exists); !s.is_ok()) return s;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    std::size_t consumed = 0;
    std::vector<std::uint8_t> body;
    std::string error;
    const ExtractStatus es = extract_record(bytes.data() + offset,
                                            bytes.size() - offset, &consumed,
                                            &body, &error);
    if (es == ExtractStatus::kNeedMore) {
      recovery_stats_.truncated_tail_bytes = bytes.size() - offset;
      fs::resize_file(wal_path(), offset, ec);
      if (ec)
        return Status::internal("truncate " + wal_path() + ": " +
                                ec.message());
      break;
    }
    if (es == ExtractStatus::kCorrupt)
      return Status::invalid_argument("registry wal " + wal_path() + ": " +
                                      error);
    protocol::codec::Reader r(body.data(), body.size());
    WalRecord record;
    if (Status s = decode_wal_record(r, &record); !s.is_ok())
      return Status::invalid_argument("registry wal " + wal_path() + ": " +
                                      s.message());
    switch (record.type) {
      case WalRecord::Type::kEnroll:
      case WalRecord::Type::kEnrollTagged: {
        const std::uint64_t id = record.entry.id;
        next_id_ = std::max(next_id_, id + 1);
        entries_[id] = std::move(record.entry);
        break;
      }
      case WalRecord::Type::kRevoke: {
        const auto it = entries_.find(record.entry.id);
        if (it == entries_.end())
          return Status::invalid_argument(
              "registry wal " + wal_path() + ": revoke of unknown device " +
              std::to_string(record.entry.id));
        it->second.revoked = true;
        break;
      }
    }
    ++recovery_stats_.wal_records;
    ++wal_records_since_snapshot_;
    offset += consumed;
  }
  // Everything up to `offset` replayed cleanly; a torn tail (if any) was
  // truncated above, so `offset` is the committed WAL length.
  wal_len_ = offset;
  wal_epoch_ = fresh_wal_epoch();

  open_ = true;
  return Status::ok();
}

bool DeviceRegistry::is_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_;
}

util::Status DeviceRegistry::append_record_locked(const WalRecord& record) {
  const std::vector<std::uint8_t> frame = frame_record(record);

  // A previously failed append may have left partial or un-fsynced bytes
  // past wal_len_.  Appending after them would bury the garbage mid-file,
  // turning recovery's benign torn-tail case into hard kCorrupt — so roll
  // the file back to the last committed length first.
  if (wal_dirty_) {
    std::error_code ec;
    fs::resize_file(wal_path(), wal_len_, ec);
    if (ec)
      return Status::internal("wal rollback to " + std::to_string(wal_len_) +
                              " bytes: " + ec.message());
    wal_dirty_ = false;
  }

  // Disk-full injection point: fails before a single byte is written, so
  // the caller sees a typed, retryable error and state is untouched.
  if (util::FaultHooks::consume_registry_append_failure())
    return Status::unavailable("injected wal append failure (disk full)");

  Fd fd(::open(wal_path().c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644));
  if (!fd.ok())
    return Status::internal("cannot open " + wal_path() + ": " +
                            std::strerror(errno));

  // Crash-recovery tests arm this hook to leave a deterministic torn
  // tail: only the first `torn` bytes of the frame reach the file, then
  // the append fails exactly as a mid-write crash would.
  const int torn = util::FaultHooks::consume_registry_torn_write(frame.size());
  if (torn >= 0) {
    const std::size_t n =
        std::min(frame.size(), static_cast<std::size_t>(torn));
    (void)write_all(fd.fd, frame.data(), n);
    wal_dirty_ = true;
    return Status::internal("injected torn write after " +
                            std::to_string(n) + " bytes");
  }

  if (!write_all(fd.fd, frame.data(), frame.size())) {
    wal_dirty_ = true;
    return Status::internal("cannot append to " + wal_path() + ": " +
                            std::strerror(errno));
  }
  // The record is committed only once it is on stable storage; a failed
  // fsync means the bytes may evaporate, so treat them as never written.
  if (Status s = fsync_durable(fd.fd, wal_path()); !s.is_ok()) {
    wal_dirty_ = true;
    return s;
  }
  wal_len_ += frame.size();
  return Status::ok();
}

util::Status DeviceRegistry::enroll(const EnrollRequest& request,
                                    std::uint64_t* id_out) {
  const backend::PufBackend* impl = backend::find_backend(request.backend);
  if (impl == nullptr)
    return Status::invalid_argument("enroll: unknown backend");
  if (Status s = impl->validate_geometry(request.node_count,
                                         request.grid_size);
      !s.is_ok())
    return s;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return Status::internal("registry not open");
  // Explicit ids come from gateway routing: the id the client hashed on
  // must be the id stored, and a collision is the client's error, never a
  // silent overwrite of another device's published model.
  if (request.device_id != 0 && entries_.count(request.device_id) != 0)
    return Status::invalid_argument(
        "device " + std::to_string(request.device_id) +
        " is already enrolled");

  // Fabricate the instance and extract its public model — enrollment *is*
  // the publish step of the PPUF lifecycle.  The fleet-level symbolic
  // cache gives max-flow enrollments circuit-analysis reuse; backends
  // without a circuit stage ignore it (so it is only created for the
  // backends that use it).
  if (request.backend == backend::BackendKind::kMaxFlow &&
      enroll_symbolic_cache_ == nullptr)
    enroll_symbolic_cache_ = std::make_shared<circuit::SymbolicCache>();
  backend::FabricateRequest fab;
  fab.node_count = request.node_count;
  fab.grid_size = request.grid_size;
  fab.seed = request.seed;
  std::vector<std::uint8_t> model_bytes;
  if (Status s = impl->fabricate(fab, enroll_symbolic_cache_, &model_bytes);
      !s.is_ok())
    return s;

  // Max-flow devices keep the untagged pre-backend record type, so an
  // all-max-flow fleet's WAL stays byte-identical to the old format.
  WalRecord record;
  record.type = request.backend == backend::BackendKind::kMaxFlow
                    ? WalRecord::Type::kEnroll
                    : WalRecord::Type::kEnrollTagged;
  record.entry.id = request.device_id != 0 ? request.device_id : next_id_;
  record.entry.nodes = static_cast<std::uint32_t>(request.node_count);
  record.entry.grid = static_cast<std::uint32_t>(request.grid_size);
  record.entry.label = request.label;
  record.entry.revoked = false;
  record.entry.backend = request.backend;
  record.entry.model_bytes = std::move(model_bytes);

  // WAL first, memory second: state the process acknowledges is state a
  // restart will reconstruct.
  if (Status s = append_record_locked(record); !s.is_ok()) return s;
  const std::uint64_t id = record.entry.id;
  entries_[id] = std::move(record.entry);
  next_id_ = std::max(next_id_, id + 1);
  ++wal_records_since_snapshot_;
  if (id_out != nullptr) *id_out = id;
  if (obs::Counter* c = counter_or_null("registry.enrolls")) c->add();

  // Auto-compaction is best-effort: the enroll is already durable in the
  // WAL, so a failed snapshot must not make it look failed.
  if (options_.auto_compact_records > 0 &&
      wal_records_since_snapshot_ >= options_.auto_compact_records)
    (void)compact_locked();
  return Status::ok();
}

util::Status DeviceRegistry::revoke(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return Status::internal("registry not open");
  const auto it = entries_.find(id);
  if (it == entries_.end())
    return Status::not_found("device " + std::to_string(id) +
                             " is not enrolled");
  if (it->second.revoked) return Status::ok();  // idempotent
  WalRecord record;
  record.type = WalRecord::Type::kRevoke;
  record.entry.id = id;
  if (Status s = append_record_locked(record); !s.is_ok()) return s;
  it->second.revoked = true;
  ++wal_records_since_snapshot_;
  if (obs::Counter* c = counter_or_null("registry.revokes")) c->add();
  if (options_.auto_compact_records > 0 &&
      wal_records_since_snapshot_ >= options_.auto_compact_records)
    (void)compact_locked();
  return Status::ok();
}

bool DeviceRegistry::contains(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(id) != 0;
}

bool DeviceRegistry::active(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  return it != entries_.end() && !it->second.revoked;
}

util::Status DeviceRegistry::load_model(std::uint64_t id,
                                        SimulationModel* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end())
    return Status::not_found("device " + std::to_string(id) +
                             " is not enrolled");
  if (it->second.backend != backend::BackendKind::kMaxFlow)
    return Status::invalid_argument(
        "device " + std::to_string(id) + " is not a max-flow device (" +
        backend::backend_name(it->second.backend) + ")");
  protocol::codec::Reader r(it->second.model_bytes.data(),
                            it->second.model_bytes.size());
  if (Status s = protocol::codec::decode_sim_model(r, out); !s.is_ok())
    return Status::internal("device " + std::to_string(id) +
                            " model blob: " + s.message());
  if (!r.exhausted())
    return Status::internal("device " + std::to_string(id) +
                            " model blob: trailing bytes");
  return Status::ok();
}

util::Status DeviceRegistry::load_entry(
    std::uint64_t id, backend::BackendKind* kind,
    std::vector<std::uint8_t>* model_bytes) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end())
    return Status::not_found("device " + std::to_string(id) +
                             " is not enrolled");
  *kind = it->second.backend;
  *model_bytes = it->second.model_bytes;
  return Status::ok();
}

std::vector<DeviceInfo> DeviceRegistry::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DeviceInfo> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_)
    out.push_back(
        DeviceInfo{id, e.nodes, e.grid, e.label, e.revoked, e.backend});
  return out;
}

std::size_t DeviceRegistry::device_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

util::Status DeviceRegistry::compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return Status::internal("registry not open");
  return compact_locked();
}

util::Status DeviceRegistry::compact_locked() {
  SnapshotBody snapshot;
  snapshot.next_id = next_id_;
  snapshot.entries.reserve(entries_.size());
  for (const auto& [id, e] : entries_) snapshot.entries.push_back(e);
  const std::vector<std::uint8_t> image = frame_snapshot(snapshot);

  // Temp-then-rename so a crash mid-compaction leaves the old snapshot
  // intact; rename within one directory is atomic on POSIX.  The .tmp is
  // fsynced *before* the rename — otherwise the rename can become durable
  // while the file contents do not, and a crash surfaces an empty or
  // truncated snapshot under the final name.
  const std::string tmp = snapshot_path() + ".tmp";
  {
    Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644));
    if (!fd.ok())
      return Status::internal("cannot open " + tmp + ": " +
                              std::strerror(errno));
    if (!write_all(fd.fd, image.data(), image.size()))
      return Status::internal("cannot write " + tmp + ": " +
                              std::strerror(errno));
    // On failure the stale .tmp stays behind; open() removes it during
    // the next recovery, and the old snapshot + WAL remain authoritative.
    if (Status s = fsync_durable(fd.fd, tmp); !s.is_ok()) return s;
  }
  if (util::FaultHooks::consume_registry_rename_failure())
    return Status::internal("injected rename failure for " + tmp);
  std::error_code ec;
  fs::rename(tmp, snapshot_path(), ec);
  if (ec)
    return Status::internal("rename " + tmp + ": " + ec.message());
  // The rename is durable only once the directory entry is; if this
  // fails the WAL is left untouched and replay over the (possibly old,
  // possibly new) snapshot is idempotent either way.
  if (Status s = fsync_directory(directory_); !s.is_ok()) return s;

  // Only now is the WAL redundant.
  {
    Fd wfd(::open(wal_path().c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
    if (!wfd.ok())
      return Status::internal("cannot truncate " + wal_path() + ": " +
                              std::strerror(errno));
    // The truncate took effect the moment the open succeeded, so the
    // committed length is 0 from here on even if the fsync below fails
    // (an unpersisted truncate just means replay sees snapshot + old
    // WAL, which is idempotent).
    wal_len_ = 0;
    wal_dirty_ = false;
    if (Status s = fsync_durable(wfd.fd, wal_path()); !s.is_ok()) return s;
  }
  wal_records_since_snapshot_ = 0;
  // Compaction rewrote history: old offsets no longer name the same
  // bytes, so standbys must re-bootstrap.
  wal_epoch_ = fresh_wal_epoch();
  if (obs::Counter* c = counter_or_null("registry.compactions")) c->add();
  return Status::ok();
}

DeviceRegistry::RecoveryStats DeviceRegistry::recovery_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovery_stats_;
}

DeviceRegistry::WalPosition DeviceRegistry::wal_position() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return WalPosition{wal_epoch_, wal_len_};
}

util::Status DeviceRegistry::read_wal_segment(
    std::uint64_t epoch, std::uint64_t offset, std::size_t max_bytes,
    std::vector<std::uint8_t>* out, bool* stale) const {
  out->clear();
  *stale = false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return Status::internal("registry not open");
  if (epoch != wal_epoch_ || offset > wal_len_) {
    *stale = true;  // compaction or restart invalidated the position
    return Status::ok();
  }
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(wal_len_ - offset, max_bytes));
  if (want == 0) return Status::ok();
  std::ifstream in(wal_path(), std::ios::binary);
  if (!in) return Status::internal("cannot open " + wal_path());
  in.seekg(static_cast<std::streamoff>(offset));
  out->resize(want);
  if (!in.read(reinterpret_cast<char*>(out->data()),
               static_cast<std::streamsize>(want)))
    return Status::internal("cannot read " + wal_path());
  return Status::ok();
}

util::Status DeviceRegistry::export_bootstrap(
    std::vector<std::uint8_t>* image, WalPosition* pos) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return Status::internal("registry not open");
  SnapshotBody snapshot;
  snapshot.next_id = next_id_;
  snapshot.entries.reserve(entries_.size());
  for (const auto& [id, e] : entries_) snapshot.entries.push_back(e);
  *image = frame_snapshot(snapshot);
  // The in-memory state already reflects every committed WAL record, so
  // the image folds the log up to exactly wal_len_.
  *pos = WalPosition{wal_epoch_, wal_len_};
  return Status::ok();
}

util::Status DeviceRegistry::install_bootstrap(
    const std::vector<std::uint8_t>& image) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return Status::internal("registry not open");
  SnapshotBody snapshot;
  if (Status s = parse_snapshot(image.data(), image.size(), &snapshot);
      !s.is_ok())
    return Status::invalid_argument("bootstrap image: " + s.message());
  entries_.clear();
  for (DeviceEntry& e : snapshot.entries) {
    const std::uint64_t id = e.id;
    entries_[id] = std::move(e);
  }
  next_id_ = std::max<std::uint64_t>(snapshot.next_id, 1);
  // Persist the installed state the same way compaction does (snapshot
  // write + WAL truncate), so a standby restart recovers it.
  return compact_locked();
}

util::Status DeviceRegistry::apply_wal_bytes(const std::uint8_t* data,
                                             std::size_t size,
                                             std::size_t* consumed) {
  *consumed = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return Status::internal("registry not open");
  std::size_t offset = 0;
  while (offset < size) {
    std::size_t used = 0;
    std::vector<std::uint8_t> body;
    std::string error;
    const ExtractStatus es = extract_record(data + offset, size - offset,
                                            &used, &body, &error);
    if (es == ExtractStatus::kNeedMore) break;  // partial record: keep it
    if (es == ExtractStatus::kCorrupt)
      return Status::invalid_argument("replicated wal: " + error);
    protocol::codec::Reader r(body.data(), body.size());
    WalRecord record;
    if (Status s = decode_wal_record(r, &record); !s.is_ok())
      return Status::invalid_argument("replicated wal: " + s.message());
    // Durability first, memory second — the same invariant as enroll():
    // a record the standby has applied is a record its restart replays.
    if (Status s = append_raw_locked(data + offset, used); !s.is_ok())
      return s;
    switch (record.type) {
      case WalRecord::Type::kEnroll:
      case WalRecord::Type::kEnrollTagged: {
        const std::uint64_t id = record.entry.id;
        next_id_ = std::max(next_id_, id + 1);
        entries_[id] = std::move(record.entry);
        break;
      }
      case WalRecord::Type::kRevoke: {
        const auto it = entries_.find(record.entry.id);
        if (it == entries_.end())
          return Status::invalid_argument(
              "replicated wal: revoke of unknown device " +
              std::to_string(record.entry.id));
        it->second.revoked = true;
        break;
      }
    }
    ++wal_records_since_snapshot_;
    offset += used;
  }
  *consumed = offset;
  return Status::ok();
}

util::Status DeviceRegistry::append_raw_locked(const std::uint8_t* data,
                                               std::size_t size) {
  // Pre-framed record bytes from the primary; same rollback discipline as
  // append_record_locked, without the fault-injection hooks (those model
  // primary-side enrollment failures).
  if (wal_dirty_) {
    std::error_code ec;
    fs::resize_file(wal_path(), wal_len_, ec);
    if (ec)
      return Status::internal("wal rollback to " + std::to_string(wal_len_) +
                              " bytes: " + ec.message());
    wal_dirty_ = false;
  }
  Fd fd(::open(wal_path().c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644));
  if (!fd.ok())
    return Status::internal("cannot open " + wal_path() + ": " +
                            std::strerror(errno));
  if (!write_all(fd.fd, data, size)) {
    wal_dirty_ = true;
    return Status::internal("cannot append to " + wal_path() + ": " +
                            std::strerror(errno));
  }
  if (::fsync(fd.fd) != 0) {
    wal_dirty_ = true;
    return Status::internal("fsync " + wal_path() + ": " +
                            std::strerror(errno));
  }
  wal_len_ += size;
  return Status::ok();
}

std::shared_ptr<circuit::SymbolicCache> DeviceRegistry::enroll_symbolic_cache()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enroll_symbolic_cache_;
}

}  // namespace ppuf::registry
