// On-disk record format of the device registry.
//
// The registry persists as an append-only write-ahead log of enroll/revoke
// records plus a periodic snapshot.  Both use the canonical protocol codec
// for their bodies and frame every body with a CRC-32C, which is what lets
// recovery distinguish the two failure modes that matter:
//
//   - a *torn tail* — the process died mid-append, leaving an incomplete
//     record at EOF.  extract_record() reports kNeedMore; recovery
//     truncates the tail and carries on with every committed device.
//   - *corruption* — a complete record whose bytes changed (bit rot, a
//     hostile edit).  The CRC or the strict body decode fails;
//     extract_record() reports kCorrupt and open() surfaces a typed
//     error.  Corruption is never silently dropped: dropping it would
//     turn "this file was tampered with" into "this device vanished".
//
// Record frame:   u32 magic 'PPRG' | u32 body_len | u32 crc32c(body) | body
// Snapshot file:  8-byte magic "ppufreg1" | u32 body_len | u32 crc | body
//            or:  8-byte magic "ppufreg2" | u32 body_len | u32 crc | body
//
// Backend versioning.  Entries carry a PUF-backend tag, but the pre-tag
// formats stay first-class so existing fleets keep their bytes:
//
//   - WAL type kEnroll (1) is the untagged enroll record — always a
//     max-flow device.  Non-max-flow devices enroll as kEnrollTagged (3),
//     which prefixes the entry with one backend byte.  A max-flow-only
//     fleet therefore writes a WAL byte-identical to the pre-tag format.
//   - Snapshot magic "ppufreg1" is the untagged (all max-flow) layout;
//     "ppufreg2" prefixes every entry with its backend byte.
//     frame_snapshot() picks v1 whenever every entry is max-flow.
//
// Bodies are strict codec payloads (bounds-checked, exhausted() required),
// so a bit flip anywhere yields a typed error, never a crash — the same
// discipline as the wire protocol, because a registry file is just as
// attacker-reachable as a socket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "protocol/codec.hpp"
#include "util/status.hpp"

namespace ppuf::registry {

/// One enrolled device as the store sees it.  The model is kept as its
/// canonical encoded bytes (protocol::codec::encode_sim_model): list and
/// compaction never pay for materialising capacities, and hydration
/// decodes on demand.  `nodes`/`grid` mirror the blob's header so listings
/// are free.
struct DeviceEntry {
  std::uint64_t id = 0;
  std::uint32_t nodes = 0;
  std::uint32_t grid = 0;
  std::string label;
  bool revoked = false;
  backend::BackendKind backend = backend::BackendKind::kMaxFlow;
  std::vector<std::uint8_t> model_bytes;
};

/// One write-ahead-log record.  kEnroll carries an untagged (max-flow)
/// entry; kEnrollTagged prefixes the entry with one backend byte; kRevoke
/// only names the id (the other entry fields are ignored).
struct WalRecord {
  enum class Type : std::uint8_t { kEnroll = 1, kRevoke = 2,
                                   kEnrollTagged = 3 };
  Type type = Type::kEnroll;
  DeviceEntry entry;
};

inline constexpr std::uint32_t kRecordMagic = 0x47525050;  // "PPRG"
inline constexpr char kSnapshotMagic[8] = {'p', 'p', 'u', 'f',
                                           'r', 'e', 'g', '1'};
inline constexpr char kSnapshotMagicV2[8] = {'p', 'p', 'u', 'f',
                                             'r', 'e', 'g', '2'};
/// Upper bound on one record / snapshot body.  A model blob is
/// 32*n*(n-1) + 16 bytes, so this admits instances beyond n = 1000 while
/// keeping a forged length from demanding gigabytes.
inline constexpr std::uint32_t kMaxBodyBytes = 64u * 1024 * 1024;

/// Entry body WITHOUT the backend tag — the tag byte, where present, is
/// written by the wrapping record/snapshot encoder.  decode takes the
/// already-parsed tag (defaulting to max-flow for untagged formats), sets
/// `out->backend`, and dispatches blob validation to that backend.
void encode_device_entry(protocol::codec::Writer& w, const DeviceEntry& e);
util::Status decode_device_entry(
    protocol::codec::Reader& r, DeviceEntry* out,
    backend::BackendKind kind = backend::BackendKind::kMaxFlow);

/// Body only — framing (magic/len/crc) is applied by frame_record().
void encode_wal_record(protocol::codec::Writer& w, const WalRecord& record);
util::Status decode_wal_record(protocol::codec::Reader& r, WalRecord* out);

/// The full framed bytes of one record, ready to append to the log.
std::vector<std::uint8_t> frame_record(const WalRecord& record);

/// Incremental scan outcome over a byte stream of framed records.
enum class ExtractStatus {
  kOk,        ///< one complete, CRC-valid record extracted
  kNeedMore,  ///< the bytes end mid-record (a torn tail at EOF)
  kCorrupt,   ///< bad magic, implausible length, or CRC mismatch
};

/// Extract the next framed record from [data, data+size).  On kOk,
/// `*consumed` is the frame size and `*body` holds the verified body
/// bytes (not yet decoded).  On kNeedMore, `*consumed` is 0 — the caller
/// decides whether more bytes are coming (mid-file read) or not (EOF:
/// torn tail, truncate here).  On kCorrupt, `*error` says why.
ExtractStatus extract_record(const std::uint8_t* data, std::size_t size,
                             std::size_t* consumed,
                             std::vector<std::uint8_t>* body,
                             std::string* error);

/// Snapshot body: the folded state of the whole registry.
struct SnapshotBody {
  std::uint64_t next_id = 1;
  std::vector<DeviceEntry> entries;
};

/// `version` is 1 (untagged entries, "ppufreg1") or 2 (one backend byte
/// before each entry, "ppufreg2").  Encoding a non-max-flow entry at
/// version 1 is a caller bug; frame_snapshot() picks the version itself.
void encode_snapshot_body(protocol::codec::Writer& w, const SnapshotBody& s,
                          std::uint32_t version = 1);
util::Status decode_snapshot_body(protocol::codec::Reader& r,
                                  SnapshotBody* out,
                                  std::uint32_t version = 1);

/// The full snapshot file image (magic + len + crc + body).  Writes the
/// pre-tag v1 image whenever every entry is max-flow, so an all-max-flow
/// fleet's snapshot stays byte-identical to the pre-backend format.
std::vector<std::uint8_t> frame_snapshot(const SnapshotBody& snapshot);

/// Parse a complete snapshot file image.  Any truncation, bad magic, bad
/// CRC or malformed body is a typed kInvalidArgument.
util::Status parse_snapshot(const std::uint8_t* data, std::size_t size,
                            SnapshotBody* out);

}  // namespace ppuf::registry
