// Arbiter PUF — the classic strong PUF the paper compares against in the
// model-building experiment (Fig. 10).
//
// Standard additive linear-delay model: each of the k stages contributes a
// delay difference depending on its challenge bit; the response is the sign
// of the accumulated difference.  Equivalently r = sign(w . phi(c)) with
// the parity feature map phi — which is why the arbiter PUF is famously
// learnable and makes a good "weak" baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ppuf::puf {

class ArbiterPuf {
 public:
  /// Fabricate an instance with `stages` stages; stage delay mismatches are
  /// drawn i.i.d. Gaussian, normalised so the typical margin is ~1.
  ArbiterPuf(std::size_t stages, std::uint64_t seed);

  /// Reconstruct an instance from explicit weights (k+1 of them) — the
  /// deserialisation path of the PDL backend, whose public model *is* the
  /// weight vector.  Throws std::invalid_argument on fewer than 2 weights.
  explicit ArbiterPuf(std::vector<double> weights);

  std::size_t stages() const { return weights_.size() - 1; }

  /// The k+1 delay weights acting on the parity features.
  const std::vector<double>& weights() const { return weights_; }

  /// Noise-free response to a challenge of exactly stages() bits.
  int evaluate(const std::vector<std::uint8_t>& challenge) const;

  /// Response with additive evaluation noise of the given sigma on the
  /// delay difference (sigma = 0 gives evaluate()).
  int evaluate_noisy(const std::vector<std::uint8_t>& challenge,
                     double noise_sigma, util::Rng& rng) const;

  /// The parity feature map phi(c) in {-1,+1}^(k+1): phi_i = product of
  /// (1 - 2 c_j) for j >= i.  Exposed because the strongest known
  /// model-building attack trains on these features.
  static std::vector<double> parity_features(
      const std::vector<std::uint8_t>& challenge);

  /// Raw delay-difference margin (w . phi(c)).
  double margin(const std::vector<std::uint8_t>& challenge) const;

 private:
  std::vector<double> weights_;  // k+1 weights acting on phi
};

}  // namespace ppuf::puf
