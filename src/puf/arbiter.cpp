#include "puf/arbiter.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ppuf::puf {

ArbiterPuf::ArbiterPuf(std::size_t stages, std::uint64_t seed) {
  if (stages == 0) throw std::invalid_argument("ArbiterPuf: zero stages");
  util::Rng rng(seed ^ 0xa0761d6478bd642fULL);
  weights_.resize(stages + 1);
  const double sigma = 1.0 / std::sqrt(static_cast<double>(stages + 1));
  for (double& w : weights_) w = rng.gaussian(0.0, sigma);
}

ArbiterPuf::ArbiterPuf(std::vector<double> weights)
    : weights_(std::move(weights)) {
  if (weights_.size() < 2)
    throw std::invalid_argument("ArbiterPuf: too few weights");
}

std::vector<double> ArbiterPuf::parity_features(
    const std::vector<std::uint8_t>& challenge) {
  const std::size_t k = challenge.size();
  std::vector<double> phi(k + 1);
  // phi_i = prod_{j=i}^{k-1} (1 - 2 c_j); phi_k = 1.  Computed backwards.
  phi[k] = 1.0;
  for (std::size_t i = k; i-- > 0;)
    phi[i] = phi[i + 1] * (challenge[i] ? -1.0 : 1.0);
  return phi;
}

double ArbiterPuf::margin(const std::vector<std::uint8_t>& challenge) const {
  if (challenge.size() + 1 != weights_.size())
    throw std::invalid_argument("ArbiterPuf: challenge length mismatch");
  const std::vector<double> phi = parity_features(challenge);
  double m = 0.0;
  for (std::size_t i = 0; i < phi.size(); ++i) m += weights_[i] * phi[i];
  return m;
}

int ArbiterPuf::evaluate(const std::vector<std::uint8_t>& challenge) const {
  return margin(challenge) > 0.0 ? 1 : 0;
}

int ArbiterPuf::evaluate_noisy(const std::vector<std::uint8_t>& challenge,
                               double noise_sigma, util::Rng& rng) const {
  return (margin(challenge) + rng.gaussian(0.0, noise_sigma)) > 0.0 ? 1 : 0;
}

}  // namespace ppuf::puf
