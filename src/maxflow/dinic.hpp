// Dinic's algorithm: level graph + blocking flow (the paper's "blocking flow
// method" [13], also the building block of the best known parallel
// algorithm [15]).
#pragma once

#include "maxflow/solver.hpp"

namespace ppuf::maxflow {

class Dinic final : public Solver {
 public:
  using Solver::solve;
  FlowResult solve(const graph::FlowProblem& problem,
                   const util::SolveControl& control) const override;
  std::string name() const override { return "dinic"; }
};

}  // namespace ppuf::maxflow
