#include "maxflow/multi_terminal.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppuf::maxflow {

namespace {

void validate(const MultiTerminalProblem& p) {
  if (p.graph == nullptr)
    throw std::invalid_argument("multi_terminal: null graph");
  if (p.sources.empty() || p.sinks.empty())
    throw std::invalid_argument("multi_terminal: empty terminal set");
  const std::size_t n = p.graph->vertex_count();
  for (graph::VertexId v : p.sources) {
    if (v >= n) throw std::invalid_argument("multi_terminal: bad source");
  }
  for (graph::VertexId t : p.sinks) {
    if (t >= n) throw std::invalid_argument("multi_terminal: bad sink");
    if (std::find(p.sources.begin(), p.sources.end(), t) != p.sources.end())
      throw std::invalid_argument(
          "multi_terminal: source and sink sets overlap");
  }
}

/// Capacity large enough to never constrain: total capacity of the graph
/// plus one.
double unbounded_capacity(const graph::Digraph& g) {
  double total = 1.0;
  for (const graph::Edge& e : g.edges()) total += e.capacity;
  return total;
}

}  // namespace

graph::Digraph expand_with_supernodes(const MultiTerminalProblem& problem,
                                      graph::VertexId* super_source,
                                      graph::VertexId* super_sink) {
  validate(problem);
  const graph::Digraph& g = *problem.graph;
  const std::size_t n = g.vertex_count();
  graph::Digraph expanded(n + 2);
  for (const graph::Edge& e : g.edges())
    expanded.add_edge(e.from, e.to, e.capacity);
  const auto s = static_cast<graph::VertexId>(n);
  const auto t = static_cast<graph::VertexId>(n + 1);
  const double big = unbounded_capacity(g);
  for (graph::VertexId v : problem.sources) expanded.add_edge(s, v, big);
  for (graph::VertexId v : problem.sinks) expanded.add_edge(v, t, big);
  expanded.finalize();
  if (super_source != nullptr) *super_source = s;
  if (super_sink != nullptr) *super_sink = t;
  return expanded;
}

FlowResult solve_multi_terminal(const MultiTerminalProblem& problem,
                                Algorithm algorithm) {
  graph::VertexId s = 0, t = 0;
  const graph::Digraph expanded = expand_with_supernodes(problem, &s, &t);
  FlowResult result =
      make_solver(algorithm)->solve({&expanded, s, t});
  // Original edges come first in the expanded graph; drop the rest.
  result.edge_flow.resize(problem.graph->edge_count());
  return result;
}

}  // namespace ppuf::maxflow
