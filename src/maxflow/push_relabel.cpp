#include "maxflow/push_relabel.hpp"

#include <queue>
#include <stdexcept>

#include "maxflow/residual.hpp"
#include "obs/metrics.hpp"

namespace ppuf::maxflow {

namespace {

class PushRelabelState {
 public:
  PushRelabelState(const graph::FlowProblem& problem,
                   const PushRelabelOptions& options,
                   const util::SolveControl& control)
      : g_(*problem.graph),
        net_(g_),
        source_(problem.source),
        sink_(problem.sink),
        options_(options),
        stop_(control),
        n_(net_.vertex_count()),
        height_(n_, 0),
        excess_(n_, 0.0),
        next_arc_(n_, 0),
        in_queue_(n_, false),
        height_count_(2 * n_ + 2, 0) {}

  FlowResult run() {
    FlowResult result;
    initialize();
    const std::uint64_t relabel_period = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(options_.global_relabel_period *
                                      static_cast<double>(n_)));
    std::uint64_t discharges = 0;
    while (!active_.empty()) {
      if (stop_.should_stop()) {
        // A preflow is not a flow; report the typed stop reason so callers
        // never mistake the partial sink excess for the maximum.
        result.status = stop_.status("PushRelabel");
        break;
      }
      const graph::VertexId v = active_.front();
      active_.pop();
      in_queue_[v] = false;
      discharge(v, result);
      ++discharges;
      if (options_.global_relabel && discharges % relabel_period == 0) {
        global_relabel(result);
        ++global_relabels_;
      }
    }
    result.value = excess_[sink_];
    result.edge_flow = net_.edge_flows(g_);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    if (reg.enabled()) {
      reg.counter("maxflow.push_relabel.solves").add();
      reg.counter("maxflow.push_relabel.work").add(result.work);
      reg.counter("maxflow.push_relabel.discharges").add(discharges);
      reg.counter("maxflow.push_relabel.relabels").add(relabels_);
      reg.counter("maxflow.push_relabel.global_relabels")
          .add(global_relabels_);
    }
    return result;
  }

 private:
  void initialize() {
    height_[source_] = static_cast<std::uint32_t>(n_);
    for (std::uint32_t h : height_) ++height_count_[h];
    // Saturate all source-adjacent arcs.
    auto& arcs = net_.arcs(source_);
    for (std::uint32_t i = 0; i < arcs.size(); ++i) {
      const double cap = arcs[i].residual;
      if (cap <= net_.epsilon()) continue;
      net_.push(source_, i, cap);
      excess_[arcs[i].to] += cap;
      enqueue(arcs[i].to);
    }
  }

  void enqueue(graph::VertexId v) {
    if (v == source_ || v == sink_) return;
    if (in_queue_[v] || excess_[v] <= net_.epsilon()) return;
    in_queue_[v] = true;
    active_.push(v);
  }

  bool admissible(graph::VertexId v, const Arc& a) const {
    return a.residual > net_.epsilon() && height_[v] == height_[a.to] + 1;
  }

  void discharge(graph::VertexId v, FlowResult& result) {
    while (excess_[v] > net_.epsilon()) {
      auto& arcs = net_.arcs(v);
      if (next_arc_[v] == arcs.size()) {
        relabel(v, result);
        next_arc_[v] = 0;
        // Heights stay below 2n while the vertex can still route its
        // excess anywhere (to the sink, or back to the source, which is
        // what converts the final preflow into a valid flow).  Beyond
        // that the vertex has no residual arcs at all.
        if (height_[v] > 2 * n_) return;
        continue;
      }
      const std::uint32_t i = next_arc_[v];
      const Arc& a = arcs[i];
      ++result.work;
      if (admissible(v, a)) {
        const double amount = std::min(excess_[v], a.residual);
        net_.push(v, i, amount);
        excess_[v] -= amount;
        excess_[a.to] += amount;
        enqueue(a.to);
      } else {
        ++next_arc_[v];
      }
    }
  }

  void relabel(graph::VertexId v, FlowResult& result) {
    ++relabels_;
    const std::uint32_t old_height = height_[v];
    std::uint32_t best = 2 * static_cast<std::uint32_t>(n_) + 1;
    for (const Arc& a : net_.arcs(v)) {
      ++result.work;
      if (a.residual > net_.epsilon())
        best = std::min(best, height_[a.to] + 1);
    }
    --height_count_[old_height];
    height_[v] = best;
    ++height_count_[best];

    if (options_.gap_heuristic && height_count_[old_height] == 0 &&
        old_height < n_) {
      // Gap: no vertex at old_height means every vertex above it (below n)
      // is cut off from the sink; lift them past n in one step.
      for (graph::VertexId u = 0; u < n_; ++u) {
        if (u == source_) continue;
        if (height_[u] > old_height && height_[u] < n_) {
          --height_count_[height_[u]];
          height_[u] = static_cast<std::uint32_t>(n_ + 1);
          ++height_count_[height_[u]];
        }
      }
    }
  }

  /// Recompute exact heights: BFS distance to the sink in the residual
  /// graph where reachable; n + BFS distance to the source for vertices
  /// that can only return their excess; 2n+1 for isolated vertices.  This
  /// is the canonical exact labeling and is itself a valid height
  /// function, so max() against the current (also valid) heights keeps
  /// validity while preserving monotonicity.
  void global_relabel(FlowResult& result) {
    const auto unset = static_cast<std::uint32_t>(2 * n_ + 1);
    auto residual_bfs = [&](graph::VertexId root) {
      std::vector<std::uint32_t> dist(n_, unset);
      std::queue<graph::VertexId> queue;
      dist[root] = 0;
      queue.push(root);
      while (!queue.empty()) {
        const graph::VertexId v = queue.front();
        queue.pop();
        // Arc u->v exists in the residual graph iff the reverse arc stored
        // at v has positive residual on its pair.
        for (const Arc& a : net_.arcs(v)) {
          ++result.work;
          const graph::VertexId u = a.to;
          const Arc& pair = net_.arcs(u)[a.rev];
          if (pair.residual > net_.epsilon() && dist[u] == unset) {
            dist[u] = dist[v] + 1;
            queue.push(u);
          }
        }
      }
      return dist;
    };
    const std::vector<std::uint32_t> to_sink = residual_bfs(sink_);
    const std::vector<std::uint32_t> to_source = residual_bfs(source_);

    std::fill(height_count_.begin(), height_count_.end(), 0);
    for (graph::VertexId v = 0; v < n_; ++v) {
      std::uint32_t label;
      if (v == source_) {
        label = static_cast<std::uint32_t>(n_);
      } else if (to_sink[v] != unset) {
        label = to_sink[v];
      } else if (to_source[v] != unset) {
        label = static_cast<std::uint32_t>(n_) + to_source[v];
      } else {
        label = unset;
      }
      // Never lower a label: push-relabel correctness requires heights to
      // be monotone non-decreasing.
      height_[v] = std::max(height_[v], label);
      ++height_count_[std::min<std::uint32_t>(
          height_[v], static_cast<std::uint32_t>(2 * n_ + 1))];
      next_arc_[v] = 0;
    }
  }

  const graph::Digraph& g_;
  ResidualNetwork net_;
  graph::VertexId source_;
  graph::VertexId sink_;
  PushRelabelOptions options_;
  util::StopCheck stop_;
  std::size_t n_;
  std::vector<std::uint32_t> height_;
  std::vector<double> excess_;
  std::vector<std::uint32_t> next_arc_;
  std::vector<bool> in_queue_;
  std::vector<std::uint32_t> height_count_;
  std::queue<graph::VertexId> active_;
  std::uint64_t relabels_ = 0;
  std::uint64_t global_relabels_ = 0;
};

}  // namespace

FlowResult PushRelabel::solve(const graph::FlowProblem& problem,
                              const util::SolveControl& control) const {
  if (problem.source == problem.sink)
    throw std::invalid_argument("PushRelabel: source == sink");
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "maxflow.push_relabel.solve_time_us");
  return PushRelabelState(problem, options_, control).run();
}

}  // namespace ppuf::maxflow
