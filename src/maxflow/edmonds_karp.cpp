#include "maxflow/edmonds_karp.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

#include "maxflow/residual.hpp"
#include "obs/metrics.hpp"

namespace ppuf::maxflow {

FlowResult EdmondsKarp::solve(const graph::FlowProblem& problem,
                              const util::SolveControl& control) const {
  const graph::Digraph& g = *problem.graph;
  if (problem.source == problem.sink)
    throw std::invalid_argument("EdmondsKarp: source == sink");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::ScopedTimer timer(reg, "maxflow.edmonds_karp.solve_time_us");
  std::uint64_t augmentations = 0;
  ResidualNetwork net(g);
  const std::size_t n = net.vertex_count();
  const double eps = net.epsilon();
  util::StopCheck stop(control);

  FlowResult result;
  result.value = 0.0;

  // parent_vertex / parent_arc record the BFS tree for path recovery.
  std::vector<graph::VertexId> parent_vertex(n);
  std::vector<std::uint32_t> parent_arc(n);
  std::vector<bool> visited(n);

  for (;;) {
    if (stop.should_stop()) {
      result.status = stop.status("EdmondsKarp");
      break;
    }
    std::fill(visited.begin(), visited.end(), false);
    std::queue<graph::VertexId> queue;
    queue.push(problem.source);
    visited[problem.source] = true;
    bool found = false;
    while (!queue.empty() && !found && !stop.should_stop()) {
      const graph::VertexId v = queue.front();
      queue.pop();
      const auto& arcs = net.arcs(v);
      for (std::uint32_t i = 0; i < arcs.size(); ++i) {
        ++result.work;
        const Arc& a = arcs[i];
        if (a.residual <= eps || visited[a.to]) continue;
        visited[a.to] = true;
        parent_vertex[a.to] = v;
        parent_arc[a.to] = i;
        if (a.to == problem.sink) {
          found = true;
          break;
        }
        queue.push(a.to);
      }
    }
    if (stop.should_stop()) {
      // An interrupted BFS proves nothing about remaining paths; report
      // the typed stop reason instead of a silent "maximum" result.
      result.status = stop.status("EdmondsKarp");
      break;
    }
    if (!found) break;

    // Bottleneck along the path.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (graph::VertexId v = problem.sink; v != problem.source;
         v = parent_vertex[v]) {
      bottleneck = std::min(
          bottleneck, net.arcs(parent_vertex[v])[parent_arc[v]].residual);
    }
    // Augment.
    for (graph::VertexId v = problem.sink; v != problem.source;
         v = parent_vertex[v]) {
      net.push(parent_vertex[v], parent_arc[v], bottleneck);
    }
    result.value += bottleneck;
    ++augmentations;
  }

  result.edge_flow = net.edge_flows(g);
  if (reg.enabled()) {
    reg.counter("maxflow.edmonds_karp.solves").add();
    reg.counter("maxflow.edmonds_karp.work").add(result.work);
    reg.counter("maxflow.edmonds_karp.augmentations").add(augmentations);
  }
  return result;
}

}  // namespace ppuf::maxflow
