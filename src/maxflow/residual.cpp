#include "maxflow/residual.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ppuf::maxflow {

ResidualNetwork::ResidualNetwork(const graph::Digraph& g) {
  if (!g.finalized())
    throw std::logic_error("ResidualNetwork: graph not finalized");
  adj_.resize(g.vertex_count());
  double max_cap = 0.0;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const graph::Edge& edge = g.edge(e);
    // A NaN capacity would silently poison every residual comparison (all
    // comparisons false) and can loop solvers forever; reject malformed
    // instances up front with a typed error every solver shares.
    if (!std::isfinite(edge.capacity) || edge.capacity < 0.0) {
      throw std::invalid_argument(
          "ResidualNetwork: capacity of edge " + std::to_string(e) +
          " is not finite and non-negative (" +
          std::to_string(edge.capacity) + ")");
    }
    max_cap = std::max(max_cap, edge.capacity);
    auto& fwd_list = adj_[edge.from];
    auto& bwd_list = adj_[edge.to];
    Arc fwd;
    fwd.to = edge.to;
    fwd.rev = static_cast<std::uint32_t>(bwd_list.size());
    fwd.residual = edge.capacity;
    fwd.orig = e;
    fwd.forward = true;
    Arc bwd;
    bwd.to = edge.from;
    bwd.rev = static_cast<std::uint32_t>(fwd_list.size());
    bwd.residual = 0.0;
    bwd.forward = false;
    fwd_list.push_back(fwd);
    bwd_list.push_back(bwd);
  }
  eps_ = std::max(max_cap, 1.0) * kRelativeEps;
}

void ResidualNetwork::push(graph::VertexId v, std::uint32_t arc_index,
                           double amount) {
  Arc& a = adj_[v][arc_index];
  if (amount > a.residual + eps_)
    throw std::logic_error("ResidualNetwork::push: over-push");
  a.residual -= amount;
  adj_[a.to][a.rev].residual += amount;
}

std::vector<double> ResidualNetwork::edge_flows(
    const graph::Digraph& g) const {
  std::vector<double> flow(g.edge_count(), 0.0);
  for (const auto& list : adj_) {
    for (const Arc& a : list) {
      if (!a.forward) continue;
      const double f = g.edge(a.orig).capacity - a.residual;
      flow[a.orig] = std::max(0.0, f);
    }
  }
  return flow;
}

}  // namespace ppuf::maxflow
