#include "maxflow/parallel_push_relabel.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "maxflow/residual.hpp"
#include "obs/metrics.hpp"

namespace ppuf::maxflow {

namespace {

class State {
 public:
  State(const graph::FlowProblem& problem, unsigned threads,
        const util::SolveControl& control)
      : g_(*problem.graph),
        net_(g_),
        source_(problem.source),
        sink_(problem.sink),
        threads_(threads),
        stop_(control),
        n_(net_.vertex_count()),
        height_(n_, 0),
        excess_(std::make_unique<std::atomic<double>[]>(n_)),
        locks_(std::make_unique<std::mutex[]>(n_)) {
    for (std::size_t v = 0; v < n_; ++v)
      excess_[v].store(0.0, std::memory_order_relaxed);
  }

  FlowResult run() {
    FlowResult result;
    initialize();
    std::uint64_t rounds = 0;
    std::vector<graph::VertexId> active = collect_active();
    while (!active.empty()) {
      // Cancellation granularity is one synchronous round: workers never
      // observe the stop flag mid-round, so the barrier invariants hold
      // and the partial preflow is still internally consistent.
      if (stop_.should_stop()) {
        result.status = stop_.status("ParallelPushRelabel");
        break;
      }
      round(active);
      ++rounds;
      active = collect_active();
    }
    result.value = excess_[sink_].load(std::memory_order_relaxed);
    result.edge_flow = net_.edge_flows(g_);
    result.work = work_.load(std::memory_order_relaxed);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    if (reg.enabled()) {
      reg.counter("maxflow.parallel_push_relabel.solves").add();
      reg.counter("maxflow.parallel_push_relabel.work").add(result.work);
      reg.counter("maxflow.parallel_push_relabel.rounds").add(rounds);
    }
    return result;
  }

 private:
  void initialize() {
    height_[source_] = static_cast<std::uint32_t>(n_);
    auto& arcs = net_.arcs(source_);
    for (std::uint32_t i = 0; i < arcs.size(); ++i) {
      const double cap = arcs[i].residual;
      if (cap <= net_.epsilon()) continue;
      net_.push(source_, i, cap);
      excess_[arcs[i].to].fetch_add(cap, std::memory_order_relaxed);
    }
  }

  std::vector<graph::VertexId> collect_active() const {
    std::vector<graph::VertexId> active;
    for (graph::VertexId v = 0; v < n_; ++v) {
      if (v == source_ || v == sink_) continue;
      if (excess_[v].load(std::memory_order_relaxed) > net_.epsilon() &&
          height_[v] <= 2 * n_) {
        active.push_back(v);
      }
    }
    return active;
  }

  /// One synchronous round over the current active set.
  void round(const std::vector<graph::VertexId>& active) {
    // Height snapshot: all pushes this round go strictly downhill in the
    // snapshot (h(u) = h(v) + 1), so no push can invalidate the height
    // function regardless of interleaving.
    const std::vector<std::uint32_t> snapshot = height_;

    auto worker = [&](std::size_t begin, std::size_t end) {
      std::uint64_t local_work = 0;
      for (std::size_t k = begin; k < end; ++k) {
        const graph::VertexId u = active[k];
        // Only this worker decreases u's excess (active vertices are
        // distinct); concurrent inflow only increases it, so the cached
        // value is a safe budget.
        double remaining = excess_[u].load(std::memory_order_relaxed);
        auto& arcs = net_.arcs(u);
        for (std::uint32_t i = 0;
             i < arcs.size() && remaining > net_.epsilon(); ++i) {
          ++local_work;
          Arc& a = arcs[i];
          if (snapshot[u] != snapshot[a.to] + 1) continue;
          double pushed = 0.0;
          {
            const graph::VertexId v = a.to;
            std::mutex& first = locks_[std::min(u, v)];
            std::mutex& second = locks_[std::max(u, v)];
            const std::scoped_lock lock(first, second);
            pushed = std::min(remaining, a.residual);
            if (pushed > net_.epsilon()) {
              a.residual -= pushed;
              net_.arcs(v)[a.rev].residual += pushed;
            } else {
              pushed = 0.0;
            }
          }
          if (pushed > 0.0) {
            excess_[u].fetch_sub(pushed, std::memory_order_relaxed);
            excess_[a.to].fetch_add(pushed, std::memory_order_relaxed);
            remaining -= pushed;
          }
        }
      }
      work_.fetch_add(local_work, std::memory_order_relaxed);
    };

    const std::size_t chunk = (active.size() + threads_ - 1) / threads_;
    if (threads_ <= 1 || active.size() <= 1) {
      worker(0, active.size());
    } else {
      std::vector<std::thread> pool;
      for (unsigned t = 1; t < threads_; ++t) {
        const std::size_t begin = t * chunk;
        if (begin >= active.size()) break;
        pool.emplace_back(worker, begin,
                          std::min(begin + chunk, active.size()));
      }
      worker(0, std::min(chunk, active.size()));
      for (auto& th : pool) th.join();
    }

    // Barrier relabel in two phases — compute every new label against the
    // (unchanged) heights and the post-round residuals, then write — so
    // the height function stays valid for every arc the round created.
    std::vector<std::pair<graph::VertexId, std::uint32_t>> relabels;
    std::uint64_t relabel_work = 0;
    for (const graph::VertexId u : active) {
      if (excess_[u].load(std::memory_order_relaxed) <= net_.epsilon() ||
          height_[u] > 2 * n_) {
        continue;
      }
      auto best = static_cast<std::uint32_t>(2 * n_) + 1;
      for (const Arc& a : net_.arcs(u)) {
        ++relabel_work;
        if (a.residual > net_.epsilon())
          best = std::min(best, height_[a.to] + 1);
      }
      if (best > height_[u]) relabels.emplace_back(u, best);
    }
    for (const auto& [u, h] : relabels) height_[u] = h;
    work_.fetch_add(relabel_work, std::memory_order_relaxed);
  }

  const graph::Digraph& g_;
  ResidualNetwork net_;
  graph::VertexId source_;
  graph::VertexId sink_;
  unsigned threads_;
  util::StopCheck stop_;
  std::size_t n_;
  std::vector<std::uint32_t> height_;
  std::unique_ptr<std::atomic<double>[]> excess_;
  std::unique_ptr<std::mutex[]> locks_;
  std::atomic<std::uint64_t> work_{0};
};

}  // namespace

FlowResult ParallelPushRelabel::solve(
    const graph::FlowProblem& problem,
    const util::SolveControl& control) const {
  if (problem.source == problem.sink)
    throw std::invalid_argument("ParallelPushRelabel: source == sink");
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "maxflow.parallel_push_relabel.solve_time_us");
  return State(problem, thread_count_, control).run();
}

}  // namespace ppuf::maxflow
