#include "maxflow/approximate.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "maxflow/residual.hpp"
#include "obs/metrics.hpp"

namespace ppuf::maxflow {

ApproximateResult solve_approximate(const graph::FlowProblem& problem,
                                    double epsilon,
                                    const util::SolveControl& control) {
  if (problem.source == problem.sink)
    throw std::invalid_argument("solve_approximate: source == sink");
  if (epsilon < 0.0 || epsilon >= 1.0)
    throw std::invalid_argument("solve_approximate: epsilon in [0, 1)");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::ScopedTimer timer(reg, "maxflow.approximate.solve_time_us");
  std::uint64_t phases = 0;
  std::uint64_t augmentations = 0;

  const graph::Digraph& g = *problem.graph;
  ResidualNetwork net(g);
  const std::size_t n = net.vertex_count();
  const auto m = static_cast<double>(g.edge_count());
  util::StopCheck stop(control);

  double max_cap = 0.0;
  for (const graph::Edge& e : g.edges()) max_cap = std::max(max_cap, e.capacity);

  ApproximateResult result;
  if (max_cap <= 0.0) {
    result.edge_flow.assign(g.edge_count(), 0.0);
    return result;
  }

  std::vector<graph::VertexId> parent_vertex(n);
  std::vector<std::uint32_t> parent_arc(n);
  std::vector<bool> visited(n);

  // One BFS-augmentation pass restricted to residual >= delta; returns
  // false when no such path remains.
  auto augment_once = [&](double delta) {
    std::fill(visited.begin(), visited.end(), false);
    std::queue<graph::VertexId> queue;
    queue.push(problem.source);
    visited[problem.source] = true;
    bool found = false;
    while (!queue.empty() && !found && !stop.should_stop()) {
      const graph::VertexId v = queue.front();
      queue.pop();
      const auto& arcs = net.arcs(v);
      for (std::uint32_t i = 0; i < arcs.size(); ++i) {
        ++result.work;
        const Arc& a = arcs[i];
        if (a.residual < delta || visited[a.to]) continue;
        visited[a.to] = true;
        parent_vertex[a.to] = v;
        parent_arc[a.to] = i;
        if (a.to == problem.sink) {
          found = true;
          break;
        }
        queue.push(a.to);
      }
    }
    // An interrupted search must not augment along a half-built tree.
    if (!found || stop.should_stop()) return false;
    double bottleneck = std::numeric_limits<double>::infinity();
    for (graph::VertexId v = problem.sink; v != problem.source;
         v = parent_vertex[v]) {
      bottleneck = std::min(
          bottleneck, net.arcs(parent_vertex[v])[parent_arc[v]].residual);
    }
    for (graph::VertexId v = problem.sink; v != problem.source;
         v = parent_vertex[v]) {
      net.push(parent_vertex[v], parent_arc[v], bottleneck);
    }
    result.value += bottleneck;
    ++augmentations;
    return true;
  };

  // Start delta at the largest power of two <= max capacity.
  double delta = std::pow(2.0, std::floor(std::log2(max_cap)));
  const double floor_delta = net.epsilon();
  for (;;) {
    while (augment_once(delta)) {
    }
    ++phases;
    if (stop.should_stop()) {
      // The flow found so far is feasible; the certificate below would
      // only be valid for a *finished* phase, so keep the bound from the
      // previous phase and surface the typed stop reason.
      result.status = stop.status("solve_approximate");
      break;
    }
    // Certificate: every remaining augmenting path has bottleneck < delta,
    // so at most one delta per edge crossing the bottleneck cut remains.
    result.optimum_upper_bound = result.value + m * delta;
    if (epsilon > 0.0 && result.value >=
                             (1.0 - epsilon) * result.optimum_upper_bound) {
      break;
    }
    if (delta <= floor_delta) {
      // Exhausted the scaling: the flow is maximum up to rounding.
      result.optimum_upper_bound = result.value;
      break;
    }
    delta *= 0.5;
  }

  result.edge_flow = net.edge_flows(g);
  if (reg.enabled()) {
    reg.counter("maxflow.approximate.solves").add();
    reg.counter("maxflow.approximate.work").add(result.work);
    reg.counter("maxflow.approximate.phases").add(phases);
    reg.counter("maxflow.approximate.augmentations").add(augmentations);
  }
  return result;
}

}  // namespace ppuf::maxflow
