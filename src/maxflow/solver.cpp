#include "maxflow/solver.hpp"

#include <stdexcept>

#include "maxflow/dinic.hpp"
#include "maxflow/edmonds_karp.hpp"
#include "maxflow/push_relabel.hpp"

namespace ppuf::maxflow {

std::unique_ptr<Solver> make_solver(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kEdmondsKarp:
      return std::make_unique<EdmondsKarp>();
    case Algorithm::kDinic:
      return std::make_unique<Dinic>();
    case Algorithm::kPushRelabel:
      return std::make_unique<PushRelabel>();
  }
  throw std::invalid_argument("make_solver: unknown algorithm");
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kEdmondsKarp, Algorithm::kDinic,
          Algorithm::kPushRelabel};
}

std::string algorithm_name(Algorithm algorithm) {
  return make_solver(algorithm)->name();
}

}  // namespace ppuf::maxflow
