// Common interface for the max-flow algorithms (the paper's "simulation
// model", Section 2).  Capacities are real-valued because the circuit's edge
// capacities are saturation currents in amperes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "util/status.hpp"

namespace ppuf::maxflow {

/// Tolerance below which a residual capacity counts as exhausted.  Relative
/// to the problem's largest capacity; see ResidualNetwork::epsilon().
constexpr double kRelativeEps = 1e-12;

/// Solution to a max-flow instance.
struct FlowResult {
  double value = 0.0;              ///< net flow out of the source
  std::vector<double> edge_flow;   ///< per input-edge flow, indexed by EdgeId
  std::uint64_t work = 0;          ///< algorithm-specific operation count
  /// Typed outcome.  Ok on a completed solve; kDeadlineExceeded /
  /// kCancelled when a SolveControl stopped the solve early (value and
  /// edge_flow then hold the partial internal state — a preflow for
  /// push-relabel — and must not be treated as a maximum flow);
  /// kInvalidArgument / kInternal are produced by solve_batch for items
  /// whose solve threw.
  util::Status status;

  bool ok() const { return status.is_ok(); }
};

/// Abstract max-flow solver.  All implementations support cooperative
/// cancellation and wall-clock budgets through util::SolveControl; the
/// single-argument overload imposes no constraint.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Solve the instance; the graph must be finalized, source != sink, and
  /// all capacities finite and non-negative (else std::invalid_argument).
  FlowResult solve(const graph::FlowProblem& problem) const {
    return solve(problem, util::SolveControl{});
  }

  /// Deadline-aware, cancellable solve.  On stop, returns early with
  /// result.status set (never throws for deadline/cancel); cancellation
  /// latency is bounded by a few hundred inner-loop operations.
  virtual FlowResult solve(const graph::FlowProblem& problem,
                           const util::SolveControl& control) const = 0;

  /// Human-readable algorithm name for bench tables.
  virtual std::string name() const = 0;
};

/// Algorithm selector used by benches and the public simulation model.
enum class Algorithm {
  kEdmondsKarp,  ///< augmenting path (BFS), O(V E^2)
  kDinic,        ///< blocking flow, O(V^2 E)
  kPushRelabel,  ///< FIFO push-relabel with gap + global relabel, O(V^3)
};

std::unique_ptr<Solver> make_solver(Algorithm algorithm);

/// All algorithms, for cross-checking and benches.
std::vector<Algorithm> all_algorithms();

std::string algorithm_name(Algorithm algorithm);

}  // namespace ppuf::maxflow
