#include "maxflow/verify.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace ppuf::maxflow {

namespace {

/// Residual adjacency oracle over (g, flow) without materialising the
/// residual graph: forward arcs with slack plus backward arcs with flow.
graph::NeighborFn residual_neighbors(const graph::Digraph& g,
                                     std::span<const double> flow,
                                     double tolerance,
                                     const std::vector<std::vector<
                                         graph::EdgeId>>& in_edges) {
  return [&g, flow, tolerance, &in_edges](graph::VertexId v,
                                          std::vector<graph::VertexId>& out) {
    for (graph::EdgeId e : g.out_edges(v)) {
      if (g.edge(e).capacity - flow[e] > tolerance) out.push_back(g.edge(e).to);
    }
    for (graph::EdgeId e : in_edges[v]) {
      if (flow[e] > tolerance) out.push_back(g.edge(e).from);
    }
  };
}

std::vector<std::vector<graph::EdgeId>> build_in_edges(
    const graph::Digraph& g) {
  std::vector<std::vector<graph::EdgeId>> in_edges(g.vertex_count());
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e)
    in_edges[g.edge(e).to].push_back(e);
  return in_edges;
}

}  // namespace

VerifyResult verify_flow(const graph::Digraph& g, graph::VertexId source,
                         graph::VertexId sink, std::span<const double> flow,
                         double tolerance, unsigned thread_count) {
  if (flow.size() != g.edge_count())
    throw std::invalid_argument("verify_flow: flow size mismatch");
  if (source >= g.vertex_count() || sink >= g.vertex_count() ||
      source == sink)
    throw std::invalid_argument("verify_flow: bad source/sink");

  VerifyResult result;

  // Capacity constraints: 0 <= f(e) <= c(e).
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (flow[e] < -tolerance || flow[e] > g.edge(e).capacity + tolerance) {
      std::ostringstream os;
      os << "capacity violated on edge " << e << ": f=" << flow[e]
         << " c=" << g.edge(e).capacity;
      result.reason = os.str();
      return result;
    }
  }

  // Conservation at every internal vertex.
  std::vector<double> net(g.vertex_count(), 0.0);
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    net[g.edge(e).from] -= flow[e];
    net[g.edge(e).to] += flow[e];
  }
  // Tolerance scales with degree: each incident edge — incoming AND
  // outgoing — contributes its own measurement error, so the slack must
  // cover the full incident count or a high-in-degree vertex with
  // legitimate per-edge error gets falsely rejected.
  const auto in_edges = build_in_edges(g);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    if (v == source || v == sink) continue;
    const double slack =
        tolerance * static_cast<double>(
                        in_edges[v].size() + g.out_degree(v));
    if (std::abs(net[v]) > slack) {
      std::ostringstream os;
      os << "conservation violated at vertex " << v << ": net=" << net[v];
      result.reason = os.str();
      return result;
    }
  }
  result.feasible = true;
  result.value = -net[source];

  // Optimality: the sink must be unreachable in the residual graph.
  const auto neighbors = residual_neighbors(g, flow, tolerance, in_edges);
  const auto dist =
      thread_count <= 1
          ? graph::bfs_distances(g.vertex_count(), source, neighbors)
          : graph::bfs_distances_parallel(g.vertex_count(), source, neighbors,
                                          thread_count);
  if (dist[sink] != graph::kUnreachable) {
    result.reason = "augmenting path remains (flow not maximum)";
    return result;
  }
  result.optimal = true;
  return result;
}

std::vector<bool> residual_reachable(const graph::Digraph& g,
                                     graph::VertexId source,
                                     std::span<const double> flow,
                                     double tolerance,
                                     unsigned thread_count) {
  if (flow.size() != g.edge_count())
    throw std::invalid_argument("residual_reachable: flow size mismatch");
  const auto in_edges = build_in_edges(g);
  const auto neighbors = residual_neighbors(g, flow, tolerance, in_edges);
  const auto dist =
      thread_count <= 1
          ? graph::bfs_distances(g.vertex_count(), source, neighbors)
          : graph::bfs_distances_parallel(g.vertex_count(), source, neighbors,
                                          thread_count);
  std::vector<bool> side(g.vertex_count(), false);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    side[v] = dist[v] != graph::kUnreachable;
  return side;
}

double cut_capacity(const graph::Digraph& g, const std::vector<bool>& side) {
  if (side.size() != g.vertex_count())
    throw std::invalid_argument("cut_capacity: side size mismatch");
  double total = 0.0;
  for (const graph::Edge& e : g.edges()) {
    if (side[e.from] && !side[e.to]) total += e.capacity;
  }
  return total;
}

}  // namespace ppuf::maxflow
