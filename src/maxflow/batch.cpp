#include "maxflow/batch.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>

#include "util/fault_hooks.hpp"

namespace ppuf::maxflow {

namespace {

/// Solve one item, classifying every failure into the result's status.
/// Never throws: a batch is only useful if one bad instance cannot take
/// the other fifteen down with it.
FlowResult solve_one(const Solver& solver, const graph::FlowProblem& problem,
                     const BatchOptions& options) {
  const int attempts = std::max(1, options.max_attempts);
  FlowResult result;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    try {
      if (util::FaultHooks::consume_transient_failure())
        throw util::TransientError("injected transient max-flow failure");
      return solver.solve(problem, options.control);
    } catch (const util::TransientError& e) {
      if (attempt == attempts) {
        result.status = util::Status::internal(
            std::string("transient failure persisted after ") +
            std::to_string(attempts) + " attempts: " + e.what());
      }
      // else: retry.
    } catch (const std::invalid_argument& e) {
      result.status = util::Status::invalid_argument(e.what());
      break;
    } catch (const std::exception& e) {
      result.status = util::Status::internal(e.what());
      break;
    }
  }
  return result;
}

}  // namespace

std::vector<FlowResult> solve_batch(
    const std::vector<graph::FlowProblem>& problems, Algorithm algorithm,
    const BatchOptions& options) {
  std::vector<FlowResult> results(problems.size());
  if (problems.empty()) return results;

  // StopCheck is stateful, so each worker carries its own (sharing one
  // across threads would race on its poll counter).
  auto run_item = [&](const Solver& solver, util::StopCheck& stop,
                      std::size_t i) {
    if (stop.should_stop()) {
      // Don't start work the control has already revoked; mark the item
      // with the typed reason instead.
      results[i].status = stop.status("solve_batch");
      return;
    }
    results[i] = solve_one(solver, problems[i], options);
  };

  if (options.thread_count <= 1) {
    const auto solver = make_solver(algorithm);
    util::StopCheck stop(options.control, /*stride=*/1);
    for (std::size_t i = 0; i < problems.size(); ++i)
      run_item(*solver, stop, i);
    return results;
  }

  // Work stealing via an atomic cursor; each worker owns its own solver
  // instance (solvers are stateless but cheap to duplicate anyway).
  // Workers keep draining after per-item failures — every failure mode is
  // captured in that item's status by run_item.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    const auto solver = make_solver(algorithm);
    util::StopCheck stop(options.control, /*stride=*/1);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= problems.size()) return;
      run_item(*solver, stop, i);
    }
  };

  std::vector<std::thread> threads;
  const unsigned spawned =
      std::min<unsigned>(options.thread_count,
                         static_cast<unsigned>(problems.size()));
  threads.reserve(spawned - 1);
  for (unsigned t = 1; t < spawned; ++t) threads.emplace_back(worker);
  worker();
  for (auto& th : threads) th.join();
  return results;
}

std::vector<FlowResult> solve_batch(
    const std::vector<graph::FlowProblem>& problems, Algorithm algorithm,
    unsigned thread_count) {
  BatchOptions options;
  options.thread_count = thread_count;
  return solve_batch(problems, algorithm, options);
}

}  // namespace ppuf::maxflow
