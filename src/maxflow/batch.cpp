#include "maxflow/batch.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/fault_hooks.hpp"

namespace ppuf::maxflow {

namespace {

/// Per-batch metric handles, resolved once per solve_batch call so the
/// per-item hot path never touches the registry map.  All null when the
/// registry is disabled.
struct BatchMetrics {
  obs::Counter* items = nullptr;
  obs::Counter* item_failures = nullptr;
  obs::Counter* retries = nullptr;
  obs::Histogram* item_time_us = nullptr;

  static BatchMetrics resolve() {
    BatchMetrics m;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    if (!reg.enabled()) return m;
    m.items = &reg.counter("maxflow.batch.items");
    m.item_failures = &reg.counter("maxflow.batch.item_failures");
    m.retries = &reg.counter("maxflow.batch.retries");
    m.item_time_us = &reg.histogram("maxflow.batch.item_time_us");
    return m;
  }
};

/// Solve one item, classifying every failure into the result's status.
/// Never throws: a batch is only useful if one bad instance cannot take
/// the other fifteen down with it.
FlowResult solve_one(const Solver& solver, const graph::FlowProblem& problem,
                     const BatchOptions& options,
                     const BatchMetrics& metrics) {
  const int attempts = std::max(1, options.max_attempts);
  obs::ScopedTimer timer(metrics.item_time_us);
  if (metrics.items != nullptr) metrics.items->add();
  FlowResult result;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    try {
      if (util::FaultHooks::consume_transient_failure())
        throw util::TransientError("injected transient max-flow failure");
      return solver.solve(problem, options.control);
    } catch (const util::TransientError& e) {
      if (attempt == attempts) {
        result.status = util::Status::internal(
            std::string("transient failure persisted after ") +
            std::to_string(attempts) + " attempts: " + e.what());
      } else if (metrics.retries != nullptr) {
        metrics.retries->add();
      }
    } catch (const std::invalid_argument& e) {
      result.status = util::Status::invalid_argument(e.what());
      break;
    } catch (const std::exception& e) {
      result.status = util::Status::internal(e.what());
      break;
    }
  }
  if (metrics.item_failures != nullptr && !result.status.is_ok())
    metrics.item_failures->add();
  return result;
}

}  // namespace

std::vector<FlowResult> solve_batch(
    const std::vector<graph::FlowProblem>& problems, Algorithm algorithm,
    const BatchOptions& options) {
  std::vector<FlowResult> results(problems.size());
  if (problems.empty()) return results;
  const BatchMetrics metrics = BatchMetrics::resolve();

  if (options.pool == nullptr && options.thread_count <= 1) {
    // Serial fast path on the calling thread: no pool, no handoff.
    // StopCheck is stateful, hence local to this path.
    const auto solver = make_solver(algorithm);
    util::StopCheck stop(options.control, /*stride=*/1);
    for (std::size_t i = 0; i < problems.size(); ++i) {
      if (stop.should_stop()) {
        // Don't start work the control has already revoked; mark the item
        // with the typed reason instead.
        results[i].status = stop.status("solve_batch");
        continue;
      }
      results[i] = solve_one(*solver, problems[i], options, metrics);
    }
    return results;
  }

  // Pool path: the control-aware parallel_for keeps dispatching every item
  // after a stop, handing the sticky status to the body so unattempted
  // items are marked rather than dropped.  Workers keep draining after
  // per-item failures — every failure mode lands in that item's status.
  auto run_all = [&](util::ThreadPool& pool) {
    pool.parallel_for(
        problems.size(),
        [&](std::size_t i, const util::Status& stop) {
          if (!stop.is_ok()) {
            results[i].status = stop;
            return;
          }
          const auto solver = make_solver(algorithm);
          results[i] = solve_one(*solver, problems[i], options, metrics);
        },
        options.control);
  };
  if (options.pool != nullptr) {
    run_all(*options.pool);
  } else {
    util::ThreadPool pool(options.thread_count);
    run_all(pool);
  }
  return results;
}

std::vector<FlowResult> solve_batch(
    const std::vector<graph::FlowProblem>& problems, Algorithm algorithm,
    unsigned thread_count) {
  BatchOptions options;
  options.thread_count = thread_count;
  return solve_batch(problems, algorithm, options);
}

}  // namespace ppuf::maxflow
