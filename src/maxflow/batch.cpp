#include "maxflow/batch.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace ppuf::maxflow {

std::vector<FlowResult> solve_batch(
    const std::vector<graph::FlowProblem>& problems, Algorithm algorithm,
    unsigned thread_count) {
  std::vector<FlowResult> results(problems.size());
  if (problems.empty()) return results;

  if (thread_count <= 1) {
    const auto solver = make_solver(algorithm);
    for (std::size_t i = 0; i < problems.size(); ++i)
      results[i] = solver->solve(problems[i]);
    return results;
  }

  // Work stealing via an atomic cursor; each worker owns its own solver
  // instance (solvers are stateless but cheap to duplicate anyway).
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    const auto solver = make_solver(algorithm);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= problems.size()) return;
      try {
        results[i] = solver->solve(problems[i]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  const unsigned spawned =
      std::min<unsigned>(thread_count,
                         static_cast<unsigned>(problems.size()));
  threads.reserve(spawned - 1);
  for (unsigned t = 1; t < spawned; ++t) threads.emplace_back(worker);
  worker();
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace ppuf::maxflow
