// Multi-source / multi-sink max-flow (the paper's Section 2 formulates the
// problem with vertex *sets* S and T).  Solved by the classic supernode
// reduction: add a super-source wired to every source and a super-sink
// wired from every sink with unbounded capacity, run any single-terminal
// solver, then strip the auxiliary edges from the reported flow.
#pragma once

#include <vector>

#include "maxflow/solver.hpp"

namespace ppuf::maxflow {

struct MultiTerminalProblem {
  const graph::Digraph* graph = nullptr;
  std::vector<graph::VertexId> sources;
  std::vector<graph::VertexId> sinks;
};

/// Max-flow value and per-edge flows (indexed by the ORIGINAL graph's edge
/// ids) for a multi-terminal instance.  Throws std::invalid_argument when
/// the terminal sets are empty or overlap.
FlowResult solve_multi_terminal(const MultiTerminalProblem& problem,
                                Algorithm algorithm = Algorithm::kPushRelabel);

/// The supernode reduction itself, exposed for tests and for callers that
/// want to run several algorithms on one expanded graph: returns the
/// expanded graph; `super_source`/`super_sink` receive the new terminals.
/// Original edge ids are preserved (auxiliary edges are appended after).
graph::Digraph expand_with_supernodes(const MultiTerminalProblem& problem,
                                      graph::VertexId* super_source,
                                      graph::VertexId* super_sink);

}  // namespace ppuf::maxflow
