// Flow verification — the cheap side of the paper's asymmetry (Section 2):
// checking a claimed max-flow needs only feasibility checks plus one BFS in
// the residual graph (O(n^2), parallelizable to O(n^2/p)), while computing
// the flow from scratch costs at least O(n^2) even approximately.
#pragma once

#include <span>
#include <string>

#include "graph/digraph.hpp"

namespace ppuf::maxflow {

/// Outcome of verifying a claimed flow.
struct VerifyResult {
  bool feasible = false;  ///< capacity + conservation constraints hold
  bool optimal = false;   ///< feasible and no augmenting path remains
  double value = 0.0;     ///< net flow out of the source
  std::string reason;     ///< first violated constraint, empty when optimal
};

/// Verify a claimed flow function (one value per EdgeId of `g`).
/// `tolerance` is the absolute slack allowed on each constraint; pass the
/// measurement accuracy when verifying currents read from a PPUF.
VerifyResult verify_flow(const graph::Digraph& g, graph::VertexId source,
                         graph::VertexId sink, std::span<const double> flow,
                         double tolerance, unsigned thread_count = 1);

/// Vertices reachable from `source` in the residual graph of (g, flow);
/// the source side of a minimum cut when the flow is maximum.
std::vector<bool> residual_reachable(const graph::Digraph& g,
                                     graph::VertexId source,
                                     std::span<const double> flow,
                                     double tolerance,
                                     unsigned thread_count = 1);

/// Capacity of the cut whose source side is `side` (sum of capacities of
/// edges leaving the side).  With `side = residual_reachable(...)` of a
/// maximum flow this equals the flow value (max-flow/min-cut).
double cut_capacity(const graph::Digraph& g, const std::vector<bool>& side);

}  // namespace ppuf::maxflow
