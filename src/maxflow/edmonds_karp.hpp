// Edmonds–Karp: shortest augmenting paths by BFS.  This is the
// "augmenting-path algorithm" the paper times via boost (Section 5).
#pragma once

#include "maxflow/solver.hpp"

namespace ppuf::maxflow {

class EdmondsKarp final : public Solver {
 public:
  using Solver::solve;
  FlowResult solve(const graph::FlowProblem& problem,
                   const util::SolveControl& control) const override;
  std::string name() const override { return "edmonds-karp"; }
};

}  // namespace ppuf::maxflow
