#include "maxflow/dinic.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

#include "maxflow/residual.hpp"
#include "obs/metrics.hpp"

namespace ppuf::maxflow {

namespace {

class DinicState {
 public:
  DinicState(const graph::FlowProblem& problem,
             const util::SolveControl& control)
      : g_(*problem.graph),
        net_(g_),
        source_(problem.source),
        sink_(problem.sink),
        stop_(control),
        level_(net_.vertex_count()),
        next_arc_(net_.vertex_count()) {}

  FlowResult run() {
    FlowResult result;
    std::uint64_t phases = 0;
    std::uint64_t augmentations = 0;
    while (build_level_graph(result)) {
      if (stop_.should_stop()) break;
      ++phases;
      std::fill(next_arc_.begin(), next_arc_.end(), 0);
      for (;;) {
        const double pushed =
            augment(source_, std::numeric_limits<double>::infinity(), result);
        if (pushed <= 0.0) break;
        result.value += pushed;
        ++augmentations;
        if (stop_.should_stop()) break;
      }
      if (stop_.should_stop()) break;
    }
    result.status = stop_.status("Dinic");
    result.edge_flow = net_.edge_flows(g_);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    if (reg.enabled()) {
      reg.counter("maxflow.dinic.solves").add();
      reg.counter("maxflow.dinic.work").add(result.work);
      reg.counter("maxflow.dinic.phases").add(phases);
      reg.counter("maxflow.dinic.augmentations").add(augmentations);
    }
    return result;
  }

 private:
  /// BFS from the source over positive-residual arcs; true if the sink is
  /// still reachable.
  bool build_level_graph(FlowResult& result) {
    std::fill(level_.begin(), level_.end(), kUnset);
    std::queue<graph::VertexId> queue;
    queue.push(source_);
    level_[source_] = 0;
    while (!queue.empty() && !stop_.should_stop()) {
      const graph::VertexId v = queue.front();
      queue.pop();
      for (const Arc& a : net_.arcs(v)) {
        ++result.work;
        if (a.residual <= net_.epsilon() || level_[a.to] != kUnset) continue;
        level_[a.to] = level_[v] + 1;
        queue.push(a.to);
      }
    }
    return level_[sink_] != kUnset;
  }

  /// DFS with the current-arc optimisation, sending at most `limit`.
  double augment(graph::VertexId v, double limit, FlowResult& result) {
    if (v == sink_) return limit;
    for (std::uint32_t& i = next_arc_[v]; i < net_.arcs(v).size(); ++i) {
      ++result.work;
      const Arc& a = net_.arcs(v)[i];
      if (a.residual <= net_.epsilon() || level_[a.to] != level_[v] + 1)
        continue;
      const double pushed =
          augment(a.to, std::min(limit, a.residual), result);
      if (pushed > 0.0) {
        net_.push(v, i, pushed);
        return pushed;
      }
    }
    return 0.0;
  }

  static constexpr std::uint32_t kUnset = static_cast<std::uint32_t>(-1);

  const graph::Digraph& g_;
  ResidualNetwork net_;
  graph::VertexId source_;
  graph::VertexId sink_;
  util::StopCheck stop_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> next_arc_;
};

}  // namespace

FlowResult Dinic::solve(const graph::FlowProblem& problem,
                        const util::SolveControl& control) const {
  if (problem.source == problem.sink)
    throw std::invalid_argument("Dinic: source == sink");
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "maxflow.dinic.solve_time_us");
  return DinicState(problem, control).run();
}

}  // namespace ppuf::maxflow
