// Batch max-flow solving across worker threads.
//
// The paper's parallel-attack discussion (Section 2) concerns parallelism
// *within* one max-flow instance — lower-bounded at O(n^2 log n / p).  An
// attacker's cheaper parallelism is *across* instances: the two networks of
// one challenge, or many CRPs of a model-building campaign, are independent
// solves.  (The feedback chain of Section 3.3 is immune: round i+1's
// instance is unknown until round i's response exists.)  This helper
// provides that embarrassing parallelism with plain std::thread workers.
#pragma once

#include <vector>

#include "maxflow/solver.hpp"

namespace ppuf::maxflow {

/// Solve all problems with `thread_count` workers; results are returned in
/// input order.  Each problem's graph must stay alive and unmodified for
/// the duration of the call.  thread_count <= 1 runs serially.
std::vector<FlowResult> solve_batch(
    const std::vector<graph::FlowProblem>& problems, Algorithm algorithm,
    unsigned thread_count);

}  // namespace ppuf::maxflow
