// Batch max-flow solving across worker threads.
//
// The paper's parallel-attack discussion (Section 2) concerns parallelism
// *within* one max-flow instance — lower-bounded at O(n^2 log n / p).  An
// attacker's cheaper parallelism is *across* instances: the two networks of
// one challenge, or many CRPs of a model-building campaign, are independent
// solves.  (The feedback chain of Section 3.3 is immune: round i+1's
// instance is unknown until round i's response exists.)  This helper
// provides that embarrassing parallelism on util::ThreadPool — either a
// caller-owned long-lived pool or a transient one per call.
//
// Failure semantics: one malformed or failing problem must not poison the
// batch.  Each item resolves independently to a FlowResult whose `status`
// records what happened — kOk, kInvalidArgument (malformed instance),
// kInternal (solver fault after retries), or kCancelled/kDeadlineExceeded
// once the shared SolveControl fires.  Workers keep draining after an item
// fails; solve_batch itself never throws for per-item faults.
#pragma once

#include <vector>

#include "maxflow/solver.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace ppuf::maxflow {

struct BatchOptions {
  /// Workers for the transient pool when `pool` is null; ignored otherwise.
  unsigned thread_count = 1;
  /// Optional long-lived pool (non-owning).  A service answering many
  /// batches should share one util::ThreadPool across calls instead of
  /// paying thread spawn per batch.
  util::ThreadPool* pool = nullptr;
  /// Shared deadline/cancellation for the whole batch.  Once it fires,
  /// in-flight solves stop cooperatively and remaining items are marked
  /// with the corresponding status without being attempted.
  util::SolveControl control{};
  /// Attempts per item.  A util::TransientError aborts the attempt and is
  /// retried up to max_attempts times before the item is marked kInternal;
  /// all other errors are terminal on the first occurrence.
  int max_attempts = 1;
};

/// Solve all problems on `options.pool` (or a transient pool of
/// `options.thread_count` workers); results are returned in input order
/// with per-item statuses (see above).  Each problem's graph must stay
/// alive and unmodified for the duration of the call.  With no pool and
/// thread_count <= 1 the batch runs serially on the calling thread.
/// Results are bitwise independent of the worker count: each item is a
/// deterministic solve, so 1-thread and N-thread runs agree exactly.
std::vector<FlowResult> solve_batch(
    const std::vector<graph::FlowProblem>& problems, Algorithm algorithm,
    const BatchOptions& options);

/// Back-compat wrapper: unlimited time, one attempt per item.
std::vector<FlowResult> solve_batch(
    const std::vector<graph::FlowProblem>& problems, Algorithm algorithm,
    unsigned thread_count);

}  // namespace ppuf::maxflow
