// Phase-synchronous parallel push-relabel.
//
// Section 2 of the paper bounds parallel max-flow at O(n^2 log n / p)
// (Shiloach-Vishkin); this solver realises in-instance parallelism in the
// push-relabel framework:
//   - each round, the active vertices are partitioned across workers;
//   - a worker discharges its vertices against a HEIGHT SNAPSHOT taken at
//     the start of the round (pushes go strictly downhill in the snapshot,
//     preserving the validity invariant);
//   - excess and residual updates are serialised with per-vertex locks
//     (ordered by id — no deadlock);
//   - relabels are computed against the snapshot and applied at the
//     round barrier.
// The result is deterministic-value (max-flow is unique in value) and
// exercises the concurrency machinery even on a single hardware thread.
#pragma once

#include "maxflow/solver.hpp"

namespace ppuf::maxflow {

class ParallelPushRelabel final : public Solver {
 public:
  explicit ParallelPushRelabel(unsigned thread_count = 2)
      : thread_count_(thread_count == 0 ? 1 : thread_count) {}

  using Solver::solve;
  FlowResult solve(const graph::FlowProblem& problem,
                   const util::SolveControl& control) const override;
  std::string name() const override { return "parallel-push-relabel"; }

  unsigned thread_count() const { return thread_count_; }

 private:
  unsigned thread_count_;
};

}  // namespace ppuf::maxflow
