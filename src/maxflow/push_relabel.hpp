// Goldberg–Tarjan FIFO push-relabel with the gap heuristic and periodic
// global relabeling — the asymptotically strongest sequential method the
// paper references (O(n^3) on complete graphs) and the main algorithm it
// benchmarks through boost.
#pragma once

#include "maxflow/solver.hpp"

namespace ppuf::maxflow {

/// Heuristic toggles, exposed so the ablation bench can quantify what the
/// gap/global-relabel heuristics buy on complete graphs.
struct PushRelabelOptions {
  bool gap_heuristic = true;
  bool global_relabel = true;
  /// Run a global relabel every `global_relabel_period * n` discharge
  /// operations (ignored when global_relabel is false).
  double global_relabel_period = 1.0;
};

class PushRelabel final : public Solver {
 public:
  PushRelabel() = default;
  explicit PushRelabel(const PushRelabelOptions& options)
      : options_(options) {}

  using Solver::solve;
  FlowResult solve(const graph::FlowProblem& problem,
                   const util::SolveControl& control) const override;
  std::string name() const override { return "push-relabel"; }

 private:
  PushRelabelOptions options_;
};

}  // namespace ppuf::maxflow
