// Residual network in the classic paired-arc representation shared by all
// solver implementations, and the bridge back to per-input-edge flows.
#pragma once

#include <limits>
#include <vector>

#include "graph/digraph.hpp"
#include "maxflow/solver.hpp"

namespace ppuf::maxflow {

/// One residual arc.  Forward arcs mirror input edges; backward arcs carry
/// the cancellable flow.
struct Arc {
  graph::VertexId to = 0;
  std::uint32_t rev = 0;        ///< index of the paired arc in arcs(to)
  double residual = 0.0;
  graph::EdgeId orig = graph::kInvalidVertex;  ///< input edge id (forward only)
  bool forward = false;
};

/// Mutable residual network built from a finalized Digraph.
class ResidualNetwork {
 public:
  explicit ResidualNetwork(const graph::Digraph& g);

  std::size_t vertex_count() const { return adj_.size(); }

  std::vector<Arc>& arcs(graph::VertexId v) { return adj_[v]; }
  const std::vector<Arc>& arcs(graph::VertexId v) const { return adj_[v]; }

  /// Absolute tolerance for "residual capacity is positive", derived from
  /// the largest input capacity so the algorithms are scale-invariant.
  double epsilon() const { return eps_; }

  /// Push `amount` through the arc at (v, arc_index), updating its pair.
  void push(graph::VertexId v, std::uint32_t arc_index, double amount);

  /// Recover per-input-edge flows (flow = capacity - forward residual).
  std::vector<double> edge_flows(const graph::Digraph& g) const;

 private:
  std::vector<std::vector<Arc>> adj_;
  double eps_ = kRelativeEps;
};

}  // namespace ppuf::maxflow
