// Approximate max-flow.
//
// The paper's ESG argument must survive approximate computing: the cited
// Kelner et al. algorithm gives an eps-approximation in O(m^{1+o(1)}
// eps^{-2}) — still Omega(n^2) on complete graphs.  This module provides a
// practical approximate solver (capacity-scaling augmentation with early
// exit) that yields a certified (1 - eps) answer, so benches can measure
// how much time approximation actually buys an attacker on PPUF instances.
#pragma once

#include "maxflow/solver.hpp"

namespace ppuf::maxflow {

struct ApproximateResult {
  double value = 0.0;              ///< achieved flow F
  std::vector<double> edge_flow;   ///< feasible flow achieving `value`
  /// Certified upper bound on the optimum: F* <= value + slack.
  double optimum_upper_bound = 0.0;
  std::uint64_t work = 0;
  /// Ok on completion; kCancelled/kDeadlineExceeded when stopped early (the
  /// flow stays feasible but the certificate reflects the last finished
  /// phase only).
  util::Status status;

  bool ok() const { return status.is_ok(); }

  /// Certified approximation ratio value / F* >= value / upper bound.
  double certified_ratio() const {
    return optimum_upper_bound > 0.0 ? value / optimum_upper_bound : 1.0;
  }
};

/// Capacity-scaling shortest-augmenting-path with early termination.
/// Augments only along paths of bottleneck >= Delta, halving Delta each
/// phase; after a phase every augmenting path has bottleneck < Delta, so
/// the remaining deficit is < m * Delta — the certificate.  Stops once the
/// certified ratio reaches 1 - epsilon.  epsilon = 0 reduces to the exact
/// scaling algorithm.
ApproximateResult solve_approximate(const graph::FlowProblem& problem,
                                    double epsilon,
                                    const util::SolveControl& control);

inline ApproximateResult solve_approximate(const graph::FlowProblem& problem,
                                           double epsilon) {
  return solve_approximate(problem, epsilon, util::SolveControl{});
}

}  // namespace ppuf::maxflow
