// Challenge-space design (Section 4.2).
//
// To make a single-bit challenge flip move the response with probability
// ~0.5, the paper restricts type-B challenges to a binary code of length
// l^2 with minimum Hamming distance d, and counts the usable CRPs through
// the Gilbert-Varshamov/Plotkin style bound
//   N_B >= 2^(l^2) / sum_{i=0}^{d-1} C(l^2, i),
//   N_CRP >= n(n-1) * N_B.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bigint.hpp"
#include "util/rng.hpp"

namespace ppuf {

/// Greedy randomised construction of a binary code with minimum distance d:
/// sample random words, keep each one that is >= d away from all kept
/// words.  Stops after `max_codewords` kept words or `max_attempts`
/// consecutive rejections.  (The existence of a code at least as large as
/// the GV bound is guaranteed; greedy sampling finds a practical subset.)
std::vector<std::vector<std::uint8_t>> build_min_distance_code(
    std::size_t length, std::size_t min_distance, std::size_t max_codewords,
    util::Rng& rng, std::size_t max_attempts = 20000);

/// Verifies that every pair of codewords is >= min_distance apart.
bool check_min_distance(
    const std::vector<std::vector<std::uint8_t>>& code,
    std::size_t min_distance);

/// Exact evaluation of the paper's type-B space bound
/// 2^(l^2) / sum_{i<d} C(l^2, i).
util::BigUint type_b_space_lower_bound(std::size_t l, std::size_t d);

/// Exact evaluation of the paper's total CRP bound
/// n(n-1) * 2^(l^2) / sum_{i<d} C(l^2, i)  (paper: >= 6.53e35 for
/// n = 200, l = 15, d = 2l).
util::BigUint crp_space_lower_bound(std::size_t n, std::size_t l,
                                    std::size_t d);

}  // namespace ppuf
