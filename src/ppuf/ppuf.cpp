#include "ppuf/ppuf.hpp"

#include "circuit/mna.hpp"

namespace ppuf {

namespace {
/// Deterministic per-instance fabrication stream.
util::Rng make_fab_rng(std::uint64_t seed) {
  return util::Rng(seed ^ 0xc2b2ae3d27d4eb4fULL);
}
}  // namespace

MaxFlowPpuf::MaxFlowPpuf(const PpufParams& params, std::uint64_t seed)
    : params_(params),
      layout_(params.node_count, params.grid_size),
      surface_(),
      network_a_([&] {
        util::Rng rng = make_fab_rng(seed);
        surface_ = circuit::SystematicSurface(params_.variation, rng);
        return CrossbarNetwork(params_, layout_, rng, surface_);
      }()),
      network_b_([&] {
        // Independent stream for network B's mismatch.  With the paper's
        // side-by-side placement (Section 4.1) it shares network A's
        // systematic surface; the naive-layout ablation draws its own.
        util::Rng rng = make_fab_rng(seed ^ 0x9e3779b97f4a7c15ULL);
        if (!params_.paired_systematic_placement) {
          const circuit::SystematicSurface own(params_.variation, rng);
          return CrossbarNetwork(params_, layout_, rng, own);
        }
        return CrossbarNetwork(params_, layout_, rng, surface_);
      }()) {
  util::Rng rng = make_fab_rng(seed ^ 0xd6e8feb86659fd93ULL);
  comparator_offset_ =
      rng.gaussian(0.0, params_.comparator_offset_sigma);
  // One symbolic cache per device: both networks' blocks share a netlist
  // topology, so the MNA pattern and sparse-LU analysis are computed once
  // and replayed for all 4 n (n-1) characterisation sweeps.
  auto cache = std::make_shared<circuit::SymbolicCache>();
  network_a_.set_symbolic_cache(cache);
  network_b_.set_symbolic_cache(cache);
}

void MaxFlowPpuf::prepare(const circuit::Environment& env) {
  network_a_.prepare(env);
  network_b_.prepare(env);
}

MaxFlowPpuf::Evaluation MaxFlowPpuf::evaluate(const Challenge& challenge,
                                              const circuit::Environment& env,
                                              util::Rng* noise_rng) {
  Evaluation out;
  const CrossbarNetwork::Execution a = network_a_.execute(challenge, env);
  const CrossbarNetwork::Execution b = network_b_.execute(challenge, env);
  out.current_a = a.source_current;
  out.current_b = b.source_current;
  out.converged = a.converged && b.converged;
  out.diagnostics_a = a.diagnostics;
  out.diagnostics_b = b.diagnostics;
  double margin = a.source_current - b.source_current + comparator_offset_;
  if (noise_rng != nullptr)
    margin += noise_rng->gaussian(0.0, params_.comparator_noise_sigma);
  out.bit = margin > 0.0 ? 1 : 0;
  return out;
}

}  // namespace ppuf
