#include "ppuf/block.hpp"

#include <algorithm>
#include <stdexcept>

#include "circuit/dc.hpp"

namespace ppuf {

namespace {

using circuit::Environment;
using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;

circuit::MosfetParams varied_mosfet(const PpufParams& p, double dvth,
                                    const Environment& env) {
  circuit::MosfetParams m = circuit::adjust_for_environment(p.mosfet, env);
  m.vth += dvth;
  return m;
}

circuit::DiodeParams varied_diode(const PpufParams& p, double dis_rel,
                                  const Environment& env) {
  circuit::DiodeParams d = circuit::adjust_for_environment(p.diode, env);
  d.saturation_current *= std::max(0.1, 1.0 + dis_rel);
  return d;
}

/// Appends one kDoubleSd stage between `top` and `bottom`:
/// M1 (cascode) over M2 over R1, gates referenced to `bottom`
/// (gate of M2 at vgs, gate of M1 at vgs + Vb).  Returns nothing; the stage
/// conducts from top to bottom.
void append_double_sd_stage(Netlist& nl, const PpufParams& p, NodeId top,
                            NodeId bottom, double vgs, double vb,
                            double dvth_m1, double dvth_m2, double dr_rel,
                            const Environment& env) {
  const NodeId mid = nl.add_node();
  const NodeId deg = nl.add_node();
  const NodeId g1 = nl.add_node();
  const NodeId g2 = nl.add_node();
  nl.add_mosfet(top, g1, mid, varied_mosfet(p, dvth_m1, env));
  nl.add_mosfet(mid, g2, deg, varied_mosfet(p, dvth_m2, env));
  nl.add_resistor(deg, bottom,
                  p.degeneration_resistance * std::max(0.1, 1.0 + dr_rel));
  nl.add_voltage_source(g1, bottom, vgs + vb);
  nl.add_voltage_source(g2, bottom, vgs);
}

}  // namespace

SweepCircuit build_stage_test(const PpufParams& params, BlockDesign design,
                              double vgs,
                              const circuit::BlockVariation* variation,
                              const Environment& env) {
  const double scale = env.vdd_scale;
  const double v_gs = vgs * scale;
  const double v_b = params.vb * scale;
  const double dvth1 = variation != nullptr ? variation->dvth[0] : 0.0;
  const double dvth2 = variation != nullptr ? variation->dvth[1] : 0.0;
  const double dr = variation != nullptr ? variation->dr_rel[0] : 0.0;
  const double dis = variation != nullptr ? variation->dis_rel[0] : 0.0;

  SweepCircuit sc;
  Netlist& nl = sc.netlist;
  const NodeId top = nl.add_node("top");
  const NodeId a = nl.add_node("a");
  // Conduction direction is from the sweep terminal into the stage.
  nl.add_diode(top, a, varied_diode(params, dis, env));
  sc.sweep_source = nl.add_voltage_source(top, kGround, 0.0);

  switch (design) {
    case BlockDesign::kBare: {
      const NodeId g = nl.add_node("g");
      nl.add_mosfet(a, g, kGround, varied_mosfet(params, dvth2, env));
      nl.add_voltage_source(g, kGround, v_gs);
      break;
    }
    case BlockDesign::kSingleSd: {
      const NodeId g = nl.add_node("g");
      const NodeId deg = nl.add_node("deg");
      nl.add_mosfet(a, g, deg, varied_mosfet(params, dvth2, env));
      nl.add_resistor(deg, kGround,
                      params.degeneration_resistance * std::max(0.1, 1.0 + dr));
      nl.add_voltage_source(g, kGround, v_gs);
      break;
    }
    case BlockDesign::kDoubleSd: {
      append_double_sd_stage(nl, params, a, kGround, v_gs, v_b, dvth1, dvth2,
                             dr, env);
      break;
    }
  }
  return sc;
}

void append_block(Netlist& nl, const PpufParams& params,
                  const circuit::BlockVariation& variation, int input_bit,
                  NodeId top, NodeId bottom, const Environment& env) {
  if (input_bit != 0 && input_bit != 1)
    throw std::invalid_argument("append_block: input bit must be 0 or 1");
  const double scale = env.vdd_scale;
  // Input 1: stage A gets the low control voltage and limits the current;
  // input 0: stage B limits (Requirement 3's complementary biasing).
  const double vgs_a =
      (input_bit == 1 ? params.vgs_low : params.vgs_high()) * scale;
  const double vgs_b =
      (input_bit == 1 ? params.vgs_high() : params.vgs_low) * scale;
  const double v_b = params.vb * scale;

  const NodeId a = nl.add_node("a");
  const NodeId c = nl.add_node("c");      // between the two stages
  const NodeId b2 = nl.add_node("b2");    // bottom of stage B, anode of D2

  nl.add_diode(top, a, varied_diode(params, variation.dis_rel[0], env));
  append_double_sd_stage(nl, params, a, c, vgs_a, v_b, variation.dvth[0],
                         variation.dvth[1], variation.dr_rel[0], env);
  append_double_sd_stage(nl, params, c, b2, vgs_b, v_b, variation.dvth[2],
                         variation.dvth[3], variation.dr_rel[1], env);
  nl.add_diode(b2, bottom, varied_diode(params, variation.dis_rel[1], env));
}

SweepCircuit build_block(const PpufParams& params,
                         const circuit::BlockVariation& variation,
                         int input_bit, const Environment& env) {
  SweepCircuit sc;
  Netlist& nl = sc.netlist;
  const NodeId top = nl.add_node("top");
  append_block(nl, params, variation, input_bit, top, kGround, env);
  sc.sweep_source = nl.add_voltage_source(top, kGround, 0.0);
  return sc;
}

std::vector<double> sweep_current(
    SweepCircuit& circuit, std::span<const double> voltages,
    const Environment& env,
    std::shared_ptr<circuit::SymbolicCache> symbolic_cache) {
  circuit::DcOptions opts;
  opts.temperature_c = env.temperature_c;
  opts.symbolic_cache = std::move(symbolic_cache);
  circuit::DcSolver solver(circuit.netlist, opts);
  std::vector<double> currents;
  currents.reserve(voltages.size());
  circuit::OperatingPoint prev;
  bool have_prev = false;
  for (double v : voltages) {
    circuit.netlist.set_voltage(circuit.sweep_source, v);
    circuit::OperatingPoint op = solver.solve(have_prev ? &prev : nullptr);
    if (!op.converged)
      throw circuit::ConvergenceError(
          "sweep_current: DC solve failed at V=" + std::to_string(v),
          op.diagnostics);
    currents.push_back(op.source_current(circuit.sweep_source));
    prev = op;
    have_prev = true;
  }
  return currents;
}

std::vector<double> characterization_grid(const PpufParams& params) {
  // Dense around the turn-on knee (0.3-0.8 V), moderate elsewhere, coarse
  // on the plateau: 24 points keep characterisation fast (it runs ~4 n^2
  // times per PPUF instance) while the PCHIP error stays far below the
  // process-variation signal.
  std::vector<double> grid{-0.3, -0.1, 0.0, 0.1, 0.2, 0.3};
  for (double v = 0.35; v < 0.825; v += 0.05) grid.push_back(v);
  for (double v = 0.9; v < 1.25; v += 0.1) grid.push_back(v);
  for (double v = 1.4; v <= params.sweep_max_voltage + 1e-9; v += 0.3)
    grid.push_back(v);
  return grid;
}

BlockCurve characterize_block(
    const PpufParams& params, const circuit::BlockVariation& variation,
    int input_bit, const Environment& env,
    std::shared_ptr<circuit::SymbolicCache> symbolic_cache) {
  SweepCircuit sc = build_block(params, variation, input_bit, env);
  const std::vector<double> grid = characterization_grid(params);
  std::vector<double> currents(grid.size(), 0.0);

  // Sweep outward from 0 V with warm starts: the cold solve at 0 V is easy
  // (everything off, zero is nearly the answer), and every other point is
  // a small continuation step.  Starting cold at the most-negative point
  // instead forces the gmin-stepping ladder on every block.
  circuit::DcOptions opts;
  opts.temperature_c = env.temperature_c;
  opts.symbolic_cache = std::move(symbolic_cache);
  circuit::DcSolver solver(sc.netlist, opts);
  const std::size_t zero_index = static_cast<std::size_t>(
      std::find(grid.begin(), grid.end(), 0.0) - grid.begin());

  auto run = [&](std::size_t index, const circuit::OperatingPoint* warm) {
    const double target = grid[index];
    sc.netlist.set_voltage(sc.sweep_source, target);
    // The solver's built-in recovery ladder (gmin stepping -> source
    // stepping -> tightened damping) replaces the ad-hoc continuation this
    // call site used to carry; the rare Monte Carlo corner the plain solve
    // cannot reach in one hop now escalates inside DcSolver and reports
    // which rung saved it.
    circuit::OperatingPoint op = solver.solve(warm);
    if (!op.converged)
      throw circuit::ConvergenceError(
          "characterize_block: DC solve failed at V=" +
              std::to_string(target),
          op.diagnostics);
    currents[index] = op.source_current(sc.sweep_source);
    return op;
  };

  circuit::OperatingPoint at_zero = run(zero_index, nullptr);
  circuit::OperatingPoint prev = at_zero;
  for (std::size_t i = zero_index + 1; i < grid.size(); ++i)
    prev = run(i, &prev);
  prev = at_zero;
  for (std::size_t i = zero_index; i-- > 0;) prev = run(i, &prev);

  // Numerical noise can leave microscopic non-monotonicity (< fA) between
  // Newton solutions; clamp it so the compact model stays monotone.
  for (std::size_t i = 1; i < currents.size(); ++i)
    currents[i] = std::max(currents[i], currents[i - 1]);

  BlockCurve curve;
  curve.iv = MonotoneCurve(grid, currents);
  curve.isat = curve.iv(kCapacityReferenceVoltage * env.vdd_scale);
  return curve;
}

}  // namespace ppuf
