#include "ppuf/feedback.hpp"

#include <stdexcept>

namespace ppuf {

namespace {
/// FNV-1a over the challenge contents, mixed with the response and nonce,
/// to seed the successor's deterministic sampling.
std::uint64_t chain_hash(const Challenge& c, int response,
                         std::uint64_t nonce) {
  std::uint64_t h = 14695981039346656037ULL ^ nonce;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(c.source);
  mix(c.sink);
  for (std::uint8_t b : c.bits) mix(b);
  mix(static_cast<std::uint64_t>(response) + 0x5bd1e995ULL);
  return h;
}
}  // namespace

Challenge next_challenge(const CrossbarLayout& layout,
                         const Challenge& previous, int response,
                         std::uint64_t protocol_nonce) {
  util::Rng rng(chain_hash(previous, response, protocol_nonce));
  return random_challenge(layout, rng);
}

FeedbackChain run_chain_on_ppuf(MaxFlowPpuf& instance, const Challenge& c1,
                                std::size_t k, std::uint64_t protocol_nonce,
                                const circuit::Environment& env) {
  if (k == 0) throw std::invalid_argument("run_chain_on_ppuf: k == 0");
  FeedbackChain chain;
  Challenge c = c1;
  for (std::size_t i = 0; i < k; ++i) {
    const int r = instance.evaluate(c, env).bit;
    chain.challenges.push_back(c);
    chain.responses.push_back(r);
    if (i + 1 < k) c = next_challenge(instance.layout(), c, r, protocol_nonce);
  }
  return chain;
}

FeedbackChain run_chain_on_model(const SimulationModel& model,
                                 const Challenge& c1, std::size_t k,
                                 std::uint64_t protocol_nonce,
                                 maxflow::Algorithm algorithm) {
  if (k == 0) throw std::invalid_argument("run_chain_on_model: k == 0");
  FeedbackChain chain;
  Challenge c = c1;
  for (std::size_t i = 0; i < k; ++i) {
    const int r = model.predict(c, algorithm).bit;
    chain.challenges.push_back(c);
    chain.responses.push_back(r);
    if (i + 1 < k) c = next_challenge(model.layout(), c, r, protocol_nonce);
  }
  return chain;
}

}  // namespace ppuf
