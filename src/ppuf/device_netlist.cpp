#include "ppuf/device_netlist.hpp"

#include <stdexcept>
#include <string>

#include "ppuf/block.hpp"

namespace ppuf {

DeviceNetlist build_device_netlist(const PpufParams& params,
                                   const CrossbarNetwork& network,
                                   const Challenge& challenge,
                                   const circuit::Environment& env) {
  const CrossbarLayout& layout = network.layout();
  const std::size_t n = layout.node_count();
  if (challenge.bits.size() != layout.cell_count())
    throw std::invalid_argument(
        "build_device_netlist: challenge size mismatch");
  if (challenge.source >= n || challenge.sink >= n ||
      challenge.source == challenge.sink)
    throw std::invalid_argument(
        "build_device_netlist: bad source/sink pair");

  DeviceNetlist dn;
  circuit::Netlist& nl = dn.netlist;
  dn.bar_node.resize(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    dn.bar_node[v] = v == challenge.sink
                         ? circuit::kGround
                         : nl.add_node("bar" + std::to_string(v));
  }

  // Same row-major ordered-pair edge enumeration as CrossbarNetwork's
  // variation table and graph::complete_edge_id.
  graph::EdgeId e = 0;
  for (graph::VertexId i = 0; i < n; ++i) {
    for (graph::VertexId j = 0; j < n; ++j) {
      if (i == j) continue;
      const int bit = challenge.bits[layout.cell_of_edge(i, j)] ? 1 : 0;
      append_block(nl, params, network.block_variation(e), bit,
                   dn.bar_node[i], dn.bar_node[j], env);
      ++e;
    }
  }

  dn.drive_source = nl.add_voltage_source(
      dn.bar_node[challenge.source], circuit::kGround,
      params.vs * env.vdd_scale);
  dn.mna_dimension = (nl.node_count() - 1) + nl.voltage_source_count();
  return dn;
}

}  // namespace ppuf
