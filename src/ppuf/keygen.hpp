// Key derivation from PPUF responses.
//
// The classic PUF application: expand a public seed into a challenge list,
// read the response bits (majority-voted against comparator noise), and use
// them as device-unique key material.  For a *public* PUF this is only
// useful with physical access control — anyone can simulate the key from
// the model, slowly — but it exercises the same reliability pipeline and
// gives the examples a concrete payload.
#pragma once

#include <cstdint>
#include <vector>

#include "ppuf/ppuf.hpp"

namespace ppuf {

struct KeyDerivationOptions {
  std::size_t bits = 128;         ///< key length
  std::size_t votes = 5;          ///< odd; majority votes per bit
  std::uint64_t seed = 1;         ///< public seed -> challenge list
};

/// The deterministic public challenge list for a seed (anyone can derive
/// it; the *responses* are what differ per device).
std::vector<Challenge> key_challenges(const CrossbarLayout& layout,
                                      const KeyDerivationOptions& options);

/// Derive the key bits from a device.
std::vector<std::uint8_t> derive_key(MaxFlowPpuf& instance,
                                     const KeyDerivationOptions& options,
                                     util::Rng& noise_rng,
                                     const circuit::Environment& env =
                                         circuit::Environment::nominal());

/// Fraction of key bits that differ between two derivations (e.g. nominal
/// vs temperature-stressed) — the figure error correction must cover.
double key_mismatch_rate(const std::vector<std::uint8_t>& a,
                         const std::vector<std::uint8_t>& b);

}  // namespace ppuf
