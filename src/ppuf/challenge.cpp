#include "ppuf/challenge.hpp"

#include <stdexcept>

#include "graph/complete.hpp"

namespace ppuf {

CrossbarLayout::CrossbarLayout(std::size_t node_count, std::size_t grid_size)
    : n_(node_count), l_(grid_size) {
  if (n_ < 2) throw std::invalid_argument("CrossbarLayout: need n >= 2");
  if (l_ < 1 || l_ > n_)
    throw std::invalid_argument("CrossbarLayout: need 1 <= l <= n");
}

std::size_t CrossbarLayout::cell_of_edge(graph::VertexId from,
                                         graph::VertexId to) const {
  if (from >= n_ || to >= n_ || from == to)
    throw std::invalid_argument("CrossbarLayout::cell_of_edge: bad pair");
  // Vertical bar index = from, horizontal bar index = to; the grid tiles
  // the crossbar evenly.
  const std::size_t a = from * l_ / n_;
  const std::size_t b = to * l_ / n_;
  return a * l_ + b;
}

graph::EdgeId CrossbarLayout::edge_id(graph::VertexId from,
                                      graph::VertexId to) const {
  return graph::complete_edge_id(n_, from, to);
}

void CrossbarLayout::die_position(graph::VertexId from, graph::VertexId to,
                                  double* x, double* y) const {
  *x = (static_cast<double>(from) + 0.5) / static_cast<double>(n_);
  *y = (static_cast<double>(to) + 0.5) / static_cast<double>(n_);
}

Challenge random_challenge(const CrossbarLayout& layout, util::Rng& rng) {
  const auto n = static_cast<std::int64_t>(layout.node_count());
  const auto source = static_cast<graph::VertexId>(rng.uniform_int(0, n - 1));
  auto sink = static_cast<graph::VertexId>(rng.uniform_int(0, n - 2));
  if (sink >= source) ++sink;
  return random_challenge_fixed_ends(layout, source, sink, rng);
}

Challenge random_challenge_fixed_ends(const CrossbarLayout& layout,
                                      graph::VertexId source,
                                      graph::VertexId sink, util::Rng& rng) {
  if (source == sink || source >= layout.node_count() ||
      sink >= layout.node_count())
    throw std::invalid_argument("random_challenge: bad source/sink");
  Challenge c;
  c.source = source;
  c.sink = sink;
  c.bits.resize(layout.cell_count());
  for (auto& b : c.bits) b = rng.coin() ? 1 : 0;
  return c;
}

Challenge flip_bits(const Challenge& base, std::size_t flips,
                    util::Rng& rng) {
  if (flips > base.bits.size())
    throw std::invalid_argument("flip_bits: more flips than bits");
  Challenge c = base;
  // Partial Fisher-Yates over bit indices to pick `flips` distinct bits.
  std::vector<std::size_t> idx(base.bits.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (std::size_t i = 0; i < flips; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(idx.size()) - 1));
    std::swap(idx[i], idx[j]);
    c.bits[idx[i]] ^= 1;
  }
  return c;
}

std::size_t hamming_distance(const Challenge& a, const Challenge& b) {
  if (a.bits.size() != b.bits.size())
    throw std::invalid_argument("hamming_distance: size mismatch");
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.bits.size(); ++i)
    d += a.bits[i] != b.bits[i] ? 1 : 0;
  return d;
}

}  // namespace ppuf
