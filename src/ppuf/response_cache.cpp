#include "ppuf/response_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace ppuf {

namespace {

/// FNV-1a over a byte range; good enough to spread keys across shards and
/// hash-map buckets, and dependency-free.
std::size_t fnv1a(const void* data, std::size_t size,
                  std::size_t seed = 14695981039346656037ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::size_t ResponseCache::KeyHash::operator()(const Key& k) const {
  std::size_t h = fnv1a(&k.device, sizeof(k.device));
  h = fnv1a(&k.source, sizeof(k.source), h);
  h = fnv1a(&k.sink, sizeof(k.sink), h);
  if (!k.bits.empty()) h = fnv1a(k.bits.data(), k.bits.size(), h);
  // Hash the value representation of the doubles: environments compare by
  // value, and distinct values must be free to land in distinct shards.
  const std::uint64_t vdd = std::bit_cast<std::uint64_t>(k.vdd_scale);
  const std::uint64_t temp = std::bit_cast<std::uint64_t>(k.temperature_c);
  h = fnv1a(&vdd, sizeof(vdd), h);
  h = fnv1a(&temp, sizeof(temp), h);
  return h;
}

struct ResponseCache::Shard {
  mutable std::mutex mutex;
  /// Most recently used at the front.
  std::list<std::pair<Key, CachedResponse>> lru;
  std::unordered_map<Key, std::list<std::pair<Key, CachedResponse>>::iterator,
                     KeyHash>
      index;
  std::size_t charged_bytes = 0;
  // Registry-style counters (obs primitives) instead of ad-hoc integers;
  // stats() aggregates them and publish_metrics() mirrors them into a
  // MetricsRegistry snapshot.
  obs::Counter hits;
  obs::Counter misses;
  obs::Counter evictions;
};

ResponseCache::ResponseCache(std::size_t capacity_bytes, unsigned shard_count)
    : capacity_bytes_(capacity_bytes) {
  const unsigned n = std::max(1u, shard_count);
  per_shard_capacity_ = capacity_bytes_ / n;
  shards_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ResponseCache::~ResponseCache() = default;

ResponseCache::Key ResponseCache::make_key(std::uint64_t device_id,
                                           const Challenge& challenge,
                                           const circuit::Environment& env) {
  Key k;
  k.device = device_id;
  k.source = challenge.source;
  k.sink = challenge.sink;
  k.bits = challenge.bits;
  k.vdd_scale = env.vdd_scale;
  k.temperature_c = env.temperature_c;
  return k;
}

std::size_t ResponseCache::entry_cost(const Key& key) {
  // The bit vector is held twice (map key + LRU node); 128 bytes covers
  // the node, bucket and iterator overhead.  An estimate, not an audit —
  // the budget is a throttle, not an allocator.
  return 2 * key.bits.size() + 128;
}

ResponseCache::Shard& ResponseCache::shard_for(const Key& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

std::optional<CachedResponse> ResponseCache::lookup(
    std::uint64_t device_id, const Challenge& challenge,
    const circuit::Environment& env) {
  const Key key = make_key(device_id, challenge, env);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses.add();
    return std::nullopt;
  }
  shard.hits.add();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ResponseCache::insert(std::uint64_t device_id,
                           const Challenge& challenge,
                           const circuit::Environment& env,
                           const CachedResponse& response) {
  Key key = make_key(device_id, challenge, env);
  const std::size_t cost = entry_cost(key);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = response;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(std::move(key), response);
  shard.index.emplace(shard.lru.front().first, shard.lru.begin());
  shard.charged_bytes += cost;
  // Evict LRU-first until within budget; never evict the entry just
  // inserted (a single entry larger than the shard budget stays resident
  // until something displaces it).
  while (shard.charged_bytes > per_shard_capacity_ && shard.lru.size() > 1) {
    const auto& victim = shard.lru.back();
    shard.charged_bytes -= entry_cost(victim.first);
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    shard.evictions.add();
  }
}

void ResponseCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->charged_bytes = 0;
    // Counters describe the entries' lifetime; once the entries are gone
    // the counts are about a cache that no longer exists.  Keeping them
    // would make post-clear hit_rate() blend two unrelated populations.
    shard->hits.reset();
    shard->misses.reset();
    shard->evictions.reset();
  }
}

ResponseCacheStats ResponseCache::stats() const {
  ResponseCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits.value();
    total.misses += shard->misses.value();
    total.evictions += shard->evictions.value();
    total.entries += shard->lru.size();
    total.charged_bytes += shard->charged_bytes;
  }
  return total;
}

void ResponseCache::publish_metrics(obs::MetricsRegistry& registry,
                                    std::string_view prefix) const {
  if (!registry.enabled()) return;
  const std::string base(prefix);
  std::uint64_t hits = 0, misses = 0, evictions = 0;
  std::uint64_t entries = 0, charged = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::uint64_t shard_entries = 0, shard_charged = 0;
    {
      const auto& shard = *shards_[i];
      std::lock_guard<std::mutex> lock(shard.mutex);
      hits += shard.hits.value();
      misses += shard.misses.value();
      evictions += shard.evictions.value();
      shard_entries = shard.lru.size();
      shard_charged = shard.charged_bytes;
    }
    entries += shard_entries;
    charged += shard_charged;
    const std::string shard_base = base + ".shard." + std::to_string(i);
    registry.gauge(shard_base + ".entries")
        .set(static_cast<std::int64_t>(shard_entries));
    registry.gauge(shard_base + ".charged_bytes")
        .set(static_cast<std::int64_t>(shard_charged));
  }
  registry.gauge(base + ".hits").set(static_cast<std::int64_t>(hits));
  registry.gauge(base + ".misses").set(static_cast<std::int64_t>(misses));
  registry.gauge(base + ".evictions")
      .set(static_cast<std::int64_t>(evictions));
  registry.gauge(base + ".entries").set(static_cast<std::int64_t>(entries));
  registry.gauge(base + ".charged_bytes")
      .set(static_cast<std::int64_t>(charged));
  registry.gauge(base + ".shard_count")
      .set(static_cast<std::int64_t>(shards_.size()));
}

}  // namespace ppuf
