// Flat transistor-level view of one crossbar challenge.
//
// The production path never solves this: CrossbarNetwork characterises
// each block once into a compact monotone curve and NetworkSolver works on
// the n-node weighted Laplacian.  But the flattened system — every one of
// the n(n-1) blocks instantiated device-by-device between its two bars,
// assembled into a single MNA matrix of several hundred unknowns — is the
// circuit the paper's SPICE decks actually contain, and it is exactly the
// scale where the sparse linear core earns its keep: the MNA Jacobian has
// O(1) entries per row, so dense LU pays O(dim^3) per Newton iteration for
// a structurally sparse problem.  bench_batch_throughput times a full DC
// solve of this netlist through both linear cores and gates on the
// speedup; tests use it as a paper-scale sparse-vs-dense fixture.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/env.hpp"
#include "circuit/netlist.hpp"
#include "ppuf/challenge.hpp"
#include "ppuf/crossbar.hpp"

namespace ppuf {

struct DeviceNetlist {
  circuit::Netlist netlist;
  /// Electrical node of each graph vertex's bar pair; the challenge's sink
  /// bar is ground.
  std::vector<circuit::NodeId> bar_node;
  /// Handle of the source-bar supply (its branch current is the device's
  /// source current, sign as in OperatingPoint::source_current).
  std::size_t drive_source = 0;
  /// MNA dimension of the flattened system: every non-ground node plus one
  /// branch current per voltage source.
  std::size_t mna_dimension = 0;
};

/// Flatten `network` under `challenge` into one device-level netlist: for
/// every directed edge (i, j) the full Fig. 2(d) block with that edge's
/// process variation and the challenge's input bit, conduction from bar i
/// to bar j; the source bar is driven at params.vs * env.vdd_scale against
/// the grounded sink bar.
DeviceNetlist build_device_netlist(const PpufParams& params,
                                   const CrossbarNetwork& network,
                                   const Challenge& challenge,
                                   const circuit::Environment& env =
                                       circuit::Environment::nominal());

}  // namespace ppuf
