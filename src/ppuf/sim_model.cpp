#include "ppuf/sim_model.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "graph/complete.hpp"
#include "obs/metrics.hpp"

namespace ppuf {

SimulationModel::SimulationModel(MaxFlowPpuf& instance,
                                 const circuit::Environment& env)
    : layout_(instance.layout()),
      comparator_offset_(instance.comparator_offset()) {
  instance.prepare(env);
  const std::size_t edges = layout_.edge_count();
  for (int net = 0; net < 2; ++net) {
    const CrossbarNetwork& network =
        net == 0 ? instance.network_a() : instance.network_b();
    auto& caps = capacities_[net];
    caps.resize(edges);
    for (graph::EdgeId e = 0; e < edges; ++e) {
      caps[e][0] = network.curve(e, 0).isat;
      caps[e][1] = network.curve(e, 1).isat;
    }
  }
}

SimulationModel SimulationModel::restore(
    const CrossbarLayout& layout,
    std::array<std::vector<std::array<double, 2>>, 2> capacities,
    double comparator_offset) {
  for (const auto& caps : capacities) {
    if (caps.size() != layout.edge_count())
      throw std::invalid_argument(
          "SimulationModel::restore: capacity table size mismatch");
  }
  SimulationModel model{layout};
  model.capacities_ = std::move(capacities);
  model.comparator_offset_ = comparator_offset;
  return model;
}

double SimulationModel::mean_capacity() const {
  const std::size_t edges = layout_.edge_count();
  if (edges == 0) return 0.0;
  double sum = 0.0;
  for (const auto& caps : capacities_)
    for (const auto& per_bit : caps) sum += per_bit[0] + per_bit[1];
  return sum / static_cast<double>(edges * 4);
}

double SimulationModel::capacity(int network, graph::EdgeId e,
                                 int bit) const {
  if (network < 0 || network > 1 || bit < 0 || bit > 1)
    throw std::invalid_argument("SimulationModel::capacity: bad index");
  return capacities_[network].at(e)[bit];
}

graph::Digraph SimulationModel::build_graph(int network,
                                            const Challenge& challenge) const {
  if (challenge.bits.size() != layout_.cell_count())
    throw std::invalid_argument("SimulationModel: challenge size mismatch");
  const std::size_t n = layout_.node_count();
  return graph::make_complete(n, [&](graph::VertexId i, graph::VertexId j) {
    const int bit = challenge.bits[layout_.cell_of_edge(i, j)] ? 1 : 0;
    return capacity(network, layout_.edge_id(i, j), bit);
  });
}

double SimulationModel::predicted_flow(int network,
                                       const Challenge& challenge,
                                       maxflow::Algorithm algorithm) const {
  const graph::Digraph g = build_graph(network, challenge);
  const graph::FlowProblem problem{&g, challenge.source, challenge.sink};
  return maxflow::make_solver(algorithm)->solve(problem).value;
}

void SimulationModel::save(std::ostream& os) const {
  // Format:
  //   ppuf-model 1
  //   nodes <n> grid <l>
  //   comparator_offset <A>
  //   <edges> lines: capA0 capA1 capB0 capB1   (amperes, edge-id order)
  os << "ppuf-model 1\n";
  os << "nodes " << layout_.node_count() << " grid " << layout_.grid_size()
     << "\n";
  os << std::setprecision(17) << std::scientific;
  os << "comparator_offset " << comparator_offset_ << "\n";
  for (graph::EdgeId e = 0; e < layout_.edge_count(); ++e) {
    os << capacities_[0][e][0] << ' ' << capacities_[0][e][1] << ' '
       << capacities_[1][e][0] << ' ' << capacities_[1][e][1] << '\n';
  }
}

SimulationModel SimulationModel::load(std::istream& is) {
  auto fail = [](const std::string& what) -> void {
    throw std::runtime_error("SimulationModel::load: " + what);
  };
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version) || tag != "ppuf-model" || version != 1)
    fail("bad header");
  std::string key;
  std::size_t n = 0, l = 0;
  if (!(is >> key >> n) || key != "nodes") fail("missing nodes");
  if (!(is >> key >> l) || key != "grid") fail("missing grid");
  if (n < 2 || l < 1 || l > n) fail("invalid geometry");

  SimulationModel model{CrossbarLayout(n, l)};
  if (!(is >> key >> model.comparator_offset_) || key != "comparator_offset")
    fail("missing comparator_offset");
  const std::size_t edges = model.layout_.edge_count();
  for (int net = 0; net < 2; ++net) model.capacities_[net].resize(edges);
  for (graph::EdgeId e = 0; e < edges; ++e) {
    double a0 = 0, a1 = 0, b0 = 0, b1 = 0;
    if (!(is >> a0 >> a1 >> b0 >> b1)) fail("truncated capacity table");
    if (a0 < 0 || a1 < 0 || b0 < 0 || b1 < 0)
      fail("negative capacity");
    model.capacities_[0][e] = {a0, a1};
    model.capacities_[1][e] = {b0, b1};
  }
  return model;
}

SimulationModel::Prediction SimulationModel::predict(
    const Challenge& challenge, maxflow::Algorithm algorithm,
    const util::SolveControl& control) const {
  Prediction p;
  const auto solver = maxflow::make_solver(algorithm);
  for (int net = 0; net < 2; ++net) {
    const graph::Digraph g = build_graph(net, challenge);
    const auto r =
        solver->solve({&g, challenge.source, challenge.sink}, control);
    (net == 0 ? p.flow_a : p.flow_b) = r.value;
    if (!r.ok()) {
      // A stopped solve proves nothing about either network: surface the
      // typed status and leave the bit at its default.
      p.status = r.status;
      return p;
    }
  }
  p.bit = (p.flow_a - p.flow_b + comparator_offset_) > 0.0 ? 1 : 0;
  return p;
}

std::vector<SimulationModel::Prediction> SimulationModel::predict_batch(
    const std::vector<Challenge>& challenges,
    const PredictBatchOptions& options) const {
  std::vector<Prediction> results(challenges.size());
  if (!options.deadlines.empty() &&
      options.deadlines.size() != challenges.size())
    throw std::invalid_argument(
        "predict_batch: deadlines/challenges size mismatch");
  if (challenges.empty()) return results;

  // Metric handles resolved once per batch so the per-item path never
  // touches the registry map; all null when metrics are disabled.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter* m_items =
      reg.enabled() ? &reg.counter("ppuf.predict_batch.items") : nullptr;
  obs::Counter* m_cache_hits =
      reg.enabled() ? &reg.counter("ppuf.predict_batch.cache_hits") : nullptr;
  obs::Counter* m_failures =
      reg.enabled() ? &reg.counter("ppuf.predict_batch.item_failures")
                    : nullptr;
  obs::Histogram* m_item_time =
      reg.enabled() ? &reg.histogram("ppuf.predict_batch.item_time_us")
                    : nullptr;

  // One item = cache probe, then (on miss) the two max-flow solves of
  // predict().  Only completed predictions enter the cache: a partial
  // (deadline/cancel) result proves nothing about the response.
  auto run_item = [&](std::size_t i) {
    obs::ScopedTimer timer(m_item_time);
    if (m_items != nullptr) m_items->add();
    const Challenge& c = challenges[i];
    // Per-item budget: checked before the cache probe so an expired item
    // always answers typed (its caller has already given up on it), and
    // folded into the solve control so a live item cannot overrun its own
    // deadline while batch-mates keep the shared budget.
    util::SolveControl item_control = options.control;
    if (!options.deadlines.empty()) {
      const util::Deadline& d = options.deadlines[i];
      if (d.expired()) {
        results[i].status = util::Status::deadline_exceeded(
            "predict_batch: item budget expired");
        if (m_failures != nullptr) m_failures->add();
        return;
      }
      if (!d.is_unlimited() &&
          (item_control.deadline.is_unlimited() ||
           d.remaining() < item_control.deadline.remaining()))
        item_control.deadline = d;
    }
    if (options.cache != nullptr) {
      if (const auto hit = options.cache->lookup(options.cache_device_id, c,
                                                 options.cache_env)) {
        results[i].bit = hit->bit;
        results[i].flow_a = hit->flow_a;
        results[i].flow_b = hit->flow_b;
        if (m_cache_hits != nullptr) m_cache_hits->add();
        return;
      }
    }
    results[i] = predict(c, options.algorithm, item_control);
    if (m_failures != nullptr && !results[i].ok()) m_failures->add();
    if (options.cache != nullptr && results[i].ok()) {
      options.cache->insert(
          options.cache_device_id, c, options.cache_env,
          CachedResponse{results[i].bit, results[i].flow_a,
                         results[i].flow_b});
    }
  };

  if (options.pool == nullptr && options.thread_count <= 1) {
    util::StopCheck stop(options.control, /*stride=*/1);
    for (std::size_t i = 0; i < challenges.size(); ++i) {
      if (stop.should_stop()) {
        results[i].status = stop.status("predict_batch");
        continue;
      }
      run_item(i);
    }
    return results;
  }

  auto run_all = [&](util::ThreadPool& pool) {
    pool.parallel_for(
        challenges.size(),
        [&](std::size_t i, const util::Status& stop) {
          if (!stop.is_ok()) {
            results[i].status = stop;
            return;
          }
          run_item(i);
        },
        options.control);
  };
  if (options.pool != nullptr) {
    run_all(*options.pool);
  } else {
    util::ThreadPool pool(options.thread_count);
    run_all(pool);
  }
  return results;
}

}  // namespace ppuf
