#include "ppuf/crossbar.hpp"

#include <stdexcept>

#include "circuit/mna.hpp"

namespace ppuf {

namespace {
bool same_env(const circuit::Environment& a, const circuit::Environment& b) {
  return a.vdd_scale == b.vdd_scale && a.temperature_c == b.temperature_c;
}
}  // namespace

CrossbarNetwork::CrossbarNetwork(const PpufParams& params,
                                 const CrossbarLayout& layout,
                                 util::Rng& rng,
                                 const circuit::SystematicSurface& surface)
    : params_(params), layout_(layout) {
  const std::size_t n = layout_.node_count();
  variation_.reserve(n * (n - 1));
  for (graph::VertexId i = 0; i < n; ++i) {
    for (graph::VertexId j = 0; j < n; ++j) {
      if (i == j) continue;
      circuit::BlockVariation v =
          circuit::draw_block_variation(params_.variation, rng);
      double x = 0.0, y = 0.0;
      layout_.die_position(i, j, &x, &y);
      circuit::apply_systematic(v, surface, x, y);
      variation_.push_back(v);
    }
  }
}

void CrossbarNetwork::prepare(const circuit::Environment& env) {
  if (prepared_ && same_env(env, cached_env_)) return;
  // Operating conditions changed: any stored warm-start point belongs to
  // the previous environment and must not seed the next solve.
  clear_warm_start();
  if (symbolic_cache_ == nullptr)
    symbolic_cache_ = std::make_shared<circuit::SymbolicCache>();
  const std::size_t edges = variation_.size();
  curves_.assign(edges, {});
  for (std::size_t e = 0; e < edges; ++e) {
    for (int bit = 0; bit < 2; ++bit) {
      curves_[e][bit] =
          characterize_block(params_, variation_[e], bit, env,
                             symbolic_cache_);
    }
  }
  if (!solver_) {
    solver_ = std::make_unique<NetworkSolver>(
        layout_.node_count(),
        std::vector<const MonotoneCurve*>(edges, nullptr));
  }
  cached_env_ = env;
  prepared_ = true;
}

const BlockCurve& CrossbarNetwork::curve(graph::EdgeId e, int bit) const {
  if (!prepared_) throw std::logic_error("CrossbarNetwork: prepare() first");
  if (bit != 0 && bit != 1)
    throw std::invalid_argument("CrossbarNetwork::curve: bad bit");
  return curves_.at(e)[bit];
}

void CrossbarNetwork::select_curves(const Challenge& challenge) {
  if (challenge.bits.size() != layout_.cell_count())
    throw std::invalid_argument("CrossbarNetwork: challenge size mismatch");
  auto& active = solver_->edge_curves();
  const std::size_t n = layout_.node_count();
  std::size_t e = 0;
  for (graph::VertexId i = 0; i < n; ++i) {
    for (graph::VertexId j = 0; j < n; ++j) {
      if (i == j) continue;
      const int bit = challenge.bits[layout_.cell_of_edge(i, j)] ? 1 : 0;
      active[e] = &curves_[e][bit].iv;
      ++e;
    }
  }
}

CrossbarNetwork::Execution CrossbarNetwork::execute(
    const Challenge& challenge, const circuit::Environment& env) {
  prepare(env);
  select_curves(challenge);
  const numeric::Vector* warm =
      warm_start_enabled_ && have_last_solution_ ? &last_solution_ : nullptr;
  const NetworkSolver::DcResult dc =
      solver_->solve_dc(challenge.source, challenge.sink,
                        params_.vs * env.vdd_scale, warm);
  if (warm_start_enabled_ && dc.converged) {
    last_solution_ = dc.node_voltage;
    have_last_solution_ = true;
  }
  Execution out;
  out.source_current = dc.source_current;
  out.newton_iterations = dc.iterations;
  out.converged = dc.converged;
  out.diagnostics = dc.diagnostics;
  return out;
}

std::vector<double> CrossbarNetwork::execute_edge_currents(
    const Challenge& challenge, const circuit::Environment& env) {
  prepare(env);
  select_curves(challenge);
  const numeric::Vector* warm =
      warm_start_enabled_ && have_last_solution_ ? &last_solution_ : nullptr;
  const NetworkSolver::DcResult dc =
      solver_->solve_dc(challenge.source, challenge.sink,
                        params_.vs * env.vdd_scale, warm);
  if (!dc.converged) {
    throw circuit::ConvergenceError(
        "execute_edge_currents: DC solve failed", dc.diagnostics);
  }
  if (warm_start_enabled_) {
    last_solution_ = dc.node_voltage;
    have_last_solution_ = true;
  }
  return solver_->edge_currents(dc.node_voltage);
}

NetworkSolver::TransientResult CrossbarNetwork::execute_transient(
    const Challenge& challenge, const circuit::Environment& env,
    const NetworkSolver::TransientOptions& topt) {
  prepare(env);
  select_curves(challenge);
  return solver_->solve_transient(challenge.source, challenge.sink,
                                  params_.vs * env.vdd_scale,
                                  node_capacitances(), topt);
}

std::vector<double> CrossbarNetwork::node_capacitances() const {
  const std::size_t n = layout_.node_count();
  // Each node touches 2(n-1) blocks: n-1 outgoing on its vertical bar and
  // n-1 incoming on its horizontal bar.
  return std::vector<double>(
      n, params_.edge_capacitance * static_cast<double>(2 * (n - 1)));
}

}  // namespace ppuf
