#include "ppuf/network_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "numeric/cholesky.hpp"
#include "numeric/lu.hpp"
#include "obs/metrics.hpp"
#include "util/fault_hooks.hpp"

namespace ppuf {

namespace {
constexpr std::size_t kPinned = static_cast<std::size_t>(-1);
}

NetworkSolver::NetworkSolver(std::size_t node_count,
                             std::vector<const MonotoneCurve*> edge_curves,
                             Options options)
    : n_(node_count), curves_(std::move(edge_curves)), options_(options) {
  if (n_ < 2) throw std::invalid_argument("NetworkSolver: need n >= 2");
  if (curves_.size() != n_ * (n_ - 1))
    throw std::invalid_argument("NetworkSolver: curve count != n(n-1)");
}

double NetworkSolver::assemble(
    const numeric::Vector& v, graph::VertexId source, graph::VertexId sink,
    numeric::Vector* residual, numeric::Matrix* laplacian,
    const std::vector<std::size_t>& unknown_index) const {
  double source_current = 0.0;
  std::size_t e = 0;
  for (graph::VertexId i = 0; i < n_; ++i) {
    for (graph::VertexId j = 0; j < n_; ++j) {
      if (i == j) continue;
      const MonotoneCurve* curve = curves_[e++];
      if (curve == nullptr) continue;
      double g = 0.0;
      const double current = (*curve)(v[i] - v[j], &g);
      if (g < 0.0) g = 0.0;  // guard: monotone curves should never go here
      const std::size_t ui = unknown_index[i];
      const std::size_t uj = unknown_index[j];
      if (residual != nullptr) {
        if (ui != kPinned) (*residual)[ui] += current;
        if (uj != kPinned) (*residual)[uj] -= current;
      }
      if (laplacian != nullptr && g != 0.0) {
        if (ui != kPinned) (*laplacian)(ui, ui) += g;
        if (uj != kPinned) (*laplacian)(uj, uj) += g;
        if (ui != kPinned && uj != kPinned) {
          (*laplacian)(ui, uj) -= g;
          (*laplacian)(uj, ui) -= g;
        }
      }
      if (i == source) source_current += current;
      if (j == source) source_current -= current;
    }
  }
  (void)sink;
  return source_current;
}

std::vector<double> NetworkSolver::edge_currents(
    const numeric::Vector& node_voltage) const {
  if (node_voltage.size() != n_)
    throw std::invalid_argument("edge_currents: bad voltage vector");
  std::vector<double> out(curves_.size(), 0.0);
  std::size_t e = 0;
  for (graph::VertexId i = 0; i < n_; ++i) {
    for (graph::VertexId j = 0; j < n_; ++j) {
      if (i == j) continue;
      const MonotoneCurve* curve = curves_[e];
      if (curve != nullptr)
        out[e] = (*curve)(node_voltage[i] - node_voltage[j]);
      ++e;
    }
  }
  return out;
}

NetworkSolver::NewtonOutcome NetworkSolver::run_newton(
    graph::VertexId source, graph::VertexId sink, numeric::Vector& v,
    const Options& opts, const std::vector<std::size_t>& unknown_index)
    const {
  std::size_t m = 0;
  for (graph::VertexId u = 0; u < n_; ++u) {
    if (unknown_index[u] != kPinned) ++m;
  }

  NewtonOutcome out;

  numeric::Vector residual(m, 0.0);
  numeric::Matrix lap(m, m);
  numeric::Vector v_trial(n_);
  numeric::Vector f_trial(m, 0.0);

  // Merit function for the backtracking line search (residuals are
  // nanoampere-scale; square them in nA units).
  auto merit = [&](const numeric::Vector& r, const numeric::Vector& volts) {
    double s = 0.0;
    for (graph::VertexId u = 0; u < n_; ++u) {
      const std::size_t idx = unknown_index[u];
      if (idx == kPinned) continue;
      const double ri = (r[idx] + opts.gmin * volts[u]) * 1e9;
      s += ri * ri;
    }
    return s;
  };
  const double merit_floor =
      static_cast<double>(m) * (opts.current_tol * 1e9) *
      (opts.current_tol * 1e9);

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    residual.assign(m, 0.0);
    lap.fill(0.0);
    assemble(v, source, sink, &residual, &lap, unknown_index);
    const double merit_old = merit(residual, v);
    double res_norm = 0.0;
    for (graph::VertexId u = 0; u < n_; ++u) {
      const std::size_t idx = unknown_index[u];
      if (idx == kPinned) continue;
      residual[idx] += opts.gmin * v[u];
      lap(idx, idx) += opts.gmin;
      res_norm = std::max(res_norm, std::abs(residual[idx]));
    }
    out.residual = res_norm;

    numeric::Vector rhs(m);
    for (std::size_t i = 0; i < m; ++i) rhs[i] = -residual[i];

    numeric::Vector dx;
    bool factored = true;
    try {
      dx = numeric::cholesky_solve(lap, rhs);
    } catch (const std::runtime_error&) {
      // The Laplacian is SPD in exact arithmetic; fall back to pivoted LU
      // if rounding pushes a pivot non-positive.
      factored = false;
    }
    if (!factored && !numeric::lu_solve(lap, rhs, &dx).is_ok()) {
      // Genuinely singular system (degenerate network): stop iterating and
      // report a typed non-converged result instead of crashing the worker.
      out.converged = false;
      break;
    }

    const double max_dv = numeric::norm_inf(dx);
    out.iterations = iter;
    if (max_dv < opts.voltage_tol && res_norm < opts.current_tol) {
      out.converged = true;
      break;
    }

    // Backtracking line search: a block deep in its flat saturation region
    // contributes (almost) no conductance, so the raw Newton step can
    // overshoot across the knee and oscillate.
    double alpha =
        max_dv > opts.step_limit ? opts.step_limit / max_dv : 1.0;
    for (int bt = 0; bt < 16; ++bt) {
      v_trial = v;
      for (graph::VertexId u = 0; u < n_; ++u) {
        const std::size_t idx = unknown_index[u];
        if (idx != kPinned) v_trial[u] += alpha * dx[idx];
      }
      if (merit_old <= merit_floor) break;
      f_trial.assign(m, 0.0);
      assemble(v_trial, source, sink, &f_trial, nullptr, unknown_index);
      if (merit(f_trial, v_trial) <=
          merit_old * (1.0 - 1e-4 * alpha)) {
        break;
      }
      alpha *= 0.5;
    }
    v = v_trial;
  }

  return out;
}

NetworkSolver::DcResult NetworkSolver::solve_dc(
    graph::VertexId source, graph::VertexId sink, double vs,
    const numeric::Vector* warm) const {
  if (source >= n_ || sink >= n_ || source == sink)
    throw std::invalid_argument("NetworkSolver::solve_dc: bad source/sink");
  obs::ScopedTimer timer(obs::MetricsRegistry::global(),
                         "ppuf.network_solver.solve_time_us");

  std::vector<std::size_t> unknown_index(n_, kPinned);
  std::size_t m = 0;
  for (graph::VertexId u = 0; u < n_; ++u) {
    if (u != source && u != sink) unknown_index[u] = m++;
  }

  numeric::Vector v0(n_, 0.5 * vs);
  if (warm != nullptr && warm->size() == n_) v0 = *warm;
  v0[source] = vs;
  v0[sink] = 0.0;

  DcResult out;
  util::FaultHooks& hooks = util::FaultHooks::instance();

  auto record = [&](circuit::RecoveryStage stage, const NewtonOutcome& r) {
    circuit::StageAttempt attempt;
    attempt.stage = stage;
    attempt.iterations = r.iterations;
    attempt.residual = r.residual;
    attempt.converged = r.converged;
    out.diagnostics.stages.push_back(attempt);
    out.diagnostics.strategy = stage;
    out.diagnostics.total_iterations += r.iterations;
    out.diagnostics.final_residual = r.residual;
    out.diagnostics.converged = r.converged;
    return r.converged;
  };

  // Rung 1: direct damped Newton from the warm/flat initial guess.  The
  // fault harness can cap this rung's iteration budget to force the ladder
  // to engage deterministically.
  Options direct = options_;
  const int direct_cap =
      hooks.newton_direct_iteration_cap.load(std::memory_order_relaxed);
  if (direct_cap > 0)
    direct.max_iterations = std::min(direct.max_iterations, direct_cap);
  numeric::Vector v = v0;
  bool done = record(circuit::RecoveryStage::kDirect,
                     run_newton(source, sink, v, direct, unknown_index));

  if (!done && options_.enable_recovery) {
    // Rung 2: gmin stepping.  A large shunt conductance makes the Jacobian
    // strongly diagonally dominant and the problem nearly linear; walking
    // it back down by decades drags the solution along the homotopy path.
    if (!hooks.newton_skip_gmin_stage.load(std::memory_order_relaxed)) {
      numeric::Vector vg = v0;
      NewtonOutcome combined;
      Options stepped = options_;
      for (double g = 1e-3; g > options_.gmin; g *= 0.1) {
        stepped.gmin = g;
        const NewtonOutcome r =
            run_newton(source, sink, vg, stepped, unknown_index);
        combined.iterations += r.iterations;
        if (g < 1e-12) break;  // safety: never loop past a tiny user gmin
      }
      stepped.gmin = options_.gmin;
      const NewtonOutcome fin =
          run_newton(source, sink, vg, stepped, unknown_index);
      combined.iterations += fin.iterations;
      combined.residual = fin.residual;
      combined.converged = fin.converged;
      done = record(circuit::RecoveryStage::kGminStepping, combined);
      if (done) v = vg;
    }

    // Rung 3: source stepping.  Ramp the pinned source voltage from a
    // fraction of vs to the full value, warm-starting each step — the
    // classic homotopy when the operating point is far from any flat
    // initial guess.
    if (!done) {
      constexpr int kRampSteps = 8;
      numeric::Vector vr(n_, 0.0);
      vr[sink] = 0.0;
      NewtonOutcome combined;
      NewtonOutcome last;
      for (int s = 1; s <= kRampSteps; ++s) {
        const double level = vs * static_cast<double>(s) / kRampSteps;
        vr[source] = level;
        last = run_newton(source, sink, vr, options_, unknown_index);
        combined.iterations += last.iterations;
      }
      combined.residual = last.residual;
      combined.converged = last.converged;
      done = record(circuit::RecoveryStage::kSourceStepping, combined);
      if (done) v = vr;
    }

    // Rung 4: tightened damping.  Shrink the step clamp hard and give the
    // solver a much larger iteration budget — slow but steady for curves
    // whose knees make the full-step iteration oscillate.
    if (!done) {
      Options tight = options_;
      tight.step_limit = std::max(options_.step_limit / 16.0, 0.01);
      tight.max_iterations = std::max(options_.max_iterations * 10, 2000);
      numeric::Vector vt = v0;
      done = record(circuit::RecoveryStage::kTightenedDamping,
                    run_newton(source, sink, vt, tight, unknown_index));
      if (done) v = vt;
    }
  }

  out.converged = done;
  out.iterations = out.diagnostics.total_iterations;
  circuit::publish_solve_metrics(obs::MetricsRegistry::global(),
                                 "ppuf.network_solver", out.diagnostics);
  // Report the source current at the final voltages.
  out.source_current =
      assemble(v, source, sink, nullptr, nullptr, unknown_index);
  out.node_voltage = v;
  return out;
}

NetworkSolver::TransientResult NetworkSolver::solve_transient(
    graph::VertexId source, graph::VertexId sink, double vs,
    const std::vector<double>& node_capacitance,
    const TransientOptions& topt) const {
  if (node_capacitance.size() != n_)
    throw std::invalid_argument("solve_transient: capacitance size");
  const DcResult final_state = solve_dc(source, sink, vs);
  if (!final_state.converged) {
    throw circuit::ConvergenceError("solve_transient: DC pre-solve failed",
                                    final_state.diagnostics);
  }

  std::vector<std::size_t> unknown_index(n_, kPinned);
  std::size_t m = 0;
  for (graph::VertexId u = 0; u < n_; ++u) {
    if (u != source && u != sink) unknown_index[u] = m++;
  }

  // Discharged initial condition; the challenge step pins the source at vs
  // at t = 0+.
  numeric::Vector v(n_, 0.0);
  v[source] = vs;
  numeric::Vector v_prev = v;

  TransientResult out;
  out.time.push_back(0.0);
  out.source_current.push_back(
      assemble(v, source, sink, nullptr, nullptr, unknown_index));
  std::vector<double> voltage_error;
  auto max_voltage_error = [&](const numeric::Vector& volts) {
    double m = 0.0;
    for (graph::VertexId u = 0; u < n_; ++u)
      m = std::max(m, std::abs(volts[u] - final_state.node_voltage[u]));
    return m;
  };
  voltage_error.push_back(max_voltage_error(v));

  numeric::Vector residual(m, 0.0);
  numeric::Matrix jac(m, m);

  const double g_dt = 1.0 / topt.dt;
  for (double t = topt.dt; t <= topt.t_end + 0.5 * topt.dt; t += topt.dt) {
    bool converged = false;
    double last_res_norm = 0.0;
    int iters_used = 0;
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      residual.assign(m, 0.0);
      jac.fill(0.0);
      assemble(v, source, sink, &residual, &jac, unknown_index);
      double res_norm = 0.0;
      for (graph::VertexId u = 0; u < n_; ++u) {
        const std::size_t idx = unknown_index[u];
        if (idx == kPinned) continue;
        const double gc = node_capacitance[u] * g_dt;
        residual[idx] += gc * (v[u] - v_prev[u]) + options_.gmin * v[u];
        jac(idx, idx) += gc + options_.gmin;
        res_norm = std::max(res_norm, std::abs(residual[idx]));
      }
      last_res_norm = res_norm;
      iters_used = iter + 1;
      numeric::Vector rhs(m);
      for (std::size_t i = 0; i < m; ++i) rhs[i] = -residual[i];
      numeric::Vector dx;
      bool factored = true;
      try {
        dx = numeric::cholesky_solve(jac, rhs);
      } catch (const std::runtime_error&) {
        factored = false;
      }
      if (!factored && !numeric::lu_solve(jac, rhs, &dx).is_ok()) {
        // Singular step matrix: leave `converged` false so the existing
        // per-step diagnostics path reports a typed failure.
        break;
      }
      const double max_dv = numeric::norm_inf(dx);
      const double scale =
          max_dv > options_.step_limit ? options_.step_limit / max_dv : 1.0;
      for (graph::VertexId u = 0; u < n_; ++u) {
        const std::size_t idx = unknown_index[u];
        if (idx != kPinned) v[u] += scale * dx[idx];
      }
      // The capacitive term dominates the residual scale during fast
      // transients, so convergence here is on the step, not on KCL.
      if (scale == 1.0 && max_dv < options_.voltage_tol) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      // Per-step Newton has no recovery ladder (the step itself is the
      // continuation parameter), so synthesize a one-stage diagnostics
      // record naming the failing time point.
      circuit::SolveDiagnostics diag;
      circuit::StageAttempt attempt;
      attempt.stage = circuit::RecoveryStage::kDirect;
      attempt.iterations = iters_used;
      attempt.residual = last_res_norm;
      attempt.converged = false;
      diag.stages.push_back(attempt);
      diag.strategy = circuit::RecoveryStage::kDirect;
      diag.total_iterations = iters_used;
      diag.final_residual = last_res_norm;
      diag.converged = false;
      throw circuit::ConvergenceError(
          "solve_transient: Newton failed at t = " + std::to_string(t) +
              " s",
          diag);
    }
    v_prev = v;
    out.time.push_back(t);
    out.source_current.push_back(
        assemble(v, source, sink, nullptr, nullptr, unknown_index));
    voltage_error.push_back(max_voltage_error(v));
  }

  // Settle times: last departure from the tolerance band around the DC
  // values (scanning backwards finds the *final* entry into the band).
  const double target = final_state.source_current;
  const double band = std::abs(target) * topt.settle_tolerance;
  std::size_t first_settled = out.time.size();
  for (std::size_t k = out.time.size(); k-- > 0;) {
    if (std::abs(out.source_current[k] - target) > band) break;
    first_settled = k;
  }
  if (first_settled < out.time.size())
    out.settle_time = out.time[first_settled];

  std::size_t v_settled = out.time.size();
  for (std::size_t k = out.time.size(); k-- > 0;) {
    if (voltage_error[k] > topt.voltage_tolerance) break;
    v_settled = k;
  }
  if (v_settled < out.time.size())
    out.voltage_settle_time = out.time[v_settled];
  return out;
}

}  // namespace ppuf
