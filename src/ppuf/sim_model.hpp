// The public simulation model (Sections 2-3).
//
// A PPUF publishes its model: per block, the saturation current under each
// input bit — i.e. the edge capacities of the equivalent max-flow instance.
// Anyone can then predict a response by solving two max-flow problems
// (one per network) and comparing the values; the security of the PPUF
// rests solely on how *long* that takes (the ESG), not on the model being
// secret.
#pragma once

#include <array>
#include <iosfwd>
#include <vector>

#include "graph/digraph.hpp"
#include "maxflow/solver.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/response_cache.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace ppuf {

class SimulationModel {
 public:
  /// Extracts the public model of `instance` at the given characterisation
  /// environment (typically nominal).  The extraction characterises every
  /// block — the "enrollment-free" public measurement the paper describes.
  explicit SimulationModel(MaxFlowPpuf& instance,
                           const circuit::Environment& env =
                               circuit::Environment::nominal());

  /// Smallest valid model (2 nodes, grid 1, zero capacities).  Exists so a
  /// model can be a decode *target* (registry hydration, codec round
  /// trips); a default-constructed model predicts nothing useful.
  SimulationModel() : SimulationModel(CrossbarLayout(2, 1)) {
    for (auto& caps : capacities_)
      caps.assign(layout_.edge_count(), {0.0, 0.0});
  }

  /// Reassemble a model from already-validated parts (the binary codec's
  /// decode path).  `capacities[net]` must have exactly
  /// `layout.edge_count()` entries; throws std::invalid_argument otherwise.
  static SimulationModel restore(
      const CrossbarLayout& layout,
      std::array<std::vector<std::array<double, 2>>, 2> capacities,
      double comparator_offset);

  /// Serialise / restore the published model (a PPUF's public identity is
  /// literally this file).  Plain text, versioned; see save() for the
  /// format.  load() throws std::runtime_error on malformed input.
  void save(std::ostream& os) const;
  static SimulationModel load(std::istream& is);

  std::size_t node_count() const { return layout_.node_count(); }
  const CrossbarLayout& layout() const { return layout_; }

  /// Edge capacity (saturation current) of edge e in network (0 = A, 1 = B)
  /// under input bit `bit`.
  double capacity(int network, graph::EdgeId e, int bit) const;

  /// Max-flow instance of one network under a challenge.  The returned
  /// graph is finalized, with edge ids matching the crossbar layout.
  graph::Digraph build_graph(int network, const Challenge& challenge) const;

  /// Max-flow value of one network under a challenge.
  double predicted_flow(int network, const Challenge& challenge,
                        maxflow::Algorithm algorithm =
                            maxflow::Algorithm::kPushRelabel) const;

  struct Prediction {
    int bit = 0;
    double flow_a = 0.0;
    double flow_b = 0.0;
    /// kOk normally; kDeadlineExceeded / kCancelled when `control` stopped a
    /// solve, in which case `bit` is meaningless and the flows are partial.
    util::Status status;

    bool ok() const { return status.is_ok(); }
  };

  /// Predicted response: compare the two max-flow values through the
  /// published comparator offset.  `control` bounds the two max-flow
  /// solves; on stop the returned Prediction carries the typed status
  /// instead of a response bit.
  Prediction predict(const Challenge& challenge,
                     maxflow::Algorithm algorithm =
                         maxflow::Algorithm::kPushRelabel,
                     const util::SolveControl& control = {}) const;

  struct PredictBatchOptions {
    maxflow::Algorithm algorithm = maxflow::Algorithm::kPushRelabel;
    /// Workers for the transient pool when `pool` is null.
    unsigned thread_count = 1;
    /// Optional shared pool (non-owning); preferred for services.
    util::ThreadPool* pool = nullptr;
    /// Shared budget: once it fires, remaining items carry the typed
    /// status without being attempted.
    util::SolveControl control{};
    /// Optional response cache (non-owning).  Hits skip both max-flow
    /// solves entirely; only completed (ok) predictions are inserted.
    ResponseCache* cache = nullptr;
    /// Device half of the cache key.  A shared multi-tenant cache must
    /// never serve one device's responses for another, so callers with a
    /// registry identity pass it here (kSingleDeviceId otherwise).
    std::uint64_t cache_device_id = kSingleDeviceId;
    /// Environment half of the cache key.  The model's capacities were
    /// extracted at one environment, so predictions are only comparable —
    /// and cache entries only reusable — under that same environment.
    /// Callers sweeping environments (reliability benches) must pass the
    /// environment they are predicting for.
    circuit::Environment cache_env = circuit::Environment::nominal();
    /// Optional per-item deadlines, parallel to `challenges` (ignored when
    /// empty; any other size mismatch throws std::invalid_argument).  An
    /// item whose deadline has already expired is answered with a typed
    /// kDeadlineExceeded status without being attempted — its batch-mates
    /// are unaffected — and a live item's solves are bounded by the
    /// earlier of its own deadline and `control.deadline`.  This is what
    /// lets a server coalesce requests with different budgets into one
    /// batch without the tightest budget poisoning the rest.
    std::vector<util::Deadline> deadlines{};
  };

  /// Predict a whole batch of challenges.  Results are in input order, one
  /// Prediction per challenge, and are bitwise independent of the worker
  /// count and of cache hits (a hit returns exactly what the solve
  /// produced when the entry was filled).
  std::vector<Prediction> predict_batch(
      const std::vector<Challenge>& challenges,
      const PredictBatchOptions& options) const;

  double comparator_offset() const { return comparator_offset_; }

  /// Mean published capacity across both networks and both input bits.
  /// The natural scale for flow tolerances: the serving layer derives its
  /// absolute comparator tolerance from it.
  double mean_capacity() const;

 private:
  explicit SimulationModel(const CrossbarLayout& layout) : layout_(layout) {}

  CrossbarLayout layout_;
  // capacities_[network][edge][bit]
  std::array<std::vector<std::array<double, 2>>, 2> capacities_;
  double comparator_offset_ = 0.0;
};

}  // namespace ppuf
