// Sharded, bounded LRU cache of CRP responses.
//
// Repeated challenges are not an edge case in this system: feedback-loop
// chains (Section 3.3) revisit prefix challenges, model-building attack
// datasets re-query anchor CRPs, and a verifier serving many holders of the
// same instance sees the same (challenge, environment) pairs again and
// again.  A response is a pure function of the instance, the challenge and
// the environment, so caching it is semantically invisible — the cache
// returns bit-for-bit what the solve would have produced.
//
// The KEY MUST INCLUDE THE ENVIRONMENT.  The same challenge under a hot
// die or a sagging rail can flip its response bit (that flip probability is
// exactly what bench_fig9 measures); a cache keyed on challenge bits alone
// would silently serve nominal-environment answers across environment
// sweeps and corrupt every reliability metric downstream.
//
// The KEY MUST ALSO INCLUDE THE DEVICE.  A multi-tenant server shares one
// cache across every enrolled device, and two devices routinely see the
// same (challenge, environment) pair with *different* response bits —
// that difference is the whole identity.  Callers without a registry
// identity pass kSingleDeviceId; what matters is that the id is explicit
// at every call site, so a cross-device leak cannot happen by omission.
//
// Concurrency: the key space is split across `shard_count` independent
// shards (chosen by key hash), each a mutex-guarded LRU list + hash map, so
// batch workers contend only when they touch the same shard.  Counters
// (hits / misses / evictions) are per-shard and aggregated by stats().
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "circuit/env.hpp"
#include "obs/metrics.hpp"
#include "ppuf/challenge.hpp"

namespace ppuf {

/// Cache identity for callers operating on a single ad-hoc instance with
/// no registry-assigned device id (benches, attack datasets, single-model
/// serving).  Registry ids start at 1, so this can never collide.
inline constexpr std::uint64_t kSingleDeviceId = 0;

/// What the cache stores for one (device, challenge, environment): the
/// response bit and the two flow values that produced it.
struct CachedResponse {
  int bit = 0;
  double flow_a = 0.0;
  double flow_b = 0.0;
};

struct ResponseCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;       ///< live entries across all shards
  std::uint64_t charged_bytes = 0; ///< estimated bytes of live entries

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class ResponseCache {
 public:
  /// `capacity_bytes` bounds the estimated footprint of live entries
  /// (split evenly across shards); `shard_count` is clamped to >= 1.
  explicit ResponseCache(std::size_t capacity_bytes,
                         unsigned shard_count = 16);
  ~ResponseCache();

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// The cached response, or nullopt on a miss.  A hit refreshes the
  /// entry's LRU position.  `device_id` partitions the key space per
  /// device (kSingleDeviceId when there is no registry identity).
  std::optional<CachedResponse> lookup(std::uint64_t device_id,
                                       const Challenge& challenge,
                                       const circuit::Environment& env);

  /// Insert or overwrite.  Eviction happens immediately if the shard's
  /// byte budget is exceeded (least recently used first).
  void insert(std::uint64_t device_id, const Challenge& challenge,
              const circuit::Environment& env,
              const CachedResponse& response);

  /// Drops every entry AND zeroes the hit/miss/eviction counters: a
  /// cleared cache reports like a fresh one, so hit-rate measurements
  /// taken after a clear() are not polluted by pre-clear traffic.
  void clear();

  ResponseCacheStats stats() const;

  /// Mirror the current cache state into `registry` as gauges:
  /// `<prefix>.{hits,misses,evictions,entries,charged_bytes,shard_count}`
  /// plus per-shard occupancy `<prefix>.shard.<i>.{entries,charged_bytes}`.
  /// Snapshot-style (set, not add) so repeated publishes stay idempotent.
  /// No-op when the registry is disabled.
  void publish_metrics(
      obs::MetricsRegistry& registry,
      std::string_view prefix = "ppuf.response_cache") const;

  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  std::size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Key {
    std::uint64_t device = kSingleDeviceId;
    graph::VertexId source = 0;
    graph::VertexId sink = 0;
    std::vector<std::uint8_t> bits;
    double vdd_scale = 1.0;
    double temperature_c = 27.0;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Shard;

  static Key make_key(std::uint64_t device_id, const Challenge& challenge,
                      const circuit::Environment& env);
  /// Estimated bytes one entry charges against the budget: the variable
  /// part (two copies of the bit vector — map key and LRU node) plus a
  /// fixed overhead for nodes, buckets and bookkeeping.
  static std::size_t entry_cost(const Key& key);

  Shard& shard_for(const Key& key);

  std::size_t capacity_bytes_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ppuf
