#include "ppuf/compact.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppuf {

MonotoneCurve::MonotoneCurve(std::span<const double> xs,
                             std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw std::invalid_argument("MonotoneCurve: need >= 2 matched samples");
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (!(xs[i] > xs[i - 1]))
      throw std::invalid_argument("MonotoneCurve: xs not strictly increasing");
    if (ys[i] < ys[i - 1])
      throw std::invalid_argument("MonotoneCurve: ys not non-decreasing");
  }
  x_.assign(xs.begin(), xs.end());
  y_.assign(ys.begin(), ys.end());

  const std::size_t n = x_.size();
  std::vector<double> h(n - 1), delta(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    h[i] = x_[i + 1] - x_[i];
    delta[i] = (y_[i + 1] - y_[i]) / h[i];
  }

  slope_.assign(n, 0.0);
  // Interior tangents: weighted harmonic mean of adjacent secants
  // (Fritsch-Carlson); zero whenever either secant is zero, which keeps the
  // interpolant monotone.
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (delta[i - 1] <= 0.0 || delta[i] <= 0.0) {
      slope_[i] = 0.0;
    } else {
      const double w1 = 2.0 * h[i] + h[i - 1];
      const double w2 = h[i] + 2.0 * h[i - 1];
      slope_[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
    }
  }
  // End tangents: one-sided three-point estimate, clamped to preserve
  // monotonicity.
  auto end_slope = [](double h0, double h1, double d0, double d1) {
    double s = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if (s < 0.0) s = 0.0;
    if (d0 > 0.0 && s > 3.0 * d0) s = 3.0 * d0;
    if (d0 == 0.0) s = 0.0;
    return s;
  };
  if (n == 2) {
    slope_[0] = slope_[1] = delta[0];
  } else {
    slope_[0] = end_slope(h[0], h[1], delta[0], delta[1]);
    slope_[n - 1] = end_slope(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
  }
}

double MonotoneCurve::operator()(double x, double* derivative) const {
  if (x_.empty()) throw std::logic_error("MonotoneCurve: empty");
  if (x <= x_.front()) {
    if (derivative != nullptr) *derivative = slope_.front();
    return y_.front() + slope_.front() * (x - x_.front());
  }
  if (x >= x_.back()) {
    if (derivative != nullptr) *derivative = slope_.back();
    return y_.back() + slope_.back() * (x - x_.back());
  }
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - x_.begin()) - 1;
  const double h = x_[i + 1] - x_[i];
  const double t = (x - x_[i]) / h;
  const double y0 = y_[i], y1 = y_[i + 1];
  const double m0 = slope_[i] * h, m1 = slope_[i + 1] * h;
  // Cubic Hermite basis.
  const double t2 = t * t, t3 = t2 * t;
  const double value = (2 * t3 - 3 * t2 + 1) * y0 + (t3 - 2 * t2 + t) * m0 +
                       (-2 * t3 + 3 * t2) * y1 + (t3 - t2) * m1;
  if (derivative != nullptr) {
    const double d = (6 * t2 - 6 * t) * y0 + (3 * t2 - 4 * t + 1) * m0 +
                     (-6 * t2 + 6 * t) * y1 + (3 * t2 - 2 * t) * m1;
    *derivative = d / h;
  }
  return value;
}

double MonotoneCurve::inverse(double y) const {
  if (x_.empty()) throw std::logic_error("MonotoneCurve: empty");
  if (y < y_.front() || y > y_.back())
    throw std::domain_error("MonotoneCurve::inverse: value out of range");
  double lo = x_.front(), hi = x_.back();
  for (int iter = 0; iter < 200 && hi - lo > 1e-12 * (x_.back() - x_.front());
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if ((*this)(mid) < y) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ppuf
