// Monotone piecewise-cubic interpolation (Fritsch-Carlson / PCHIP).
//
// The network-level solver represents each building block by a compact I-V
// curve sampled from the device-level netlist.  Monotone interpolation
// preserves the block's incremental passivity (Section 3.1), which is what
// guarantees a unique network steady state and a positive-semidefinite
// Newton Jacobian.
#pragma once

#include <span>
#include <vector>

namespace ppuf {

class MonotoneCurve {
 public:
  MonotoneCurve() = default;

  /// Build from samples with strictly increasing xs and non-decreasing ys.
  /// Throws std::invalid_argument otherwise.  Outside [xs.front(),
  /// xs.back()] the curve continues linearly with the end slopes.
  MonotoneCurve(std::span<const double> xs, std::span<const double> ys);

  bool empty() const { return x_.empty(); }

  /// Value at x; if derivative != nullptr also writes dy/dx (always >= 0).
  double operator()(double x, double* derivative = nullptr) const;

  double x_min() const { return x_.front(); }
  double x_max() const { return x_.back(); }
  double y_max() const { return y_.back(); }

  /// Inverse lookup: smallest x with value >= y (bisection); requires y in
  /// [y(x_min), y(x_max)].
  double inverse(double y) const;

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> slope_;  // Fritsch-Carlson tangents at the knots
};

}  // namespace ppuf
