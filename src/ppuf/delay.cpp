#include "ppuf/delay.hpp"

#include <cmath>
#include <stdexcept>

#include "ppuf/block.hpp"

namespace ppuf {

double block_effective_resistance(const PpufParams& params) {
  const circuit::BlockVariation nominal{};
  const BlockCurve curve = characterize_block(
      params, nominal, 1, circuit::Environment::nominal());
  if (curve.isat <= 0.0)
    throw std::runtime_error("block_effective_resistance: dead block");
  return kCapacityReferenceVoltage / curve.isat;
}

double analytic_delay_bound(const PpufParams& params, std::size_t n,
                            double settle_tolerance) {
  if (n < 2) throw std::invalid_argument("analytic_delay_bound: n < 2");
  if (settle_tolerance <= 0.0 || settle_tolerance >= 1.0)
    throw std::invalid_argument("analytic_delay_bound: tolerance in (0,1)");
  const double c_node =
      params.edge_capacitance * static_cast<double>(2 * (n - 1));
  // An RC node reaches within a fraction eps of its final value after
  // RC ln(1/eps); the Lin-Mead argument bounds the worst node's RC by
  // R(s,u) C(u).
  return block_effective_resistance(params) * c_node *
         std::log(1.0 / settle_tolerance);
}

double measured_execution_delay(CrossbarNetwork& network,
                                const Challenge& challenge,
                                const circuit::Environment& env,
                                double settle_tolerance) {
  NetworkSolver::TransientOptions topt;
  topt.settle_tolerance = settle_tolerance;
  // Start from the analytic bound and expand the window until settled.
  const double bound =
      analytic_delay_bound(network.params(), network.layout().node_count());
  topt.t_end = 4.0 * bound;
  topt.dt = topt.t_end / 800.0;
  for (int attempt = 0; attempt < 6; ++attempt) {
    const NetworkSolver::TransientResult r =
        network.execute_transient(challenge, env, topt);
    // Section 3.3 defines the delay through node-voltage stability, which
    // upper-bounds the current stability; report that measure (it is also
    // the robust one — on flat saturation plateaus the source current can
    // sit inside its band long before the network has actually settled).
    if (r.voltage_settle_time > 0.0) return r.voltage_settle_time;
    topt.t_end *= 4.0;
    topt.dt *= 4.0;
  }
  throw std::runtime_error("measured_execution_delay: did not settle");
}

}  // namespace ppuf
