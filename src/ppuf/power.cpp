#include "ppuf/power.hpp"

namespace ppuf {

PowerEstimate estimate_power(const PpufParams& params,
                             double avg_current_per_network,
                             double execution_delay) {
  PowerEstimate e;
  e.crossbar_power = params.vs * 2.0 * avg_current_per_network;
  e.comparator_power = kComparatorPowerWatts;
  e.total_power = e.crossbar_power + e.comparator_power;
  e.execution_delay = execution_delay;
  e.energy_per_eval = e.total_power * execution_delay;
  return e;
}

}  // namespace ppuf
