// Execution-delay estimation (Section 3.3).
//
// The paper bounds the charging delay of the worst node u by the Lin-Mead
// capacitance-redistribution argument: T(u) <= R(s,u) C(u), where R(s,u)
// is the (constant) effective resistance of the direct edge from the
// source and C(u) grows linearly with degree — hence O(n) execution delay.
// We provide both that analytic bound and a direct transient measurement.
#pragma once

#include "ppuf/crossbar.hpp"
#include "ppuf/params.hpp"

namespace ppuf {

/// Effective charging resistance of one block near its operating point:
/// the secant resistance from turn-on to the capacity reference voltage of
/// the nominal block curve.
double block_effective_resistance(const PpufParams& params);

/// Analytic Lin-Mead upper bound on the execution delay for an n-node
/// PPUF: R_eff * C(u) with C(u) = edge_capacitance * 2(n-1), times the
/// RC settling factor ln(1/tolerance) for reaching the given band around
/// the steady state.  Linear in n, as Section 3.3 proves.
double analytic_delay_bound(const PpufParams& params, std::size_t n,
                            double settle_tolerance = 1e-3);

/// Measured settle time of the source current for one challenge on one
/// network (see NetworkSolver::solve_transient).  Expands the analysis
/// window until the current settles.
double measured_execution_delay(CrossbarNetwork& network,
                                const Challenge& challenge,
                                const circuit::Environment& env,
                                double settle_tolerance = 1e-3);

}  // namespace ppuf
