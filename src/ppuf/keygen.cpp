#include "ppuf/keygen.hpp"

#include <stdexcept>

namespace ppuf {

std::vector<Challenge> key_challenges(const CrossbarLayout& layout,
                                      const KeyDerivationOptions& options) {
  if (options.bits == 0)
    throw std::invalid_argument("key_challenges: zero bits");
  util::Rng rng(options.seed ^ 0x6b79676e65726174ULL);
  std::vector<Challenge> out;
  out.reserve(options.bits);
  for (std::size_t i = 0; i < options.bits; ++i)
    out.push_back(random_challenge(layout, rng));
  return out;
}

std::vector<std::uint8_t> derive_key(MaxFlowPpuf& instance,
                                     const KeyDerivationOptions& options,
                                     util::Rng& noise_rng,
                                     const circuit::Environment& env) {
  if (options.votes == 0 || options.votes % 2 == 0)
    throw std::invalid_argument("derive_key: votes must be odd");
  const std::vector<Challenge> challenges =
      key_challenges(instance.layout(), options);
  std::vector<std::uint8_t> key;
  key.reserve(challenges.size());
  for (const Challenge& c : challenges) {
    std::size_t ones = 0;
    for (std::size_t v = 0; v < options.votes; ++v)
      ones += instance.evaluate(c, env, &noise_rng).bit;
    key.push_back(ones * 2 > options.votes ? 1 : 0);
  }
  return key;
}

double key_mismatch_rate(const std::vector<std::uint8_t>& a,
                         const std::vector<std::uint8_t>& b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("key_mismatch_rate: size mismatch");
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += a[i] != b[i] ? 1 : 0;
  return static_cast<double>(diff) / static_cast<double>(a.size());
}

}  // namespace ppuf
