// One crossbar network (Section 4.1): the physical realisation of the
// complete graph.  Every ordered node pair (i, j) has a building block at
// the intersection of vertical bar i and horizontal bar j, with its own
// process-variation draw.  The block compact models are characterised once
// per environment and cached; executing a challenge is then a single
// network-level Newton solve.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "circuit/env.hpp"
#include "circuit/variation.hpp"
#include "ppuf/block.hpp"
#include "ppuf/challenge.hpp"
#include "ppuf/network_solver.hpp"
#include "util/rng.hpp"

namespace ppuf {

class CrossbarNetwork {
 public:
  /// Draws the process variation of every block.  `surface` is the die's
  /// systematic-variation surface — pass the same surface for the two
  /// networks of a PPUF (side-by-side placement, Section 4.1).
  CrossbarNetwork(const PpufParams& params, const CrossbarLayout& layout,
                  util::Rng& rng, const circuit::SystematicSurface& surface);

  const CrossbarLayout& layout() const { return layout_; }
  const PpufParams& params() const { return params_; }

  /// Variation draw of the block instantiating directed edge e.  This is
  /// part of the *public* model of the PPUF.
  const circuit::BlockVariation& block_variation(graph::EdgeId e) const {
    return variation_.at(e);
  }

  /// Characterise all block compact models for `env` (no-op if already
  /// cached for the same environment).
  void prepare(const circuit::Environment& env);

  /// Share a circuit-level symbolic cache (MNA pattern + sparse-LU
  /// analysis) used during block characterisation.  All blocks have the
  /// same netlist topology, so a whole device analyses once; MaxFlowPpuf
  /// passes one cache to both of its networks.  Set before prepare().
  void set_symbolic_cache(std::shared_ptr<circuit::SymbolicCache> cache) {
    symbolic_cache_ = std::move(cache);
  }
  const std::shared_ptr<circuit::SymbolicCache>& symbolic_cache() const {
    return symbolic_cache_;
  }

  /// Opt in to warm-starting the network Newton solve from the previous
  /// converged execution (chained-auth acceleration).  Off by default:
  /// cold starts make execute() bitwise repeatable, which tests and the
  /// golden corpus rely on; warm starts converge to the same bits but may
  /// differ in the last few ulps of the node voltages.  The stored state is
  /// discarded whenever the environment changes (re-characterisation).
  void set_warm_start(bool enabled) {
    warm_start_enabled_ = enabled;
    if (!enabled) clear_warm_start();
  }
  bool warm_start_enabled() const { return warm_start_enabled_; }
  void clear_warm_start() { have_last_solution_ = false; }

  /// Compact model of edge e under input bit `bit`; prepare() first.
  const BlockCurve& curve(graph::EdgeId e, int bit) const;

  struct Execution {
    double source_current = 0.0;  ///< steady-state current into the source
    int newton_iterations = 0;
    bool converged = false;
    /// Recovery-ladder trace of the underlying DC solve.
    circuit::SolveDiagnostics diagnostics;
  };

  /// Solve the steady state for a challenge (implicitly prepares `env`).
  Execution execute(const Challenge& challenge,
                    const circuit::Environment& env);

  /// Per-edge steady-state currents for a challenge — the flow function the
  /// PPUF holder hands to a verifier for the residual-graph check.
  std::vector<double> execute_edge_currents(const Challenge& challenge,
                                            const circuit::Environment& env);

  /// Settle-time measurement for the same challenge (execution delay).
  NetworkSolver::TransientResult execute_transient(
      const Challenge& challenge, const circuit::Environment& env,
      const NetworkSolver::TransientOptions& topt);

  /// Per-node capacitance: edge capacitance times degree (2(n-1) incident
  /// blocks per node in the complete crossbar).
  std::vector<double> node_capacitances() const;

 private:
  void select_curves(const Challenge& challenge);

  PpufParams params_;
  CrossbarLayout layout_;
  std::vector<circuit::BlockVariation> variation_;        // per edge
  std::vector<std::array<BlockCurve, 2>> curves_;         // per edge x bit
  circuit::Environment cached_env_{};
  bool prepared_ = false;
  std::unique_ptr<NetworkSolver> solver_;
  std::shared_ptr<circuit::SymbolicCache> symbolic_cache_;
  bool warm_start_enabled_ = false;
  bool have_last_solution_ = false;
  numeric::Vector last_solution_;  ///< node voltages of last converged solve
};

}  // namespace ppuf
