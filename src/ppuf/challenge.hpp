// PPUF challenges (Section 4.2).
//
// A challenge has two parts:
//   type-A — the choice of source and sink node (n(n-1) possibilities);
//   type-B — one bit per cell of the l x l control grid; the bit selects the
//            control-voltage assignment (hence the saturation current) of
//            every building block whose crossbar intersection falls in that
//            cell.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "ppuf/params.hpp"
#include "util/rng.hpp"

namespace ppuf {

struct Challenge {
  graph::VertexId source = 0;
  graph::VertexId sink = 1;
  std::vector<std::uint8_t> bits;  ///< l*l type-B bits, row-major

  bool operator==(const Challenge&) const = default;
};

/// Maps crossbar coordinates to grid cells and die positions.
class CrossbarLayout {
 public:
  CrossbarLayout(std::size_t node_count, std::size_t grid_size);

  std::size_t node_count() const { return n_; }
  std::size_t grid_size() const { return l_; }
  std::size_t cell_count() const { return l_ * l_; }
  std::size_t edge_count() const { return n_ * (n_ - 1); }

  /// Grid cell controlling the block at crossbar intersection (i, j),
  /// i.e. the directed edge i -> j.
  std::size_t cell_of_edge(graph::VertexId from, graph::VertexId to) const;

  /// Edge id of the ordered pair, row-major with the diagonal skipped
  /// (matches graph::complete_edge_id).
  graph::EdgeId edge_id(graph::VertexId from, graph::VertexId to) const;

  /// Normalised die position of the block at (from, to), for the
  /// systematic-variation surface.
  void die_position(graph::VertexId from, graph::VertexId to, double* x,
                    double* y) const;

 private:
  std::size_t n_;
  std::size_t l_;
};

/// Uniformly random challenge: random source/sink pair and i.i.d. type-B
/// bits.
Challenge random_challenge(const CrossbarLayout& layout, util::Rng& rng);

/// Random challenge with the given source/sink fixed (used by the
/// model-building attack, which observes a single type-A setting).
Challenge random_challenge_fixed_ends(const CrossbarLayout& layout,
                                      graph::VertexId source,
                                      graph::VertexId sink, util::Rng& rng);

/// Flips exactly `flips` distinct type-B bits of `base` (used by the Fig. 9
/// flip-probability experiment).
Challenge flip_bits(const Challenge& base, std::size_t flips, util::Rng& rng);

/// Hamming distance between the type-B parts.
std::size_t hamming_distance(const Challenge& a, const Challenge& b);

}  // namespace ppuf
