// Network-level steady-state and transient solver.
//
// The crossbar is a complete graph of compact-model blocks.  Rather than
// pushing ~n^2 device-level blocks through the generic MNA solver, this
// solver works directly on the compact I-V curves: unknowns are the n-2
// floating node voltages, the Jacobian is the (SPD) weighted-Laplacian of
// branch conductances, and each Newton step is one Cholesky solve.
//
// Incremental passivity of the blocks (monotone curves) makes the Jacobian
// positive semidefinite and the steady state unique — the circuit-theory
// argument of Section 3.2.
#pragma once

#include <vector>

#include "circuit/solve_diagnostics.hpp"
#include "graph/digraph.hpp"
#include "numeric/matrix.hpp"
#include "ppuf/compact.hpp"

namespace ppuf {

class NetworkSolver {
 public:
  struct Options {
    int max_iterations = 200;
    double voltage_tol = 1e-9;   ///< convergence on max |dV| [V]
    double current_tol = 1e-14;  ///< convergence on max node KCL error [A]
    double step_limit = 0.4;     ///< Newton step clamp [V]
    double gmin = 1e-12;         ///< node-to-ground conductance [S]
    /// When the direct Newton attempt fails, escalate through the recovery
    /// ladder (gmin stepping -> source stepping -> tightened damping)
    /// instead of returning non-converged immediately.
    bool enable_recovery = true;
  };

  /// `edge_curves[e]` is the active compact curve of the directed edge with
  /// id e in row-major ordered-pair layout (graph::complete_edge_id); a
  /// null pointer disables the edge.  The solver keeps the pointers, so the
  /// curves must outlive it; swapping pointers re-programs the challenge
  /// without rebuilding.
  NetworkSolver(std::size_t node_count,
                std::vector<const MonotoneCurve*> edge_curves,
                Options options);
  NetworkSolver(std::size_t node_count,
                std::vector<const MonotoneCurve*> edge_curves)
      : NetworkSolver(node_count, std::move(edge_curves), Options{}) {}

  std::size_t node_count() const { return n_; }

  std::vector<const MonotoneCurve*>& edge_curves() { return curves_; }

  struct DcResult {
    numeric::Vector node_voltage;  ///< size n, source/sink values included
    double source_current = 0.0;   ///< net current out of the source node
    int iterations = 0;            ///< total across all recovery stages
    bool converged = false;
    /// Which recovery stages ran, how hard each worked, and where the
    /// solve ended up — never a silent bool.
    circuit::SolveDiagnostics diagnostics;
  };

  /// Branch currents at the given node voltages, indexed by edge id (the
  /// physical flow function the PPUF holder reports to a verifier).
  std::vector<double> edge_currents(const numeric::Vector& node_voltage) const;

  /// Steady state with `source` pinned at vs and `sink` at ground; all
  /// other nodes float.  `warm` (node voltages of a previous solve) speeds
  /// up challenge sweeps.
  DcResult solve_dc(graph::VertexId source, graph::VertexId sink, double vs,
                    const numeric::Vector* warm = nullptr) const;

  struct TransientResult {
    std::vector<double> time;            ///< sample instants [s]
    std::vector<double> source_current;  ///< source current at each instant
    /// First time the source current stays within `settle_tolerance` of its
    /// final (DC) value; negative if it never settles in the window.
    double settle_time = -1.0;
    /// First time every node voltage stays within `voltage_tolerance` of
    /// its final (DC) value — the paper's Section 3.3 definition, which
    /// upper-bounds the current settling.  Negative if not reached.
    double voltage_settle_time = -1.0;
  };

  struct TransientOptions {
    double dt = 2e-10;            ///< backward-Euler step [s]
    double t_end = 4e-7;          ///< analysis window [s]
    double settle_tolerance = 1e-3;  ///< relative band around the DC value
    double voltage_tolerance = 5e-3; ///< absolute node-voltage band [V]
  };

  /// Backward-Euler transient from the fully discharged state after the
  /// challenge step.  `node_capacitance[v]` is the total capacitance at
  /// node v (for the crossbar: edge_capacitance * degree).
  TransientResult solve_transient(graph::VertexId source,
                                  graph::VertexId sink, double vs,
                                  const std::vector<double>& node_capacitance,
                                  const TransientOptions& topt) const;

 private:
  struct NewtonOutcome {
    int iterations = 0;
    double residual = 0.0;
    bool converged = false;
  };

  /// One damped-Newton run with the given options, updating `v` in place
  /// (pinned entries must already hold their boundary values).
  NewtonOutcome run_newton(graph::VertexId source, graph::VertexId sink,
                           numeric::Vector& v, const Options& opts,
                           const std::vector<std::size_t>& unknown_index)
      const;

  /// Evaluate all branch currents/conductances at the voltage vector and
  /// accumulate KCL residual + Laplacian; returns the source current.
  double assemble(const numeric::Vector& v, graph::VertexId source,
                  graph::VertexId sink, numeric::Vector* residual,
                  numeric::Matrix* laplacian,
                  const std::vector<std::size_t>& unknown_index) const;

  std::size_t n_;
  std::vector<const MonotoneCurve*> curves_;
  Options options_;
};

}  // namespace ppuf
