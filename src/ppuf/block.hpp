// The PPUF basic building block (Section 3.1, Fig. 2).
//
// Evolution of the design:
//   (a) kBare     — diode + one saturated MOSFET (controllable max current,
//                   but channel-length modulation / SCE moves Isat with Vds)
//   (b) kSingleSd — source-degeneration resistor stabilises the current
//   (c) kDoubleSd — nested degeneration (cascode M1 over M2 over R1) with a
//                   headroom source Vb; the design the PPUF uses
//   (d) the full block: two kDoubleSd stages in series driven by
//       complementary control voltages (Vgs0 + Vgs1 = Vc) plus diodes at
//       both ends.  Input bit selects which stage limits the current.
//
// Each block instantiates one directed edge of the complete graph; its
// saturation current is the edge capacity.
#pragma once

#include <memory>

#include "circuit/env.hpp"
#include "circuit/netlist.hpp"
#include "circuit/variation.hpp"
#include "ppuf/compact.hpp"
#include "ppuf/params.hpp"

namespace ppuf::circuit {
class SymbolicCache;  // circuit/mna.hpp
}

namespace ppuf {

enum class BlockDesign { kBare, kSingleSd, kDoubleSd };

/// A netlist with its sweep source: the source drives the block's top
/// terminal against ground, and its branch current is the block current.
struct SweepCircuit {
  circuit::Netlist netlist;
  std::size_t sweep_source = 0;
};

/// Single-stage test circuit for the Fig. 2(a)-(c) design evolution
/// (used by the Fig. 3a reproduction and the Requirement-2 study).
/// `vgs` is the control voltage; variation may be null for nominal devices.
SweepCircuit build_stage_test(const PpufParams& params, BlockDesign design,
                              double vgs,
                              const circuit::BlockVariation* variation,
                              const circuit::Environment& env);

/// Full two-stage building block of Fig. 2(d) for the given input bit.
SweepCircuit build_block(const PpufParams& params,
                         const circuit::BlockVariation& variation,
                         int input_bit, const circuit::Environment& env);

/// Instantiate the Fig. 2(d) block between two existing nodes of `nl`
/// (conduction direction top -> bottom): diode, the two complementary
/// kDoubleSd stages with their gate batteries, diode.  This is the flat
/// transistor-level form used when a whole crossbar is assembled into one
/// MNA system (device_netlist.hpp); build_block wraps it with a sweep
/// source for stand-alone characterisation.
void append_block(circuit::Netlist& nl, const PpufParams& params,
                  const circuit::BlockVariation& variation, int input_bit,
                  circuit::NodeId top, circuit::NodeId bottom,
                  const circuit::Environment& env);

/// Characterised block: a monotone compact I-V curve plus the saturation
/// current used as the edge capacity in the public simulation model.
struct BlockCurve {
  MonotoneCurve iv;
  double isat = 0.0;  ///< current at the capacity reference voltage [A]
};

/// Voltage at which the saturation current (edge capacity) is read off.
/// Mid-plateau: far above the block's turn-on knee, below V(s).
constexpr double kCapacityReferenceVoltage = 1.4;

/// Sweep the device-level block netlist and build its compact model.
/// This is the expensive step; CrossbarNetwork caches the result per
/// (block, input bit, environment).  `symbolic_cache` (optional) shares the
/// MNA pattern + sparse-LU symbolic analysis across calls: every block of a
/// device has the same netlist topology, so the whole device analyses once.
BlockCurve characterize_block(
    const PpufParams& params, const circuit::BlockVariation& variation,
    int input_bit, const circuit::Environment& env,
    std::shared_ptr<circuit::SymbolicCache> symbolic_cache = nullptr);

/// I-V samples of a sweep circuit at the given voltages (exposed for the
/// Fig. 3 bench and tests).
std::vector<double> sweep_current(
    SweepCircuit& circuit, std::span<const double> voltages,
    const circuit::Environment& env,
    std::shared_ptr<circuit::SymbolicCache> symbolic_cache = nullptr);

/// The characterisation voltage grid: dense around the knee, sparser on the
/// plateau, with a small negative segment for the diode-blocked region.
std::vector<double> characterization_grid(const PpufParams& params);

}  // namespace ppuf
