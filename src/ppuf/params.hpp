// Central parameter set for the max-flow PPUF.  Defaults follow the paper's
// Section 5 settings where it gives them (V(s) = 2 V, Vb = 0.1 V,
// Vc = 1.2 V, Vth sigma = 35 mV) and our own device card otherwise (the
// paper used the 32 nm PTM inside HSPICE; DESIGN.md documents the
// substitution).
#pragma once

#include <cstddef>

#include "circuit/devices.hpp"
#include "circuit/variation.hpp"

namespace ppuf {

struct PpufParams {
  // --- topology ---
  std::size_t node_count = 40;   ///< n: circuit nodes / graph vertices
  std::size_t grid_size = 8;     ///< l: type-B control grid is l x l

  // --- supply and bias (paper Section 5) ---
  double vs = 2.0;        ///< source voltage V(s) [V]
  /// Cascode headroom source Vb.  The paper uses 0.1 V on its 32 nm PTM
  /// card; with our level-1 device card, 0.25 V keeps the cascode in
  /// saturation across the +-3 sigma Vth spread, which is what pushes the
  /// variation-to-SCE ratio of Requirement 2 above 100x.
  double vb = 0.25;       ///< [V]
  double vc = 1.2;        ///< Vgs0 + Vgs1 = Vc [V]
  /// Control voltage of the limiting stage.  Input bit 1 puts vgs_low on
  /// stage A (so stage A's transistors limit the current); input bit 0 puts
  /// it on stage B.  The complementary stage gets vc - vgs_low.  The
  /// symmetric split makes the two nominal saturation currents exactly
  /// equal, which is what the paper tunes its 0.5 V / 0.67 V pair for.
  double vgs_low = 0.5;   ///< [V]

  // --- devices ---
  circuit::MosfetParams mosfet{/*vth=*/0.4, /*transconductance=*/8e-6,
                               /*lambda=*/0.3};
  circuit::DiodeParams diode{/*saturation_current=*/1e-11, /*ideality=*/1.0,
                             /*linearize_above=*/0.9};
  double degeneration_resistance = 4.0e5;  ///< R1, R2 [ohm]

  // --- variation ---
  circuit::VariationModel variation{};
  /// Section 4.1: place paired transistors of the two networks side by
  /// side so they share the systematic across-die variation, which the
  /// differential comparator then cancels.  false models a naive layout
  /// where each network sits in its own die region with an independent
  /// systematic surface (ablated in bench_ablation).
  bool paired_systematic_placement = true;

  // --- dynamics (execution delay) ---
  /// Wiring/device capacitance contributed by one incident edge to a node;
  /// total node capacitance grows linearly with degree, which is what makes
  /// the paper's execution-delay bound O(n) (Section 3.3).  The value is
  /// calibrated to the paper's operating point: with ~30 nA edge currents
  /// (R_eff ~ 45 Mohm) a 900-node delay of ~1 us (Fig. 7a) implies ~2 aF
  /// per incident block.
  double edge_capacitance = 2e-18;  ///< [F]

  // --- comparator (specs in the range of the papers cited by Section 5) ---
  double comparator_offset_sigma = 2e-9;  ///< input-referred offset [A]
  double comparator_noise_sigma = 1e-9;   ///< per-evaluation noise [A]

  /// Characterisation sweep ceiling for the block compact model
  /// (above vs, for environment headroom); the grid itself comes from
  /// characterization_grid().
  double sweep_max_voltage = 2.4;  ///< [V]

  /// Control voltage of the complementary (non-limiting) stage.
  double vgs_high() const { return vc - vgs_low; }

  /// Alternative device card loosely styled after a 45 nm node: higher
  /// threshold, stronger transconductance, milder channel-length
  /// modulation, smaller Vth spread.  Exists to show the reproduction's
  /// conclusions are properties of the *architecture*, not of one card
  /// (exercised by the cross-card regression tests).
  static PpufParams card_45nm() {
    PpufParams p;
    p.mosfet.vth = 0.45;
    p.mosfet.transconductance = 12e-6;
    p.mosfet.lambda = 0.15;
    p.variation.vth_sigma = 0.025;
    p.vgs_low = 0.55;
    p.vc = 1.3;
    p.vb = 0.2;
    return p;
  }
};

}  // namespace ppuf
