#include "ppuf/code.hpp"

#include <stdexcept>

namespace ppuf {

namespace {
std::size_t distance(const std::vector<std::uint8_t>& a,
                     const std::vector<std::uint8_t>& b) {
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += a[i] != b[i] ? 1 : 0;
  return d;
}
}  // namespace

std::vector<std::vector<std::uint8_t>> build_min_distance_code(
    std::size_t length, std::size_t min_distance, std::size_t max_codewords,
    util::Rng& rng, std::size_t max_attempts) {
  if (min_distance > length)
    throw std::invalid_argument("build_min_distance_code: d > length");
  std::vector<std::vector<std::uint8_t>> code;
  std::size_t rejections = 0;
  while (code.size() < max_codewords && rejections < max_attempts) {
    std::vector<std::uint8_t> word(length);
    for (auto& b : word) b = rng.coin() ? 1 : 0;
    bool ok = true;
    for (const auto& kept : code) {
      if (distance(word, kept) < min_distance) {
        ok = false;
        break;
      }
    }
    if (ok) {
      code.push_back(std::move(word));
      rejections = 0;
    } else {
      ++rejections;
    }
  }
  return code;
}

bool check_min_distance(const std::vector<std::vector<std::uint8_t>>& code,
                        std::size_t min_distance) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (std::size_t j = i + 1; j < code.size(); ++j) {
      if (distance(code[i], code[j]) < min_distance) return false;
    }
  }
  return true;
}

util::BigUint type_b_space_lower_bound(std::size_t l, std::size_t d) {
  const auto length = static_cast<unsigned>(l * l);
  if (d == 0 || d > length)
    throw std::invalid_argument("type_b_space_lower_bound: bad d");
  util::BigUint ball(0);
  for (unsigned i = 0; i < d; ++i)
    ball += util::BigUint::binomial(length, i);
  return util::BigUint::pow2(length) / ball;
}

util::BigUint crp_space_lower_bound(std::size_t n, std::size_t l,
                                    std::size_t d) {
  if (n < 2) throw std::invalid_argument("crp_space_lower_bound: n < 2");
  util::BigUint type_a(static_cast<std::uint64_t>(n));
  type_a *= util::BigUint(static_cast<std::uint64_t>(n - 1));
  return type_a * type_b_space_lower_bound(l, d);
}

}  // namespace ppuf
