// The complete PPUF (Fig. 1): two nominally identical crossbar networks
// differing only in process variation, a current comparator on the two
// source currents, and the challenge interface.
#pragma once

#include <cstdint>
#include <optional>

#include "ppuf/crossbar.hpp"

namespace ppuf {

class MaxFlowPpuf {
 public:
  /// Fabricate an instance: draws the systematic surface and both
  /// networks' process variation, plus the comparator offset.  The same
  /// seed always fabricates the same instance.
  MaxFlowPpuf(const PpufParams& params, std::uint64_t seed);

  const PpufParams& params() const { return params_; }
  const CrossbarLayout& layout() const { return layout_; }

  CrossbarNetwork& network_a() { return network_a_; }
  CrossbarNetwork& network_b() { return network_b_; }
  const CrossbarNetwork& network_a() const { return network_a_; }
  const CrossbarNetwork& network_b() const { return network_b_; }

  /// Instance comparator offset (part of the public model — it can be
  /// measured once and published).
  double comparator_offset() const { return comparator_offset_; }

  struct Evaluation {
    int bit = 0;
    double current_a = 0.0;  ///< steady-state source current, network A [A]
    double current_b = 0.0;  ///< network B [A]
    bool converged = false;
    /// Recovery-ladder traces of the two network solves — when converged
    /// is false these say which stages were tried and how far they got.
    circuit::SolveDiagnostics diagnostics_a;
    circuit::SolveDiagnostics diagnostics_b;
  };

  /// Execute one challenge.  `noise_rng`, when provided, adds the
  /// comparator's per-evaluation input-referred noise; pass nullptr for the
  /// noiseless (expected-value) response.
  Evaluation evaluate(const Challenge& challenge,
                      const circuit::Environment& env =
                          circuit::Environment::nominal(),
                      util::Rng* noise_rng = nullptr);

  /// Pre-characterise both networks for `env` (evaluate() does this lazily).
  void prepare(const circuit::Environment& env);

  /// Opt in to warm-starting each network's Newton solve from its previous
  /// converged execution.  Chained authentication flips only a handful of
  /// challenge bits per round, so the previous operating point is an
  /// excellent initial guess.  Off by default: cold starts keep evaluate()
  /// bitwise repeatable.  Response *bits* are identical either way (the
  /// differential suite asserts it).
  void set_warm_start(bool enabled) {
    network_a_.set_warm_start(enabled);
    network_b_.set_warm_start(enabled);
  }
  bool warm_start_enabled() const { return network_a_.warm_start_enabled(); }

  /// The per-device symbolic cache shared by both networks' block
  /// characterisations (one MNA pattern + sparse-LU analysis per device).
  const std::shared_ptr<circuit::SymbolicCache>& symbolic_cache() const {
    return network_a_.symbolic_cache();
  }

 private:
  PpufParams params_;
  CrossbarLayout layout_;
  circuit::SystematicSurface surface_;
  CrossbarNetwork network_a_;
  CrossbarNetwork network_b_;
  double comparator_offset_ = 0.0;
};

}  // namespace ppuf
