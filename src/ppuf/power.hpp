// Power and energy estimate (Section 5): the two crossbars burn
// V(s) * (I_A + I_B) during an evaluation, the comparator adds its own
// quoted power, and the energy per evaluation is power times execution
// delay.  The paper reports ~287.4 pJ per evaluation for 900 nodes.
#pragma once

#include <cstddef>

#include "ppuf/params.hpp"

namespace ppuf {

struct PowerEstimate {
  double crossbar_power = 0.0;    ///< V(s) * (I_A + I_B) [W]
  double comparator_power = 0.0;  ///< from the comparator datasheet [W]
  double total_power = 0.0;       ///< [W]
  double execution_delay = 0.0;   ///< [s]
  double energy_per_eval = 0.0;   ///< total_power * delay [J]
};

/// Comparator power quoted by the paper's reference [25] (153 uW).
constexpr double kComparatorPowerWatts = 153e-6;

/// Estimate from measured/extrapolated average source currents and delay.
PowerEstimate estimate_power(const PpufParams& params,
                             double avg_current_per_network,
                             double execution_delay);

}  // namespace ppuf
