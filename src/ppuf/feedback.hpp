// Feedback-loop ESG amplification (Section 3.3, adopted from SIMPL
// systems): the verifier issues challenge C1 and requires the chain
// (C1,R1)...(Ck,Rk), where C_{i+1} is a public deterministic function of
// (C_i, R_i).  The PPUF holder pays k executions (O(kn)); a simulator must
// solve the k max-flow instances *sequentially* (O(k n^2)), because C_{i+1}
// is unknown until R_i is — that sequencing is exactly what multiplies the
// ESG by k.
#pragma once

#include <cstdint>
#include <vector>

#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"

namespace ppuf {

/// Public successor function: derives the next challenge from the previous
/// challenge and its response.  Both PPUF holder and simulator use it.
Challenge next_challenge(const CrossbarLayout& layout,
                         const Challenge& previous, int response,
                         std::uint64_t protocol_nonce);

struct FeedbackChain {
  std::vector<Challenge> challenges;  ///< C1..Ck
  std::vector<int> responses;         ///< R1..Rk
  int final_response() const { return responses.back(); }
};

/// Run the chain on the physical PPUF (the holder's fast path).
FeedbackChain run_chain_on_ppuf(MaxFlowPpuf& instance, const Challenge& c1,
                                std::size_t k, std::uint64_t protocol_nonce,
                                const circuit::Environment& env =
                                    circuit::Environment::nominal());

/// Run the chain through the public simulation model (the attacker's slow
/// path): k sequential max-flow solves per network.
FeedbackChain run_chain_on_model(const SimulationModel& model,
                                 const Challenge& c1, std::size_t k,
                                 std::uint64_t protocol_nonce,
                                 maxflow::Algorithm algorithm =
                                     maxflow::Algorithm::kPushRelabel);

}  // namespace ppuf
