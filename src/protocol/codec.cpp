#include "protocol/codec.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

namespace ppuf::protocol::codec {

namespace {

using util::Status;

/// Vector counts are validated against the bytes actually remaining before
/// any allocation, so a forged count can never drive a giant resize: each
/// element of the claimed vector needs at least `element_size` bytes.
bool plausible_count(const Reader& r, std::uint32_t count,
                     std::size_t element_size) {
  return static_cast<std::size_t>(count) <= r.remaining() / element_size;
}

Status malformed(const char* what) {
  return Status::invalid_argument(std::string("malformed ") + what);
}

}  // namespace

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void Writer::raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

bool Reader::u8(std::uint8_t* v) {
  if (failed_ || size_ - pos_ < 1) {
    failed_ = true;
    return false;
  }
  *v = data_[pos_++];
  return true;
}

bool Reader::u16(std::uint16_t* v) {
  if (failed_ || size_ - pos_ < 2) {
    failed_ = true;
    return false;
  }
  *v = static_cast<std::uint16_t>(data_[pos_] |
                                  (std::uint16_t{data_[pos_ + 1]} << 8));
  pos_ += 2;
  return true;
}

bool Reader::u32(std::uint32_t* v) {
  if (failed_ || size_ - pos_ < 4) {
    failed_ = true;
    return false;
  }
  *v = std::uint32_t{data_[pos_]} | (std::uint32_t{data_[pos_ + 1]} << 8) |
       (std::uint32_t{data_[pos_ + 2]} << 16) |
       (std::uint32_t{data_[pos_ + 3]} << 24);
  pos_ += 4;
  return true;
}

bool Reader::u64(std::uint64_t* v) {
  std::uint32_t lo = 0, hi = 0;
  if (!u32(&lo) || !u32(&hi)) return false;
  *v = std::uint64_t{lo} | (std::uint64_t{hi} << 32);
  return true;
}

bool Reader::f64(double* v) {
  std::uint64_t bits = 0;
  if (!u64(&bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

bool Reader::str(std::string* s) {
  std::uint32_t len = 0;
  if (!u32(&len)) return false;
  if (static_cast<std::size_t>(len) > size_ - pos_) {
    failed_ = true;
    return false;
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return true;
}

// --- Challenge ------------------------------------------------------------

void encode_challenge(Writer& w, const Challenge& c) {
  w.u32(c.source);
  w.u32(c.sink);
  w.u32(static_cast<std::uint32_t>(c.bits.size()));
  for (const std::uint8_t b : c.bits) w.u8(b);
}

util::Status decode_challenge(Reader& r, Challenge* out) {
  std::uint32_t count = 0;
  if (!r.u32(&out->source) || !r.u32(&out->sink) || !r.u32(&count) ||
      !plausible_count(r, count, 1))
    return malformed("challenge");
  out->bits.clear();
  out->bits.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t b = 0;
    if (!r.u8(&b)) return malformed("challenge bits");
    if (b > 1) return malformed("challenge bit value");
    out->bits.push_back(b);
  }
  return Status::ok();
}

// --- util::Status ---------------------------------------------------------

void encode_status(Writer& w, const util::Status& s) {
  w.u16(static_cast<std::uint16_t>(s.code()));
  w.str(s.message());
}

util::Status decode_status(Reader& r, util::Status* out) {
  std::uint16_t code = 0;
  std::string message;
  if (!r.u16(&code) || !r.str(&message)) return malformed("status");
  if (code > static_cast<std::uint16_t>(util::StatusCode::kNotFound))
    return malformed("status code");
  *out = util::Status(static_cast<util::StatusCode>(code),
                      std::move(message));
  return Status::ok();
}

// --- ProverReport ---------------------------------------------------------

namespace {

void encode_f64_vector(Writer& w, const std::vector<double>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const double x : v) w.f64(x);
}

Status decode_f64_vector(Reader& r, std::vector<double>* out,
                         const char* what) {
  std::uint32_t count = 0;
  if (!r.u32(&count) || !plausible_count(r, count, 8)) return malformed(what);
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    double x = 0.0;
    if (!r.f64(&x)) return malformed(what);
    out->push_back(x);
  }
  return Status::ok();
}

}  // namespace

void encode_prover_report(Writer& w, const ProverReport& report) {
  w.u32(static_cast<std::uint32_t>(report.bit));
  w.f64(report.flow_a);
  w.f64(report.flow_b);
  encode_f64_vector(w, report.edge_flow_a);
  encode_f64_vector(w, report.edge_flow_b);
  w.f64(report.elapsed_seconds);
  encode_status(w, report.status);
}

util::Status decode_prover_report(Reader& r, ProverReport* out) {
  std::uint32_t bit = 0;
  if (!r.u32(&bit)) return malformed("prover report");
  out->bit = static_cast<int>(bit);
  if (!r.f64(&out->flow_a) || !r.f64(&out->flow_b))
    return malformed("prover report flows");
  if (Status s = decode_f64_vector(r, &out->edge_flow_a, "edge flows A");
      !s.is_ok())
    return s;
  if (Status s = decode_f64_vector(r, &out->edge_flow_b, "edge flows B");
      !s.is_ok())
    return s;
  if (!r.f64(&out->elapsed_seconds)) return malformed("prover report time");
  return decode_status(r, &out->status);
}

// --- ChainedReport --------------------------------------------------------

void encode_chained_report(Writer& w, const ChainedReport& report) {
  w.u32(static_cast<std::uint32_t>(report.rounds.size()));
  for (const ProverReport& round : report.rounds)
    encode_prover_report(w, round);
  w.f64(report.elapsed_seconds);
  encode_status(w, report.status);
}

util::Status decode_chained_report(Reader& r, ChainedReport* out) {
  std::uint32_t count = 0;
  // A round is at least 40 bytes (bit + 2 flows + 2 empty vectors + time +
  // status); the bound only needs to defeat forged counts, not be tight.
  if (!r.u32(&count) || !plausible_count(r, count, 40))
    return malformed("chained report");
  out->rounds.clear();
  out->rounds.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ProverReport round;
    if (Status s = decode_prover_report(r, &round); !s.is_ok()) return s;
    out->rounds.push_back(std::move(round));
  }
  if (!r.f64(&out->elapsed_seconds)) return malformed("chained report time");
  return decode_status(r, &out->status);
}

// --- Prediction -----------------------------------------------------------

void encode_prediction(Writer& w, const SimulationModel::Prediction& p) {
  w.u32(static_cast<std::uint32_t>(p.bit));
  w.f64(p.flow_a);
  w.f64(p.flow_b);
  encode_status(w, p.status);
}

util::Status decode_prediction(Reader& r, SimulationModel::Prediction* out) {
  std::uint32_t bit = 0;
  if (!r.u32(&bit) || !r.f64(&out->flow_a) || !r.f64(&out->flow_b))
    return malformed("prediction");
  out->bit = static_cast<int>(bit);
  return decode_status(r, &out->status);
}

// --- AuthenticationResult -------------------------------------------------

namespace {

Status decode_bool(Reader& r, bool* out, const char* what) {
  std::uint8_t v = 0;
  if (!r.u8(&v) || v > 1) return malformed(what);
  *out = v != 0;
  return Status::ok();
}

}  // namespace

void encode_auth_result(Writer& w, const AuthenticationResult& res) {
  w.u8(res.accepted ? 1 : 0);
  w.u8(res.flows_valid ? 1 : 0);
  w.u8(res.bit_consistent ? 1 : 0);
  w.u8(res.in_time ? 1 : 0);
  w.str(res.detail);
}

util::Status decode_auth_result(Reader& r, AuthenticationResult* out) {
  for (bool* field : {&out->accepted, &out->flows_valid,
                      &out->bit_consistent, &out->in_time}) {
    if (Status s = decode_bool(r, field, "auth result"); !s.is_ok())
      return s;
  }
  if (!r.str(&out->detail)) return malformed("auth result detail");
  return Status::ok();
}

// --- ChainedVerifyResult --------------------------------------------------

void encode_chained_result(Writer& w, const ChainedVerifyResult& res) {
  w.u8(res.accepted ? 1 : 0);
  w.u8(res.chain_consistent ? 1 : 0);
  w.u8(res.rounds_valid ? 1 : 0);
  w.u8(res.in_time ? 1 : 0);
  w.str(res.detail);
}

util::Status decode_chained_result(Reader& r, ChainedVerifyResult* out) {
  for (bool* field : {&out->accepted, &out->chain_consistent,
                      &out->rounds_valid, &out->in_time}) {
    if (Status s = decode_bool(r, field, "chained result"); !s.is_ok())
      return s;
  }
  if (!r.str(&out->detail)) return malformed("chained result detail");
  return Status::ok();
}

// --- SimulationModel ------------------------------------------------------

void encode_sim_model(Writer& w, const SimulationModel& model) {
  const CrossbarLayout& layout = model.layout();
  w.u32(static_cast<std::uint32_t>(layout.node_count()));
  w.u32(static_cast<std::uint32_t>(layout.grid_size()));
  w.f64(model.comparator_offset());
  for (graph::EdgeId e = 0; e < layout.edge_count(); ++e) {
    w.f64(model.capacity(0, e, 0));
    w.f64(model.capacity(0, e, 1));
    w.f64(model.capacity(1, e, 0));
    w.f64(model.capacity(1, e, 1));
  }
}

util::Status decode_sim_model(Reader& r, SimulationModel* out) {
  std::uint32_t nodes = 0, grid = 0;
  double offset = 0.0;
  if (!r.u32(&nodes) || !r.u32(&grid) || !r.f64(&offset))
    return malformed("model header");
  // Same geometry rules as the text loader, plus a remaining-bytes bound so
  // a forged node count cannot demand a quadratic allocation: the table
  // itself must fit in the bytes the caller actually has.
  if (nodes < 2 || grid < 1 || grid > nodes)
    return malformed("model geometry");
  const std::size_t edges =
      static_cast<std::size_t>(nodes) * (static_cast<std::size_t>(nodes) - 1);
  if (edges > r.remaining() / 32) return malformed("model geometry");
  std::array<std::vector<std::array<double, 2>>, 2> capacities;
  for (auto& caps : capacities) caps.resize(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    double v[4] = {};
    for (double& x : v) {
      if (!r.f64(&x)) return malformed("model capacity table");
      if (!(x >= 0.0)) return malformed("model capacity value");
    }
    capacities[0][e] = {v[0], v[1]};
    capacities[1][e] = {v[2], v[3]};
  }
  *out = SimulationModel::restore(CrossbarLayout(nodes, grid),
                                  std::move(capacities), offset);
  return Status::ok();
}

// --- report files ---------------------------------------------------------

namespace {

constexpr char kReportMagic[8] = {'p', 'p', 'u', 'f', 'r', 'e', 'p', '1'};

}  // namespace

void write_chained_report(std::ostream& os, const ChainedReport& report) {
  Writer w;
  encode_chained_report(w, report);
  os.write(kReportMagic, sizeof(kReportMagic));
  Writer len;
  len.u32(static_cast<std::uint32_t>(w.bytes().size()));
  os.write(reinterpret_cast<const char*>(len.bytes().data()),
           static_cast<std::streamsize>(len.bytes().size()));
  os.write(reinterpret_cast<const char*>(w.bytes().data()),
           static_cast<std::streamsize>(w.bytes().size()));
}

util::Status read_chained_report(std::istream& is, ChainedReport* out) {
  char magic[sizeof(kReportMagic)] = {};
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kReportMagic, sizeof(magic)) != 0)
    return malformed("report file magic");
  std::uint8_t len_bytes[4] = {};
  if (!is.read(reinterpret_cast<char*>(len_bytes), sizeof(len_bytes)))
    return malformed("report file length");
  Reader len_reader(len_bytes, sizeof(len_bytes));
  std::uint32_t len = 0;
  len_reader.u32(&len);
  // Reject absurd lengths before allocating: a corrupt header must not be
  // able to demand gigabytes.
  constexpr std::uint32_t kMaxReportBytes = 256u * 1024 * 1024;
  if (len > kMaxReportBytes) return malformed("report file length");
  std::vector<std::uint8_t> payload(len);
  if (len > 0 &&
      !is.read(reinterpret_cast<char*>(payload.data()), len))
    return malformed("report file payload (truncated)");
  Reader r(payload.data(), payload.size());
  if (util::Status s = decode_chained_report(r, out); !s.is_ok()) return s;
  if (!r.exhausted())
    return malformed("report file payload (trailing bytes)");
  return Status::ok();
}

}  // namespace ppuf::protocol::codec
