#include "protocol/authentication.hpp"

#include <chrono>

#include "maxflow/verify.hpp"

namespace ppuf::protocol {

Verifier::Verifier(const SimulationModel& model, double deadline_seconds,
                   double flow_tolerance, unsigned verify_threads)
    : model_(model),
      deadline_(deadline_seconds),
      tolerance_(flow_tolerance),
      threads_(verify_threads) {}

Challenge Verifier::issue_challenge(util::Rng& rng) const {
  return random_challenge(model_.layout(), rng);
}

AuthenticationResult Verifier::verify(const Challenge& challenge,
                                      const ProverReport& report) const {
  AuthenticationResult result;

  result.in_time = report.elapsed_seconds <= deadline_;
  if (!result.in_time) {
    result.detail = "deadline exceeded";
    return result;
  }

  // Residual-graph verification (cheap, parallelizable): feasibility plus
  // no remaining augmenting path, per network.
  for (int net = 0; net < 2; ++net) {
    const auto& flow = net == 0 ? report.edge_flow_a : report.edge_flow_b;
    const graph::Digraph g = model_.build_graph(net, challenge);
    const maxflow::VerifyResult v = maxflow::verify_flow(
        g, challenge.source, challenge.sink, flow, tolerance_, threads_);
    if (!v.optimal) {
      result.detail = std::string(net == 0 ? "network A: " : "network B: ") +
                      v.reason;
      return result;
    }
  }
  result.flows_valid = true;

  const int expected_bit =
      (report.flow_a - report.flow_b + model_.comparator_offset()) > 0.0 ? 1
                                                                         : 0;
  result.bit_consistent = report.bit == expected_bit;
  if (!result.bit_consistent) {
    result.detail = "response bit inconsistent with claimed flows";
    return result;
  }

  result.accepted = true;
  return result;
}

ProverReport prove_with_ppuf(MaxFlowPpuf& instance,
                             const Challenge& challenge,
                             double modelled_delay_seconds) {
  const circuit::Environment env = circuit::Environment::nominal();
  ProverReport r;
  r.edge_flow_a = instance.network_a().execute_edge_currents(challenge, env);
  r.edge_flow_b = instance.network_b().execute_edge_currents(challenge, env);
  const MaxFlowPpuf::Evaluation ev = instance.evaluate(challenge, env);
  r.bit = ev.bit;
  r.flow_a = ev.current_a;
  r.flow_b = ev.current_b;
  r.elapsed_seconds = modelled_delay_seconds;
  return r;
}

namespace {

/// Flow-claims check for one round (no deadline involvement).
bool round_flows_ok(const SimulationModel& model, const Challenge& challenge,
                    const ProverReport& report, double tolerance,
                    unsigned threads, std::string* why) {
  for (int net = 0; net < 2; ++net) {
    const auto& flow = net == 0 ? report.edge_flow_a : report.edge_flow_b;
    const graph::Digraph g = model.build_graph(net, challenge);
    const maxflow::VerifyResult v = maxflow::verify_flow(
        g, challenge.source, challenge.sink, flow, tolerance, threads);
    if (!v.optimal) {
      *why = std::string(net == 0 ? "network A: " : "network B: ") + v.reason;
      return false;
    }
  }
  const int expected =
      (report.flow_a - report.flow_b + model.comparator_offset()) > 0.0 ? 1
                                                                        : 0;
  if (report.bit != expected) {
    *why = "response bit inconsistent with claimed flows";
    return false;
  }
  return true;
}

}  // namespace

ChainedVerifyResult verify_chain(const Verifier& verifier,
                                 const SimulationModel& model,
                                 const Challenge& first, std::size_t k,
                                 std::uint64_t protocol_nonce,
                                 const ChainedReport& report,
                                 std::size_t spot_checks, util::Rng& rng) {
  ChainedVerifyResult result;
  if (report.rounds.size() != k || k == 0) {
    result.detail = "wrong round count";
    return result;
  }

  result.in_time = report.elapsed_seconds <= verifier.deadline_seconds();
  if (!result.in_time) {
    result.detail = "deadline exceeded";
    return result;
  }

  // Re-derive the challenge chain from the reported responses; this is
  // cheap and pins every round's challenge.
  std::vector<Challenge> chain{first};
  for (std::size_t i = 0; i + 1 < k; ++i) {
    chain.push_back(next_challenge(model.layout(), chain.back(),
                                   report.rounds[i].bit, protocol_nonce));
  }
  result.chain_consistent = true;

  // Spot-check rounds (all of them when spot_checks == 0).
  std::vector<std::size_t> to_check;
  if (spot_checks == 0 || spot_checks >= k) {
    for (std::size_t i = 0; i < k; ++i) to_check.push_back(i);
  } else {
    for (std::size_t i = 0; i < spot_checks; ++i) {
      to_check.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(k) - 1)));
    }
  }
  for (const std::size_t i : to_check) {
    std::string why;
    if (!round_flows_ok(model, chain[i], report.rounds[i],
                        verifier.flow_tolerance(), verifier.verify_threads(),
                        &why)) {
      result.detail = "round " + std::to_string(i) + ": " + why;
      return result;
    }
  }
  result.rounds_valid = true;
  result.accepted = true;
  return result;
}

ChainedReport prove_chain_with_ppuf(MaxFlowPpuf& instance,
                                    const Challenge& first, std::size_t k,
                                    std::uint64_t protocol_nonce,
                                    double modelled_delay_seconds) {
  ChainedReport report;
  Challenge c = first;
  for (std::size_t i = 0; i < k; ++i) {
    report.rounds.push_back(
        prove_with_ppuf(instance, c, modelled_delay_seconds));
    if (i + 1 < k) {
      c = next_challenge(instance.layout(), c, report.rounds.back().bit,
                         protocol_nonce);
    }
  }
  report.elapsed_seconds =
      modelled_delay_seconds * static_cast<double>(k);
  return report;
}

ChainedReport prove_chain_by_simulation(const SimulationModel& model,
                                        const Challenge& first, std::size_t k,
                                        std::uint64_t protocol_nonce,
                                        maxflow::Algorithm algorithm) {
  const auto t0 = std::chrono::steady_clock::now();
  ChainedReport report;
  Challenge c = first;
  for (std::size_t i = 0; i < k; ++i) {
    report.rounds.push_back(prove_by_simulation(model, c, algorithm));
    if (i + 1 < k) {
      c = next_challenge(model.layout(), c, report.rounds.back().bit,
                         protocol_nonce);
    }
  }
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

ProverReport prove_by_simulation(const SimulationModel& model,
                                 const Challenge& challenge,
                                 maxflow::Algorithm algorithm) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto solver = maxflow::make_solver(algorithm);
  ProverReport r;
  for (int net = 0; net < 2; ++net) {
    const graph::Digraph g = model.build_graph(net, challenge);
    const graph::FlowProblem problem{&g, challenge.source, challenge.sink};
    const maxflow::FlowResult flow = solver->solve(problem);
    if (net == 0) {
      r.flow_a = flow.value;
      r.edge_flow_a = flow.edge_flow;
    } else {
      r.flow_b = flow.value;
      r.edge_flow_b = flow.edge_flow;
    }
  }
  r.bit = (r.flow_a - r.flow_b + model.comparator_offset()) > 0.0 ? 1 : 0;
  r.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace ppuf::protocol
