#include "protocol/authentication.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "maxflow/verify.hpp"
#include "obs/metrics.hpp"

namespace ppuf::protocol {

namespace {

/// Cheap shape checks on an untrusted report, done before anything touches
/// its vectors.  Returns the first problem found, empty when well-formed.
/// The verifier must reject — never throw or index out of bounds — on a
/// malformed report: the prover is an adversary, not a caller.
std::string report_shape_error(const ProverReport& report) {
  if (report.bit != 0 && report.bit != 1)
    return "malformed report: bit not in {0, 1}";
  if (!std::isfinite(report.flow_a))
    return "malformed report: flow_a not finite";
  if (!std::isfinite(report.flow_b))
    return "malformed report: flow_b not finite";
  if (!std::isfinite(report.elapsed_seconds) ||
      report.elapsed_seconds < 0.0) {
    return "malformed report: elapsed_seconds negative or not finite";
  }
  return {};
}

/// Per-network checks that need the graph: claimed flow vector must match
/// the edge count and contain only finite entries.
std::string flow_vector_error(const graph::Digraph& g,
                              const std::vector<double>& flow,
                              const char* which) {
  if (flow.size() != g.edge_count()) {
    return std::string("malformed report: ") + which + " has " +
           std::to_string(flow.size()) + " entries, graph has " +
           std::to_string(g.edge_count()) + " edges";
  }
  for (const double f : flow) {
    if (!std::isfinite(f))
      return std::string("malformed report: ") + which +
             " contains a non-finite flow";
  }
  return {};
}

}  // namespace

Verifier::Verifier(const SimulationModel& model, double deadline_seconds,
                   double flow_tolerance, unsigned verify_threads)
    : model_(model),
      deadline_(deadline_seconds),
      tolerance_(flow_tolerance),
      threads_(verify_threads) {}

Challenge Verifier::issue_challenge(util::Rng& rng) const {
  return random_challenge(model_.layout(), rng);
}

AuthenticationResult Verifier::verify(const Challenge& challenge,
                                      const ProverReport& report) const {
  AuthenticationResult result;

  result.detail = report_shape_error(report);
  if (!result.detail.empty()) return result;

  result.in_time = report.elapsed_seconds <= deadline_;
  if (!result.in_time) {
    result.detail = "deadline exceeded";
    return result;
  }

  // Residual-graph verification (cheap, parallelizable): feasibility plus
  // no remaining augmenting path, per network.
  for (int net = 0; net < 2; ++net) {
    const char* label = net == 0 ? "network A: " : "network B: ";
    const char* which = net == 0 ? "edge_flow_a" : "edge_flow_b";
    const auto& flow = net == 0 ? report.edge_flow_a : report.edge_flow_b;
    const graph::Digraph g = model_.build_graph(net, challenge);
    const std::string shape = flow_vector_error(g, flow, which);
    if (!shape.empty()) {
      result.detail = label + shape;
      return result;
    }
    try {
      const maxflow::VerifyResult v = maxflow::verify_flow(
          g, challenge.source, challenge.sink, flow, tolerance_, threads_);
      if (!v.optimal) {
        result.detail = label + v.reason;
        return result;
      }
    } catch (const std::exception& e) {
      result.detail = label + std::string("verification error: ") + e.what();
      return result;
    }
  }
  result.flows_valid = true;

  const int expected_bit =
      (report.flow_a - report.flow_b + model_.comparator_offset()) > 0.0 ? 1
                                                                         : 0;
  result.bit_consistent = report.bit == expected_bit;
  if (!result.bit_consistent) {
    result.detail = "response bit inconsistent with claimed flows";
    return result;
  }

  result.accepted = true;
  return result;
}

std::vector<AuthenticationResult> Verifier::verify_batch(
    const std::vector<Challenge>& challenges,
    const std::vector<ProverReport>& reports,
    const BatchVerifyOptions& options) const {
  if (challenges.size() != reports.size()) {
    throw std::invalid_argument(
        "verify_batch: challenges and reports differ in size");
  }
  std::vector<AuthenticationResult> results(challenges.size());
  if (challenges.empty()) return results;

  // Metric handles resolved once per batch (null when disabled) so the
  // per-item path touches only lock-free atomics.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Histogram* m_item_time =
      reg.enabled() ? &reg.histogram("protocol.verify_batch.item_time_us")
                    : nullptr;
  auto run_item = [&](std::size_t i) {
    obs::ScopedTimer timer(m_item_time);
    results[i] = verify(challenges[i], reports[i]);
  };

  const unsigned threads =
      options.thread_count != 0 ? options.thread_count : threads_;
  if (options.pool == nullptr && threads <= 1) {
    for (std::size_t i = 0; i < challenges.size(); ++i) run_item(i);
  } else if (options.pool != nullptr) {
    options.pool->parallel_for(challenges.size(), run_item);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(challenges.size(), run_item);
  }

  if (reg.enabled()) {
    std::uint64_t accepted = 0;
    for (const AuthenticationResult& r : results)
      if (r.accepted) ++accepted;
    reg.counter("protocol.verify_batch.items").add(results.size());
    reg.counter("protocol.verify_batch.accepted").add(accepted);
    reg.counter("protocol.verify_batch.rejected")
        .add(results.size() - accepted);
  }
  return results;
}

ProverReport prove_with_ppuf(MaxFlowPpuf& instance,
                             const Challenge& challenge,
                             double modelled_delay_seconds) {
  const circuit::Environment env = circuit::Environment::nominal();
  ProverReport r;
  r.edge_flow_a = instance.network_a().execute_edge_currents(challenge, env);
  r.edge_flow_b = instance.network_b().execute_edge_currents(challenge, env);
  const MaxFlowPpuf::Evaluation ev = instance.evaluate(challenge, env);
  r.bit = ev.bit;
  r.flow_a = ev.current_a;
  r.flow_b = ev.current_b;
  r.elapsed_seconds = modelled_delay_seconds;
  return r;
}

namespace {

/// Flow-claims check for one round (no deadline involvement).
bool round_flows_ok(const SimulationModel& model, const Challenge& challenge,
                    const ProverReport& report, double tolerance,
                    unsigned threads, std::string* why) {
  *why = report_shape_error(report);
  if (!why->empty()) return false;
  for (int net = 0; net < 2; ++net) {
    const char* label = net == 0 ? "network A: " : "network B: ";
    const char* which = net == 0 ? "edge_flow_a" : "edge_flow_b";
    const auto& flow = net == 0 ? report.edge_flow_a : report.edge_flow_b;
    const graph::Digraph g = model.build_graph(net, challenge);
    const std::string shape = flow_vector_error(g, flow, which);
    if (!shape.empty()) {
      *why = label + shape;
      return false;
    }
    try {
      const maxflow::VerifyResult v = maxflow::verify_flow(
          g, challenge.source, challenge.sink, flow, tolerance, threads);
      if (!v.optimal) {
        *why = label + v.reason;
        return false;
      }
    } catch (const std::exception& e) {
      *why = label + std::string("verification error: ") + e.what();
      return false;
    }
  }
  const int expected =
      (report.flow_a - report.flow_b + model.comparator_offset()) > 0.0 ? 1
                                                                        : 0;
  if (report.bit != expected) {
    *why = "response bit inconsistent with claimed flows";
    return false;
  }
  return true;
}

}  // namespace

ChainedVerifyResult verify_chain(const Verifier& verifier,
                                 const SimulationModel& model,
                                 const Challenge& first, std::size_t k,
                                 std::uint64_t protocol_nonce,
                                 const ChainedReport& report,
                                 std::size_t spot_checks, util::Rng& rng) {
  ChainedVerifyResult result;
  if (report.rounds.size() != k || k == 0) {
    result.detail = "wrong round count";
    return result;
  }
  if (!std::isfinite(report.elapsed_seconds) ||
      report.elapsed_seconds < 0.0) {
    result.detail = "malformed report: elapsed_seconds negative or not finite";
    return result;
  }
  // Every round's bit feeds the challenge-chain derivation below, so all
  // of them must be well-formed even when only a subset is spot-checked.
  for (std::size_t i = 0; i < k; ++i) {
    if (report.rounds[i].bit != 0 && report.rounds[i].bit != 1) {
      result.detail =
          "round " + std::to_string(i) + ": malformed report: bit not in {0, 1}";
      return result;
    }
  }

  result.in_time = report.elapsed_seconds <= verifier.deadline_seconds();
  if (!result.in_time) {
    result.detail = "deadline exceeded";
    return result;
  }

  // Re-derive the challenge chain from the reported responses; this is
  // cheap and pins every round's challenge.
  std::vector<Challenge> chain{first};
  for (std::size_t i = 0; i + 1 < k; ++i) {
    chain.push_back(next_challenge(model.layout(), chain.back(),
                                   report.rounds[i].bit, protocol_nonce));
  }
  result.chain_consistent = true;

  // Spot-check rounds (all of them when spot_checks == 0).
  std::vector<std::size_t> to_check;
  if (spot_checks == 0 || spot_checks >= k) {
    for (std::size_t i = 0; i < k; ++i) to_check.push_back(i);
  } else {
    for (std::size_t i = 0; i < spot_checks; ++i) {
      to_check.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(k) - 1)));
    }
  }
  for (const std::size_t i : to_check) {
    std::string why;
    if (!round_flows_ok(model, chain[i], report.rounds[i],
                        verifier.flow_tolerance(), verifier.verify_threads(),
                        &why)) {
      result.detail = "round " + std::to_string(i) + ": " + why;
      return result;
    }
  }
  result.rounds_valid = true;
  result.accepted = true;
  return result;
}

ChainedReport prove_chain_with_ppuf(MaxFlowPpuf& instance,
                                    const Challenge& first, std::size_t k,
                                    std::uint64_t protocol_nonce,
                                    double modelled_delay_seconds) {
  ChainedReport report;
  Challenge c = first;
  // Consecutive chain rounds flip only a handful of challenge bits, so each
  // round's operating point is an excellent Newton seed for the next.
  // Warm-starting is scoped to the chain: restore the instance's previous
  // mode on exit so one-shot evaluations stay bitwise repeatable.
  const bool was_warm = instance.warm_start_enabled();
  instance.set_warm_start(true);
  for (std::size_t i = 0; i < k; ++i) {
    report.rounds.push_back(
        prove_with_ppuf(instance, c, modelled_delay_seconds));
    if (i + 1 < k) {
      c = next_challenge(instance.layout(), c, report.rounds.back().bit,
                         protocol_nonce);
    }
  }
  instance.set_warm_start(was_warm);
  report.elapsed_seconds =
      modelled_delay_seconds * static_cast<double>(k);
  return report;
}

ChainedReport prove_chain_by_simulation(const SimulationModel& model,
                                        const Challenge& first, std::size_t k,
                                        std::uint64_t protocol_nonce,
                                        maxflow::Algorithm algorithm,
                                        const util::SolveControl& control) {
  const auto t0 = std::chrono::steady_clock::now();
  util::StopCheck stop(control, /*stride=*/1);
  ChainedReport report;
  Challenge c = first;
  for (std::size_t i = 0; i < k; ++i) {
    if (stop.should_stop()) {
      report.status = stop.status("prove_chain_by_simulation");
      break;
    }
    report.rounds.push_back(
        prove_by_simulation(model, c, algorithm, control));
    if (!report.rounds.back().status.is_ok()) {
      // The round itself ran out of budget; surface its reason and stop —
      // later rounds depend on this one's response anyway.
      report.status = report.rounds.back().status;
      break;
    }
    if (i + 1 < k) {
      c = next_challenge(model.layout(), c, report.rounds.back().bit,
                         protocol_nonce);
    }
  }
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

ProverReport prove_by_simulation(const SimulationModel& model,
                                 const Challenge& challenge,
                                 maxflow::Algorithm algorithm,
                                 const util::SolveControl& control) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto solver = maxflow::make_solver(algorithm);
  ProverReport r;
  for (int net = 0; net < 2; ++net) {
    const graph::Digraph g = model.build_graph(net, challenge);
    const graph::FlowProblem problem{&g, challenge.source, challenge.sink};
    const maxflow::FlowResult flow = solver->solve(problem, control);
    if (net == 0) {
      r.flow_a = flow.value;
      r.edge_flow_a = flow.edge_flow;
    } else {
      r.flow_b = flow.value;
      r.edge_flow_b = flow.edge_flow;
    }
    if (!flow.ok()) {
      // Partial flows are kept for inspection, but the typed status tells
      // the caller this report cannot pass verification.
      r.status = flow.status;
      break;
    }
  }
  r.bit = (r.flow_a - r.flow_b + model.comparator_offset()) > 0.0 ? 1 : 0;
  r.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace ppuf::protocol
