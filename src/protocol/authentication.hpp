// Time-bound authentication protocol built on the ESG.
//
// The verifier holds only the PUBLIC model (per-edge capacities).  It issues
// a challenge with a response deadline chosen between the PPUF execution
// delay and the max-flow simulation lower bound: the genuine holder answers
// in time by executing silicon; an impersonator must simulate max-flow and
// misses the deadline.  Correctness of the claimed flows is checked with the
// cheap residual-graph verification of Section 2 — the verifier never solves
// max-flow itself.
//
// Timing semantics: the prover self-reports `elapsed_seconds`.  For the
// honest prover this is the *modelled chip delay* (our host must simulate
// the analog settling, which the chip does in ~nanoseconds); for the
// simulating attacker it is genuine wall-clock time of its max-flow solves.
// DESIGN.md discusses this substitution.
#pragma once

#include <string>
#include <vector>

#include "maxflow/solver.hpp"
#include "ppuf/feedback.hpp"
#include "ppuf/sim_model.hpp"
#include "util/status.hpp"

namespace ppuf::protocol {

/// What a prover sends back for one challenge.
struct ProverReport {
  int bit = 0;
  double flow_a = 0.0;
  double flow_b = 0.0;
  std::vector<double> edge_flow_a;  ///< claimed flow function, network A
  std::vector<double> edge_flow_b;  ///< network B
  double elapsed_seconds = 0.0;     ///< prover's claimed/measured time
  /// Prover-side outcome: non-ok when the prover's own solve was cancelled
  /// or timed out (the verifier never trusts this field — it re-checks
  /// everything).
  util::Status status;
};

struct AuthenticationResult {
  bool accepted = false;
  bool flows_valid = false;    ///< both claimed flows feasible and maximum
  bool bit_consistent = false; ///< response bit matches the claimed flows
  bool in_time = false;        ///< met the deadline
  std::string detail;          ///< first failed check, empty when accepted
};

class Verifier {
 public:
  /// `model` must outlive the verifier.  `deadline_seconds` should sit
  /// between the execution delay and the simulation lower bound.
  /// `flow_tolerance` absorbs the circuit-vs-max-flow inaccuracy when
  /// checking the holder's analog flow claims: the *value* error is <1%
  /// (Fig. 6), but individual min-cut edges can sit up to ~8% of the mean
  /// capacity below saturation when short on voltage headroom, so ~10% of
  /// the mean edge capacity is a robust setting.
  Verifier(const SimulationModel& model, double deadline_seconds,
           double flow_tolerance, unsigned verify_threads = 1);

  Challenge issue_challenge(util::Rng& rng) const;

  AuthenticationResult verify(const Challenge& challenge,
                              const ProverReport& report) const;

  struct BatchVerifyOptions {
    /// Workers for the transient pool when `pool` is null; 0 means "use
    /// the verifier's configured verify_threads()".
    unsigned thread_count = 0;
    /// Optional shared pool (non-owning).  A verifier serving heavy
    /// authentication traffic should hold one pool for its lifetime.
    util::ThreadPool* pool = nullptr;
  };

  /// Verify many (challenge, report) pairs in one call; reports[i] answers
  /// challenges[i].  Items are independent, so they fan out across the
  /// pool — this is the paper's O(n^2/p) verifier-side parallelism applied
  /// across requests.  Results are in input order and identical to calling
  /// verify() per item.  Throws std::invalid_argument on a size mismatch
  /// (a caller bug, unlike a malformed report, which is adversary data and
  /// yields a rejection).
  std::vector<AuthenticationResult> verify_batch(
      const std::vector<Challenge>& challenges,
      const std::vector<ProverReport>& reports,
      const BatchVerifyOptions& options) const;
  std::vector<AuthenticationResult> verify_batch(
      const std::vector<Challenge>& challenges,
      const std::vector<ProverReport>& reports) const {
    return verify_batch(challenges, reports, BatchVerifyOptions{});
  }

  double deadline_seconds() const { return deadline_; }
  double flow_tolerance() const { return tolerance_; }
  unsigned verify_threads() const { return threads_; }

 private:
  const SimulationModel& model_;
  double deadline_;
  double tolerance_;
  unsigned threads_;
};

/// Honest prover: executes the PPUF and reports its edge currents; elapsed
/// time is the modelled execution delay (chip-speed).
ProverReport prove_with_ppuf(MaxFlowPpuf& instance,
                             const Challenge& challenge,
                             double modelled_delay_seconds);

/// Impersonator: solves the two max-flow problems from the public model;
/// elapsed time is real wall-clock.  `control` bounds the simulation: when
/// it fires, the report comes back partial with a typed status instead of
/// hanging past the caller's budget.
ProverReport prove_by_simulation(const SimulationModel& model,
                                 const Challenge& challenge,
                                 maxflow::Algorithm algorithm =
                                     maxflow::Algorithm::kPushRelabel,
                                 const util::SolveControl& control = {});

// --- Chained (feedback-loop) authentication -------------------------------
//
// The k-round variant that amplifies the ESG (Section 3.3): challenge
// C_{i+1} is the public successor of (C_i, R_i), so the prover must answer
// sequentially.  The verifier re-derives the challenge chain from the
// reported responses, spot-checks a random subset of rounds with the
// residual-graph test, and enforces the (k-scaled) deadline.

struct ChainedReport {
  std::vector<ProverReport> rounds;  ///< one report per round, in order
  double elapsed_seconds = 0.0;      ///< total prover time for the chain
  /// Non-ok when the prover stopped early (cancelled / out of budget);
  /// `rounds` then holds only the rounds finished before the stop.
  util::Status status;
};

struct ChainedVerifyResult {
  bool accepted = false;
  bool chain_consistent = false;  ///< every C_{i+1} matches the successor fn
  bool rounds_valid = false;      ///< all spot-checked rounds pass
  bool in_time = false;
  std::string detail;
};

/// Verify a chained report.  `spot_checks` rounds are drawn with `rng` and
/// fully verified (0 = verify every round).
ChainedVerifyResult verify_chain(const Verifier& verifier,
                                 const SimulationModel& model,
                                 const Challenge& first, std::size_t k,
                                 std::uint64_t protocol_nonce,
                                 const ChainedReport& report,
                                 std::size_t spot_checks, util::Rng& rng);

/// Honest holder: executes the chain on silicon; elapsed time is k times
/// the modelled per-round delay.
ChainedReport prove_chain_with_ppuf(MaxFlowPpuf& instance,
                                    const Challenge& first, std::size_t k,
                                    std::uint64_t protocol_nonce,
                                    double modelled_delay_seconds);

/// Impersonator: simulates the chain sequentially (wall-clock measured).
/// `control` is checked between rounds; on expiry the report returns with
/// the rounds finished so far and a typed status.
ChainedReport prove_chain_by_simulation(const SimulationModel& model,
                                        const Challenge& first, std::size_t k,
                                        std::uint64_t protocol_nonce,
                                        maxflow::Algorithm algorithm =
                                            maxflow::Algorithm::kPushRelabel,
                                        const util::SolveControl& control =
                                            {});

}  // namespace ppuf::protocol
