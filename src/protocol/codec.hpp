// Canonical binary encoding of the protocol's data types.
//
// The text format of SimulationModel::save() serialises the *public model*
// (a device's published identity); this codec serialises everything that
// moves during an authentication round: challenges, prover reports, chained
// reports, predictions, and verdicts.  It is the single binary format for
// those types — the wire protocol (net/wire) frames these bytes, and the
// report file helpers below wrap the very same bytes in a small file
// header, so a report saved to disk and a report sent over a socket are
// byte-identical payloads.
//
// Format rules:
//   - all integers little-endian, fixed width;
//   - doubles as IEEE-754 bit patterns in a little-endian u64;
//   - vectors as u32 count + elements;
//   - strings as u32 length + raw bytes.
//
// Decoding is strict and bounds-checked: every read goes through Reader,
// which never reads past the buffer and turns any malformed input into a
// typed kInvalidArgument Status (never an exception, never a crash — the
// bytes come from the network, i.e. from the adversary).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ppuf/challenge.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/authentication.hpp"
#include "util/status.hpp"

namespace ppuf::protocol::codec {

/// Append-only byte sink.  Encoding cannot fail.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);  ///< u32 length + bytes
  void raw(const void* data, std::size_t size);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked cursor over a byte span.  Every accessor returns false
/// (and sets a sticky error) instead of over-reading; decode functions
/// convert that into a typed Status.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t* v);
  bool u16(std::uint16_t* v);
  bool u32(std::uint32_t* v);
  bool u64(std::uint64_t* v);
  bool f64(double* v);
  /// Reads a u32 length + bytes; rejects lengths past the buffer end.
  bool str(std::string* s);

  bool failed() const { return failed_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// True when the whole buffer was consumed and nothing failed — decoders
  /// require this so trailing garbage is rejected, not ignored.
  bool exhausted() const { return !failed_ && pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// --- domain types ---------------------------------------------------------
//
// Each encode_* appends to the Writer; each decode_* consumes from the
// Reader and returns a typed Status (kInvalidArgument with a located
// message on any malformed field).  Top-level message decoders in net/wire
// additionally require reader.exhausted().

void encode_challenge(Writer& w, const Challenge& c);
util::Status decode_challenge(Reader& r, Challenge* out);

void encode_status(Writer& w, const util::Status& s);
util::Status decode_status(Reader& r, util::Status* out);

void encode_prover_report(Writer& w, const ProverReport& report);
util::Status decode_prover_report(Reader& r, ProverReport* out);

void encode_chained_report(Writer& w, const ChainedReport& report);
util::Status decode_chained_report(Reader& r, ChainedReport* out);

void encode_prediction(Writer& w, const SimulationModel::Prediction& p);
util::Status decode_prediction(Reader& r, SimulationModel::Prediction* out);

void encode_auth_result(Writer& w, const AuthenticationResult& r);
util::Status decode_auth_result(Reader& r, AuthenticationResult* out);

void encode_chained_result(Writer& w, const ChainedVerifyResult& r);
util::Status decode_chained_result(Reader& r, ChainedVerifyResult* out);

/// Binary form of the published model, used by the device registry (the
/// text format of SimulationModel::save() stays the human-facing file
/// format).  Layout: u32 nodes, u32 grid, f64 comparator_offset, then
/// edge_count rows of 4 doubles (capA0 capA1 capB0 capB1, edge-id order).
/// decode validates geometry and non-negative capacities before touching
/// the table, and sizes the allocation from the validated geometry — a
/// forged header cannot demand more memory than its own byte count proves.
void encode_sim_model(Writer& w, const SimulationModel& model);
util::Status decode_sim_model(Reader& r, SimulationModel* out);

// --- report files ---------------------------------------------------------
//
// Same payload bytes as the wire, wrapped in a versioned magic header so a
// saved report is self-identifying.  Used by `ppuf_tool auth
// --report-file` and anything else that persists reports.

void write_chained_report(std::ostream& os, const ChainedReport& report);
util::Status read_chained_report(std::istream& is, ChainedReport* out);

}  // namespace ppuf::protocol::codec
