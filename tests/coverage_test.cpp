// Cross-cutting coverage: cache invalidation, environment switching,
// placement options, transient accuracy order, and other behaviours not
// owned by a single module's suite.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "circuit/transient.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "util/table.hpp"

namespace ppuf {
namespace {

PpufParams small_params() {
  PpufParams p;
  p.node_count = 8;
  p.grid_size = 4;
  return p;
}

TEST(Coverage, EnvironmentSwitchingInvalidatesAndRestoresCurves) {
  MaxFlowPpuf puf(small_params(), 555);
  util::Rng rng(1);
  const Challenge c = random_challenge(puf.layout(), rng);

  const circuit::Environment nominal = circuit::Environment::nominal();
  circuit::Environment hot;
  hot.temperature_c = 80.0;

  const auto first = puf.evaluate(c, nominal);
  const auto heated = puf.evaluate(c, hot);
  const auto back = puf.evaluate(c, nominal);

  // Re-characterisation after the env round-trip reproduces the original
  // currents exactly (pure function of variation + env).
  EXPECT_DOUBLE_EQ(first.current_a, back.current_a);
  EXPECT_DOUBLE_EQ(first.current_b, back.current_b);
  EXPECT_NE(first.current_a, heated.current_a);
}

TEST(Coverage, VddScalingMovesCurrents) {
  MaxFlowPpuf puf(small_params(), 556);
  util::Rng rng(2);
  const Challenge c = random_challenge(puf.layout(), rng);
  circuit::Environment low;
  low.vdd_scale = 0.9;
  const double nominal = puf.evaluate(c).current_a;
  const double scaled = puf.evaluate(c, low).current_a;
  EXPECT_LT(scaled, nominal);  // lower bias -> lower saturation currents
  EXPECT_GT(scaled, 0.3 * nominal);
}

TEST(Coverage, UnpairedPlacementChangesInstance) {
  PpufParams paired = small_params();
  paired.variation.systematic_vth_amplitude = 0.03;
  PpufParams naive = paired;
  naive.paired_systematic_placement = false;

  MaxFlowPpuf a(paired, 999);
  MaxFlowPpuf b(naive, 999);
  util::Rng rng(3);
  bool any_difference = false;
  for (int i = 0; i < 8 && !any_difference; ++i) {
    const Challenge c = random_challenge(a.layout(), rng);
    any_difference = std::abs(a.evaluate(c).current_b -
                              b.evaluate(c).current_b) > 1e-12;
  }
  EXPECT_TRUE(any_difference);  // network B's surface differs
}

TEST(Coverage, SimulationModelTracksEnvironmentOfExtraction) {
  MaxFlowPpuf puf(small_params(), 557);
  circuit::Environment hot;
  hot.temperature_c = 60.0;
  SimulationModel nominal_model(puf, circuit::Environment::nominal());
  SimulationModel hot_model(puf, hot);
  // Same instance, different characterisation environment -> different
  // published capacities.
  bool differs = false;
  for (graph::EdgeId e = 0; e < puf.layout().edge_count() && !differs; ++e)
    differs = std::abs(nominal_model.capacity(0, e, 0) -
                       hot_model.capacity(0, e, 0)) > 1e-12;
  EXPECT_TRUE(differs);
}

TEST(Coverage, TransientBackwardEulerFirstOrderAccuracy) {
  // RC charging: halving dt should roughly halve the error at t = tau
  // (backward Euler is O(dt)).
  auto error_at_tau = [](double dt) {
    circuit::Netlist nl;
    const auto in = nl.add_node();
    const auto out = nl.add_node();
    nl.add_voltage_source(in, circuit::kGround, 1.0);
    nl.add_resistor(in, out, 1000.0);
    nl.add_capacitor(out, circuit::kGround, 1e-6);
    circuit::TransientOptions topt;
    topt.dt = dt;
    topt.t_end = 1e-3;
    double v_end = 0.0;
    circuit::TransientSolver(nl, topt).run(
        [&](double, const circuit::OperatingPoint& op) {
          v_end = op.voltage(out);
        });
    return std::abs(v_end - (1.0 - std::exp(-1.0)));
  };
  const double coarse = error_at_tau(5e-5);
  const double fine = error_at_tau(2.5e-5);
  EXPECT_LT(fine, coarse);
  EXPECT_NEAR(coarse / fine, 2.0, 0.6);
}

TEST(Coverage, BenchScaleReadsEnvironment) {
  setenv("PPUF_BENCH_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(util::bench_scale(), 2.5);
  setenv("PPUF_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(util::bench_scale(), 1.0);
  setenv("PPUF_BENCH_SCALE", "-3", 1);
  EXPECT_DOUBLE_EQ(util::bench_scale(), 1.0);
  unsetenv("PPUF_BENCH_SCALE");
}

TEST(Coverage, ChallengeReuseAcrossInstancesIsIndependent) {
  // The same challenge posed to two instances exercises completely
  // different capacity draws; over many challenges the agreement rate
  // sits near a coin flip.
  MaxFlowPpuf a(small_params(), 1);
  MaxFlowPpuf b(small_params(), 2);
  SimulationModel ma(a), mb(b);
  util::Rng rng(5);
  int agree = 0;
  const int total = 30;
  for (int i = 0; i < total; ++i) {
    const Challenge c = random_challenge(a.layout(), rng);
    agree += ma.predict(c).bit == mb.predict(c).bit ? 1 : 0;
  }
  EXPECT_GT(agree, 5);
  EXPECT_LT(agree, 25);
}

}  // namespace
}  // namespace ppuf
