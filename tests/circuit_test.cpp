// Tests for src/circuit: device models, MNA/Newton DC solver, transient,
// variation and environment models.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dc.hpp"
#include "circuit/devices.hpp"
#include "circuit/env.hpp"
#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "circuit/variation.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace ppuf::circuit {
namespace {

// ------------------------------------------------------------------ devices

TEST(Diode, ReverseBlocksForwardConducts) {
  const DiodeParams p;
  EXPECT_NEAR(eval_diode(p, -1.0).current, -p.saturation_current, 1e-15);
  EXPECT_GT(eval_diode(p, 0.6).current, 1e-3 * p.saturation_current);
  EXPECT_GT(eval_diode(p, 0.6).conductance, 0.0);
}

TEST(Diode, ZeroBiasZeroCurrent) {
  EXPECT_DOUBLE_EQ(eval_diode(DiodeParams{}, 0.0).current, 0.0);
}

TEST(Diode, LinearizationIsC1) {
  const DiodeParams p;
  const double v = p.linearize_above;
  const DiodeEval below = eval_diode(p, v - 1e-9);
  const DiodeEval above = eval_diode(p, v + 1e-9);
  EXPECT_NEAR(below.current, above.current, 1e-6 * std::abs(below.current));
  EXPECT_NEAR(below.conductance, above.conductance,
              1e-6 * below.conductance);
  // Beyond the limit the current keeps increasing linearly, no overflow.
  EXPECT_TRUE(std::isfinite(eval_diode(p, 100.0).current));
  EXPECT_GT(eval_diode(p, 2.0).current, eval_diode(p, 1.0).current);
}

TEST(Diode, ConductanceMatchesFiniteDifference) {
  const DiodeParams p;
  for (const double v : {-0.5, 0.1, 0.3, 0.5, 0.7, 1.2}) {
    const double h = 1e-7;
    const double fd =
        (eval_diode(p, v + h).current - eval_diode(p, v - h).current) /
        (2 * h);
    EXPECT_NEAR(eval_diode(p, v).conductance, fd,
                1e-4 * std::max(fd, 1e-15));
  }
}

TEST(Diode, TemperatureIncreasesLeakageViaVt) {
  const DiodeParams p;
  // Same forward bias conducts more at higher thermal voltage?  No —
  // exp(v/nVt) *decreases* with T for fixed Is; the Is(T) derating lives in
  // adjust_for_environment.  Check both pieces separately.
  EXPECT_LT(eval_diode(p, 0.5, 90.0).current, eval_diode(p, 0.5, 27.0).current);
  Environment hot;
  hot.temperature_c = 57.0;
  const DiodeParams hot_p = adjust_for_environment(p, hot);
  EXPECT_NEAR(hot_p.saturation_current, p.saturation_current * 8.0, 1e-15);
}

TEST(Mosfet, CutoffBelowThreshold) {
  const MosfetParams p;
  const MosfetEval e = eval_mosfet(p, p.vth - 0.05, 1.0);
  EXPECT_DOUBLE_EQ(e.id, 0.0);
  EXPECT_DOUBLE_EQ(e.gm, 0.0);
  EXPECT_DOUBLE_EQ(e.gds, 0.0);
}

TEST(Mosfet, SaturationSquareLaw) {
  const MosfetParams p{0.4, 8e-6, 0.0};  // lambda = 0 for the pure law
  const double vov = 0.2;
  const MosfetEval e = eval_mosfet(p, p.vth + vov, 1.0);
  EXPECT_NEAR(e.id, 0.5 * p.transconductance * vov * vov, 1e-15);
  EXPECT_NEAR(e.gm, p.transconductance * vov, 1e-15);
  EXPECT_DOUBLE_EQ(e.gds, 0.0);
}

TEST(Mosfet, TriodeLinearAtSmallVds) {
  const MosfetParams p{0.4, 8e-6, 0.0};
  const double vov = 0.2;
  const double vds = 1e-4;  // deep triode: Id ~ k vov vds - k vds^2/2
  const MosfetEval e = eval_mosfet(p, p.vth + vov, vds);
  // The quadratic term contributes vds/(2 vov) = 2.5e-4 relative.
  EXPECT_NEAR(e.id, p.transconductance * vov * vds, 3e-4 * e.id);
}

TEST(Mosfet, C1AtTriodeSaturationBoundary) {
  const MosfetParams p;  // with channel-length modulation
  const double vov = 0.25;
  const double vgs = p.vth + vov;
  const MosfetEval below = eval_mosfet(p, vgs, vov - 1e-9);
  const MosfetEval above = eval_mosfet(p, vgs, vov + 1e-9);
  EXPECT_NEAR(below.id, above.id, 1e-9 * above.id);
  EXPECT_NEAR(below.gds, above.gds, 1e-4 * std::abs(above.gds) + 1e-18);
  EXPECT_NEAR(below.gm, above.gm, 1e-4 * above.gm);
}

TEST(Mosfet, ChannelLengthModulationRaisesSaturationCurrent) {
  const MosfetParams p;  // lambda = 0.3
  const double vgs = p.vth + 0.1;
  const double i1 = eval_mosfet(p, vgs, 1.0).id;
  const double i2 = eval_mosfet(p, vgs, 2.0).id;
  EXPECT_GT(i2, i1);
  EXPECT_NEAR(i2 / i1, (1 + 0.3 * 2.0) / (1 + 0.3 * 1.0), 1e-12);
}

TEST(Mosfet, ReverseModeIsSymmetric) {
  const MosfetParams p;
  // Swapping drain/source mirrors the current: id(vgs, vds) with the
  // device reversed equals -id(vgd, -vds).
  const double vg = 0.7, vd = 0.2, vs = 0.5;
  const MosfetEval fwd = eval_mosfet(p, vg - vd, vs - vd);  // role-swapped
  const MosfetEval rev = eval_mosfet(p, vg - vs, vd - vs);  // vds < 0
  EXPECT_NEAR(rev.id, -fwd.id, 1e-18);
}

TEST(Mosfet, ReverseDerivativesMatchFiniteDifference) {
  const MosfetParams p;
  const double vgs = 0.55, vds = -0.3;
  const double h = 1e-7;
  const MosfetEval e = eval_mosfet(p, vgs, vds);
  const double fd_gm =
      (eval_mosfet(p, vgs + h, vds).id - eval_mosfet(p, vgs - h, vds).id) /
      (2 * h);
  const double fd_gds =
      (eval_mosfet(p, vgs, vds + h).id - eval_mosfet(p, vgs, vds - h).id) /
      (2 * h);
  EXPECT_NEAR(e.gm, fd_gm, 1e-4 * std::abs(fd_gm) + 1e-15);
  EXPECT_NEAR(e.gds, fd_gds, 1e-4 * std::abs(fd_gds) + 1e-15);
}

// ------------------------------------------------------------------ netlist

TEST(Netlist, GroundIsNodeZero) {
  Netlist nl;
  EXPECT_EQ(nl.node_count(), 1u);
  EXPECT_EQ(nl.node_name(kGround), "gnd");
  EXPECT_EQ(nl.add_node("x"), 1u);
}

TEST(Netlist, RejectsInvalidElements) {
  Netlist nl;
  const NodeId a = nl.add_node();
  EXPECT_THROW(nl.add_resistor(a, 7, 1.0), std::out_of_range);
  EXPECT_THROW(nl.add_resistor(a, kGround, -5.0), std::invalid_argument);
  EXPECT_THROW(nl.add_capacitor(a, kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(nl.add_nonlinear(a, kGround, NonlinearLaw{}),
               std::invalid_argument);
}

TEST(Netlist, VoltageSourceHandles) {
  Netlist nl;
  const NodeId a = nl.add_node();
  const std::size_t h = nl.add_voltage_source(a, kGround, 1.5);
  EXPECT_DOUBLE_EQ(nl.voltage(h), 1.5);
  nl.set_voltage(h, 2.5);
  EXPECT_DOUBLE_EQ(nl.voltage(h), 2.5);
  EXPECT_THROW(nl.set_voltage(9, 0.0), std::out_of_range);
}

// ----------------------------------------------------------------- dc solve

TEST(Dc, VoltageDivider) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId mid = nl.add_node("mid");
  nl.add_voltage_source(in, kGround, 10.0);
  nl.add_resistor(in, mid, 1000.0);
  nl.add_resistor(mid, kGround, 3000.0);
  const OperatingPoint op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage(mid), 7.5, 1e-6);
}

TEST(Dc, SourceCurrentConvention) {
  // 5 V across 1 kOhm: the source delivers 5 mA out of its + pin.
  Netlist nl;
  const NodeId a = nl.add_node();
  const std::size_t src = nl.add_voltage_source(a, kGround, 5.0);
  nl.add_resistor(a, kGround, 1000.0);
  const OperatingPoint op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.source_current(src), 5e-3, 1e-9);
}

TEST(Dc, FloatingVoltageSourceLevelShifts) {
  Netlist nl;
  const NodeId a = nl.add_node();
  const NodeId b = nl.add_node();
  nl.add_voltage_source(a, kGround, 2.0);
  nl.add_voltage_source(b, a, 0.7);  // floating battery
  nl.add_resistor(b, kGround, 1e6);
  const OperatingPoint op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage(b), 2.7, 1e-6);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Netlist nl;
  const NodeId a = nl.add_node();
  nl.add_current_source(kGround, a, 1e-3);  // 1 mA into node a
  nl.add_resistor(a, kGround, 2000.0);
  const OperatingPoint op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage(a), 2.0, 1e-6);
}

TEST(Dc, DiodeResistorOperatingPoint) {
  // 2 V -> 100 kOhm -> diode: V_d ~ nVt ln(I/Is), I ~ (2 - V_d)/R.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId d = nl.add_node();
  nl.add_voltage_source(in, kGround, 2.0);
  nl.add_resistor(in, d, 1e5);
  nl.add_diode(d, kGround, DiodeParams{});
  const OperatingPoint op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  const double vd = op.voltage(d);
  const double i = (2.0 - vd) / 1e5;
  const DiodeEval e = eval_diode(DiodeParams{}, vd);
  EXPECT_NEAR(e.current, i, 1e-9 * std::max(1.0, i / 1e-9));
  EXPECT_GT(vd, 0.2);
  EXPECT_LT(vd, 0.8);
}

TEST(Dc, NmosSaturationBiasPoint) {
  const MosfetParams mp{0.4, 8e-6, 0.0};
  Netlist nl;
  const NodeId vdd = nl.add_node();
  const NodeId g = nl.add_node();
  nl.add_voltage_source(vdd, kGround, 2.0);
  nl.add_voltage_source(g, kGround, 0.6);
  nl.add_mosfet(vdd, g, kGround, mp);
  const std::size_t supply = 0;
  const OperatingPoint op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  // Id = k/2 (0.2)^2 = 160 nA drawn from the supply (plus ~2 pA of gmin
  // leakage from the solver's stabilising conductances).
  EXPECT_NEAR(op.source_current(supply), 0.5 * 8e-6 * 0.04, 5e-12);
}

TEST(Dc, NmosSourceFollowerWithResistor) {
  // Gate at 1.2 V, source resistor to ground: Vs settles near
  // Vg - vth - vov with Id = Vs/R.
  const MosfetParams mp{0.4, 8e-6, 0.0};
  Netlist nl;
  const NodeId vdd = nl.add_node();
  const NodeId g = nl.add_node();
  const NodeId s = nl.add_node();
  nl.add_voltage_source(vdd, kGround, 2.0);
  nl.add_voltage_source(g, kGround, 1.2);
  nl.add_mosfet(vdd, g, s, mp);
  nl.add_resistor(s, kGround, 1e6);
  const OperatingPoint op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  const double vs = op.voltage(s);
  const double id = vs / 1e6;
  const double vov = 1.2 - vs - mp.vth;
  ASSERT_GT(vov, 0.0);
  EXPECT_NEAR(id, 0.5 * mp.transconductance * vov * vov, 1e-11);
}

TEST(Dc, EmptyNetlistThrows) {
  Netlist nl;
  EXPECT_THROW(DcSolver(nl).solve(), std::invalid_argument);
}

TEST(Dc, NonlinearElementLaw) {
  // A quadratic conductor i = 1e-6 v^2 (v>0) from 1 V through nothing else:
  // current balances against a series resistor.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId m = nl.add_node();
  nl.add_voltage_source(in, kGround, 1.0);
  nl.add_resistor(in, m, 1e5);
  NonlinearLaw law;
  law.law = [](double v, double* g) {
    const double vp = std::max(v, 0.0);
    *g = 2e-6 * vp;
    return 1e-6 * vp * vp;
  };
  nl.add_nonlinear(m, kGround, std::move(law));
  const OperatingPoint op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  const double vm = op.voltage(m);
  EXPECT_NEAR((1.0 - vm) / 1e5, 1e-6 * vm * vm, 1e-12);
}

TEST(Dc, WarmStartReducesIterations) {
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId d = nl.add_node();
  const std::size_t src = nl.add_voltage_source(in, kGround, 2.0);
  nl.add_resistor(in, d, 1e5);
  nl.add_diode(d, kGround, DiodeParams{});
  DcSolver solver(nl);
  const OperatingPoint cold = solver.solve();
  nl.set_voltage(src, 2.01);
  const OperatingPoint warm = solver.solve(&cold);
  ASSERT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
}

// ---------------------------------------------------------------- transient

TEST(Transient, RcChargingMatchesAnalytic) {
  // 1 V step into R = 1 kOhm, C = 1 uF: tau = 1 ms.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId out = nl.add_node();
  nl.add_voltage_source(in, kGround, 1.0);
  nl.add_resistor(in, out, 1000.0);
  nl.add_capacitor(out, kGround, 1e-6);
  TransientOptions topt;
  topt.dt = 1e-5;
  topt.t_end = 5e-3;
  double v_at_tau = -1.0;
  double v_final = -1.0;
  TransientSolver(nl, topt).run([&](double t, const OperatingPoint& op) {
    if (std::abs(t - 1e-3) < 0.5e-5) v_at_tau = op.voltage(out);
    v_final = op.voltage(out);
  });
  EXPECT_NEAR(v_at_tau, 1.0 - std::exp(-1.0), 0.01);
  EXPECT_NEAR(v_final, 1.0, 0.01);
}

TEST(Transient, InitialConditionRespected) {
  Netlist nl;
  const NodeId out = nl.add_node();
  nl.add_resistor(out, kGround, 1000.0);
  nl.add_capacitor(out, kGround, 1e-6);
  numeric::Vector init{0.0, 1.0};  // cap charged to 1 V, discharging
  TransientOptions topt;
  topt.dt = 1e-5;
  topt.t_end = 1e-3;  // one tau
  double first = -1.0, last = -1.0;
  bool first_seen = false;
  TransientSolver(nl, topt).run(
      [&](double t, const OperatingPoint& op) {
        if (!first_seen && t == 0.0) {
          first = op.voltage(out);
          first_seen = true;
        }
        last = op.voltage(out);
      },
      &init);
  EXPECT_DOUBLE_EQ(first, 1.0);
  EXPECT_NEAR(last, std::exp(-1.0), 0.01);
}

TEST(Transient, RejectsBadOptions) {
  Netlist nl;
  nl.add_node();
  TransientOptions topt;
  topt.dt = 0.0;
  EXPECT_THROW(TransientSolver(nl, topt), std::invalid_argument);
}

// ------------------------------------------------------- variation and env

TEST(Variation, DrawsHaveRequestedSpread) {
  VariationModel m;
  util::Rng rng(31);
  util::RunningStats vth;
  for (int i = 0; i < 4000; ++i) {
    const BlockVariation v = draw_block_variation(m, rng);
    for (const double d : v.dvth) vth.add(d);
  }
  EXPECT_NEAR(vth.mean(), 0.0, 2e-3);
  EXPECT_NEAR(vth.stddev(), m.vth_sigma, 2e-3);
}

TEST(Variation, SystematicSurfaceIsSharedDeterministically) {
  VariationModel m;
  util::Rng rng(7);
  const SystematicSurface s(m, rng);
  EXPECT_DOUBLE_EQ(s.vth_shift(0.3, 0.8), s.vth_shift(0.3, 0.8));
  BlockVariation a{}, b{};
  apply_systematic(a, s, 0.2, 0.2);
  apply_systematic(b, s, 0.2, 0.2);
  EXPECT_DOUBLE_EQ(a.dvth[0], b.dvth[0]);
}

TEST(Variation, DefaultSurfaceIsFlat) {
  const SystematicSurface flat;
  EXPECT_DOUBLE_EQ(flat.vth_shift(0.1, 0.9), 0.0);
}

TEST(Env, MosfetTemperatureDerating) {
  const MosfetParams p;
  Environment hot;
  hot.temperature_c = 127.0;
  const MosfetParams d = adjust_for_environment(p, hot);
  EXPECT_NEAR(d.vth, p.vth - 0.1, 1e-12);  // -1 mV/K over 100 K
  EXPECT_LT(d.transconductance, p.transconductance);
  Environment cold;
  cold.temperature_c = -73.0;
  EXPECT_GT(adjust_for_environment(p, cold).transconductance,
            p.transconductance);
}

TEST(Env, NominalIsIdentity) {
  const MosfetParams p;
  const MosfetParams same = adjust_for_environment(p, Environment::nominal());
  EXPECT_DOUBLE_EQ(same.vth, p.vth);
  EXPECT_DOUBLE_EQ(same.transconductance, p.transconductance);
  const DiodeParams dp;
  EXPECT_DOUBLE_EQ(
      adjust_for_environment(dp, Environment::nominal()).saturation_current,
      dp.saturation_current);
}

}  // namespace
}  // namespace ppuf::circuit
