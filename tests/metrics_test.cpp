// Tests for the PUF quality metrics on synthetic response matrices with
// known answers, plus the flip-probability experiment on a tiny PPUF.
#include <gtest/gtest.h>

#include "metrics/flip.hpp"
#include "metrics/hamming.hpp"
#include "metrics/puf_metrics.hpp"

namespace ppuf::metrics {
namespace {

TEST(Hamming, DistanceAndFraction) {
  const BitVector a{1, 0, 1, 0};
  const BitVector b{1, 1, 0, 0};
  EXPECT_EQ(hamming_distance(a, b), 2u);
  EXPECT_DOUBLE_EQ(fractional_hamming_distance(a, b), 0.5);
  EXPECT_DOUBLE_EQ(fraction_of_ones(a), 0.5);
  EXPECT_DOUBLE_EQ(fraction_of_ones(BitVector{}), 0.0);
  EXPECT_THROW(hamming_distance(a, BitVector{1}), std::invalid_argument);
}

TEST(Hamming, NonZeroValuesCountAsOne) {
  const BitVector a{2, 0};
  const BitVector b{1, 0};
  EXPECT_EQ(hamming_distance(a, b), 0u);
}

TEST(PufMetrics, InterClassOfIdenticalInstancesIsZero) {
  const ResponseMatrix m{{1, 0, 1, 1}, {1, 0, 1, 1}, {1, 0, 1, 1}};
  const Statistic s = inter_class_hd(m);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(PufMetrics, InterClassOfComplementsIsOne) {
  const ResponseMatrix m{{1, 0, 1, 0}, {0, 1, 0, 1}};
  EXPECT_DOUBLE_EQ(inter_class_hd(m).mean, 1.0);
}

TEST(PufMetrics, InterClassKnownMixedValue) {
  const ResponseMatrix m{{0, 0, 0, 0}, {1, 1, 0, 0}, {1, 1, 1, 1}};
  // Pairwise distances: 0.5, 1.0, 0.5 -> mean 2/3.
  EXPECT_NEAR(inter_class_hd(m).mean, 2.0 / 3.0, 1e-12);
}

TEST(PufMetrics, IntraClassCountsReevaluationNoise) {
  const ResponseMatrix reference{{1, 1, 1, 1}, {0, 0, 0, 0}};
  const std::vector<ResponseMatrix> redo{
      {{1, 1, 1, 0}, {1, 1, 1, 1}},  // instance 0: distances 0.25, 0
      {{0, 0, 0, 0}},                // instance 1: distance 0
  };
  const Statistic s = intra_class_hd(reference, redo);
  EXPECT_NEAR(s.mean, 0.25 / 3.0, 1e-12);
}

TEST(PufMetrics, UniformityPerInstance) {
  const ResponseMatrix m{{1, 1, 1, 1}, {1, 0, 1, 0}, {0, 0, 0, 0}};
  const Statistic s = uniformity(m);
  EXPECT_NEAR(s.mean, 0.5, 1e-12);          // (1 + 0.5 + 0)/3
  EXPECT_GT(s.stddev, 0.4);                 // wildly different instances
}

TEST(PufMetrics, RandomnessPerChallenge) {
  // Challenge 0 answered 1 by all, challenge 1 by none, 2-3 by half.
  const ResponseMatrix m{{1, 0, 1, 0}, {1, 0, 0, 1}};
  const Statistic s = randomness(m);
  EXPECT_NEAR(s.mean, 0.5, 1e-12);
  // Per-challenge fractions: 1, 0, 0.5, 0.5.
  EXPECT_NEAR(s.stddev, 0.40825, 1e-4);
}

TEST(PufMetrics, UniformityAndRandomnessShareTheMean) {
  const ResponseMatrix m{{1, 0, 1, 1}, {0, 0, 1, 0}, {1, 1, 0, 0}};
  EXPECT_NEAR(uniformity(m).mean, randomness(m).mean, 1e-12);
}

TEST(PufMetrics, RejectsDegenerateInput) {
  EXPECT_THROW(inter_class_hd({}), std::invalid_argument);
  EXPECT_THROW(inter_class_hd({{1, 0}}), std::invalid_argument);
  EXPECT_THROW(uniformity(ResponseMatrix{{1, 0}, {1}}),
               std::invalid_argument);
  EXPECT_THROW(intra_class_hd(ResponseMatrix{{1}}, {}),
               std::invalid_argument);
}

TEST(FlipProbability, ZeroDistanceNeverFlips) {
  PpufParams p;
  p.node_count = 8;
  p.grid_size = 4;
  MaxFlowPpuf puf(p, 77);
  util::Rng rng(1);
  const auto points =
      flip_probability_vs_distance(puf, {0}, 6, rng);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].flip_probability, 0.0);
  EXPECT_EQ(points[0].samples, 6u);
}

TEST(FlipProbability, LargeDistanceFlipsSometimes) {
  PpufParams p;
  p.node_count = 8;
  p.grid_size = 4;
  MaxFlowPpuf puf(p, 78);
  util::Rng rng(2);
  const auto points =
      flip_probability_vs_distance(puf, {16}, 24, rng);
  EXPECT_GT(points[0].flip_probability, 0.0);
  EXPECT_LT(points[0].flip_probability, 1.0);
}

TEST(FlipProbability, FullInputVectorWidth) {
  // n = 8 -> 3 selection bits per terminal; l = 4 -> 16 control bits.
  const CrossbarLayout layout(8, 4);
  EXPECT_EQ(full_input_bits(layout), 2u * 3u + 16u);
  // n = 40 -> 6 bits per terminal.
  EXPECT_EQ(full_input_bits(CrossbarLayout(40, 8)), 2u * 6u + 64u);
}

TEST(FlipProbability, FullInputFlipsMoreThanTypeBOnly) {
  // Selection-bit flips retarget the flow, so the full-input curve
  // dominates the type-B-only curve at equal distance (the Fig. 9
  // interpretation; see EXPERIMENTS.md).
  PpufParams p;
  p.node_count = 8;
  p.grid_size = 4;
  MaxFlowPpuf puf(p, 79);
  util::Rng rng(3);
  const auto type_b = flip_probability_vs_distance(puf, {6}, 40, rng);
  const auto full =
      flip_probability_vs_distance_full_input(puf, {6}, 40, rng);
  EXPECT_GE(full[0].flip_probability,
            type_b[0].flip_probability - 0.05);
  EXPECT_GT(full[0].flip_probability, 0.05);
}

TEST(FlipProbability, FullInputZeroDistanceNeverFlips) {
  PpufParams p;
  p.node_count = 8;
  p.grid_size = 4;
  MaxFlowPpuf puf(p, 80);
  util::Rng rng(4);
  const auto points =
      flip_probability_vs_distance_full_input(puf, {0}, 10, rng);
  EXPECT_DOUBLE_EQ(points[0].flip_probability, 0.0);
}

}  // namespace
}  // namespace ppuf::metrics
