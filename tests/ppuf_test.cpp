// Tests for the assembled PPUF: determinism, the execution/simulation
// equivalence (the paper's central claim), the public model, delay and
// power estimates, and the feedback-loop protocol.
//
// PPUFs here are small (n <= 12) to keep characterisation fast; the bench
// binaries exercise the paper-scale instances.
#include <gtest/gtest.h>

#include <cmath>

#include "ppuf/delay.hpp"
#include "ppuf/feedback.hpp"
#include "ppuf/power.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"

namespace ppuf {
namespace {

PpufParams small_params(std::size_t n = 8, std::size_t l = 4) {
  PpufParams p;
  p.node_count = n;
  p.grid_size = l;
  return p;
}

const circuit::Environment kNominal = circuit::Environment::nominal();

TEST(Ppuf, DeterministicForSameSeed) {
  MaxFlowPpuf a(small_params(), 123);
  MaxFlowPpuf b(small_params(), 123);
  util::Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const Challenge c = random_challenge(a.layout(), rng);
    const auto ea = a.evaluate(c);
    const auto eb = b.evaluate(c);
    EXPECT_EQ(ea.bit, eb.bit);
    EXPECT_DOUBLE_EQ(ea.current_a, eb.current_a);
    EXPECT_DOUBLE_EQ(ea.current_b, eb.current_b);
  }
}

TEST(Ppuf, DifferentSeedsAreDifferentInstances) {
  MaxFlowPpuf a(small_params(), 1);
  MaxFlowPpuf b(small_params(), 2);
  util::Rng rng(1);
  int agreements = 0;
  const int total = 24;
  for (int i = 0; i < total; ++i) {
    const Challenge c = random_challenge(a.layout(), rng);
    agreements += a.evaluate(c).bit == b.evaluate(c).bit ? 1 : 0;
  }
  // Two random instances agree ~half the time; identical instances would
  // agree on all.
  EXPECT_LT(agreements, total);
  EXPECT_GT(agreements, 0);
}

TEST(Ppuf, CurrentsAreInPhysicalRange) {
  MaxFlowPpuf puf(small_params(), 7);
  util::Rng rng(2);
  const Challenge c = random_challenge(puf.layout(), rng);
  const auto e = puf.evaluate(c);
  ASSERT_TRUE(e.converged);
  // n-1 = 7 source edges at tens of nA each.
  EXPECT_GT(e.current_a, 1e-8);
  EXPECT_LT(e.current_a, 1e-5);
  EXPECT_GT(e.current_b, 1e-8);
}

TEST(Ppuf, NoiseRngFlipsOnlyMarginalChallenges) {
  MaxFlowPpuf puf(small_params(), 11);
  util::Rng rng(3);
  util::Rng noise(4);
  int flips = 0;
  const int total = 20;
  for (int i = 0; i < total; ++i) {
    const Challenge c = random_challenge(puf.layout(), rng);
    const int clean = puf.evaluate(c).bit;
    const int noisy = puf.evaluate(c, kNominal, &noise).bit;
    flips += clean != noisy ? 1 : 0;
  }
  // Comparator noise is nA-scale vs ~100 nA typical margins: rare flips.
  EXPECT_LT(flips, total / 2);
}

// The central claim (Fig. 6): executing the circuit computes the max-flow
// of the published instance to within ~1%.
TEST(Ppuf, ExecutionMatchesMaxFlowSimulation) {
  MaxFlowPpuf puf(small_params(10, 4), 21);
  SimulationModel model(puf);
  util::Rng rng(5);
  double total_err = 0.0;
  const int trials = 8;
  for (int i = 0; i < trials; ++i) {
    const Challenge c = random_challenge(puf.layout(), rng);
    const auto exe = puf.evaluate(c);
    const auto sim = model.predict(c);
    ASSERT_GT(exe.current_a, 0.0);
    total_err += std::abs(exe.current_a - sim.flow_a) / exe.current_a;
    total_err += std::abs(exe.current_b - sim.flow_b) / exe.current_b;
  }
  EXPECT_LT(total_err / (2 * trials), 0.02);  // < 2% average inaccuracy
}

TEST(Ppuf, SimulationPredictsResponseBits) {
  MaxFlowPpuf puf(small_params(10, 4), 22);
  SimulationModel model(puf);
  util::Rng rng(6);
  int agree = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const Challenge c = random_challenge(puf.layout(), rng);
    agree += puf.evaluate(c).bit == model.predict(c).bit ? 1 : 0;
  }
  // The model is accurate to <1-2%, flow differences are usually larger:
  // expect near-perfect but tolerate a marginal challenge.
  EXPECT_GE(agree, trials - 2);
}

TEST(SimulationModel, CapacitiesArePositiveAndBitDependent) {
  MaxFlowPpuf puf(small_params(), 31);
  SimulationModel model(puf);
  const std::size_t edges = puf.layout().edge_count();
  int differing = 0;
  for (graph::EdgeId e = 0; e < edges; ++e) {
    for (int net = 0; net < 2; ++net) {
      EXPECT_GT(model.capacity(net, e, 0), 0.0);
      EXPECT_GT(model.capacity(net, e, 1), 0.0);
    }
    if (std::abs(model.capacity(0, e, 0) - model.capacity(0, e, 1)) >
        0.01 * model.capacity(0, e, 0)) {
      ++differing;
    }
  }
  // Under variation the two input states differ for most blocks.
  EXPECT_GT(differing, static_cast<int>(edges / 2));
  EXPECT_THROW(model.capacity(2, 0, 0), std::invalid_argument);
}

TEST(SimulationModel, GraphMatchesLayoutAndChallenge) {
  MaxFlowPpuf puf(small_params(), 32);
  SimulationModel model(puf);
  util::Rng rng(7);
  const Challenge c = random_challenge(puf.layout(), rng);
  const graph::Digraph g = model.build_graph(0, c);
  EXPECT_TRUE(g.is_complete());
  EXPECT_EQ(g.vertex_count(), puf.layout().node_count());
  for (graph::VertexId i = 0; i < 4; ++i) {
    for (graph::VertexId j = 0; j < 4; ++j) {
      if (i == j) continue;
      const int bit = c.bits[puf.layout().cell_of_edge(i, j)] ? 1 : 0;
      EXPECT_DOUBLE_EQ(g.edge(puf.layout().edge_id(i, j)).capacity,
                       model.capacity(0, puf.layout().edge_id(i, j), bit));
    }
  }
}

TEST(SimulationModel, AllAlgorithmsAgreeOnPrediction) {
  MaxFlowPpuf puf(small_params(), 33);
  SimulationModel model(puf);
  util::Rng rng(8);
  const Challenge c = random_challenge(puf.layout(), rng);
  const auto pr = model.predict(c, maxflow::Algorithm::kPushRelabel);
  const auto dn = model.predict(c, maxflow::Algorithm::kDinic);
  const auto ek = model.predict(c, maxflow::Algorithm::kEdmondsKarp);
  EXPECT_NEAR(pr.flow_a, dn.flow_a, 1e-9 * pr.flow_a);
  EXPECT_NEAR(pr.flow_a, ek.flow_a, 1e-9 * pr.flow_a);
  EXPECT_EQ(pr.bit, dn.bit);
  EXPECT_EQ(pr.bit, ek.bit);
}

// ------------------------------------------------------------------- delay

TEST(Delay, AnalyticBoundIsLinearInN) {
  const PpufParams p = small_params();
  const double d100 = analytic_delay_bound(p, 100);
  const double d200 = analytic_delay_bound(p, 200);
  EXPECT_NEAR(d200 / d100, 199.0 / 99.0, 1e-9);
  EXPECT_THROW(analytic_delay_bound(p, 1), std::invalid_argument);
  EXPECT_THROW(analytic_delay_bound(p, 100, 2.0), std::invalid_argument);
}

TEST(Delay, MeasuredDelayWithinAnalyticBound) {
  PpufParams p = small_params(8, 4);
  MaxFlowPpuf puf(p, 41);
  util::Rng rng(9);
  const Challenge c = random_challenge(puf.layout(), rng);
  const double measured =
      measured_execution_delay(puf.network_a(), c, kNominal);
  const double bound = analytic_delay_bound(p, p.node_count);
  EXPECT_GT(measured, 0.0);
  EXPECT_LT(measured, bound * 4.0);  // bound is order-of-magnitude tight
}

// ------------------------------------------------------------------- power

TEST(Power, EstimateComposition) {
  const PpufParams p = small_params();
  const PowerEstimate e = estimate_power(p, 33.6e-6, 1e-6);
  EXPECT_NEAR(e.crossbar_power, 2.0 * 2.0 * 33.6e-6, 1e-12);
  EXPECT_DOUBLE_EQ(e.comparator_power, kComparatorPowerWatts);
  EXPECT_NEAR(e.total_power, e.crossbar_power + e.comparator_power, 1e-15);
  EXPECT_NEAR(e.energy_per_eval, e.total_power * 1e-6, 1e-18);
}

// ---------------------------------------------------------------- feedback

TEST(Feedback, SuccessorIsDeterministicAndResponseSensitive) {
  const CrossbarLayout layout(8, 4);
  util::Rng rng(10);
  const Challenge c = random_challenge(layout, rng);
  const Challenge n0 = next_challenge(layout, c, 0, 99);
  const Challenge n0_again = next_challenge(layout, c, 0, 99);
  const Challenge n1 = next_challenge(layout, c, 1, 99);
  EXPECT_EQ(n0, n0_again);
  EXPECT_FALSE(n0 == n1);  // response feeds the chain
  const Challenge other_nonce = next_challenge(layout, c, 0, 100);
  EXPECT_FALSE(n0 == other_nonce);
}

TEST(Feedback, PpufChainMatchesModelChain) {
  MaxFlowPpuf puf(small_params(10, 4), 55);
  SimulationModel model(puf);
  util::Rng rng(11);
  const Challenge c1 = random_challenge(puf.layout(), rng);
  const std::size_t k = 5;
  const FeedbackChain on_chip = run_chain_on_ppuf(puf, c1, k, 1234);
  const FeedbackChain simulated = run_chain_on_model(model, c1, k, 1234);
  ASSERT_EQ(on_chip.responses.size(), k);
  ASSERT_EQ(simulated.responses.size(), k);
  // The simulation model is faithful, so an honest simulator reproduces the
  // whole chain (it just takes asymptotically longer — that's the ESG).
  EXPECT_EQ(on_chip.responses, simulated.responses);
  EXPECT_EQ(on_chip.final_response(), simulated.final_response());
}

TEST(Feedback, ZeroRoundsRejected) {
  MaxFlowPpuf puf(small_params(), 56);
  util::Rng rng(12);
  const Challenge c1 = random_challenge(puf.layout(), rng);
  EXPECT_THROW(run_chain_on_ppuf(puf, c1, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ppuf
