// Chaos campaign suite: the serving stack under randomized fault
// schedules, process-death torture, and the client's self-protection.
//
// The bounded campaigns here are the tier-1 slice of the chaos layer:
// five fixed seeds, sub-second schedules, every invariant checked (no
// wrong accept, only typed errors, committed enrollments survive,
// recovery bounded).  The open-ended randomized sweep lives in
// bench_chaos / `ppuf_tool chaos`; a seed that fails there is reproduced
// by adding it to the list below.
//
// NOTE: the kill-9 torture forks, so it must not share a process with
// live threads; every test in this binary joins all of its threads before
// returning (AuthServer::stop, run_campaign), and the torture test is
// declared first for good measure.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/breaker.hpp"
#include "net/client.hpp"
#include "registry/device_registry.hpp"
#include "server/auth_server.hpp"
#include "testing/chaos/chaos.hpp"
#include "testing/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ppuf {
namespace {

namespace fs = std::filesystem;
using testing::chaos::CampaignOptions;
using testing::chaos::CampaignResult;
using testing::chaos::FaultPhase;
using testing::chaos::FaultSchedule;
using testing::chaos::TortureOptions;
using testing::chaos::TortureResult;
using util::Status;
using util::StatusCode;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ppuf_chaos_" + name);
  fs::remove_all(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// Kill-9 crash-recovery torture (first: it forks).

TEST(ChaosTorture, Kill9LoopNeverLosesCommittedEnrollments) {
  TortureOptions options;
  options.iterations = 22;
  options.seed = 11;
  const TortureResult result = testing::chaos::run_kill9_torture(options);

  for (const std::string& v : result.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(result.passed());
  EXPECT_EQ(result.iterations, 22);
  // The children must have committed real work for the diff to mean
  // anything, and every recovery must have been sampled.
  EXPECT_GT(result.committed_enrolls, 0u);
  EXPECT_EQ(result.recovery_ms.size(), 22u);
}

// ---------------------------------------------------------------------------
// Fault schedules.

TEST(ChaosSchedule, DeterministicInSeed) {
  const FaultSchedule a = FaultSchedule::from_seed(42, 5.0);
  const FaultSchedule b = FaultSchedule::from_seed(42, 5.0);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].kind, b.phases[i].kind);
    EXPECT_EQ(a.phases[i].duration_s, b.phases[i].duration_s);
    EXPECT_EQ(a.phases[i].net_send_fail_ppm, b.phases[i].net_send_fail_ppm);
    EXPECT_EQ(a.phases[i].wal_append_fail_ppm,
              b.phases[i].wal_append_fail_ppm);
    EXPECT_EQ(a.phases[i].net_latency_us, b.phases[i].net_latency_us);
  }

  // A different seed draws a different walk (kinds or magnitudes).
  const FaultSchedule c = FaultSchedule::from_seed(43, 5.0);
  bool differs = c.phases.size() != a.phases.size();
  for (std::size_t i = 0; !differs && i < a.phases.size(); ++i) {
    differs = a.phases[i].kind != c.phases[i].kind ||
              a.phases[i].duration_s != c.phases[i].duration_s;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosSchedule, CoversDurationAndStartsQuiet) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FaultSchedule s = FaultSchedule::from_seed(seed, 3.0);
    ASSERT_FALSE(s.phases.empty());
    // The opening window is always quiet so the stack warms up before the
    // first burst.
    EXPECT_EQ(s.phases.front().kind, FaultPhase::Kind::kQuiet);
    double total = 0.0;
    for (const FaultPhase& p : s.phases) {
      EXPECT_GT(p.duration_s, 0.0);
      total += p.duration_s;
    }
    EXPECT_NEAR(total, 3.0, 1e-6);
  }
  // Across a handful of seeds every burst kind must appear — a schedule
  // generator that never draws disk faults is not a chaos campaign.
  std::set<FaultPhase::Kind> seen;
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    for (const FaultPhase& p : FaultSchedule::from_seed(seed, 3.0).phases)
      seen.insert(p.kind);
  EXPECT_EQ(seen.size(), 5u);
}

// ---------------------------------------------------------------------------
// Circuit breaker (unit level).

TEST(CircuitBreaker, OpensAfterThresholdFastFailsAndRecovers) {
  net::CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown_ms = 50;
  net::CircuitBreaker breaker(options);

  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_TRUE(breaker.allow());  // below threshold: still closed
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());  // fast fail
  EXPECT_EQ(breaker.times_opened(), 1u);

  // After the cooldown exactly one half-open probe is admitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // second concurrent probe refused

  // A failed probe slams it shut again...
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);

  // ...and a successful probe after the next cooldown closes it.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, SuccessResetsConsecutiveFailureCount) {
  net::CircuitBreaker::Options options;
  options.failure_threshold = 3;
  net::CircuitBreaker breaker(options);
  for (int round = 0; round < 5; ++round) {
    breaker.record_failure();
    breaker.record_failure();
    breaker.record_success();  // never three in a row
  }
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreaker, EndpointBreakersAreSharedPerEndpoint) {
  const auto a = net::endpoint_breaker("chaos-test-host", 19001, {});
  const auto b = net::endpoint_breaker("chaos-test-host", 19001, {});
  const auto c = net::endpoint_breaker("chaos-test-host", 19002, {});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
}

// ---------------------------------------------------------------------------
// Decorrelated-jitter backoff (distribution level).

TEST(BackoffJitter, DecorrelatedSeededBoundedAndSpread) {
  const int base = 10, cap = 500;

  // Same seed, same stream: the knob that makes chaos runs reproducible.
  util::Rng rng_a(7), rng_b(7);
  int prev_a = 0, prev_b = 0;
  for (int i = 0; i < 64; ++i) {
    prev_a = net::decorrelated_jitter_ms(rng_a, base, cap, prev_a);
    prev_b = net::decorrelated_jitter_ms(rng_b, base, cap, prev_b);
    ASSERT_EQ(prev_a, prev_b);
  }

  // Bounded: every draw stays in [base, cap] and within the 3x-previous
  // decorrelation envelope.
  util::Rng rng(12345);
  int prev = 0;
  std::set<int> distinct;
  for (int i = 0; i < 256; ++i) {
    const int next = net::decorrelated_jitter_ms(rng, base, cap, prev);
    ASSERT_GE(next, base);
    ASSERT_LE(next, cap);
    ASSERT_LE(next, std::max(3 * prev, 3 * base));
    distinct.insert(next);
    prev = next;
  }
  // Jitter that always lands on the same value is not jitter (the whole
  // point is to decorrelate a fleet's retries).
  EXPECT_GT(distinct.size(), 10u);

  // Distinct seeds decorrelate.
  util::Rng rng_c(1), rng_d(2);
  int same = 0;
  int pc = 0, pd = 0;
  for (int i = 0; i < 64; ++i) {
    pc = net::decorrelated_jitter_ms(rng_c, base, cap, pc);
    pd = net::decorrelated_jitter_ms(rng_d, base, cap, pd);
    if (pc == pd) ++same;
  }
  EXPECT_LT(same, 32);
}

// ---------------------------------------------------------------------------
// Registry WAL append failure mid-enroll against a live server
// (satellite: disk-full during enrollment must be typed, isolated, and
// recoverable while serving continues).

TEST(ChaosRegistry, WalAppendFailureMidEnrollIsTypedIsolatedAndRecovers) {
  registry::DeviceRegistry reg;
  ASSERT_TRUE(reg.open(fresh_dir("wal_mid_enroll")).is_ok());

  registry::EnrollRequest req;
  req.node_count = 6;
  req.grid_size = 3;
  req.seed = 501;
  std::uint64_t id1 = 0;
  ASSERT_TRUE(reg.enroll(req, &id1).is_ok());

  server::AuthServerOptions sopts;
  sopts.threads = 1;
  sopts.challenge_seed = 99;
  server::AuthServer server(reg, sopts);
  ASSERT_TRUE(server.start().is_ok());

  net::ClientOptions copts;
  copts.backoff_seed = 1;
  copts.device_id = id1;
  net::AuthClient client("127.0.0.1", server.port(), copts);
  net::ChallengeGrant grant;
  ASSERT_TRUE(client.get_challenge(&grant).is_ok());

  // Disk full: the enroll fails with a typed error, state is unchanged,
  // and the already-enrolled device keeps being served throughout.
  const std::size_t count_before = reg.device_count();
  {
    testing::FaultSpec spec;
    spec.registry_append_failures = 1;
    const testing::ScopedFaultInjection fault(spec);
    req.seed = 502;
    std::uint64_t id2 = 0;
    EXPECT_EQ(reg.enroll(req, &id2).code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(reg.device_count(), count_before);
  EXPECT_TRUE(client.get_challenge(&grant).is_ok());

  // The failure is transient: the next enroll succeeds and the new
  // device is immediately servable.
  req.seed = 503;
  std::uint64_t id3 = 0;
  ASSERT_TRUE(reg.enroll(req, &id3).is_ok());
  EXPECT_EQ(id3, id1 + 1);  // the failed attempt burned no id
  client.set_device_id(id3);
  EXPECT_TRUE(client.get_challenge(&grant).is_ok());

  server.stop();
}

// ---------------------------------------------------------------------------
// The tentpole: seeded chaos campaigns against the live stack.

TEST(ChaosCampaign, FiveSeededSchedulesNoInvariantViolations) {
  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    CampaignOptions options;
    options.seed = seed;
    options.duration_s = 0.7;
    options.devices = 2;
    options.clients = 3;
    options.restarts = 1;
    const CampaignResult result = testing::chaos::run_campaign(options);

    for (const std::string& v : result.violations)
      ADD_FAILURE() << "seed " << seed << ": " << v;
    EXPECT_TRUE(result.passed()) << "seed " << seed;
    EXPECT_GT(result.requests, 0u) << "seed " << seed;
    EXPECT_GT(result.ok, 0u) << "seed " << seed;
    // One restart per campaign, and its blackout must have been sampled.
    EXPECT_EQ(result.recovery_ms.size(), 1u) << "seed " << seed;
    total_faults += result.faults_injected;
  }
  // Campaigns that never injected a fault tested nothing.
  EXPECT_GT(total_faults, 0u);
}

TEST(ChaosCampaign, AggregateRollsUpAndEmitsJson) {
  testing::chaos::Aggregate agg;
  CampaignResult campaign;
  campaign.seed = 3;
  campaign.faults_injected = 17;
  campaign.requests = 100;
  campaign.ok = 90;
  campaign.recovery_ms = {12.0, 30.0};
  agg.add(campaign);
  TortureResult torture;
  torture.iterations = 20;
  torture.committed_enrolls = 55;
  torture.recovery_ms = {5.0};
  agg.add(torture);

  EXPECT_TRUE(agg.passed());
  EXPECT_EQ(agg.failing_seed, 0u);
  EXPECT_EQ(agg.recovery_ms.size(), 3u);

  const std::string json = agg.to_json();
  EXPECT_NE(json.find("\"bench\": \"chaos\""), std::string::npos);
  EXPECT_NE(json.find("\"faults_injected\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"violations\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"recovery_ms_p99\""), std::string::npos);
  EXPECT_NE(json.find("\"torture_iterations\": 20"), std::string::npos);

  // A violating campaign pins the failing seed for reproduction.
  CampaignResult bad;
  bad.seed = 4;
  bad.violations.push_back("wrong response for device 1");
  agg.add(bad);
  EXPECT_FALSE(agg.passed());
  EXPECT_EQ(agg.failing_seed, 4u);
  EXPECT_NE(agg.to_json().find("\"failing_seed\": 4"), std::string::npos);
}

TEST(ChaosCampaign, PercentileIsNearestRank) {
  using testing::chaos::percentile;
  EXPECT_EQ(percentile({}, 99.0), 0.0);
  EXPECT_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 50.0), 2.0);
  EXPECT_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 99.0), 4.0);
  EXPECT_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 25.0), 1.0);  // sorts first
}

}  // namespace
}  // namespace ppuf
