// End-to-end tests of the fleet serving subsystem: consistent-hash ring,
// gateway routing/pinning/drain, shard admin, and the WAL-shipping
// standby with promotion.
//
// Everything runs in-process on loopback ephemeral ports, like
// auth_server_test: real sockets, real epoll loops, real WAL files under
// the test temp root.  Challenge seeds and enrollment seeds are fixed and
// requests are issued sequentially, so every verifier verdict in this
// file is deterministic — a green run stays green.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "circuit/mna.hpp"
#include "fleet/gateway.hpp"
#include "fleet/ring.hpp"
#include "fleet/standby.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "ppuf/ppuf.hpp"
#include "protocol/authentication.hpp"
#include "registry/device_registry.hpp"
#include "server/auth_server.hpp"
#include "util/status.hpp"

namespace ppuf {
namespace {

namespace fs = std::filesystem;
using fleet::Gateway;
using fleet::GatewayOptions;
using fleet::HashRing;
using fleet::StandbyOptions;
using fleet::WalStandby;
using net::AuthClient;
using net::ClientOptions;
using server::AuthServer;
using server::AuthServerOptions;
using util::Status;
using util::StatusCode;

constexpr double kChipDelay = 1e-6;
// 16/4 matches auth_server_test: large enough that characterised
// capacities are well-conditioned, small enough to enroll by the dozen.
constexpr std::uint32_t kNodes = 16;
constexpr std::uint32_t kGrid = 4;
constexpr std::uint64_t kDeviceSeedBase = 9000;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ppuf_fleet_" + name);
  fs::remove_all(dir);
  return dir.string();
}

AuthServerOptions shard_options(std::uint64_t challenge_seed) {
  AuthServerOptions o;
  o.threads = 2;
  o.chain_length = 2;
  o.spot_checks = 0;  // verify every round: deterministic verdicts
  o.challenge_seed = challenge_seed;
  return o;
}

net::EnrollRequestBody enroll_spec(std::uint64_t device_id) {
  net::EnrollRequestBody spec;
  spec.node_count = kNodes;
  spec.grid_size = kGrid;
  spec.fabrication_seed = kDeviceSeedBase + device_id;
  return spec;
}

/// The "chip" a device holder would possess: same params and fabrication
/// seed the registry used at enrollment.  Chips share one symbolic cache
/// (identical topology) so a 30-device test does one symbolic analysis.
std::unique_ptr<MaxFlowPpuf> make_chip(
    std::uint64_t device_id,
    const std::shared_ptr<circuit::SymbolicCache>& cache) {
  PpufParams p;
  p.node_count = kNodes;
  p.grid_size = kGrid;
  auto chip = std::make_unique<MaxFlowPpuf>(p, kDeviceSeedBase + device_id);
  chip->network_a().set_symbolic_cache(cache);
  chip->network_b().set_symbolic_cache(cache);
  return chip;
}

/// One registry-backed shard: its durable directory, registry, and server.
struct Shard {
  std::string dir;
  registry::DeviceRegistry registry;
  std::unique_ptr<AuthServer> server;

  Status open_and_start(const std::string& name,
                        std::uint64_t challenge_seed) {
    dir = fresh_dir(name);
    if (Status s = registry.open(dir); !s.is_ok()) return s;
    server = std::make_unique<AuthServer>(registry,
                                          shard_options(challenge_seed));
    return server->start();
  }
};

/// Poll the gateway's admin STATUS until every shard reports `kUp` (the
/// health prober needs a probe round trip before routing opens).
void wait_all_shards_up(AuthClient& admin_client, std::size_t expected) {
  for (int i = 0; i < 200; ++i) {
    net::AdminRequestBody req;
    req.op = net::AdminOp::kStatus;
    net::AdminReplyBody reply;
    if (admin_client.admin(req, &reply).is_ok() &&
        reply.shards.size() == expected) {
      std::size_t up = 0;
      for (const net::ShardStatus& s : reply.shards)
        if (s.state == 1) ++up;
      if (up == expected) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  FAIL() << "shards never became healthy";
}

ClientOptions client_options_for(std::uint64_t device_id) {
  ClientOptions c;
  c.device_id = device_id;
  c.backoff_seed = 1;
  return c;
}

// --- HashRing --------------------------------------------------------------

TEST(HashRing, RoutesDeterministicallyAndSpreadsLoad) {
  HashRing ring;
  ring.add("a");
  ring.add("b");
  ring.add("c");
  ASSERT_EQ(ring.shard_count(), 3u);

  std::map<std::string, int> hits;
  for (std::uint64_t id = 1; id <= 9000; ++id) ++hits[ring.route(id)];
  // 128 vnodes per shard keeps the split well away from degenerate.
  for (const auto& [name, count] : hits)
    EXPECT_GT(count, 9000 / 6) << name << " is starved";

  HashRing twin;
  twin.add("c");  // insertion order must not matter
  twin.add("a");
  twin.add("b");
  for (std::uint64_t id = 1; id <= 500; ++id)
    EXPECT_EQ(ring.route(id), twin.route(id));
}

TEST(HashRing, RemovalOnlyMovesTheVictimsKeys) {
  HashRing ring;
  ring.add("a");
  ring.add("b");
  ring.add("c");
  std::map<std::uint64_t, std::string> before;
  for (std::uint64_t id = 1; id <= 4000; ++id) before[id] = ring.route(id);

  ring.remove("c");
  for (const auto& [id, owner] : before) {
    if (owner == "c") continue;  // these must land somewhere new
    EXPECT_EQ(ring.route(id), owner) << "id " << id << " moved needlessly";
  }
}

TEST(HashRing, EmptyAndMembershipBasics) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.route(42), "");
  ring.add("only");
  EXPECT_TRUE(ring.contains("only"));
  EXPECT_EQ(ring.route(42), "only");
  ring.add("only");  // idempotent
  EXPECT_EQ(ring.shard_count(), 1u);
  ring.remove("only");
  EXPECT_TRUE(ring.empty());
}

// --- Gateway end-to-end ----------------------------------------------------

TEST(FleetGateway, EndToEndEnrollPredictAndChainedAuth) {
  constexpr std::size_t kShards = 3;
  constexpr std::uint64_t kDevices = 30;

  Shard shards[kShards];
  ASSERT_TRUE(shards[0].open_and_start("e2e_a", 111).is_ok());
  ASSERT_TRUE(shards[1].open_and_start("e2e_b", 222).is_ok());
  ASSERT_TRUE(shards[2].open_and_start("e2e_c", 333).is_ok());

  GatewayOptions go;
  go.health_interval_ms = 25;
  Gateway gateway(go);
  ASSERT_TRUE(
      gateway.add_shard("a", "127.0.0.1", shards[0].server->port()).is_ok());
  ASSERT_TRUE(
      gateway.add_shard("b", "127.0.0.1", shards[1].server->port()).is_ok());
  ASSERT_TRUE(
      gateway.add_shard("c", "127.0.0.1", shards[2].server->port()).is_ok());
  ASSERT_TRUE(gateway.start().is_ok());

  AuthClient admin_client("127.0.0.1", gateway.port());
  wait_all_shards_up(admin_client, kShards);

  // Enroll every device THROUGH the gateway with an explicit id.
  for (std::uint64_t id = 1; id <= kDevices; ++id) {
    AuthClient c("127.0.0.1", gateway.port(), client_options_for(id));
    std::uint64_t assigned = 0;
    ASSERT_TRUE(c.enroll_device(enroll_spec(id), id, &assigned).is_ok())
        << "device " << id;
    EXPECT_EQ(assigned, id);
  }

  // Enrollments landed exactly once, spread across all three shards.
  std::uint64_t total = 0;
  for (Shard& s : shards) {
    EXPECT_GT(s.registry.device_count(), 0u);
    total += s.registry.device_count();
  }
  EXPECT_EQ(total, kDevices);

  // An id the ring cannot route (0) and a duplicate id are both typed
  // invalid-argument, not transport errors.
  {
    AuthClient c("127.0.0.1", gateway.port(), client_options_for(1));
    std::uint64_t assigned = 0;
    EXPECT_EQ(c.enroll_device(enroll_spec(1), 0, &assigned).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(c.enroll_device(enroll_spec(1), 1, &assigned).code(),
              StatusCode::kInvalidArgument);
  }

  auto cache = std::make_shared<circuit::SymbolicCache>();
  util::Rng challenge_rng(77);

  for (std::uint64_t id = 1; id <= kDevices; ++id) {
    // Find the owning shard the honest way: it is the only registry that
    // actually holds the device.
    Shard* owner = nullptr;
    for (Shard& s : shards)
      if (s.registry.contains(id)) {
        ASSERT_EQ(owner, nullptr) << "device " << id << " double-enrolled";
        owner = &s;
      }
    ASSERT_NE(owner, nullptr) << "device " << id << " lost";

    // PREDICT through the gateway must be byte-exact with the shard's own
    // answer: the gateway forwards frames verbatim, both replies come
    // from the same stored model.
    SimulationModel model;
    ASSERT_TRUE(owner->registry.load_model(id, &model).is_ok());
    const Challenge c = random_challenge(model.layout(), challenge_rng);
    AuthClient via_gateway("127.0.0.1", gateway.port(),
                           client_options_for(id));
    AuthClient direct("127.0.0.1", owner->server->port(),
                      client_options_for(id));
    SimulationModel::Prediction from_gateway, from_shard;
    ASSERT_TRUE(via_gateway.predict(c, &from_gateway).is_ok());
    ASSERT_TRUE(direct.predict(c, &from_shard).is_ok());
    EXPECT_EQ(from_gateway.bit, from_shard.bit);
    EXPECT_EQ(from_gateway.flow_a, from_shard.flow_a);
    EXPECT_EQ(from_gateway.flow_b, from_shard.flow_b);

    // Full chained authentication through the gateway: grant pins the
    // session, the proof follows the pin to the same shard.
    net::ChallengeGrant grant;
    ASSERT_TRUE(via_gateway.get_challenge(&grant).is_ok());
    auto chip = make_chip(id, cache);
    const protocol::ChainedReport proof = protocol::prove_chain_with_ppuf(
        *chip, grant.challenge, grant.chain_length, grant.nonce, kChipDelay);
    protocol::ChainedVerifyResult verdict;
    ASSERT_TRUE(via_gateway.chained_auth(grant, proof, &verdict).is_ok());
    EXPECT_TRUE(verdict.accepted)
        << "device " << id << ": " << verdict.detail;
  }

  const Gateway::Stats stats = gateway.stats();
  EXPECT_GE(stats.forwarded, 3 * kDevices);  // enroll + 2 auth legs each
  EXPECT_EQ(stats.pins_created, kDevices);
  EXPECT_EQ(stats.dropped_inflight, 0u);

  // Typed errors survive the forward: an unknown device is NOT_FOUND
  // through the gateway, exactly as it is direct to a shard.
  {
    AuthClient c("127.0.0.1", gateway.port(), client_options_for(4242));
    net::ChallengeGrant grant;
    EXPECT_EQ(c.get_challenge(&grant).code(), StatusCode::kNotFound);
  }

  gateway.stop();
  for (Shard& s : shards) s.server->stop();
}

TEST(FleetGateway, DrainCompletesPinnedSessionsAndRedirectsNewOnes) {
  Shard primary, successor;
  ASSERT_TRUE(primary.open_and_start("drain_primary", 11).is_ok());
  ASSERT_TRUE(successor.open_and_start("drain_successor", 22).is_ok());

  GatewayOptions go;
  go.health_interval_ms = 25;
  Gateway gateway(go);
  // One shard in the ring: every device routes to it, its drain successor
  // lives outside the ring (the handoff target).
  ASSERT_TRUE(
      gateway.add_shard("s", "127.0.0.1", primary.server->port()).is_ok());
  ASSERT_TRUE(gateway.start().is_ok());
  AuthClient admin_client("127.0.0.1", gateway.port());
  wait_all_shards_up(admin_client, 1);

  // Device 1 exists on BOTH nodes (real drains migrate data first); the
  // redirected client must find it at the successor.
  for (Shard* s : {&primary, &successor}) {
    registry::EnrollRequest req;
    req.node_count = kNodes;
    req.grid_size = kGrid;
    req.seed = kDeviceSeedBase + 1;
    req.device_id = 1;
    ASSERT_TRUE(s->registry.enroll(req, nullptr).is_ok());
  }

  auto cache = std::make_shared<circuit::SymbolicCache>();
  auto chip = make_chip(1, cache);

  // Open a chained session BEFORE the drain: the grant pins it.
  AuthClient pinned("127.0.0.1", gateway.port(), client_options_for(1));
  net::ChallengeGrant grant;
  ASSERT_TRUE(pinned.get_challenge(&grant).is_ok());

  // Drain the shard, naming the successor.
  net::AdminRequestBody drain;
  drain.op = net::AdminOp::kDrainShard;
  drain.shard = "s";
  drain.host = "127.0.0.1";
  drain.port = successor.server->port();
  net::AdminReplyBody reply;
  ASSERT_TRUE(admin_client.admin(drain, &reply).is_ok());
  ASSERT_EQ(reply.ok, 1) << reply.message;

  // The pinned session completes on the draining shard.
  const protocol::ChainedReport proof = protocol::prove_chain_with_ppuf(
      *chip, grant.challenge, grant.chain_length, grant.nonce, kChipDelay);
  protocol::ChainedVerifyResult verdict;
  ASSERT_TRUE(pinned.chained_auth(grant, proof, &verdict).is_ok());
  EXPECT_TRUE(verdict.accepted) << verdict.detail;

  // A NEW session is redirected to the successor; the client follows the
  // redirect transparently and completes a full auth there.
  AuthClient fresh("127.0.0.1", gateway.port(), client_options_for(1));
  ASSERT_TRUE(fresh.get_challenge(&grant).is_ok());
  EXPECT_GE(fresh.stats().redirects_followed, 1u);
  const protocol::ChainedReport proof2 = protocol::prove_chain_with_ppuf(
      *chip, grant.challenge, grant.chain_length, grant.nonce, kChipDelay);
  ASSERT_TRUE(fresh.chained_auth(grant, proof2, &verdict).is_ok());
  EXPECT_TRUE(verdict.accepted) << verdict.detail;

  const Gateway::Stats stats = gateway.stats();
  EXPECT_EQ(stats.dropped_inflight, 0u);
  EXPECT_GE(stats.redirects_sent, 1u);

  // Undrain restores normal routing through the gateway.
  net::AdminRequestBody undrain;
  undrain.op = net::AdminOp::kUndrainShard;
  undrain.shard = "s";
  ASSERT_TRUE(admin_client.admin(undrain, &reply).is_ok());
  ASSERT_EQ(reply.ok, 1);
  AuthClient again("127.0.0.1", gateway.port(), client_options_for(1));
  ASSERT_TRUE(again.get_challenge(&grant).is_ok());
  EXPECT_EQ(again.stats().redirects_followed, 0u);

  gateway.stop();
  primary.server->stop();
  successor.server->stop();
}

TEST(FleetGateway, RemoveShardAndUnroutableRing) {
  Shard shard;
  ASSERT_TRUE(shard.open_and_start("remove_me", 5).is_ok());

  GatewayOptions go;
  go.health_interval_ms = 25;
  Gateway gateway(go);
  ASSERT_TRUE(
      gateway.add_shard("x", "127.0.0.1", shard.server->port()).is_ok());
  ASSERT_TRUE(gateway.start().is_ok());
  AuthClient admin_client("127.0.0.1", gateway.port());
  wait_all_shards_up(admin_client, 1);

  net::AdminRequestBody remove;
  remove.op = net::AdminOp::kRemoveShard;
  remove.shard = "x";
  net::AdminReplyBody reply;
  ASSERT_TRUE(admin_client.admin(remove, &reply).is_ok());
  ASSERT_EQ(reply.ok, 1) << reply.message;

  // An empty ring yields typed SHARD_UNAVAILABLE → kUnavailable, and the
  // client's retries make it a clean error, not a hang.
  ClientOptions one_shot = client_options_for(1);
  one_shot.max_attempts = 1;
  one_shot.breaker_failure_threshold = 0;
  AuthClient c("127.0.0.1", gateway.port(), one_shot);
  net::ChallengeGrant grant;
  EXPECT_EQ(c.get_challenge(&grant).code(), StatusCode::kUnavailable);

  // Removing an unknown shard is a refusal, not a crash.
  remove.shard = "never-existed";
  ASSERT_TRUE(admin_client.admin(remove, &reply).is_ok());
  EXPECT_EQ(reply.ok, 0);

  gateway.stop();
  shard.server->stop();
}

// --- WAL-shipping standby --------------------------------------------------

TEST(WalStandby, ReplicatesPromotesWithZeroAckedLoss) {
  Shard primary;
  ASSERT_TRUE(primary.open_and_start("ship_primary", 99).is_ok());

  std::vector<std::uint64_t> acked;
  auto enroll_one = [&](std::uint64_t id) {
    AuthClient c("127.0.0.1", primary.server->port(),
                 client_options_for(id));
    std::uint64_t assigned = 0;
    ASSERT_TRUE(c.enroll_device(enroll_spec(id), id, &assigned).is_ok());
    acked.push_back(assigned);
  };
  for (std::uint64_t id = 1; id <= 4; ++id) enroll_one(id);

  StandbyOptions so;
  so.primary_port = primary.server->port();
  so.directory = fresh_dir("ship_standby");
  WalStandby standby(so);
  ASSERT_TRUE(standby.start().is_ok());
  // Quiesce the poll thread immediately: this test drives every
  // replication pass itself via sync_once so each bootstrap/segment
  // transition is attributable (the poll loop is covered elsewhere).
  standby.stop();
  ASSERT_TRUE(standby.sync_once().is_ok());
  EXPECT_GE(standby.stats().bootstraps, 1u);  // first contact bootstraps

  // More acked enrollments after the bootstrap arrive as WAL segments.
  for (std::uint64_t id = 5; id <= 8; ++id) enroll_one(id);
  ASSERT_TRUE(standby.sync_once().is_ok());

  // Compaction on the primary rotates the WAL epoch; the standby's stale
  // cursor self-heals by re-bootstrapping on the next pass.
  ASSERT_TRUE(primary.registry.compact().is_ok());
  enroll_one(9);
  const std::uint64_t bootstraps_before = standby.stats().bootstraps;
  ASSERT_TRUE(standby.sync_once().is_ok());
  EXPECT_GT(standby.stats().bootstraps, bootstraps_before);

  // Primary dies; promotion reports the measured loss window.
  primary.server->stop();
  const fleet::PromotionReport report = standby.promote();
  EXPECT_TRUE(report.caught_up);
  EXPECT_EQ(report.device_count, acked.size());

  // Acceptance criterion: every acked enrollment survives failover.
  std::size_t lost = 0;
  for (std::uint64_t id : acked)
    if (!standby.registry().contains(id)) ++lost;
  EXPECT_EQ(lost, 0u) << "acked enrollments lost across promotion";

  // The promoted registry actually SERVES: a device authenticates against
  // a fresh server wrapped around it.
  AuthServer promoted(standby.registry(), shard_options(99));
  ASSERT_TRUE(promoted.start().is_ok());
  auto cache = std::make_shared<circuit::SymbolicCache>();
  auto chip = make_chip(3, cache);
  AuthClient c("127.0.0.1", promoted.port(), client_options_for(3));
  net::ChallengeGrant grant;
  ASSERT_TRUE(c.get_challenge(&grant).is_ok());
  const protocol::ChainedReport proof = protocol::prove_chain_with_ppuf(
      *chip, grant.challenge, grant.chain_length, grant.nonce, kChipDelay);
  protocol::ChainedVerifyResult verdict;
  ASSERT_TRUE(c.chained_auth(grant, proof, &verdict).is_ok());
  EXPECT_TRUE(verdict.accepted) << verdict.detail;
  promoted.stop();
}

TEST(WalStandby, TinySegmentsBufferPartialRecords) {
  Shard primary;
  ASSERT_TRUE(primary.open_and_start("tiny_primary", 7).is_ok());

  StandbyOptions so;
  so.primary_port = primary.server->port();
  so.directory = fresh_dir("tiny_standby");
  // 64-byte segments guarantee every WAL record (model blobs are KBs)
  // arrives sliced mid-record many times over.
  so.fetch_max_bytes = 64;
  WalStandby standby(so);
  ASSERT_TRUE(standby.start().is_ok());
  // Bootstrap against the EMPTY primary first: everything enrolled below
  // must then arrive via byte-sliced WAL segments, not the snapshot.
  ASSERT_TRUE(standby.sync_once().is_ok());

  for (std::uint64_t id = 1; id <= 3; ++id) {
    AuthClient c("127.0.0.1", primary.server->port(),
                 client_options_for(id));
    std::uint64_t assigned = 0;
    ASSERT_TRUE(c.enroll_device(enroll_spec(id), id, &assigned).is_ok());
  }
  ASSERT_TRUE(standby.sync_once().is_ok());

  EXPECT_EQ(standby.registry().device_count(), 3u);
  for (std::uint64_t id = 1; id <= 3; ++id)
    EXPECT_TRUE(standby.registry().contains(id)) << "device " << id;
  // Byte-sliced shipping really happened (not one lucky big segment)…
  EXPECT_GT(standby.stats().fetches, 10u);
  // …and the replica's devices are bit-identical to the primary's.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    SimulationModel a, b;
    ASSERT_TRUE(primary.registry.load_model(id, &a).is_ok());
    ASSERT_TRUE(standby.registry().load_model(id, &b).is_ok());
    util::Rng rng(id);
    const Challenge c = random_challenge(a.layout(), rng);
    EXPECT_EQ(a.predict(c).bit, b.predict(c).bit);
    EXPECT_EQ(a.predict(c).flow_a, b.predict(c).flow_a);
  }
  primary.server->stop();
}

// --- Failover through the gateway ------------------------------------------

TEST(FleetFailover, PromotedStandbyRepointedIntoRingServesAllAckedDevices) {
  Shard a, b;
  ASSERT_TRUE(a.open_and_start("failover_a", 1001).is_ok());
  ASSERT_TRUE(b.open_and_start("failover_b", 1002).is_ok());

  GatewayOptions go;
  go.health_interval_ms = 25;
  go.health_failures_to_down = 2;
  Gateway gateway(go);
  ASSERT_TRUE(gateway.add_shard("a", "127.0.0.1", a.server->port()).is_ok());
  ASSERT_TRUE(gateway.add_shard("b", "127.0.0.1", b.server->port()).is_ok());
  ASSERT_TRUE(gateway.start().is_ok());
  AuthClient admin_client("127.0.0.1", gateway.port());
  wait_all_shards_up(admin_client, 2);

  constexpr std::uint64_t kDevices = 8;
  for (std::uint64_t id = 1; id <= kDevices; ++id) {
    AuthClient c("127.0.0.1", gateway.port(), client_options_for(id));
    std::uint64_t assigned = 0;
    ASSERT_TRUE(c.enroll_device(enroll_spec(id), id, &assigned).is_ok());
  }
  ASSERT_GT(a.registry.device_count(), 0u);
  ASSERT_GT(b.registry.device_count(), 0u);

  // Standby tails shard a; catch it up past every ack.
  StandbyOptions so;
  so.primary_port = a.server->port();
  so.directory = fresh_dir("failover_standby");
  WalStandby standby(so);
  ASSERT_TRUE(standby.start().is_ok());
  // Quiesce the poll thread before the last sync so no background pass
  // can race shard a's shutdown and mark the cursor unknown.
  standby.stop();
  ASSERT_TRUE(standby.sync_once().is_ok());

  // Kill shard a, promote, and re-point the ring name at the successor —
  // name-keyed placement means no other device moves.
  a.server->stop();
  const fleet::PromotionReport report = standby.promote();
  EXPECT_TRUE(report.caught_up);
  EXPECT_EQ(report.device_count, a.registry.device_count());

  AuthServer promoted(standby.registry(), shard_options(1001));
  ASSERT_TRUE(promoted.start().is_ok());
  net::AdminRequestBody repoint;
  repoint.op = net::AdminOp::kAddShard;
  repoint.shard = "a";
  repoint.host = "127.0.0.1";
  repoint.port = promoted.port();
  net::AdminReplyBody reply;
  ASSERT_TRUE(admin_client.admin(repoint, &reply).is_ok());
  ASSERT_EQ(reply.ok, 1) << reply.message;
  wait_all_shards_up(admin_client, 2);

  // Every acked enrollment — shard b's untouched, shard a's replicated —
  // still authenticates through the gateway.
  auto cache = std::make_shared<circuit::SymbolicCache>();
  for (std::uint64_t id = 1; id <= kDevices; ++id) {
    AuthClient c("127.0.0.1", gateway.port(), client_options_for(id));
    net::ChallengeGrant grant;
    ASSERT_TRUE(c.get_challenge(&grant).is_ok()) << "device " << id;
    auto chip = make_chip(id, cache);
    const protocol::ChainedReport proof = protocol::prove_chain_with_ppuf(
        *chip, grant.challenge, grant.chain_length, grant.nonce, kChipDelay);
    protocol::ChainedVerifyResult verdict;
    ASSERT_TRUE(c.chained_auth(grant, proof, &verdict).is_ok());
    EXPECT_TRUE(verdict.accepted)
        << "device " << id << ": " << verdict.detail;
  }

  gateway.stop();
  promoted.stop();
  b.server->stop();
}

// --- Per-endpoint breaker scoping ------------------------------------------

TEST(AuthClientBreaker, TripsPerEndpointNotPerProcess) {
  Shard live;
  ASSERT_TRUE(live.open_and_start("breaker_live", 3).is_ok());

  // A port that refuses connections: bind, note the port, close.
  std::uint16_t dead_port = 0;
  {
    net::Socket listener;
    ASSERT_TRUE(net::listen_tcp(0, 1, &listener, &dead_port).is_ok());
  }

  ClientOptions co;
  co.max_attempts = 1;
  co.breaker_failure_threshold = 1;  // one failure opens it
  co.breaker_cooldown_ms = 60000;    // stays open for the whole test
  co.connect_timeout_ms = 500;
  AuthClient client("127.0.0.1", dead_port, co);

  EXPECT_FALSE(client.ping().is_ok());  // trips the dead endpoint's breaker
  EXPECT_FALSE(client.ping().is_ok());  // now fails fast, locally
  EXPECT_GE(client.stats().breaker_fast_fails, 1u);

  // Same client, same process-wide breaker table — but the live endpoint
  // has its own untripped breaker.
  client.set_endpoint("127.0.0.1", live.server->port());
  EXPECT_TRUE(client.ping().is_ok());

  // Flipping back re-attaches the OPEN breaker: still failing fast.
  const std::uint64_t fast_fails = client.stats().breaker_fast_fails;
  client.set_endpoint("127.0.0.1", dead_port);
  EXPECT_FALSE(client.ping().is_ok());
  EXPECT_GT(client.stats().breaker_fast_fails, fast_fails);

  live.server->stop();
}

}  // namespace
}  // namespace ppuf
