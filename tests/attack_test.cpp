// Tests for the model-building attack stack: dataset plumbing, kernels,
// LS-SVM, SMO-SVM, KNN, and the learning-curve harness.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/harness.hpp"
#include "attack/knn.hpp"
#include "attack/lssvm.hpp"
#include "attack/svm_smo.hpp"
#include "util/rng.hpp"

namespace ppuf::attack {
namespace {

/// Linearly separable blobs around (+2,+2) and (-2,-2).
Dataset blobs(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    const double cx = label == 1 ? 2.0 : -2.0;
    d.features.push_back({cx + rng.gaussian(0.0, 0.5),
                          cx + rng.gaussian(0.0, 0.5)});
    d.labels.push_back(label);
  }
  return d;
}

/// 2-bit XOR with the label depending nonlinearly on the inputs —
/// unlearnable by a linear model, easy for RBF.
Dataset xor_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.coin() ? 1.0 : -1.0;
    const double b = rng.coin() ? 1.0 : -1.0;
    d.features.push_back({a + rng.gaussian(0, 0.1), b + rng.gaussian(0, 0.1)});
    d.labels.push_back(a * b > 0 ? 1 : -1);
  }
  return d;
}

TEST(Dataset, EncodeBitsMapsToPlusMinusOne) {
  const std::vector<std::vector<std::uint8_t>> ch{{1, 0}, {0, 1}};
  const std::vector<int> resp{1, 0};
  const Dataset d = encode_bits(ch, resp);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dimension(), 2u);
  EXPECT_DOUBLE_EQ(d.features[0][0], 1.0);
  EXPECT_DOUBLE_EQ(d.features[0][1], -1.0);
  EXPECT_EQ(d.labels[0], 1);
  EXPECT_EQ(d.labels[1], -1);
}

TEST(Dataset, EncodeRejectsBadResponses) {
  EXPECT_THROW(encode_bits({{1}}, {2}), std::invalid_argument);
  EXPECT_THROW(encode_bits({{1}}, {0, 1}), std::invalid_argument);
}

TEST(Dataset, SliceBounds) {
  const Dataset d = blobs(10, 1);
  const Dataset s = d.slice(2, 5);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.labels[0], d.labels[2]);
  EXPECT_THROW(d.slice(8, 5), std::out_of_range);
}

TEST(Dataset, PredictionErrorCounts) {
  Dataset d;
  d.features = {{0.0}, {0.0}, {0.0}, {0.0}};
  d.labels = {1, 1, -1, -1};
  EXPECT_DOUBLE_EQ(prediction_error(d, {1, 1, -1, -1}), 0.0);
  EXPECT_DOUBLE_EQ(prediction_error(d, {1, -1, -1, 1}), 0.5);
  EXPECT_THROW(prediction_error(d, {1}), std::invalid_argument);
}

TEST(Kernel, RbfBasicProperties) {
  const Kernel k = make_rbf_kernel(0.5);
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{2.0, 1.0};
  EXPECT_DOUBLE_EQ(k(a, a), 1.0);
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
  EXPECT_NEAR(k(a, b), std::exp(-0.5 * 2.0), 1e-12);
  EXPECT_THROW(make_rbf_kernel(0.0), std::invalid_argument);
}

TEST(Kernel, LinearAndDefaultGamma) {
  const Kernel k = make_linear_kernel();
  EXPECT_DOUBLE_EQ(k(std::vector<double>{1.0, 2.0},
                     std::vector<double>{3.0, 4.0}),
                   11.0);
  EXPECT_DOUBLE_EQ(default_rbf_gamma(64), 1.0 / 64.0);
  EXPECT_DOUBLE_EQ(default_rbf_gamma(0), 1.0);
}

TEST(LsSvm, SeparatesBlobs) {
  const Dataset train = blobs(60, 1);
  const Dataset test = blobs(40, 2);
  const LsSvm model(train, make_rbf_kernel(0.5));
  EXPECT_LT(prediction_error(test, model.predict_all(test)), 0.05);
}

TEST(LsSvm, SolvesXorWithRbf) {
  const Dataset train = xor_data(80, 3);
  const Dataset test = xor_data(60, 4);
  const LsSvm model(train, make_rbf_kernel(1.0));
  EXPECT_LT(prediction_error(test, model.predict_all(test)), 0.05);
}

TEST(LsSvm, LinearKernelFailsXor) {
  const Dataset train = xor_data(80, 5);
  const Dataset test = xor_data(60, 6);
  const LsSvm model(train, make_linear_kernel());
  EXPECT_GT(prediction_error(test, model.predict_all(test)), 0.3);
}

TEST(LsSvm, RejectsEmptyAndBadOptions) {
  EXPECT_THROW(LsSvm(Dataset{}, make_linear_kernel()),
               std::invalid_argument);
  LsSvm::Options bad;
  bad.regularization = 0.0;
  EXPECT_THROW(LsSvm(blobs(4, 1), make_linear_kernel(), bad),
               std::invalid_argument);
}

TEST(SmoSvm, SeparatesBlobs) {
  const Dataset train = blobs(60, 7);
  const Dataset test = blobs(40, 8);
  const SmoSvm model(train, make_rbf_kernel(0.5));
  EXPECT_LT(prediction_error(test, model.predict_all(test)), 0.05);
  EXPECT_GT(model.support_vector_count(), 0u);
  EXPECT_LT(model.support_vector_count(), train.size());
}

TEST(SmoSvm, SolvesXorWithRbf) {
  const Dataset train = xor_data(100, 9);
  const Dataset test = xor_data(60, 10);
  const SmoSvm model(train, make_rbf_kernel(1.0));
  EXPECT_LT(prediction_error(test, model.predict_all(test)), 0.08);
}

TEST(Knn, NearestNeighbourOnBlobs) {
  const Dataset train = blobs(50, 11);
  const Dataset test = blobs(30, 12);
  const Knn model(train, 3);
  EXPECT_LT(prediction_error(test, model.predict_all(test)), 0.05);
}

TEST(Knn, KValidation) {
  const Dataset train = blobs(10, 13);
  EXPECT_THROW(Knn(train, 0), std::invalid_argument);
  EXPECT_THROW(Knn(train, 11), std::invalid_argument);
  EXPECT_THROW(Knn(Dataset{}, 1), std::invalid_argument);
}

TEST(Knn, BestKnnSweepAtLeastAsGoodAsK1) {
  const Dataset train = xor_data(80, 14);
  const Dataset test = xor_data(40, 15);
  const double sweep = best_knn_error(train, test, 21);
  const Knn k1(train, 1);
  EXPECT_LE(sweep, prediction_error(test, k1.predict_all(test)));
}

TEST(Harness, LearningCurveImprovesOnLearnableTarget) {
  const Dataset train = xor_data(400, 16);
  const Dataset test = xor_data(100, 17);
  const auto curve = attack_learning_curve(train, test, {20, 400});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_LT(curve[1].best(), 0.1);
  EXPECT_LE(curve[1].best(), curve[0].best() + 0.05);
  EXPECT_EQ(curve[0].train_size, 20u);
}

TEST(Harness, SkipsOversizedRequests) {
  const Dataset train = blobs(30, 18);
  const Dataset test = blobs(10, 19);
  const auto curve = attack_learning_curve(train, test, {10, 1000});
  EXPECT_EQ(curve.size(), 1u);
}

TEST(Harness, BestTakesTheMinimum) {
  AttackErrors e;
  e.lssvm_rbf = 0.4;
  e.smo_rbf = 0.2;
  e.knn = 0.3;
  EXPECT_DOUBLE_EQ(e.best(), 0.2);
}

}  // namespace
}  // namespace ppuf::attack
